"""Functional-unit pools and latency tables shared by the core models."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.isa.scalar import FUClass

#: Execution latencies in cycles (identical little/big per paper Table II's
#: spirit: same ISA, same units, different issue machinery).
DEFAULT_LATENCY = {
    FUClass.NONE: 1,
    FUClass.ALU: 1,
    FUClass.MUL: 3,
    FUClass.DIV: 12,
    FUClass.FPU: 4,
    FUClass.FDIV: 12,
    FUClass.MEM: 1,  # AGU; cache adds its own latency
}

#: Units that cannot accept a new op until the previous one finishes.
UNPIPELINED = frozenset({FUClass.DIV, FUClass.FDIV})

#: Little core: one of everything (single-issue in-order).
LITTLE_FU_COUNTS = {
    FUClass.ALU: 1,
    FUClass.MUL: 1,
    FUClass.DIV: 1,
    FUClass.FPU: 1,
    FUClass.FDIV: 1,
    FUClass.MEM: 1,
}

#: Big core: 3 ALUs, 2 FP pipes, 2 cache ports (4-wide OoO mobile class).
BIG_FU_COUNTS = {
    FUClass.ALU: 3,
    FUClass.MUL: 1,
    FUClass.DIV: 1,
    FUClass.FPU: 2,
    FUClass.FDIV: 1,
    FUClass.MEM: 2,
}


class FUPool:
    """Per-cycle issue slots plus busy tracking for unpipelined units."""

    __slots__ = ("counts", "latency", "period", "_used", "_now", "_busy_until")

    def __init__(self, counts, latency=None, period=1):
        for fu, n in counts.items():
            if n < 1:
                raise ConfigError(f"FU count for {fu} must be >= 1")
        self.counts = dict(counts)
        self.latency = dict(DEFAULT_LATENCY)
        if latency:
            self.latency.update(latency)
        self.period = period
        self._used = {}
        self._now = -1
        self._busy_until = {}

    def _roll(self, now):
        if now != self._now:
            self._now = now
            self._used.clear()

    def can_issue(self, fu, now):
        if fu == FUClass.NONE:
            return True
        self._roll(now)
        if self._used.get(fu, 0) >= self.counts.get(fu, 0):
            return False
        if fu in UNPIPELINED and self._busy_until.get(fu, 0) > now:
            return False
        return True

    def issue(self, fu, now, occupancy=None):
        """Claim a slot; returns the op's completion latency."""
        if fu == FUClass.NONE:
            return 1
        self._roll(now)
        self._used[fu] = self._used.get(fu, 0) + 1
        lat = self.latency[fu] * self.period
        if fu in UNPIPELINED:
            self._busy_until[fu] = now + (occupancy * self.period
                                          if occupancy is not None else lat)
        return lat

    def try_issue(self, fu, now, occupancy=None):
        """can_issue + issue in one step; returns latency or None."""
        if not self.can_issue(fu, now):
            return None
        return self.issue(fu, now, occupancy)

    def sync_from(self, other):
        """Adopt ``other``'s dynamic issue state (per-cycle slot usage and
        unpipelined busy tracking). Used by the VLITTLE engine's batched
        lane executor: while the lanes run in lockstep only the leader
        lane's pool is charged, and a divergence fallback copies it into
        the followers — whose conceptual state is identical — before the
        per-lane path resumes."""
        self._now = other._now
        self._used = dict(other._used)
        self._busy_until = dict(other._busy_until)

    def next_free_ps(self, fu, now):
        """Earliest future ps at which a *fresh* cycle could issue ``fu``,
        or 0 if the very next tick can (per-cycle slot usage resets every
        cycle, so only unpipelined busy-tracking blocks future ticks).
        Pure — used by the quiescence-skipping scheduler."""
        if fu in UNPIPELINED:
            t = self._busy_until.get(fu, 0)
            if t > now:
                return t
        return 0
