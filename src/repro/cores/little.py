"""In-order single-issue little core (scalar mode).

Pipeline model: a one-instruction issue stage fed by an L1I line fetcher,
a register scoreboard with per-register ready times, a functional-unit pool,
and a small store buffer draining through the single L1D port (loads have
priority). Branches run through a bimodal predictor; taken branches cost a
refetch bubble, mispredictions a flush penalty.

In a big.VLITTLE system this same core is *reconfigured* into a vector lane:
its front end (fetch/decode and the whole L1I) is disabled and the VLITTLE
engine drives its back end directly — that mode lives in
:mod:`repro.vector.vlittle` and reuses this core's FU pool and L1D.
"""

from __future__ import annotations

from repro.cores.branch import BimodalPredictor
from repro.cores.fu import FUPool, LITTLE_FU_COUNTS
from repro.isa.scalar import FUClass, Op, OP_FU, OP_IS_BRANCH, OP_IS_LOAD, OP_IS_STORE
from repro.mem.message import BLOCKED, HIT
from repro.stats.breakdown import Breakdown, Stall

_INF = 1 << 60


class LittleCore:
    __slots__ = (
        "core_id", "l1i", "l1d", "source", "period", "predictor", "fu",
        "store_buffer_depth", "mispredict_penalty", "taken_bubble",
        "_line_mask", "_head", "_front_avail", "_cur_line", "_regs",
        "_reg_kind", "_sb", "_sb_waiting", "_port_busy_cycle",
        "_outstanding_loads", "breakdown", "instrs", "active",
        "obs", "_pv", "_pv_head", "_ev_notify",
    )

    def __init__(
        self,
        core_id,
        l1i,
        l1d,
        source=None,
        store_buffer_depth=4,
        mispredict_penalty=3,
        taken_bubble=1,
        line_bytes=64,
        period=1,
    ):
        self.core_id = core_id
        self.l1i = l1i
        self.l1d = l1d
        self.source = source
        self.period = period
        self.predictor = BimodalPredictor()
        self.fu = FUPool(LITTLE_FU_COUNTS, period=period)
        self.store_buffer_depth = store_buffer_depth
        self.mispredict_penalty = mispredict_penalty
        self.taken_bubble = taken_bubble
        self._line_mask = ~(line_bytes - 1)

        self._head = None
        self._front_avail = 0
        self._cur_line = None
        self._regs = {}  # reg -> ready cycle
        self._reg_kind = {}  # reg -> Stall category while not ready
        self._sb = []  # pending store addresses (FIFO)
        self._sb_waiting = False  # head store waiting on a fill
        self._port_busy_cycle = -1
        self._outstanding_loads = 0

        self.breakdown = Breakdown()
        self.instrs = 0
        self.active = True  # cleared when reconfigured as a vector lane

        self.obs = None  # UnitObs handle; every hook is a single cheap check
        self._pv = None  # PipeView handle; same cheap-check discipline
        # event-loop wakeup: called at every asynchronous input (fills)
        # before the callback mutates core state
        self._ev_notify = None
        self._pv_head = None  # PipeRecord of the instruction in issue

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit(self.core_id, "little", process="cores")
        self._pv = obs.pipeview

    # --------------------------------------------------------------- helpers

    def set_source(self, source):
        self._head = None
        self._cur_line = None
        self._front_avail = 0
        self.source = source

    def done(self):
        return (
            self._head is None
            and (self.source is None or self.source.done())
            and not self._sb
            and self._outstanding_loads == 0
        )

    def _stall(self, kind):
        self.breakdown.add(kind)
        if self.obs is not None:
            self.obs.cycle(kind)

    def _fetch(self, ins, now):
        """Start fetching the line holding ``ins``; set front availability."""
        line = ins.pc & self._line_mask
        if line == self._cur_line:
            self._front_avail = now
            return
        self._cur_line = line
        res, ready = self.l1i.access(line, False, now, waiter=self._ifill)
        if res == HIT:
            self._front_avail = ready
        elif res == BLOCKED:
            self._cur_line = None  # retry next cycle
            self._front_avail = now + self.period
        else:
            self._front_avail = _INF

    def _ifill(self, line, ready):
        n = self._ev_notify
        if n is not None:
            n()
        self._front_avail = ready

    def _load_fill_waiter(self, dst):
        self._outstanding_loads += 1

        def waiter(line, ready):
            n = self._ev_notify
            if n is not None:
                n()
            self._regs[dst] = ready
            self._outstanding_loads -= 1

        return waiter

    def forensic_state(self, now):
        """Scheduling-state summary for :mod:`repro.obs.forensics`.
        Pure (read-only); see :meth:`BigCore.forensic_state`."""
        waits = []
        if self._outstanding_loads > 0:
            waits.append(("mem",
                          f"{self._outstanding_loads} load/fill(s) in flight"))
        if self.active and self._front_avail >= _INF:
            waits.append(("mem", "instruction fetch awaiting an L1I fill"))
        head = self._head
        if head is not None:
            for s in head.srcs:
                if self._regs.get(s, 0) >= _INF:
                    waits.append(("mem",
                                  f"operand r{s} awaiting a load fill"))
                    break
        src = self.source
        if (self.active and head is None and src is not None
                and not src.done() and src.pure_peek
                and src.peek() is None):
            waits.append(("source",
                          "instruction source empty but reports not-done"))
        return {
            "active": self.active,
            "issue_head": Op(head.op).name if head is not None else None,
            "store_buffer": len(self._sb),
            "outstanding_loads": self._outstanding_loads,
            "front_avail_ps": (None if self._front_avail >= _INF
                               else self._front_avail),
            "instrs": self.instrs,
            "done": self.done(),
            "waits_on": waits,
        }

    # ------------------------------------------------------- skip scheduling

    def next_work_ps(self, now):
        """Earliest future ps at which ``tick`` could do real work; 0 when
        the next tick would mutate state, ``_INF`` when quiescent or
        blocked purely on another unit. Side-effect free."""
        if not self.active:
            return _INF  # reconfigured as a vector lane: front end is off
        if self._sb:
            return 0  # store-buffer drain takes the L1D port every tick
        if self._head is None:
            src = self.source
            if src is None or src.done():
                return _INF  # idle tail; skip_ticks charges the MISC stall
            if not src.pure_peek:
                return 0  # impure peek may claim work: probe on grid
            if src.peek() is not None:
                return 0  # would fetch into the issue stage next tick
            return _INF
        fa = self._front_avail
        if fa > now:
            return fa if fa < _INF else _INF  # _INF: waiting on an I-fill
        ins = self._head
        for s in ins.srcs:
            t = self._regs.get(s, 0)
            if t > now:
                # first unready source gates issue *and* the attribution;
                # _INF means a load fill owned by the memory system
                return t if t < _INF else _INF
        if OP_FU[ins.op] == FUClass.MEM:
            return 0  # store enters the buffer / load takes the port
        t = self.fu.next_free_ps(OP_FU[ins.op], now)
        return t if t else 0  # 0: issues next tick

    def _idle_kind(self, now):
        """Stall category a provably idle tick charges — mirrors the
        early-return order of ``_try_issue`` without its side effects."""
        if self._head is None or self._front_avail > now:
            return Stall.MISC
        for s in self._head.srcs:
            if self._regs.get(s, 0) > now:
                return self._reg_kind.get(s, Stall.MISC)
        return Stall.STRUCT  # unpipelined FU busy: the only remaining cause

    def skip_ticks(self, n, now):
        """Replay the per-tick constant effects of ``n`` provably idle
        ticks: exactly one stall attribution per cycle."""
        if not self.active:
            if self.obs is not None:
                self.obs.cycle(Stall.MISC, n)
            return
        kind = self._idle_kind(now)
        self.breakdown.add(kind, n)
        if self.obs is not None:
            self.obs.cycle(kind, n)

    # ------------------------------------------------------------------ tick

    def tick(self, now):
        if not self.active:
            if self.obs is not None:
                # reconfigured as a vector lane: the lane's own unit accounts
                # for this cycle, the scalar front end is simply off
                self.obs.cycle(Stall.MISC)
            return
        issued = self._try_issue(now)
        self._drain_store_buffer(now)
        if issued:
            self.instrs += 1
            self.breakdown.add(Stall.BUSY)
            if self.obs is not None:
                self.obs.cycle(Stall.BUSY)

    def _try_issue(self, now):
        # pull next instruction into the issue stage
        if self._head is None:
            if self.source is None or self.source.done():
                self._stall(Stall.MISC)
                return False
            ins = self.source.peek()
            if ins is None:
                self._stall(Stall.MISC)
                return False
            self._head = self.source.pop()
            self._fetch(self._head, now)
            if self._pv is not None:
                self._pv_head = self._pv.begin(
                    self.core_id, Op(self._head.op).name, now, stage="F",
                    pc=self._head.pc)

        if self._front_avail > now:
            self._stall(Stall.MISC)  # front-end (fetch) stall
            return False

        ins = self._head
        # operand scoreboard
        for src in ins.srcs:
            t = self._regs.get(src, 0)
            if t > now:
                self._stall(self._reg_kind.get(src, Stall.MISC))
                return False

        op = ins.op
        fu = OP_FU[op]

        if fu == FUClass.MEM:
            if OP_IS_STORE[op] and not OP_IS_LOAD[op]:
                if len(self._sb) >= self.store_buffer_depth:
                    self._stall(Stall.STRUCT)
                    return False
                self._sb.append(ins.addr)
            else:
                # load (or AMO): needs the L1D port now
                if self._port_busy_cycle == now:
                    self._stall(Stall.STRUCT)
                    return False
                dst = ins.dst
                res, ready = self.l1d.access(
                    ins.addr, OP_IS_STORE[op], now, waiter=self._load_fill_waiter(dst)
                )
                if res == BLOCKED:
                    self._outstanding_loads -= 1  # waiter never registered
                    self._stall(Stall.STRUCT)
                    return False
                self._port_busy_cycle = now
                if res == HIT:
                    self._outstanding_loads -= 1  # no fill coming
                    self._regs[dst] = ready
                else:
                    self._regs[dst] = _INF
                    if self.obs is not None:
                        self.obs.instant("load_miss", now)
                self._reg_kind[dst] = Stall.RAW_MEM
        else:
            lat = self.fu.try_issue(fu, now)
            if lat is None:
                self._stall(Stall.STRUCT)
                return False
            if ins.dst is not None:
                self._regs[ins.dst] = now + lat
                self._reg_kind[ins.dst] = (
                    Stall.RAW_LLFU if lat >= 3 * self.period else Stall.MISC
                )
            if OP_IS_BRANCH[op]:
                taken = bool(ins.taken)
                correct = self.predictor.predict_and_update(ins.pc, taken)
                if not correct:
                    self._front_avail = now + (1 + self.mispredict_penalty) * self.period
                    self._cur_line = None
                    if self.obs is not None:
                        self.obs.instant("mispredict", now)
                elif taken:
                    self._front_avail = now + (1 + self.taken_bubble) * self.period
                    self._cur_line = None

        if self._pv_head is not None:
            self._pv.stage(self._pv_head, "X", now)
            self._pv.retire(self._pv_head, now + self.period)
            self._pv_head = None
        self._head = None
        return True

    def _drain_store_buffer(self, now):
        """A write miss parks in an MSHR (the cache finishes it on fill), so
        the single-entry-at-a-time buffer still overlaps store misses."""
        if not self._sb or self._port_busy_cycle == now:
            return
        addr = self._sb[0]
        res, ready = self.l1d.access(addr, True, now, waiter=self._store_fill_waiter())
        if res == BLOCKED:
            self._outstanding_loads -= 1
            return
        self._port_busy_cycle = now
        if res == HIT:
            self._outstanding_loads -= 1
        self._sb.pop(0)

    def _store_fill_waiter(self):
        self._outstanding_loads += 1

        def waiter(line, ready):
            n = self._ev_notify
            if n is not None:
                n()
            self._outstanding_loads -= 1

        return waiter

    # ----------------------------------------------------------------- stats

    def stats(self):
        out = {
            f"{self.core_id}.instrs": self.instrs,
            f"{self.core_id}.mispredicts": self.predictor.mispredicts,
        }
        for name, v in self.breakdown.as_dict().items():
            out[f"{self.core_id}.stall.{name}"] = v
        return out
