"""Branch direction predictors.

The little core uses a bimodal (per-PC 2-bit counter) predictor; the big core
uses a gshare predictor with a global history register. Both consume the
*resolved* direction carried in the trace and report whether the prediction
matched — the cores turn mispredictions into front-end redirect penalties.
"""

from __future__ import annotations


class BimodalPredictor:
    """Per-PC 2-bit saturating counters (little-core front end)."""

    __slots__ = ("_mask", "_table", "lookups", "mispredicts")

    def __init__(self, entries=512):
        self._mask = entries - 1
        self._table = [1] * entries  # weakly not-taken (static NT default)
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc, taken):
        """Return True if the prediction was correct; train the counter."""
        self.lookups += 1
        idx = (pc >> 2) & self._mask
        ctr = self._table[idx]
        pred = ctr >= 2
        if taken and ctr < 3:
            self._table[idx] = ctr + 1
        elif not taken and ctr > 0:
            self._table[idx] = ctr - 1
        correct = pred == taken
        if not correct:
            self.mispredicts += 1
        return correct


class GsharePredictor:
    """Global-history XOR-indexed 2-bit counters (big-core front end)."""

    __slots__ = ("_mask", "_table", "_hist", "_hist_mask",
                 "lookups", "mispredicts")

    def __init__(self, entries=4096, history_bits=10):
        self._mask = entries - 1
        self._table = [1] * entries  # weakly not-taken
        self._hist = 0
        self._hist_mask = (1 << history_bits) - 1
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc, taken):
        self.lookups += 1
        idx = ((pc >> 2) ^ self._hist) & self._mask
        ctr = self._table[idx]
        pred = ctr >= 2
        if taken and ctr < 3:
            self._table[idx] = ctr + 1
        elif not taken and ctr > 0:
            self._table[idx] = ctr - 1
        self._hist = ((self._hist << 1) | (1 if taken else 0)) & self._hist_mask
        correct = pred == taken
        if not correct:
            self.mispredicts += 1
        return correct
