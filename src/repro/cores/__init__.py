"""Core timing models: in-order little core and out-of-order big core."""

from repro.cores.big import BigCore
from repro.cores.branch import BimodalPredictor, GsharePredictor
from repro.cores.fu import BIG_FU_COUNTS, DEFAULT_LATENCY, FUPool, LITTLE_FU_COUNTS, UNPIPELINED
from repro.cores.little import LittleCore

__all__ = [
    "BigCore",
    "LittleCore",
    "BimodalPredictor",
    "GsharePredictor",
    "FUPool",
    "BIG_FU_COUNTS",
    "LITTLE_FU_COUNTS",
    "DEFAULT_LATENCY",
    "UNPIPELINED",
]
