"""Out-of-order big core.

A 4-wide OoO model: fetch through the L1I into a reorder buffer, dependences
resolved at dispatch through a last-writer map (implicit renaming — trace
virtual registers are already SSA-like), event-driven wakeup into a ready
queue, a functional-unit pool with two L1D ports, an in-order commit stage,
and a post-commit store buffer. Gshare branch prediction stalls fetch on a
mispredict until the branch resolves.

Vector execution plugs in one of three ways (paper Table III):

* ``vector_mode="none"`` — vector instructions are a configuration error.
* ``vector_mode="integrated"`` — the 128-bit IVU: vector ops borrow the big
  core's two FP pipes and its L1D ports (16 B per port access), executing
  inside the ROB like scalar ops.
* ``vector_mode="decoupled"`` — vector instructions wait until the head of
  the ROB and are then handed to an attached engine (VLITTLE's VCU or the
  aggressive decoupled engine). Instructions without a scalar result commit
  immediately after dispatch, letting the core run far ahead; instructions
  that produce a scalar value (``vsetvl``, ``vpopc``, ``vmv.x.s``) block
  commit until the engine responds (paper §III-A).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.cores.branch import GsharePredictor
from repro.cores.fu import BIG_FU_COUNTS, FUPool
from repro.errors import ConfigError
from repro.isa.scalar import FUClass, Op, OP_FU, OP_IS_BRANCH, OP_IS_LOAD, OP_IS_STORE
from repro.isa.vector import VClass, VOp, VOP_CLASS, VOP_IS_LOAD, VOP_IS_STORE
from repro.mem.message import BLOCKED, HIT
from repro.stats.breakdown import Breakdown, Stall
from repro.utils import ceil_div

_INF = 1 << 60

#: IVU cost mapping: VClass -> (FUClass, extra slots, latency key)
_IVU_FU = {
    VClass.CTRL: FUClass.ALU,
    VClass.INT_SIMPLE: FUClass.FPU,  # vector ops borrow the two FP pipes
    VClass.INT_COMPLEX: FUClass.FDIV,
    VClass.FP: FUClass.FPU,
    VClass.FDIV: FUClass.FDIV,
    VClass.MASK: FUClass.FPU,
    VClass.CROSS_PERM: FUClass.FPU,
    VClass.CROSS_RED: FUClass.FPU,
    VClass.MOVE: FUClass.FPU,
    VClass.FENCE: FUClass.NONE,
}


def _pv_label(ins):
    """Short disassembly-style label for pipeline-viewer records."""
    if ins.is_vector:
        return f"{VOp(ins.op).name} vl={ins.vl} ew={ins.ew}"
    return Op(ins.op).name


class _Entry:
    __slots__ = (
        "ins",
        "deps",
        "consumers",
        "completed",
        "issued",
        "dispatched",
        "pending_chunks",
        "is_store",
        "is_branch",
        "pv",
    )

    def __init__(self, ins):
        self.ins = ins
        self.deps = 0
        self.consumers = []
        self.completed = False
        self.issued = False
        self.dispatched = False
        self.pending_chunks = 0
        self.is_store = False
        self.is_branch = False
        self.pv = None  # PipeRecord when instruction-grain tracking is on


class BigCore:
    __slots__ = (
        "core_id", "l1i", "l1d", "source", "rob_size", "width", "vector_mode",
        "ivu_vlen_bits", "ivu_port_bytes", "engine", "period", "predictor",
        "fu", "store_buffer_depth", "mispredict_penalty", "_line_mask",
        "_rob", "_ready", "_last_writer", "_vseq_entry", "_complete_at",
        "_complete_seq", "_front_avail", "_cur_line", "_fetch_blocked_on",
        "_sb", "_sb_waiting", "_outstanding", "breakdown", "instrs",
        "vector_instrs", "vector_dispatches", "obs", "_pv", "_obs_rob",
        "_ivu_port_free", "_now_hint", "_ev_notify",
    )

    def __init__(
        self,
        core_id,
        l1i,
        l1d,
        source=None,
        rob_size=128,
        width=4,
        store_buffer_depth=8,
        mispredict_penalty=8,
        vector_mode="none",
        ivu_vlen_bits=128,
        ivu_port_bytes=16,
        engine=None,
        line_bytes=64,
        period=1,
    ):
        if vector_mode not in ("none", "integrated", "decoupled"):
            raise ConfigError(f"unknown vector_mode {vector_mode!r}")
        if vector_mode == "decoupled" and engine is None:
            raise ConfigError("decoupled vector_mode requires an engine")
        self.core_id = core_id
        self.l1i = l1i
        self.l1d = l1d
        self.source = source
        self.rob_size = rob_size
        self.width = width
        self.vector_mode = vector_mode
        self.ivu_vlen_bits = ivu_vlen_bits
        self.ivu_port_bytes = ivu_port_bytes
        self.engine = engine
        self.period = period
        self.predictor = GsharePredictor()
        self.fu = FUPool(BIG_FU_COUNTS, period=period)
        self.store_buffer_depth = store_buffer_depth
        self.mispredict_penalty = mispredict_penalty
        self._line_mask = ~(line_bytes - 1)

        self._rob = deque()
        self._ready = deque()
        self._last_writer = {}  # scalar reg -> producing entry
        self._vseq_entry = {}  # vector seq -> entry (integrated mode)
        self._complete_at = []  # heap of (time, tiebreak, entry)
        self._complete_seq = 0
        self._front_avail = 0
        self._cur_line = None
        self._fetch_blocked_on = None  # entry of an unresolved mispredict
        self._sb = []  # post-commit store addresses
        self._sb_waiting = False
        self._outstanding = 0  # loads / fills in flight

        self.breakdown = Breakdown()
        self.instrs = 0
        self.vector_instrs = 0
        self.vector_dispatches = 0

        self.obs = None  # UnitObs handle; every hook is a single cheap check
        self._pv = None  # PipeView handle; same cheap-check discipline
        self._obs_rob = None
        self._ivu_port_free = 0
        self._now_hint = 0  # updated by the system each cycle, for callbacks
        # event-loop wakeup: called at every asynchronous input (fills,
        # engine responses) before the callback mutates core state
        self._ev_notify = None

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit(self.core_id, "big", process="cores")
        self._pv = obs.pipeview
        self._obs_rob = obs.metrics.histogram(
            f"{self.core_id}.rob_occupancy", (0, 8, 16, 32, 64, 96))

    def _commit_stall_kind(self):
        """Attribute a zero-commit cycle to what the ROB head is waiting on."""
        if not self._rob:
            return Stall.MISC  # empty ROB: front-end / idle
        e = self._rob[0]
        ins = e.ins
        if e.completed:
            # head done but held back: store-buffer full or engine drain
            return Stall.STRUCT
        if ins.is_vector:
            if self.vector_mode == "decoupled":
                # waiting either to hand off (engine busy / fence) or for the
                # engine's scalar response
                return Stall.XELEM if e.dispatched else Stall.STRUCT
            if not e.issued:
                return Stall.STRUCT
            return Stall.RAW_MEM if VOP_IS_LOAD[ins.op] or VOP_IS_STORE[ins.op] \
                else Stall.RAW_LLFU
        if not e.issued:
            return Stall.RAW_LLFU if e.deps else Stall.STRUCT
        return Stall.RAW_MEM if OP_FU[ins.op] == FUClass.MEM else Stall.RAW_LLFU

    # --------------------------------------------------------------- helpers

    def set_source(self, source):
        self.source = source
        self._front_avail = 0
        self._cur_line = None

    def done(self):
        return (
            (self.source is None or self.source.done())
            and not self._rob
            and not self._sb
            and self._outstanding == 0
            and not self._complete_at
        )

    def _schedule_completion(self, entry, t):
        # async fill callbacks can fire after this core's tick in the same
        # cycle; clamp into the future so the completion is never lost
        if t <= self._now_hint:
            t = self._now_hint + self.period
        self._complete_seq += 1
        heapq.heappush(self._complete_at, (t, self._complete_seq, entry))

    def _wake(self, entry, now):
        entry.completed = True
        if entry.pv is not None:
            self._pv.stage(entry.pv, "Cp", now)
        for c in entry.consumers:
            c.deps -= 1
            if c.deps == 0 and not c.issued:
                self._ready.append(c)
        entry.consumers.clear()
        if self._fetch_blocked_on is entry:
            self._fetch_blocked_on = None
            self._front_avail = now + self.mispredict_penalty * self.period
            self._cur_line = None

    def _ifill(self, line, ready):
        n = self._ev_notify
        if n is not None:
            n()
        self._front_avail = ready

    def forensic_state(self, now):
        """Scheduling-state summary for :mod:`repro.obs.forensics`.

        Pure (read-only): mirrors the blocking conditions ``tick`` /
        ``next_work_ps`` act on, plus occupancy counts, and names what
        the core is waiting on (``mem`` / ``engine`` / ``source``)."""
        waits = []
        if self._outstanding > 0:
            waits.append(("mem", f"{self._outstanding} load/fill(s) in flight"))
        if self._front_avail >= _INF:
            waits.append(("mem", "instruction fetch awaiting an L1I fill"))
        head = self._rob[0] if self._rob else None
        if head is not None:
            ins = head.ins
            if ins.is_vector and self.vector_mode == "decoupled":
                if not head.dispatched:
                    if head.deps == 0 and not (
                            ins.op == VOp.VMFENCE
                            and (self._sb or self._outstanding > 0)):
                        waits.append(("engine",
                                      f"ROB head {VOp(ins.op).name} awaiting "
                                      f"engine accept"))
                elif not head.completed:
                    waits.append(("engine",
                                  f"ROB head {VOp(ins.op).name} awaiting "
                                  f"engine response"))
            elif (not ins.is_vector and ins.op == Op.CSRRW
                    and self.vector_mode == "decoupled" and head.completed
                    and self.engine is not None and not self.engine.idle()):
                waits.append(("engine",
                              "mode-switch CSRRW awaiting engine drain"))
        src = self.source
        if (not self._rob and src is not None and not src.done()
                and src.pure_peek and src.peek() is None):
            waits.append(("source",
                          "instruction source empty but reports not-done"))
        return {
            "rob": len(self._rob),
            "rob_size": self.rob_size,
            "ready": len(self._ready),
            "store_buffer": len(self._sb),
            "outstanding_fills": self._outstanding,
            "completions_armed": len(self._complete_at),
            "front_avail_ps": (None if self._front_avail >= _INF
                               else self._front_avail),
            "fetch_blocked": self._fetch_blocked_on is not None,
            "instrs": self.instrs,
            "done": self.done(),
            "waits_on": waits,
        }

    # ------------------------------------------------------- skip scheduling

    def next_work_ps(self, now):
        """Earliest future ps at which ``tick`` could do real work.

        Contract (shared by every ticking unit): return 0 when the very
        next tick would mutate state or change its stall attribution;
        return the earliest strictly-future threshold when the unit is
        waiting on its own timers; return ``_INF`` when quiescent or
        blocked purely on another unit (whose own ``next_work_ps`` bounds
        the skip). Must be side-effect free.
        """
        if self._sb:
            return 0  # store-buffer drain accesses the L1D every tick
        bound = _INF
        heap = self._complete_at
        if heap:
            t = heap[0][0]
            if t <= now:
                return 0
            if t < bound:
                bound = t
        if self._ready:
            # mirror _try_issue_one's failure paths: an entry only fails
            # on a *future* tick when a known timer blocks it — the IVU's
            # shared cache port or an unpipelined FU. Everything else
            # (per-cycle issue slots, L1D accesses) is issuable on any
            # fresh cycle, so its presence vetoes the skip.
            t_ready = _INF
            for entry in self._ready:
                ins = entry.ins
                if ins.is_vector:
                    cls = VOP_CLASS[ins.op]
                    if cls in (VClass.MEM_UNIT, VClass.MEM_STRIDE,
                               VClass.MEM_INDEX):
                        t = self._ivu_port_free
                        if t > now:
                            if t < t_ready:
                                t_ready = t
                            continue
                        return 0  # port free: the access runs next tick
                    fu = _IVU_FU[cls]
                    if fu != FUClass.FPU:
                        t = self.fu.next_free_ps(fu, now)
                        if t:
                            if t < t_ready:
                                t_ready = t
                            continue
                    return 0
                t = self.fu.next_free_ps(
                    FUClass.ALU if entry.is_store else OP_FU[ins.op], now)
                if t:
                    if t < t_ready:
                        t_ready = t
                    continue
                return 0
            if t_ready < bound:
                bound = t_ready
        if self._rob:
            e = self._rob[0]
            ins = e.ins
            if e.completed:
                if (not ins.is_vector and ins.op == Op.CSRRW
                        and self.vector_mode == "decoupled"
                        and not self.engine.idle()):
                    # mode-switch retire waits for the engine drain
                    # (§III-B): blocked purely on the engine, whose own
                    # activity bounds the wait — fall through so the
                    # remaining stages can still claim their own work
                    pass
                else:
                    return 0  # head would retire (or retry a full
                    # store buffer, which the top _sb check covers)
            if (ins.is_vector and self.vector_mode == "decoupled"
                    and not e.dispatched and e.deps == 0):
                if not (ins.op == VOp.VMFENCE
                        and (self._sb or self._outstanding > 0)):
                    t = self.engine.next_accept_ps(now)
                    if t <= now:
                        return 0  # dispatch (or the mutating first
                        # can_accept call) happens next tick
                    if t < bound:
                        bound = t
            # any other blocked head waits on the completion heap or on
            # another unit's activity (engine response, cache fill)
        if (self._fetch_blocked_on is None and self.source is not None
                and len(self._rob) < self.rob_size):
            fa = self._front_avail
            if fa > now:
                if fa < bound:
                    bound = fa
            else:
                src = self.source
                if not src.pure_peek:
                    if not src.done():
                        return 0  # impure peek may claim work: probe on grid
                elif src.peek() is not None:
                    return 0  # front end would fetch next tick
        return bound

    def skip_ticks(self, n, now=None):
        """Replay the per-tick constant effects of ``n`` provably idle
        ticks (guaranteed by ``next_work_ps``): the commit stage charges
        one idle-cycle attribution per cycle even when nothing moves.

        ``now`` is accepted for interface uniformity with the other
        ticking units (the event core calls every unit's ``skip_ticks``
        with the span's first tick time); the big core's attribution is
        time-independent, so it is unused."""
        self.breakdown.add(Stall.MISC, n)
        if self.obs is not None:
            self.obs.cycle(self._commit_stall_kind(), n)
            self._obs_rob.observe(len(self._rob), n)

    # ------------------------------------------------------------------ tick

    def tick(self, now):
        # 1. completions whose time has passed
        heap = self._complete_at
        while heap and heap[0][0] <= now:
            _, _, e = heapq.heappop(heap)
            self._wake(e, now)
        # 2. issue ready instructions
        self._issue(now)
        # 3. commit in order
        self._commit(now)
        # 4. fetch/dispatch new instructions into the ROB
        self._fetch(now)
        # 5. drain post-commit stores
        self._drain_store_buffer(now)
        if self.obs is not None:
            self._obs_rob.observe(len(self._rob))

    # ----------------------------------------------------------------- fetch

    def _fetch(self, now):
        if self._fetch_blocked_on is not None or self.source is None:
            return
        fetched = 0
        redirects = 0
        while fetched < self.width and len(self._rob) < self.rob_size:
            if self._front_avail > now:
                return
            ins = self.source.peek()
            if ins is None:
                return
            line = ins.pc & self._line_mask
            if line != self._cur_line:
                self._cur_line = line
                res, ready = self.l1i.access(line, False, now, waiter=self._ifill)
                if res == HIT:
                    self._front_avail = ready
                elif res == BLOCKED:
                    self._cur_line = None
                    self._front_avail = now + self.period
                else:
                    self._front_avail = _INF
                if self._front_avail > now:
                    return
            self.source.pop()
            self._dispatch(ins, now)
            fetched += 1
            if ins.is_vector:
                continue
            if OP_IS_BRANCH[ins.op]:
                taken = bool(ins.taken)
                correct = self.predictor.predict_and_update(ins.pc, taken)
                if not correct:
                    self._fetch_blocked_on = self._rob[-1]
                    if self.obs is not None:
                        self.obs.instant("mispredict", now)
                    return
                if taken:
                    # BTB hit: predicted-taken branches redirect without a
                    # bubble, but the front end follows one taken branch/cycle
                    self._cur_line = None
                    redirects += 1
                    if redirects >= 1 + (self.width // 4):
                        self._front_avail = now + self.period
                        return
                    continue

    def _dispatch(self, ins, now):
        entry = _Entry(ins)
        self._rob.append(entry)
        if self._pv is not None:
            entry.pv = self._pv.begin(
                self.core_id, _pv_label(ins), now, stage="F", pc=ins.pc,
                seq=ins.seq if ins.is_vector else None)
        if ins.is_vector:
            self.vector_instrs += 1
            if self.vector_mode == "none":
                raise ConfigError(f"{self.core_id} has no vector unit for {ins!r}")
            # scalar sources
            for r in ins.rs:
                p = self._last_writer.get(r)
                if p is not None and not p.completed:
                    entry.deps += 1
                    p.consumers.append(entry)
            if self.vector_mode == "integrated":
                for seq in ins.dep_ids:
                    p = self._vseq_entry.get(seq)
                    if p is not None and not p.completed:
                        entry.deps += 1
                        p.consumers.append(entry)
                self._vseq_entry[ins.seq] = entry
                entry.is_store = VOP_IS_STORE[ins.op]
                if entry.deps == 0:
                    self._ready.append(entry)
            # decoupled: handled at commit head, not via the ready queue
            if ins.rd is not None:
                self._last_writer[ins.rd] = entry
            return
        for src in ins.srcs:
            p = self._last_writer.get(src)
            if p is not None and not p.completed:
                entry.deps += 1
                p.consumers.append(entry)
        entry.is_store = OP_IS_STORE[ins.op] and not OP_IS_LOAD[ins.op]
        entry.is_branch = OP_IS_BRANCH[ins.op]
        if ins.dst is not None:
            self._last_writer[ins.dst] = entry
        if entry.deps == 0:
            self._ready.append(entry)

    # ----------------------------------------------------------------- issue

    def _issue(self, now):
        issued = 0
        n = len(self._ready)
        for _ in range(n):
            if issued >= self.width:
                break
            entry = self._ready.popleft()
            if self._try_issue_one(entry, now):
                entry.issued = True
                issued += 1
                if entry.pv is not None:
                    self._pv.stage(entry.pv, "Is", now)
            else:
                self._ready.append(entry)

    def _try_issue_one(self, entry, now):
        ins = entry.ins
        if ins.is_vector:
            return self._issue_ivu(entry, now)
        op = ins.op
        fu = OP_FU[op]
        if fu == FUClass.MEM:
            if entry.is_store:
                # stores just need address generation; data written at commit
                if self.fu.try_issue(FUClass.ALU, now) is None:
                    return False
                self._schedule_completion(entry, now + self.period)
                return True
            if self.fu.try_issue(FUClass.MEM, now) is None:
                return False
            res, ready = self.l1d.access(
                ins.addr, OP_IS_STORE[op], now, waiter=self._load_waiter(entry)
            )
            if res == BLOCKED:
                self._outstanding -= 1
                return False
            if res == HIT:
                self._outstanding -= 1
                self._schedule_completion(entry, ready)
            return True
        lat = self.fu.try_issue(fu, now)
        if lat is None:
            return False
        self._schedule_completion(entry, now + lat)
        return True

    def _load_waiter(self, entry):
        self._outstanding += 1

        def waiter(line, ready):
            n = self._ev_notify
            if n is not None:
                n()
            self._outstanding -= 1
            self._schedule_completion(entry, max(ready, self._now_hint))

        return waiter

    # IVU ---------------------------------------------------------------------

    def _issue_ivu(self, entry, now):
        ins = entry.ins
        cls = VOP_CLASS[ins.op]
        if cls in (VClass.MEM_UNIT, VClass.MEM_STRIDE, VClass.MEM_INDEX):
            return self._issue_ivu_mem(entry, now)
        fu = _IVU_FU[cls]
        # vector arithmetic occupies both FP pipes (paper: the IVU leverages
        # two of the big core's execution pipelines)
        if fu == FUClass.FPU:
            if not self.fu.can_issue(FUClass.FPU, now):
                return False
            self.fu.issue(FUClass.FPU, now)
            self.fu.issue(FUClass.FPU, now)
            lat = self.fu.latency[FUClass.FPU] * self.period
        else:
            lat = self.fu.try_issue(fu, now)
            if lat is None:
                return False
        if cls in (VClass.CROSS_PERM, VClass.CROSS_RED):
            lat += max(0, ins.vl // 2) * self.period
        elif cls in (VClass.INT_COMPLEX, VClass.FDIV):
            lat += ins.vl * self.period  # serialized element groups
        self._schedule_completion(entry, now + lat)
        return True

    def _issue_ivu_mem(self, entry, now):
        ins = entry.ins
        # the IVU shares ONE data-cache port with the core (paper §IV-A):
        # a vector access occupies it for one cycle per 16 B chunk
        if self._ivu_port_free > now:
            return False
        if self.fu.try_issue(FUClass.MEM, now) is None:
            return False
        if VOP_IS_STORE[ins.op]:
            # data goes to the post-commit store buffer chunk by chunk
            self._schedule_completion(entry, now + self.period)
            return True
        chunks = self._ivu_chunks(ins)
        self._ivu_port_free = now + len(chunks) * self.period
        entry.pending_chunks = len(chunks)
        latest = now + self.period
        for addr in chunks:
            res, ready = self.l1d.access(addr, False, now, waiter=self._chunk_waiter(entry))
            if res == HIT:
                self._outstanding -= 1
                entry.pending_chunks -= 1
                latest = max(latest, ready)
            elif res == BLOCKED:
                self._outstanding -= 1
                entry.pending_chunks -= 1
                latest = max(latest, now + 4 * self.period)  # retried internally
        # the IVU shares a single data-cache port with the core (paper §IV-A)
        latest += (len(chunks) - 1) * self.period
        if entry.pending_chunks == 0:
            self._schedule_completion(entry, latest)
        return True

    def _chunk_waiter(self, entry):
        self._outstanding += 1

        def waiter(line, ready):
            n = self._ev_notify
            if n is not None:
                n()
            self._outstanding -= 1
            entry.pending_chunks -= 1
            if entry.pending_chunks == 0:
                self._schedule_completion(entry, max(ready, self._now_hint))

        return waiter

    def _ivu_chunks(self, ins):
        """Port-width (16 B) chunk addresses for an IVU memory op."""
        cls = VOP_CLASS[ins.op]
        if cls == VClass.MEM_UNIT:
            nbytes = max(ins.vl * ins.ew, 1)
            w = self.ivu_port_bytes
            first = ins.base // w * w
            last = (ins.base + nbytes - 1) // w * w
            return list(range(first, last + w, w))
        return ins.element_addrs()

    # ---------------------------------------------------------------- commit

    def _commit(self, now):
        committed = 0
        while self._rob and committed < self.width:
            entry = self._rob[0]
            ins = entry.ins
            if ins.is_vector and self.vector_mode == "decoupled":
                if not entry.dispatched:
                    if entry.deps > 0:
                        break  # scalar sources not ready
                    if ins.op == VOp.VMFENCE and (self._sb or self._outstanding > 0):
                        break  # scalar accesses must retire first (§III-B)
                    if not self.engine.can_accept(now):
                        break
                    if entry.pv is not None:
                        self._pv.stage(entry.pv, "VD", now)
                    self.engine.dispatch(ins, now, self._vector_response(entry))
                    entry.dispatched = True
                    self.vector_dispatches += 1
                    if self.obs is not None:
                        self.obs.instant(f"vdispatch:{ins.op.name}", now)
                    if ins.rd is None:
                        entry.completed = True
                        self._wake(entry, now)
                if not entry.completed:
                    break
            elif not entry.completed:
                break
            if (not ins.is_vector and ins.op == Op.CSRRW
                    and self.vector_mode == "decoupled"):
                # a vector-mode CSR write: the OS returns the cluster to
                # scalar mode once the engine drains (paper §III-B)
                if not self.engine.idle():
                    break
                if hasattr(self.engine, "end_region"):
                    self.engine.end_region()
            # retire; stores need a store-buffer slot or commit stalls
            if entry.is_store and not ins.is_vector:
                if len(self._sb) >= self.store_buffer_depth:
                    break
                self._sb.append(ins.addr)
            elif ins.is_vector and self.vector_mode == "integrated" and VOP_IS_STORE[ins.op]:
                if len(self._sb) >= self.store_buffer_depth:
                    break
                self._sb.extend(self._ivu_chunks(ins))
            self._rob.popleft()
            self.instrs += 1
            committed += 1
            if entry.pv is not None:
                self._pv.retire(entry.pv, now)
        if committed:
            self.breakdown.add(Stall.BUSY)
        else:
            self.breakdown.add(Stall.MISC)
        if self.obs is not None:
            self.obs.cycle(Stall.BUSY if committed else self._commit_stall_kind())

    def _vector_response(self, entry):
        def respond(ready_time):
            """Engine callback: the scalar result arrives at ``ready_time``."""
            n = self._ev_notify
            if n is not None:
                n()
            self._schedule_completion(entry, max(ready_time, self._now_hint))

        return respond

    # ---------------------------------------------------------------- stores

    def _drain_store_buffer(self, now):
        """Fire-and-forget drain: a write miss parks in an MSHR and the cache
        completes it on fill — an OoO core's write buffer pipelines misses
        instead of serializing them at DRAM latency."""
        if not self._sb:
            return
        if self.fu.try_issue(FUClass.MEM, now) is None:
            return
        addr = self._sb[0]
        res, ready = self.l1d.access(addr, True, now, waiter=self._store_waiter())
        if res == BLOCKED:
            self._outstanding -= 1
            return
        if res == HIT:
            self._outstanding -= 1
        self._sb.pop(0)

    def _store_waiter(self):
        self._outstanding += 1

        def waiter(line, ready):
            n = self._ev_notify
            if n is not None:
                n()
            self._outstanding -= 1

        return waiter

    # ----------------------------------------------------------------- stats

    def set_now_hint(self, now):
        self._now_hint = now

    def stats(self):
        out = {
            f"{self.core_id}.instrs": self.instrs,
            f"{self.core_id}.vinstrs": self.vector_instrs,
            f"{self.core_id}.vdispatch": self.vector_dispatches,
            f"{self.core_id}.mispredicts": self.predictor.mispredicts,
        }
        for name, v in self.breakdown.as_dict().items():
            out[f"{self.core_id}.stall.{name}"] = v
        return out
