"""Benchmark history: an append-only ledger plus a trajectory report.

The repo's benchmarks (``benchmarks/bench_*.py``) each emit a
``bigvlittle-bench-v1`` JSON snapshot (``BENCH_*.json``) of one commit's
numbers. This module strings those snapshots into a *trajectory*:

* ``BENCH_history.jsonl`` — an append-only ledger, one JSON object per
  line (``{"schema", "ts", "source", "note", "results"}``), where
  ``results`` is the merged ``{bench name: {metric: value}}`` of every
  snapshot present when the entry was recorded. CI appends one entry per
  run; the file is committed, so the history travels with the repo.
* ``bigvlittle bench-history`` — merges the ledger with the *current*
  working-tree snapshots into a per-benchmark trajectory report:
  regression deltas vs. the previous entry, and (with ``--html``) a
  dashboard with one sparkline per metric (rendered inline through
  :func:`repro.experiments.svgplot.sparkline` — no plotting deps).

Metric direction is inferred from the name — ``*speedup*`` /
``*improvement*`` / ``*throughput*`` count up, ``*_s`` / ``*_ms`` /
``*wall*`` / ``*overhead*`` count down, anything else is tracked but
never flagged — so a wall-time increase and a speedup decrease both
surface as regressions without per-metric configuration.

Corrupt ledger lines are skipped (with a warning), mirroring the result
cache's tolerance for damaged files: a truncated append must never brick
the dashboard.
"""

from __future__ import annotations

import glob
import json
import os
import time
import warnings

SCHEMA = "bigvlittle-bench-history-v1"
BENCH_SCHEMA = "bigvlittle-bench-v1"
DEFAULT_LEDGER = "BENCH_history.jsonl"

#: relative change beyond which a directional metric counts as moved
DEFAULT_THRESHOLD = 0.05

_UP_KEYS = ("speedup", "improvement", "throughput")
_DOWN_KEYS = ("wall", "overhead")
_DOWN_SUFFIXES = ("_s", "_ms", "_us")


def metric_direction(name):
    """+1 if larger is better, -1 if smaller is better, 0 if unknown."""
    n = name.lower()
    if any(k in n for k in _UP_KEYS):
        return 1
    if n.endswith(_DOWN_SUFFIXES) or any(k in n for k in _DOWN_KEYS):
        return -1
    return 0


# ------------------------------------------------------------------ snapshots

def find_bench_files(root="."):
    """Every ``BENCH_*.json`` snapshot under ``root`` (sorted by name)."""
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def load_bench_results(paths):
    """Merge ``bigvlittle-bench-v1`` files into ``{name: {metric: value}}``.

    Later files win on duplicate benchmark names (they should not occur:
    each bench script owns a distinct name prefix).
    """
    merged = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            warnings.warn(f"unreadable bench snapshot {path} ({e!r}); "
                          f"skipping", RuntimeWarning, stacklevel=2)
            continue
        if doc.get("schema") != BENCH_SCHEMA:
            warnings.warn(f"{path} is not a {BENCH_SCHEMA} file; skipping",
                          RuntimeWarning, stacklevel=2)
            continue
        for res in doc.get("results", []):
            name = res.get("name")
            metrics = res.get("metrics")
            if name and isinstance(metrics, dict):
                merged[name] = {k: v for k, v in metrics.items()
                                if isinstance(v, (int, float))}
    return merged


# --------------------------------------------------------------------- ledger

def append_entry(ledger, bench_paths, note="", ts=None, source="local",
                 dedup=False):
    """Record the current snapshots as one ledger line; returns the entry.

    ``ts`` defaults to now; tests pass a fixed value for determinism.

    With ``dedup``, the append is skipped (returning ``None``) when the
    ledger's last entry came from the same ``source`` and carries
    byte-identical ``results`` — re-running CI or ``--append`` on an
    unchanged working tree must not pile duplicate history lines.
    """
    results = load_bench_results(bench_paths)
    if dedup:
        history = load_history(ledger)
        if history:
            tail = history[-1]
            if (tail.get("source") == source
                    and json.dumps(tail.get("results"), sort_keys=True)
                    == json.dumps(results, sort_keys=True)):
                return None
    entry = {
        "schema": SCHEMA,
        "ts": round(time.time(), 3) if ts is None else ts,
        "source": source,
        "note": note,
        "results": results,
    }
    with open(ledger, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(ledger):
    """Ledger entries in file order; corrupt lines are skipped."""
    if not os.path.exists(ledger):
        return []
    entries = []
    with open(ledger, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                warnings.warn(f"corrupt ledger line {ledger}:{lineno}; "
                              f"skipping", RuntimeWarning, stacklevel=2)
                continue
            if isinstance(entry, dict) and isinstance(
                    entry.get("results"), dict):
                entries.append(entry)
    return entries


def merged_entries(ledger, bench_paths, note="working tree", ts=None):
    """History plus one *unwritten* entry for the current snapshots.

    The trailing entry makes ``bigvlittle bench-history`` compare the
    working tree against the last recorded ledger line without touching
    the ledger; it is elided when there are no current snapshots.
    """
    entries = load_history(ledger)
    current = load_bench_results(bench_paths)
    if current:
        entries = entries + [{
            "schema": SCHEMA,
            "ts": round(time.time(), 3) if ts is None else ts,
            "source": "working-tree",
            "note": note,
            "results": current,
        }]
    return entries


# ----------------------------------------------------------------- trajectory

def trajectory(entries):
    """``{bench name: {metric: [value-or-None per entry]}}`` across
    ``entries`` (deterministic: names and metrics sorted)."""
    names = sorted({n for e in entries for n in e["results"]})
    out = {}
    for name in names:
        metrics = sorted({m for e in entries
                          for m in e["results"].get(name, {})})
        out[name] = {
            m: [e["results"].get(name, {}).get(m) for e in entries]
            for m in metrics
        }
    return out


def deltas(entries, threshold=DEFAULT_THRESHOLD):
    """Per-metric change of the last entry vs. the previous one that has
    the metric. Each row: ``{name, metric, old, new, rel, direction,
    regressed, improved}`` (directionless metrics never flag)."""
    rows = []
    if len(entries) < 2:
        return rows
    cur = entries[-1]["results"]
    for name in sorted(cur):
        for metric in sorted(cur[name]):
            new = cur[name][metric]
            old = None
            for e in reversed(entries[:-1]):
                old = e["results"].get(name, {}).get(metric)
                if old is not None:
                    break
            if old is None or not isinstance(new, (int, float)):
                continue
            rel = (new - old) / abs(old) if old else 0.0
            d = metric_direction(metric)
            moved = abs(rel) > threshold
            rows.append({
                "name": name, "metric": metric, "old": old, "new": new,
                "rel": rel, "direction": d,
                "regressed": moved and d != 0 and rel * d < 0,
                "improved": moved and d != 0 and rel * d > 0,
            })
    rows.sort(key=lambda r: (not r["regressed"], not r["improved"],
                             -abs(r["rel"]), r["name"], r["metric"]))
    return rows


# -------------------------------------------------------------------- reports

def format_report(entries, top=None, threshold=DEFAULT_THRESHOLD):
    """Text trajectory report: entry count, regressions, biggest movers."""
    if not entries:
        return "no benchmark history (ledger empty, no BENCH_*.json found)"
    lines = [f"{len(entries)} entries, "
             f"{len(trajectory(entries))} benchmarks tracked; "
             f"latest: {entries[-1].get('source', '?')} "
             f"{entries[-1].get('note', '')}".rstrip()]
    rows = deltas(entries, threshold=threshold)
    if not rows:
        lines.append("(single entry — nothing to diff)")
        return "\n".join(lines)
    shown = rows[:top] if top else rows
    hdr = (f"{'benchmark':<42} {'metric':<24} {'prev':>10} {'now':>10} "
           f"{'change':>8}")
    lines += [hdr, "-" * len(hdr)]
    for r in shown:
        flag = (" REGRESSED" if r["regressed"]
                else " improved" if r["improved"] else "")
        lines.append(f"{r['name']:<42} {r['metric']:<24} "
                     f"{r['old']:>10.4g} {r['new']:>10.4g} "
                     f"{r['rel'] * 100:>+7.1f}%{flag}")
    n_reg = sum(1 for r in rows if r["regressed"])
    if len(shown) < len(rows):
        lines.append(f"... {len(rows) - len(shown)} more metrics")
    lines.append(f"{n_reg} regression(s) beyond {threshold * 100:.0f}% "
                 f"vs. previous entry")
    return "\n".join(lines)


def render_html(entries, out, threshold=DEFAULT_THRESHOLD):
    """Write the trajectory dashboard (inline sparkline SVG per metric)."""
    from repro.experiments.svgplot import sparkline

    traj = trajectory(entries)
    delta_by_key = {(r["name"], r["metric"]): r
                    for r in deltas(entries, threshold=threshold)}
    rows = []
    for name in sorted(traj):
        for metric, values in traj[name].items():
            numeric = [v for v in values if v is not None]
            if not numeric:
                continue
            r = delta_by_key.get((name, metric))
            cls = ("reg" if r and r["regressed"]
                   else "imp" if r and r["improved"] else "")
            change = f"{r['rel'] * 100:+.1f}%" if r else "—"
            rows.append(
                f'<tr class="{cls}"><td>{name}</td><td>{metric}</td>'
                f"<td>{sparkline(values)}</td>"
                f"<td>{numeric[-1]:.4g}</td><td>{change}</td></tr>")
    stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                          time.localtime(entries[-1]["ts"])) if entries else ""
    html = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>big.VLITTLE benchmark history</title>
<style>
body {{ font-family: Helvetica, Arial, sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; }}
th, td {{ padding: 4px 10px; border-bottom: 1px solid #ddd;
          text-align: left; font-size: 13px; }}
tr.reg td {{ background: #fbe5e5; }}
tr.imp td {{ background: #e7f6e7; }}
svg {{ vertical-align: middle; }}
</style></head><body>
<h1>big.VLITTLE benchmark history</h1>
<p>{len(entries)} entries, {len(traj)} benchmarks; latest entry {stamp}
({entries[-1].get('source', '?') if entries else ''}
{entries[-1].get('note', '') if entries else ''}).
Rows are shaded when the latest value moved more than
{threshold * 100:.0f}% against its metric's direction
(red = regressed, green = improved).</p>
<table><tr><th>benchmark</th><th>metric</th><th>trajectory</th>
<th>latest</th><th>vs. prev</th></tr>
{chr(10).join(rows)}
</table></body></html>
"""
    with open(out, "w", encoding="utf-8") as f:
        f.write(html)
    return len(rows)


# ------------------------------------------------------------------------ CLI

def build_parser():
    import argparse

    ap = argparse.ArgumentParser(
        prog="bigvlittle bench-history",
        description="Merge BENCH_*.json snapshots and the BENCH_history "
                    "ledger into a benchmark trajectory report")
    ap.add_argument("--ledger", default=DEFAULT_LEDGER, metavar="PATH",
                    help=f"append-only history ledger "
                         f"(default: {DEFAULT_LEDGER})")
    ap.add_argument("--bench", nargs="*", default=None, metavar="PATH",
                    help="bench snapshot files (default: ./BENCH_*.json)")
    ap.add_argument("--append", action="store_true",
                    help="record the current snapshots as a new ledger "
                         "entry first")
    ap.add_argument("--note", default="", metavar="TEXT",
                    help="free-form provenance note for --append "
                         "(e.g. a commit hash)")
    ap.add_argument("--source", default="local", metavar="NAME",
                    help="entry source label for --append (default: local)")
    ap.add_argument("--html", default=None, metavar="OUT",
                    help="also write the sparkline dashboard to OUT")
    ap.add_argument("--json", action="store_true",
                    help="dump the merged trajectory as JSON instead of "
                         "the text report")
    ap.add_argument("--top", type=int, default=20, metavar="N",
                    help="show at most N delta rows (default: 20)")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    metavar="FRAC",
                    help="relative move that counts as a regression "
                         f"(default: {DEFAULT_THRESHOLD})")
    return ap


def main(argv=None):
    args = build_parser().parse_args(argv)

    bench_paths = (args.bench if args.bench is not None
                   else find_bench_files())
    if args.append:
        entry = append_entry(args.ledger, bench_paths, note=args.note,
                             source=args.source, dedup=True)
        if entry is None:
            print(f"skipped append: snapshots identical to the last "
                  f"{args.source!r} entry in {args.ledger}")
        else:
            print(f"appended entry ({len(entry['results'])} benchmarks) "
                  f"to {args.ledger}")
        entries = load_history(args.ledger)
    else:
        entries = merged_entries(args.ledger, bench_paths)

    if args.json:
        print(json.dumps({"schema": SCHEMA, "entries": len(entries),
                          "trajectory": trajectory(entries)},
                         indent=1, sort_keys=True))
    else:
        print(format_report(entries, top=args.top,
                            threshold=args.threshold))
    if args.html:
        n = render_html(entries, args.html, threshold=args.threshold)
        print(f"wrote {n}-row dashboard to {args.html}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
