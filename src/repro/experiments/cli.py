"""Command-line entry point: ``bigvlittle <experiment> [--scale S] [--jobs N]``.

Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table2..table7 all

``--jobs N`` fans each experiment's simulation sweep out over N worker
processes; results land in the persistent cache under ``results/cache/``
(override with ``$BIGVLITTLE_CACHE_DIR``), so an interrupted or repeated
invocation resumes instead of re-simulating.  ``bigvlittle all --jobs N``
is therefore one resumable, parallel full-paper reproduction.

Cache maintenance: ``bigvlittle cache stats`` / ``bigvlittle cache clear``
/ ``bigvlittle cache prune --max-bytes N`` (LRU by file mtime, across all
shards).

Sweep service: ``bigvlittle serve [--port P] [--workers N]
[--cache-root DIR]`` runs the async job queue + sharded cache + HTTP
results API documented in ``docs/service.md``.

Observability (see ``docs/observability.md``):

* ``bigvlittle trace <workload> --out trace.json`` — run one workload with
  the :mod:`repro.obs` tracer attached and export a Chrome ``trace_event``
  JSON (load it at https://ui.perfetto.dev).
* ``bigvlittle profile <workload> [--json PATH]`` — same run, printed as a
  per-unit cycle-attribution stall table; ``--json`` writes the canonical
  machine-readable run dump instead (the input of ``bigvlittle diff``).
* ``bigvlittle pipeview <workload> --out pipe.kanata`` — instruction-grain
  pipeline lifecycle trace in Konata (``--format kanata``) or gem5
  O3PipeView (``--format o3``) text.
* ``bigvlittle timeline <workload> --out timeline.csv`` — interval
  time-series (IPC, stall mix, occupancies, MPKI, DRAM bandwidth) as CSV
  or JSON (by extension), optionally plus Chrome counter tracks. With
  ``--energy`` each interval also carries Table-VII power and energy
  columns (``--big``/``--little`` pick the DVFS levels).
* ``bigvlittle phases <workload>`` — segment the sampled timeline into
  scalar / mode-switch / vector-burst / drain phases with per-phase stall
  mixes (and energy under ``--energy``); ``--json`` writes the
  ``bigvlittle-phases-v1`` report.
* ``bigvlittle hostprof <workload> [--json PATH] [--top N]`` — run one
  workload with a :class:`~repro.obs.host.HostScope` attached and report
  where the *simulator* spends host wall-time, per unit group
  (``bigvlittle-hostprof-v1``). This is the measurement behind the
  ROADMAP's vectorized-lane-execution plan: the biggest host share is
  what to batch next.
* ``bigvlittle critpath <workload> [--json PATH]`` — the dual of
  ``hostprof``: attribute every advance of *simulated* time to the unit
  group whose armed event gated it, plus the wakeup-graph profile
  (``bigvlittle-critpath-v1``). The per-group critical sim-times tile
  the total simulated time exactly.
* ``bigvlittle inspect <workload> [--at-ns N] [--json PATH]`` — the
  deadlock-forensics snapshot (``bigvlittle-forensics-v1``) on demand:
  every unit's scheduling state, the wait-for graph with cycle
  detection, and the blocking frontier, taken at the ``--at-ns``
  horizon (or at completion). The same report rides on every
  ``DeadlockError`` as ``err.forensics``.
* ``bigvlittle diff a.json b.json [--gate]`` — classified stat diff of two
  run dumps; under ``--gate`` any exact mismatch or out-of-tolerance
  timing delta exits nonzero (the CI regression gate). ``--tolerances``
  loads a per-stat-family tolerance schema (see
  ``benchmarks/diff_tolerances.json``) in place of the flat ``--rel-tol``;
  ``--timeline`` diffs two timeline dumps instead, localizing the first
  out-of-tolerance cycle per column.

All obs verbs always simulate fresh (never read or write the result
cache: attaching an Observation adds ``obs.*`` keys that must not leak
into cached results).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import ablations, figures, tables
from repro.experiments.cache import configure, get_cache

_FIGS = {
    "fig4": (figures.fig4, figures.print_fig4),
    "fig5": (figures.fig5, lambda d: figures.print_normalized(d, "ifetch / 1bDV")),
    "fig6": (figures.fig6, lambda d: figures.print_normalized(d, "data reqs / 1bDV")),
    "fig7": (figures.fig7, figures.print_fig7),
    "fig8": (figures.fig8, figures.print_fig8),
    "fig9": (figures.fig9, figures.print_fig9),
    "fig10": (figures.fig10, figures.print_fig10),
    "fig11": (figures.fig11, figures.print_fig11),
}

_ABLATIONS = {
    "ablate-scaling": ablations.cluster_scaling,
    "ablate-switch": ablations.switch_penalty,
    "ablate-vxu": ablations.vxu_topology,
    "ablate-coalesce": ablations.coalesce_width,
    "ablate-dram": ablations.dram_bandwidth,
    "ablate-graphs": ablations.graph_topology,
    "ablate-regions": ablations.region_granularity,
}

_TABLES = {
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6_data,
    "table7": tables.table7,
}


def _experiments_parser():
    parser = argparse.ArgumentParser(
        prog="bigvlittle",
        description="Regenerate big.VLITTLE (MICRO 2022) evaluation results",
        epilog="Result-cache maintenance: bigvlittle cache {stats,clear,prune}",
    )
    parser.add_argument("experiment",
                    choices=sorted(_FIGS) + sorted(_TABLES) + sorted(_ABLATIONS) + ["all"])
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="simulate each experiment's sweep on N worker "
                             "processes (default: serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely (no reads, "
                             "no writes)")
    parser.add_argument("--json", action="store_true", help="dump raw data as JSON")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render the figure(s) as SVG into DIR")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="append structured sweep-telemetry events "
                             "(JSONL) to PATH: run/cache/worker events with "
                             "config-hash provenance")
    parser.add_argument("--sweep-trace", metavar="PATH", default=None,
                        help="write a Chrome trace of the sweep (one track "
                             "per worker process; open at "
                             "https://ui.perfetto.dev)")
    return parser


def main(argv=None):
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] in ("trace", "profile", "pipeview", "timeline",
                            "phases"):
        return _obs_main(argv[0], argv[1:])
    if argv and argv[0] == "hostprof":
        return _hostprof_main(argv[1:])
    if argv and argv[0] == "critpath":
        return _critpath_main(argv[1:])
    if argv and argv[0] == "inspect":
        return _inspect_main(argv[1:])
    if argv and argv[0] == "bench-history":
        return _bench_history_main(argv[1:])
    if argv and argv[0] == "diff":
        return _diff_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])

    args = _experiments_parser().parse_args(argv)

    if args.no_cache:
        configure(enabled=False)
    cache = get_cache()
    tel = None
    if args.telemetry or args.sweep_trace:
        from repro.experiments import telemetry

        tel = telemetry.enable(path=args.telemetry)

    names = sorted(_FIGS) + sorted(_TABLES) if args.experiment == "all" else [args.experiment]
    t_all = time.time()
    for name in names:
        t0 = time.time()
        h0, m0 = cache.hits, cache.misses
        print(f"== {name} (scale={args.scale}) ==")
        if name in _FIGS:
            fn, pr = _FIGS[name]
            data = fn(scale=args.scale, jobs=args.jobs)
        elif name in _ABLATIONS:
            data = _ABLATIONS[name](jobs=args.jobs)
            pr = None
        else:
            data = _TABLES[name](scale=args.scale, jobs=args.jobs)
            pr = None
        if args.svg and name in _FIGS:
            from repro.experiments.render import render

            paths = render(name, data, args.svg)
            print(f"svg: {paths}")
        if args.json:
            print(json.dumps(_jsonable(data), indent=2))
        elif pr is not None:
            pr(data)
        else:
            print(json.dumps(_jsonable(data), indent=2))
        note = ""
        if cache.enabled:
            note = (f" (cache: {cache.hits - h0} hits, "
                    f"{cache.misses - m0} misses)")
        print(f"-- {name} done in {time.time() - t0:.1f}s{note}\n")
    if len(names) > 1:
        st = cache.stats()
        print(f"== all done in {time.time() - t_all:.1f}s; cache now holds "
              f"{st['disk_entries']} results "
              f"({st['disk_bytes'] / 1024:.0f} KiB) in {st['dir']} ==")
    if tel is not None:
        if args.sweep_trace:
            n = tel.write_chrome_trace(args.sweep_trace)
            print(f"wrote sweep trace ({n} events, "
                  f"{len({s['worker'] for s in tel.spans})} worker tracks) "
                  f"to {args.sweep_trace}")
        if args.telemetry:
            print(f"appended {len(tel.events)} telemetry events "
                  f"to {args.telemetry}")
        from repro.experiments import telemetry

        telemetry.disable()
    return 0


_OBS_DESCRIPTIONS = {
    "trace": "Export a Chrome trace_event JSON for one run",
    "profile": "Print a per-unit cycle-attribution stall table for one run",
    "pipeview": "Export an instruction-grain pipeline trace (Konata / "
                "gem5 O3PipeView) for one run",
    "timeline": "Export interval time-series (IPC, stall mix, occupancies, "
                "MPKI, DRAM bandwidth, optionally power/energy) for one run",
    "phases": "Segment one run's sampled timeline into scalar / mode-switch "
              "/ vector-burst / drain phases",
}


def _obs_parser(verb):
    ap = argparse.ArgumentParser(
        prog=f"bigvlittle {verb}", description=_OBS_DESCRIPTIONS[verb])
    ap.add_argument("workload", help="workload name, e.g. saxpy, mmult, bfs")
    ap.add_argument("--system", default="1b-4VL",
                    help="system preset (default: 1b-4VL)")
    ap.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    if verb == "trace":
        ap.add_argument("--out", default="trace.json", metavar="PATH",
                        help="output path (default: trace.json)")
        ap.add_argument("--max-events", type=int, default=1_000_000,
                        help="trace ring-buffer capacity (oldest events drop)")
    elif verb == "profile":
        ap.add_argument("--top", type=int, default=None, metavar="N",
                        help="only show the N most-stalled units")
        ap.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="write the canonical run dump as JSON to PATH "
                             "('-' or no value: stdout) instead of the table")
    elif verb == "pipeview":
        ap.add_argument("--out", default="pipe.kanata", metavar="PATH",
                        help="output path (default: pipe.kanata)")
        ap.add_argument("--format", choices=("kanata", "o3"), default=None,
                        help="output format (default: o3 if PATH contains "
                             "'o3', else kanata)")
        ap.add_argument("--window", type=int, default=50_000,
                        help="retired-instruction window; older records drop")
    else:  # timeline / phases: both drive an IntervalSampler
        if verb == "timeline":
            ap.add_argument("--out", default="timeline.csv", metavar="PATH",
                            help="output path; .json extension switches the "
                                 "format to columnar JSON (default: "
                                 "timeline.csv)")
            ap.add_argument("--trace", default=None, metavar="PATH",
                            help="also write a Chrome trace JSON whose "
                                 "'sampler' process carries the series as "
                                 "counter tracks")
            default_interval = 1000
        else:
            ap.add_argument("--json", default=None, metavar="PATH",
                            help="write the bigvlittle-phases-v1 report as "
                                 "JSON instead of printing the table")
            ap.add_argument("--min-intervals", type=int, default=2, metavar="N",
                            help="merge phases shorter than N samples into a "
                                 "neighbor (default: 2)")
            default_interval = 100
        ap.add_argument("--interval", type=int, default=default_interval,
                        metavar="CYCLES",
                        help="sample interval in 1 GHz cycles "
                             f"(default: {default_interval})")
        ap.add_argument("--energy", action="store_true",
                        help="add Table-VII power/energy columns (big-cluster "
                             "W, engine W, interval J, cumulative J)")
        ap.add_argument("--big", default="b1", metavar="LEVEL",
                        help="big-core DVFS level for --energy (default: b1)")
        ap.add_argument("--little", default="l1", metavar="LEVEL",
                        help="little-core DVFS level for --energy "
                             "(default: l1)")
    return ap


def _obs_main(verb, argv):
    args = _obs_parser(verb).parse_args(argv)

    from repro.experiments.runner import _program_for
    from repro.obs import IntervalSampler, Observation, PipeView
    from repro.soc import System, preset
    from repro.workloads import get_workload

    cfg = preset(args.system)
    program = _program_for(cfg, get_workload(args.workload, args.scale))
    if verb == "trace":
        obs = Observation(max_events=args.max_events)
    elif verb == "pipeview":
        obs = Observation(pipeview=PipeView(window=args.window))
    elif verb in ("timeline", "phases"):
        energy = (args.big, args.little) if args.energy else None
        obs = Observation(sampler=IntervalSampler(interval=args.interval,
                                                  energy=energy))
    elif verb == "profile" and args.json is not None:
        # the canonical run dump folds in a phase report, so every profile
        # dump carries the phase structure alongside the flat stats
        obs = Observation(sampler=IntervalSampler(interval=100))
    else:
        obs = Observation()
    t0 = time.time()
    result = System(cfg).run(program, obs=obs)
    wall = time.time() - t0
    quiet_json = verb == "profile" and args.json == "-"
    if not quiet_json:
        print(f"== {args.workload}@{args.scale} on {args.system}: "
              f"{result.cycles} cycles (1 GHz), simulated in {wall:.1f}s ==")
    if verb == "trace":
        n = obs.write_chrome_trace(args.out)
        note = f", {obs.tracer.dropped} dropped" if obs.tracer.dropped else ""
        print(f"wrote {n} events to {args.out}{note} "
              f"(open at https://ui.perfetto.dev)")
    elif verb == "pipeview":
        pv = obs.pipeview
        fmt = args.format or ("o3" if "o3" in args.out.lower() else "kanata")
        if fmt == "o3":
            n = pv.write_o3pipeview(args.out)
            viewer = "gem5 util/o3-pipeview.py or Konata"
        else:
            n = pv.write_kanata(args.out)
            viewer = "Konata (https://github.com/shioyadan/Konata)"
        note = f", {pv.dropped} dropped" if pv.dropped else ""
        print(f"wrote {n} instruction records to {args.out}{note} "
              f"(open in {viewer})")
    elif verb == "timeline":
        sampler = obs.sampler
        if args.out.lower().endswith(".json"):
            n = sampler.to_json(args.out)
        else:
            n = sampler.to_csv(args.out)
        note = (f" with energy columns ({args.big}/{args.little})"
                if args.energy else "")
        print(f"wrote {n} samples ({sampler.interval}-cycle interval){note} "
              f"to {args.out}")
        if args.trace:
            obs.write_chrome_trace(args.trace)
            print(f"wrote counter tracks to {args.trace} "
                  f"(open at https://ui.perfetto.dev)")
    elif verb == "phases":
        from repro.obs.phases import PhaseThresholds, detect_phases

        report = detect_phases(
            obs.sampler,
            PhaseThresholds(min_intervals=args.min_intervals))
        if args.json:
            report.to_json(args.json)
            print(f"wrote {len(report)}-phase report to {args.json}")
        else:
            print(report.format_table())
    elif args.json is not None:
        from repro.obs.diff import dump_result
        from repro.obs.phases import detect_phases

        doc = dump_result(result, extra={
            "workload": args.workload,
            "scale": args.scale,
            "phases": detect_phases(obs.sampler).as_dict(),
        })
        text = json.dumps(doc, indent=1, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(text + "\n")
            print(f"wrote run dump ({len(doc['stats'])} stats) to {args.json}")
    else:
        print(obs.profile_table(top=args.top))
    return 0


def _hostprof_parser():
    ap = argparse.ArgumentParser(
        prog="bigvlittle hostprof",
        description="Attribute host wall-time of one run to per-component "
                    "unit groups: where does the simulator itself spend "
                    "time? (bigvlittle-hostprof-v1)")
    ap.add_argument("workload", help="workload name, e.g. saxpy, mmult, bfs")
    ap.add_argument("--system", default="1b-4VL",
                    help="system preset (default: 1b-4VL)")
    ap.add_argument("--scale", default="small",
                    choices=("tiny", "small", "full"))
    ap.add_argument("--stride", type=int, default=1, metavar="N",
                    help="time only every N-th dispatch per group "
                         "(extrapolated; default: 1 = time everything)")
    ap.add_argument("--top", type=int, default=None, metavar="N",
                    help="only show the N largest groups")
    ap.add_argument("--json", nargs="?", const="-", default=None,
                    metavar="PATH",
                    help="write the bigvlittle-hostprof-v1 report as JSON to "
                         "PATH ('-' or no value: stdout) instead of the table")
    return ap


def _hostprof_main(argv):
    args = _hostprof_parser().parse_args(argv)

    import repro
    from repro.experiments.runner import _program_for
    from repro.obs import HostScope
    from repro.soc import System, preset
    from repro.workloads import get_workload

    # like the obs verbs, always simulate fresh: a hostscoped run's
    # timings are host-machine facts, never cache material
    cfg = preset(args.system)
    program = _program_for(cfg, get_workload(args.workload, args.scale))
    hs = HostScope(stride=args.stride)
    t0 = time.time()
    result = System(cfg).run(program, hostscope=hs)
    wall = time.time() - t0
    meta = {
        "workload": args.workload,
        "system": args.system,
        "scale": args.scale,
        "loop": "event",
        "sim_version": repro.__version__,
        "cycles": result.cycles,
    }
    if args.json is not None:
        doc = hs.report(meta=meta)
        if args.json == "-":
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            hs.write_json(args.json, meta=meta)
            print(f"wrote hostprof report ({len(doc['groups'])} groups, "
                  f"coverage {doc['coverage'] * 100:.1f}%) to {args.json}")
        return 0
    print(f"== {args.workload}@{args.scale} on {args.system}: "
          f"{result.cycles} cycles (1 GHz), simulated in {wall:.1f}s ==")
    print(hs.format_table(top=args.top))
    return 0


def _critpath_parser():
    ap = argparse.ArgumentParser(
        prog="bigvlittle critpath",
        description="Attribute every advance of simulated time in one run "
                    "to the unit group whose armed event gated it, plus the "
                    "wakeup-graph profile (bigvlittle-critpath-v1)")
    ap.add_argument("workload", help="workload name, e.g. saxpy, mmult, bfs")
    ap.add_argument("--system", default="1b-4VL",
                    help="system preset (default: 1b-4VL)")
    ap.add_argument("--scale", default="small",
                    choices=("tiny", "small", "full"))
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="show at most N wakeup seams (default: 10)")
    ap.add_argument("--json", nargs="?", const="-", default=None,
                    metavar="PATH",
                    help="write the bigvlittle-critpath-v1 report as JSON to "
                         "PATH ('-' or no value: stdout) instead of the table")
    return ap


def _critpath_main(argv):
    args = _critpath_parser().parse_args(argv)

    import repro
    from repro.experiments.runner import _program_for
    from repro.obs import CritPath
    from repro.soc import System, preset
    from repro.workloads import get_workload

    # always simulate fresh: like every obs verb, the attribution is a
    # property of one live event-core schedule, never cache material
    cfg = preset(args.system)
    program = _program_for(cfg, get_workload(args.workload, args.scale))
    cp = CritPath()
    t0 = time.time()
    result = System(cfg).run(program, critpath=cp)
    wall = time.time() - t0
    meta = {
        "workload": args.workload,
        "system": args.system,
        "scale": args.scale,
        "loop": "event",
        "sim_version": repro.__version__,
        "cycles": result.cycles,
    }
    if args.json is not None:
        doc = cp.report(meta=meta)
        if args.json == "-":
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            cp.write_json(args.json, meta=meta)
            print(f"wrote critpath report ({len(doc['groups'])} groups, "
                  f"{doc['wakeup_edges']} wakeup edges) to {args.json}")
        return 0
    print(f"== {args.workload}@{args.scale} on {args.system}: "
          f"{result.cycles} cycles (1 GHz), simulated in {wall:.1f}s ==")
    print(cp.format_table(top=args.top))
    return 0


def _inspect_parser():
    ap = argparse.ArgumentParser(
        prog="bigvlittle inspect",
        description="Snapshot every unit's scheduling state — the "
                    "wait-for graph, cycles, and blocking frontier — at an "
                    "--at-ns horizon or at completion "
                    "(bigvlittle-forensics-v1; the same report every "
                    "DeadlockError carries as err.forensics)")
    ap.add_argument("workload", help="workload name, e.g. saxpy, mmult, bfs")
    ap.add_argument("--system", default="1b-4VL",
                    help="system preset (default: 1b-4VL)")
    ap.add_argument("--scale", default="small",
                    choices=("tiny", "small", "full"))
    ap.add_argument("--at-ns", type=int, default=None, metavar="N",
                    help="stop the run at N simulated ns and snapshot there "
                         "(default: run to completion and snapshot the end "
                         "state)")
    ap.add_argument("--json", nargs="?", const="-", default=None,
                    metavar="PATH",
                    help="write the bigvlittle-forensics-v1 report as JSON "
                         "to PATH ('-' or no value: stdout) instead of the "
                         "text rendering")
    return ap


def _inspect_main(argv):
    args = _inspect_parser().parse_args(argv)

    from repro.errors import DeadlockError
    from repro.experiments.runner import _program_for
    from repro.obs.forensics import format_report, snapshot, write_json
    from repro.soc import System, preset
    from repro.workloads import get_workload

    cfg = preset(args.system)
    program = _program_for(cfg, get_workload(args.workload, args.scale))
    system = System(cfg)
    run_kwargs = {} if args.at_ns is None else {"max_ns": args.at_ns}
    try:
        result = system.run(program, **run_kwargs)
    except DeadlockError as e:
        # the horizon (or a genuine deadlock) fired: its attached report
        # IS the requested snapshot
        report = e.forensics
        if report is None:  # pragma: no cover - snapshot seam failed
            raise
    else:
        report = snapshot(system, result.stats["time_ps"], reason="completed")
    if args.json is not None:
        if args.json == "-":
            print(json.dumps(report, indent=1, sort_keys=True))
        else:
            write_json(report, args.json)
            print(f"wrote forensics snapshot ({len(report['units'])} units, "
                  f"{len(report['wait_for'])} wait edges) to {args.json}")
        return 0
    print(format_report(report))
    return 0


def _bench_history_main(argv):
    from repro.experiments.benchhistory import main as bh_main

    return bh_main(argv)


def _diff_parser():
    ap = argparse.ArgumentParser(
        prog="bigvlittle diff",
        description="Classified stat diff of two run dumps (see bigvlittle "
                    "profile --json), or — with --timeline — a cycle-aligned "
                    "diff of two timeline dumps")
    ap.add_argument("a", help="baseline dump (JSON)")
    ap.add_argument("b", help="candidate dump (JSON)")
    ap.add_argument("--timeline", action="store_true",
                    help="inputs are bigvlittle-timeline-v1 dumps; align "
                         "rows on cycle values and report where each column "
                         "first leaves tolerance")
    ap.add_argument("--gate", action="store_true",
                    help="exit nonzero on any exact mismatch, missing "
                         "non-obs key, or out-of-tolerance timing delta")
    ap.add_argument("--rel-tol", type=float, default=0.0, metavar="FRAC",
                    help="flat relative tolerance for timing-class deltas "
                         "(default: 0.0 — bit-identical)")
    ap.add_argument("--tolerances", default=None, metavar="PATH",
                    help="bigvlittle-tolerances-v1 JSON of per-stat-family "
                         "tolerances (e.g. benchmarks/diff_tolerances.json); "
                         "overrides --rel-tol")
    ap.add_argument("--top", type=int, default=25, metavar="N",
                    help="show at most N deltas (default: 25)")
    return ap


def _diff_main(argv):
    args = _diff_parser().parse_args(argv)

    from repro.obs.diff import ToleranceSchema, diff_files, diff_timeline_files

    tol = ToleranceSchema.load(args.tolerances) if args.tolerances else None
    if args.timeline:
        if tol is None and args.rel_tol:
            tol = ToleranceSchema(default_rel_tol=args.rel_tol, name="flat")
        report = diff_timeline_files(args.a, args.b, tolerances=tol)
        print(report.format_table(top=args.top))
        if args.gate and not report.ok():
            print(f"GATE FAILED: {len(report.diverged())} columns out of "
                  f"tolerance")
            return 1
        return 0
    report = diff_files(args.a, args.b)
    print(report.format_table(top=args.top, rel_tol=args.rel_tol,
                              tolerances=tol))
    if args.gate and not report.ok(args.rel_tol, tolerances=tol):
        n = (len(report.regressions(args.rel_tol, tolerances=tol))
             + len(report._gated_missing()))
        policy = f"tolerances={tol.name}" if tol else f"rel_tol={args.rel_tol}"
        print(f"GATE FAILED: {n} gated deltas ({policy})")
        return 1
    return 0


def _cache_parser():
    ap = argparse.ArgumentParser(
        prog="bigvlittle cache",
        description="Inspect, empty, or LRU-prune the persistent result "
                    "cache")
    ap.add_argument("action", choices=("stats", "clear", "prune"))
    ap.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="prune: evict least-recently-used entries (by file "
                         "mtime, across all shards) until the cache holds at "
                         "most N bytes")
    return ap


def _cache_main(argv):
    args = _cache_parser().parse_args(argv)
    cache = get_cache()
    if args.action == "clear":
        st = cache.stats()
        cache.clear()
        print(f"cleared {st['disk_entries']} cached results "
              f"({st['disk_bytes'] / 1024:.0f} KiB) from {st['dir']}")
    elif args.action == "prune":
        if args.max_bytes is None:
            print("cache prune requires --max-bytes N", file=sys.stderr)
            return 2
        out = cache.prune(args.max_bytes)
        print(f"pruned {out['removed']} cached results "
              f"({out['bytes_freed'] / 1024:.0f} KiB); cache now holds "
              f"{out['disk_bytes'] / 1024:.0f} KiB "
              f"(limit {args.max_bytes / 1024:.0f} KiB)")
    else:
        for k, v in cache.stats().items():
            print(f"{k:16s} {v}")
    return 0


def _serve_parser():
    ap = argparse.ArgumentParser(
        prog="bigvlittle serve",
        description="Run the sweep service: an async job queue and worker "
                    "pool over the sharded result cache, fronted by the "
                    "bigvlittle-service-v1 HTTP/JSON API "
                    "(see docs/service.md)")
    ap.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    ap.add_argument("--port", type=int, default=8421,
                    help="TCP port; 0 picks a free one (default: 8421)")
    ap.add_argument("--workers", type=int, default=2, metavar="N",
                    help="job-queue worker threads (default: 2)")
    ap.add_argument("--cache-root", default="results", metavar="DIR",
                    help="service state root: cache/, artifacts/, and the "
                         "service/jobs.jsonl journal live under it "
                         "(default: results)")
    ap.add_argument("--shards", type=int, default=2, metavar="N",
                    help="hex-prefix length sharding cache and artifact "
                         "dirs (default: 2 = 256-way)")
    ap.add_argument("--runner-jobs", type=int, default=1, metavar="N",
                    help="simulation processes per worker's ParallelRunner "
                         "sweep (default: 1 = in-process)")
    ap.add_argument("--batch", type=int, default=4, metavar="N",
                    help="max queued jobs one worker claims per sweep "
                         "(default: 4)")
    ap.add_argument("--max-retries", type=int, default=2, metavar="N",
                    help="re-queue a crashed job at most N times before "
                         "marking it failed (default: 2)")
    ap.add_argument("--telemetry", metavar="PATH", default=None,
                    help="append job_*/cache_*/run_* telemetry events "
                         "(JSONL) to PATH while serving")
    return ap


def _serve_main(argv):
    args = _serve_parser().parse_args(argv)

    import signal

    from repro.service import ServiceApp

    app = ServiceApp(cache_root=args.cache_root, host=args.host,
                     port=args.port, workers=args.workers,
                     shards=args.shards, runner_jobs=args.runner_jobs,
                     batch=args.batch, max_retries=args.max_retries,
                     telemetry_path=args.telemetry)
    app.start()
    print(f"sweep service on http://{args.host}:{app.port} "
          f"({args.workers} workers, cache root {args.cache_root}) — "
          f"Ctrl-C drains and exits")
    stop = {"flag": False}

    def _sigterm(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        while not stop["flag"]:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    print("draining in-flight jobs ...")
    app.stop(drain=True)
    st = app.queue.stats()
    print(f"stopped: {st['counters']['done']} jobs done, "
          f"{st['counters']['failed']} failed, "
          f"{st['pending']} still queued for the next start")
    return 0


#: every named verb `bigvlittle <verb> ...` dispatches on (the bare
#: `bigvlittle <experiment>` form is the "" entry of the registry)
NAMED_VERBS = ("cache", "serve", "trace", "profile", "pipeview", "timeline",
               "phases", "hostprof", "critpath", "inspect", "bench-history",
               "diff")


def cli_registry():
    """Verb -> fully built ``ArgumentParser`` for the whole CLI surface.

    ``tools/docs_check.py`` walks this to cross-check the documentation:
    every verb and flag the docs mention must exist here, and every verb
    here must appear in the docs.  The ``""`` entry is the positional
    experiment parser (``bigvlittle fig7 --jobs 4 ...``).
    """
    from repro.experiments.benchhistory import build_parser as bh_parser

    registry = {
        "": _experiments_parser(),
        "cache": _cache_parser(),
        "serve": _serve_parser(),
        "hostprof": _hostprof_parser(),
        "critpath": _critpath_parser(),
        "inspect": _inspect_parser(),
        "bench-history": bh_parser(),
        "diff": _diff_parser(),
    }
    for verb in _OBS_DESCRIPTIONS:
        registry[verb] = _obs_parser(verb)
    assert set(registry) - {""} == set(NAMED_VERBS)
    return registry


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    return obj


if __name__ == "__main__":
    sys.exit(main())
