"""Command-line entry point: ``bigvlittle <experiment> [--scale S]``.

Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table2..table7 all
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import ablations, figures, tables

_FIGS = {
    "fig4": (figures.fig4, figures.print_fig4),
    "fig5": (figures.fig5, lambda d: figures.print_normalized(d, "ifetch / 1bDV")),
    "fig6": (figures.fig6, lambda d: figures.print_normalized(d, "data reqs / 1bDV")),
    "fig7": (figures.fig7, figures.print_fig7),
    "fig8": (figures.fig8, figures.print_fig8),
    "fig9": (figures.fig9, figures.print_fig9),
    "fig10": (figures.fig10, figures.print_fig10),
    "fig11": (figures.fig11, figures.print_fig11),
}

_ABLATIONS = {
    "ablate-scaling": ablations.cluster_scaling,
    "ablate-switch": ablations.switch_penalty,
    "ablate-vxu": ablations.vxu_topology,
    "ablate-coalesce": ablations.coalesce_width,
    "ablate-dram": ablations.dram_bandwidth,
    "ablate-graphs": ablations.graph_topology,
    "ablate-regions": ablations.region_granularity,
}

_TABLES = {
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6_data,
    "table7": tables.table7,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bigvlittle",
        description="Regenerate big.VLITTLE (MICRO 2022) evaluation results",
    )
    parser.add_argument("experiment",
                    choices=sorted(_FIGS) + sorted(_TABLES) + sorted(_ABLATIONS) + ["all"])
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    parser.add_argument("--json", action="store_true", help="dump raw data as JSON")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render the figure(s) as SVG into DIR")
    args = parser.parse_args(argv)

    names = sorted(_FIGS) + sorted(_TABLES) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        print(f"== {name} (scale={args.scale}) ==")
        if name in _FIGS:
            fn, pr = _FIGS[name]
            data = fn(scale=args.scale)
        elif name in _ABLATIONS:
            data = _ABLATIONS[name]()
            pr = None
        else:
            data = _TABLES[name]()
            pr = None
        if args.svg and name in _FIGS:
            from repro.experiments.render import render

            paths = render(name, data, args.svg)
            print(f"svg: {paths}")
        if args.json:
            print(json.dumps(_jsonable(data), indent=2))
        elif pr is not None:
            pr(data)
        else:
            print(json.dumps(_jsonable(data), indent=2))
        print(f"-- {name} done in {time.time() - t0:.1f}s\n")
    return 0


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    return obj


if __name__ == "__main__":
    sys.exit(main())
