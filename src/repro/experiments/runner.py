"""Run (system, workload) pairs the way the paper's methodology maps them.

The mapping (paper §IV):

* kernels & data-parallel apps — single-threaded scalar on ``1L``/``1b``;
  RVV single-threaded (strip-mined for the system's VLEN) on
  ``1bIV``/``1bDV``/``1b-4VL``; work-stealing task program with per-task
  scalar *and* vector bodies on ``1bIV-4L`` (the big core runs vector tasks
  through the IVU); scalar-only task program on ``1b-4L``.
* task-parallel (Ligra) apps — scalar single-threaded on the single-core
  systems (``1bDV``/``1bIV`` can only use their big core: the engines are
  useless for irregular code); work-stealing task program on the multicore
  systems (``1b-4VL`` runs it in scalar mode, identically to ``1b-4L``).

Results are memoized per full canonical config + workload identity through
:mod:`repro.experiments.cache` (an in-memory dict backed by a persistent
on-disk store), so the figure generators share runs within a process *and*
across harness invocations.
"""

from __future__ import annotations

import time

from repro.errors import ConfigError
from repro.experiments import telemetry
from repro.experiments.cache import SIM_VERSION, get_cache
from repro.soc import System, preset
from repro.workloads import REGISTRY, get_workload

#: chunks for data-parallel task decomposition: fine enough that the slow
#: little cores never hold a long critical path (Cilk-style grain sizing)
DATA_PARALLEL_CHUNKS = 48


def clear_cache():
    get_cache().clear()


def _program_for(cfg, workload):
    kind = workload.kind
    name = cfg.name
    if kind == "synthetic":
        # phase-structure microbenchmarks always run as one trace: the
        # vectorized view where the system has an engine, scalar otherwise
        vlen = cfg.vlen_bits(4)
        return workload.vector_trace(vlen) if vlen else workload.scalar_trace()
    if kind in ("kernel", "data-parallel"):
        if name in ("1L", "1b"):
            return workload.scalar_trace()
        if name in ("1bIV", "1bDV", "1b-4VL"):
            return workload.vector_trace(cfg.vlen_bits(4))
        if name == "1bIV-4L":
            return workload.task_program(vector_vlen=cfg.vlen_bits(4),
                                         n_chunks=DATA_PARALLEL_CHUNKS)
        if name == "1b-4L":
            return workload.task_program(n_chunks=DATA_PARALLEL_CHUNKS)
        raise ConfigError(f"no mapping for system {name}")
    # task-parallel
    if name in ("1L", "1b", "1bIV", "1bDV"):
        return workload.scalar_trace()
    return workload.task_program()


def run_pair(system_name, workload_name, scale="small", cfg=None, use_cache=True,
             cache=None, **cfg_overrides):
    """Simulate one (system, workload) pair; returns a RunResult.

    The cache key is a content hash of the *entire* serialized config (see
    :meth:`SoCConfig.canonical_json`) plus the workload identity and the
    simulator version — any ``cfg_overrides``-reachable field change, down
    to individual ``cfg.mem`` parameters, produces a distinct key.
    """
    if cfg is None:
        cfg = preset(system_name, **cfg_overrides)
    cache = cache if cache is not None else get_cache()
    key = cache.key_for(cfg, workload_name, scale)
    if use_cache:
        hit = cache.get(key)
        if hit is not None:
            return hit
    workload = get_workload(workload_name, scale)
    program = _program_for(cfg, workload)
    tel = telemetry.current()
    if tel is not None:
        tel.event("run_start", key=key, system=system_name,
                  workload=workload_name, scale=scale,
                  sim_version=SIM_VERSION)
    t_start = time.time()
    result = System(cfg).run(program)
    t_end = time.time()
    if tel is not None:
        timing = result.timing
        tel.event("run_end", key=key,
                  wall_s=round(timing.get("wall_s", 0.0), 6),
                  sim_wall_s=round(timing.get("sim_wall_s",
                                              timing.get("wall_s", 0.0)), 6),
                  load_wall_s=round(timing.get("load_wall_s", 0.0), 6),
                  level="disk" if timing.get("from_cache") else "fresh",
                  cycles=result.cycles)
        tel.span("main", f"{system_name}/{workload_name}@{scale}",
                 t_start, t_end, key=key)
    if use_cache:
        cache.put(key, result)
    return result


def speedups_over_1l(workload_name, systems, scale="small"):
    """Fig. 4 metric: execution-time speedup of each system over ``1L``."""
    base = run_pair("1L", workload_name, scale)
    out = {}
    for s in systems:
        r = run_pair(s, workload_name, scale)
        out[s] = base.stats["time_ps"] / r.stats["time_ps"]
    return out
