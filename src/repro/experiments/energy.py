"""Quantitative energy comparison (extends the paper's qualitative §VII-A).

The paper argues big.VLITTLE is more energy-efficient than the big.LITTLE
baseline (fewer instruction and data memory accesses, higher performance at
similar power) and leaves detailed evaluation to future work. With the
Table VII power model and simulated execution times we can quantify it:
energy = average power x execution time, plus an energy-delay product (EDP)
view that rewards finishing fast.
"""

from __future__ import annotations

from repro.experiments.parallel import RunRequest, warm_cache
from repro.experiments.runner import run_pair
from repro.power import energy_j, system_power_w
from repro.utils import geomean
from repro.workloads import DATA_PARALLEL, KERNELS


def energy_table(scale="small", workloads=None,
                 systems=("1bIV-4L", "1bDV", "1b-4VL"), big="b1", little="l1",
                 jobs=None):
    """Per-workload energy (J) and EDP (J*s) at a fixed DVFS point."""
    if workloads is None:
        workloads = KERNELS + DATA_PARALLEL
    warm_cache([RunRequest(s, w, scale) for w in workloads for s in systems],
               jobs=jobs)
    out = {}
    for w in workloads:
        row = {}
        for s in systems:
            t_ps = run_pair(s, w, scale).stats["time_ps"]
            p = system_power_w(s, big, little)
            e = energy_j(t_ps, p)
            row[s] = {"time_ps": t_ps, "power_w": p, "energy_j": e,
                      "edp": e * t_ps * 1e-12}
        out[w] = row
    return out


def energy_summary(table):
    """Geomean energy and EDP ratios of 1b-4VL vs the baselines."""
    out = {}
    for other in ("1bIV-4L", "1bDV"):
        if not all(other in row and "1b-4VL" in row for row in table.values()):
            continue
        out[f"energy_{other}_over_4VL"] = geomean(
            [row[other]["energy_j"] / row["1b-4VL"]["energy_j"]
             for row in table.values()])
        out[f"edp_{other}_over_4VL"] = geomean(
            [row[other]["edp"] / row["1b-4VL"]["edp"] for row in table.values()])
    return out
