"""Regenerate the paper's tables (II, III, IV, V, VI, VII).

Tables are derived from configuration and analytical models — no simulation
runs — but every generator accepts the harness-uniform ``(scale, jobs)``
keyword pair so the CLI and report driver can invoke figures, tables, and
ablations through one code path.
"""

from __future__ import annotations

from repro.area import dve_area_estimate_kge, table6, vlittle_cluster_area_kge
from repro.power import BIG_LEVELS, LITTLE_LEVELS
from repro.soc import SYSTEM_NAMES, preset
from repro.workloads import DATA_PARALLEL, KERNELS, REGISTRY, TASK_PARALLEL


def table2(scale="small", jobs=None):
    """Simulated processor/memory parameters (inputs, from the preset)."""
    cfg = preset("1b-4VL")
    m = cfg.mem
    return {
        "big core": "4-wide OoO, 128-entry ROB, gshare",
        "little core": "single-issue in-order, bimodal",
        "L1I/L1D": f"{m.l1_size // 1024}KB {m.l1_assoc}-way, {m.l1_hit_latency}-cycle hit",
        "L2": f"{m.l2_size // 1024}KB {m.l2_assoc}-way, {m.l2_banks} banks, "
              f"{m.l2_latency}-cycle",
        "DRAM": f"{m.dram_latency}-cycle, 1 line / {m.dram_line_interval} cycles",
        "frequency": "1 GHz all clusters (scaled in Figs. 9-11)",
    }


def table3(scale="small", jobs=None):
    """Evaluated systems and their vector configuration."""
    out = {}
    for name in SYSTEM_NAMES:
        cfg = preset(name)
        out[name] = {
            "big": cfg.n_big,
            "little": cfg.n_little,
            "vector": cfg.vector,
            "vlen_bits": cfg.vlen_bits(4),
        }
    return out


def table4(scale="small", jobs=None):
    """Task-parallel applications (Ligra) and the study kernels."""
    return {
        "ligra": TASK_PARALLEL,
        "kernels": KERNELS,
    }


def table5(scale="small", jobs=None):
    """Data-parallel applications with their suites and VOp fraction."""
    return {
        n: {"suite": REGISTRY[n].suite, "vop": REGISTRY[n].vop_fraction}
        for n in DATA_PARALLEL
    }


def table6_data(scale="small", jobs=None):
    """Area comparison: 4L vs 4VL for both little-core RTL models, plus the
    Ara-referenced 1bDV estimate."""
    out = {}
    for core in ("simple", "ariane"):
        base, vl, ovh = table6(core)
        out[core] = {
            "4L_kum2": round(base.total, 1),
            "4VL_kum2": round(vl.total, 1),
            "overhead": round(ovh, 4),
            "components": {k: round(v, 1) for k, v in vl.components.items()},
        }
    out["1bDV_estimate"] = {
        "ara_engine_kge": dve_area_estimate_kge(),
        "4xariane_cluster_kge": vlittle_cluster_area_kge(),
    }
    return out


def table7(scale="small", jobs=None):
    """DVFS levels and average power (big column from the paper; little
    column reconstructed — see repro.power.dvfs)."""
    return {"big": dict(BIG_LEVELS), "little": dict(LITTLE_LEVELS)}
