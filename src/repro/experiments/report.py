"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Usage::

    python -m repro.experiments.report [--scale small] [--out EXPERIMENTS.md]
    python -m repro.experiments.report --from-json .fullrun.json

The report records, per experiment, the paper's qualitative/quantitative
claim and what this reproduction measures, so drift is visible at a glance.
"""

from __future__ import annotations

import argparse
import json

from repro.power import BIG_LEVELS, LITTLE_LEVELS
from repro.utils import geomean
from repro.workloads import DATA_PARALLEL, KERNELS, TASK_PARALLEL


def collect(scale="small", jobs=None):
    """Regenerate every experiment; with ``jobs > 1`` each figure's sweep is
    simulated in parallel, and the persistent result cache makes an
    interrupted full run resumable."""
    from repro.experiments import figures, tables

    return {
        "fig4": figures.fig4(scale=scale, jobs=jobs),
        "fig5": figures.fig5(scale=scale, jobs=jobs),
        "fig6": figures.fig6(scale=scale, jobs=jobs),
        "fig7": figures.fig7(scale=scale, jobs=jobs),
        "fig8": figures.fig8(scale=scale, jobs=jobs),
        "fig9": figures.fig9(scale=scale, jobs=jobs),
        "fig10": figures.fig10(scale=scale, jobs=jobs),
        "fig11": figures.fig11(scale=scale, jobs=jobs),
        "table6": tables.table6_data(scale=scale),
    }


def _norm_keys(d):
    """JSON round-trips tuple keys to strings; normalize access."""
    return d


def _f4_ratio(sp, num, den, wls):
    return geomean([sp[w][num] / sp[w][den] for w in wls if w in sp])


def render(data, scale):
    sp = data["fig4"]["speedups"]
    dp = [w for w in KERNELS + DATA_PARALLEL if w in sp]
    tp = [w for w in TASK_PARALLEL if w in sp]

    lines = []
    a = lines.append
    a("# EXPERIMENTS — paper vs. measured")
    a("")
    a(f"All measurements at input scale `{scale}` (reduced inputs; see DESIGN.md §2).")
    a("Absolute cycle counts differ from the paper's gem5 testbed by design;")
    a("every claim below is a *ratio*, which is what the reproduction checks.")
    a("")
    a("Regenerate: `python -m repro.experiments.report --scale small`")
    a("")
    a("Add `--jobs N` to simulate each sweep on N worker processes. Runs")
    a("persist in the on-disk result cache (`results/cache/`), so a killed")
    a("or repeated full-paper run resumes instead of re-simulating —")
    a("`bigvlittle cache stats` / `bigvlittle cache clear` manage the cache.")
    a("")

    # ----------------------------------------------------------------- fig4
    a("## Figure 4 — speedup over 1L")
    a("")
    r_dp = _f4_ratio(sp, "1b-4VL", "1bIV-4L", dp)
    r_dv = _f4_ratio(sp, "1bDV", "1b-4VL", dp)
    r_tp = _f4_ratio(sp, "1b-4VL", "1bDV", tp)
    a("| claim | paper | measured |")
    a("|---|---|---|")
    a(f"| data-parallel: 1b-4VL over area-equal 1bIV-4L (geomean) | 1.6x | {r_dp:.2f}x |")
    a(f"| data-parallel: 1bDV over 1b-4VL (geomean) | ~2x | {r_dv:.2f}x |")
    a(f"| task-parallel: 1b-4VL over 1bDV (geomean) | 1.7x | {r_tp:.2f}x |")
    eq = all(sp[w]["1b-4VL"] == sp[w]["1bIV-4L"] for w in tp)
    a(f"| task-parallel: 1b-4VL == 1bIV-4L (scalar mode) | identical | "
      f"{'identical' if eq else 'DIFFERS'} |")
    a("")
    systems = list(next(iter(sp.values())))
    a("Measured speedups over 1L:")
    a("")
    a("| workload | " + " | ".join(systems) + " |")
    a("|---|" + "---|" * len(systems))
    for w in tp + dp:
        a(f"| {w} | " + " | ".join(f"{sp[w][s]:.2f}" for s in systems) + " |")
    a("")

    # ------------------------------------------------------------- fig5/6
    for key, title, paper_claim in (
        ("fig5", "Figure 5 — instruction fetches (normalized to 1bDV)",
         "1bIV-4L issues 10-100x more fetches; 1b-4VL close to 1bDV"),
        ("fig6", "Figure 6 — data requests (normalized to 1bDV)",
         "1bIV-4L issues far more data requests than the long-vector systems"),
    ):
        d = data[key]
        a(f"## {title}")
        a("")
        a(f"Paper: {paper_claim}.")
        gm_iv = geomean([row["1bIV-4L"] for row in d.values()])
        gm_vl = geomean([row["1b-4VL"] for row in d.values()])
        a(f"Measured geomeans: 1bIV-4L = {gm_iv:.1f}x of 1bDV, "
          f"1b-4VL = {gm_vl:.1f}x of 1bDV.")
        a("")
        a("| workload | 1bIV-4L | 1b-4VL | 1bDV |")
        a("|---|---|---|---|")
        for w, row in d.items():
            a(f"| {w} | {row['1bIV-4L']:.2f} | {row['1b-4VL']:.2f} | 1.00 |")
        a("")

    # ----------------------------------------------------------------- fig7
    d = data["fig7"]
    a("## Figure 7 — 1b-4VL lane execution-time breakdown (1c / 1c+sw / 2c+sw)")
    a("")
    sp_sw = geomean([c["1c"]["cycles"] / c["1c+sw"]["cycles"] for c in d.values()])
    sp_2c = geomean([c["1c+sw"]["cycles"] / c["2c+sw"]["cycles"] for c in d.values()])
    a("| claim | paper | measured |")
    a("|---|---|---|")
    a(f"| packed elements speed up 32-bit workloads | yes | {sp_sw:.2f}x geomean |")
    a(f"| second chime helps further | yes | {sp_2c:.2f}x geomean |")
    hid = []
    for w in ("blackscholes", "jacobi2d", "kmeans", "lavamd"):
        if w in d:
            # fraction of lane-cycles (4 lanes x cycles)
            f1 = d[w]["1c+sw"]["raw_llfu"] / max(4 * d[w]["1c+sw"]["cycles"], 1)
            f2 = d[w]["2c+sw"]["raw_llfu"] / max(4 * d[w]["2c+sw"]["cycles"], 1)
            hid.append(f"{w}: {f1:.2f}->{f2:.2f}")
    a(f"| 2nd chime hides long-latency stalls (raw_llfu fraction) | yes | {'; '.join(hid)} |")
    a("")

    # ----------------------------------------------------------------- fig8
    d = data["fig8"]
    a("## Figure 8 — VMU load/store data-queue depth sweep")
    a("")
    a("Performance relative to the deepest queue (64 lines/VMSU):")
    a("")
    depths = sorted(next(iter(d.values())), key=lambda x: int(x)) if d else []
    a("| workload | " + " | ".join(str(x) for x in depths) + " |")
    a("|---|" + "---|" * len(depths))
    for w, row in d.items():
        a(f"| {w} | " + " | ".join(f"{row[x]:.2f}" for x in depths) + " |")
    a("")
    a("Paper: memory-intensive workloads (vvadd, saxpy, pathfinder, backprop)")
    a("improve significantly with deeper buffering, then saturate — matched.")
    a("")

    # ----------------------------------------------------------------- fig9
    d = data["fig9"]
    a("## Figure 9 — DVFS heatmaps (speedup over 1L@1GHz)")
    a("")

    def pick(pts, b, l):
        return pts.get((b, l)) or pts.get(f"('{b}', '{l}')")

    rows = []
    for w, per_sys in d.items():
        vl = per_sys["1b-4VL"]
        big_gain = pick(vl, "b3", "l1") / pick(vl, "b0", "l1")
        little_gain = pick(vl, "b1", "l3") / pick(vl, "b1", "l0")
        rows.append((w, big_gain, little_gain))
    a("| workload | big boost b0->b3 (l1 fixed) | little boost l0->l3 (b1 fixed) |")
    a("|---|---|---|")
    for w, bg, lg in rows:
        a(f"| {w} | {bg:.2f}x | {lg:.2f}x |")
    a("")
    sw_row = [r for r in rows if r[0] == "sw"]
    others = [r[1] for r in rows if r[0] != "sw"]
    if sw_row and others:
        a(f"Paper: boosting the big core helps only `sw` (69% vectorized). "
          f"Measured: sw big-boost gain {sw_row[0][1]:.2f}x vs "
          f"{max(others):.2f}x max among fully-vectorized apps.")
    a("")

    # ------------------------------------------------------------ fig10/11
    d10, d11 = data["fig10"], data["fig11"]
    a("## Figures 10 & 11 — performance/power Pareto frontiers")
    a("")
    a("Paper: 1b-4VL's Pareto points slow the big core and boost the little")
    a("cluster; below ~1 W only the little-cluster designs are feasible and")
    a("1b-4VL is Pareto-optimal; 1bDV cannot enter the low-power region.")
    a("")
    for w, dd in d11.items():
        front = dd["pareto"]
        sys_on = []
        low = []
        for t, p, tag in front:
            s = tag[0] if isinstance(tag, (list, tuple)) else str(tag)
            sys_on.append(s)
            if p < 1.0:
                low.append(s)
        a(f"* `{w}`: frontier systems {sorted(set(sys_on))}; "
          f"<1 W region: {sorted(set(low)) or ['(none)']}"
          f"{' — no 1bDV' if '1bDV' not in low else ' — 1bDV leaked in (!)'}")
    a("")

    # --------------------------------------------------------------- table6
    t6 = data["table6"]
    a("## Table VI — area")
    a("")
    a("| cluster | paper | measured |")
    a("|---|---|---|")
    a(f"| 4L simple (k um^2) | 427.0 | {t6['simple']['4L_kum2']} |")
    a(f"| 4VL simple (k um^2) | 437.4 | {t6['simple']['4VL_kum2']} |")
    a(f"| overhead, simple cores | 2.4% | {t6['simple']['overhead'] * 100:.1f}% |")
    a(f"| overhead, Ariane cores | 2.1% | {t6['ariane']['overhead'] * 100:.1f}% |")
    ara = t6["1bDV_estimate"]
    a(f"| 1bDV engine vs 4xAriane cluster (kGE) | ~equal | "
      f"{ara['ara_engine_kge']} vs {ara['4xariane_cluster_kge']} |")
    a("")
    return "\n".join(lines)


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", default="small")
    ap.add_argument("--out", default="EXPERIMENTS.md")
    ap.add_argument("--jobs", type=int, default=None,
                    help="parallel simulation workers (resumable via the "
                         "result cache)")
    ap.add_argument("--from-json", dest="from_json", default=None)
    args = ap.parse_args(argv)
    if args.from_json:
        with open(args.from_json) as f:
            raw = json.load(f)
        data = _unjson(raw)
    else:
        data = collect(args.scale, jobs=args.jobs)
    md = render(data, args.scale)
    with open(args.out, "w") as f:
        f.write(md + "\n")
    print(f"wrote {args.out}")
    return 0


def _unjson(obj):
    """Recover tuple keys like "('b0', 'l1')" lost in JSON round-trip."""
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if isinstance(k, str) and k.startswith("('"):
                k = tuple(p.strip(" '\"") for p in k.strip("()").split(","))
            elif isinstance(k, str) and k.isdigit():
                k = int(k)
            out[k] = _unjson(v)
        return out
    if isinstance(obj, list):
        return [_unjson(x) for x in obj]
    return obj


if __name__ == "__main__":
    raise SystemExit(main())
