"""Render figure data to SVG files, named like the paper artifact's plots
(paper §X-F: plot-perf.svg, plot-lsq_perf.svg, ...)."""

from __future__ import annotations

import os

from repro.experiments import svgplot
from repro.power import BIG_LEVELS, LITTLE_LEVELS
from repro.stats.breakdown import STALL_NAMES


def render_fig4(data, outdir):
    systems = [s for s in next(iter(data["speedups"].values())) if s != "1L"]
    svg = svgplot.grouped_bars(data["speedups"], systems,
                               title="Figure 4: speedup over 1L",
                               ylabel="speedup (x)", width=1200)
    return svg.save(os.path.join(outdir, "plot-perf.svg"))


def render_fig5(data, outdir):
    systems = ["1bIV-4L", "1bDV", "1b-4VL"]
    svg = svgplot.grouped_bars(data, systems,
                               title="Figure 5: instruction fetches / 1bDV",
                               ylabel="normalized fetches")
    return svg.save(os.path.join(outdir, "plot-inst_reqs_breakdown.svg"))


def render_fig6(data, outdir):
    systems = ["1bIV-4L", "1bDV", "1b-4VL"]
    svg = svgplot.grouped_bars(data, systems,
                               title="Figure 6: data requests / 1bDV",
                               ylabel="normalized requests")
    return svg.save(os.path.join(outdir, "plot-data_reqs_breakdown.svg"))


def render_fig7(data, outdir):
    svg = svgplot.stacked_bars(
        data, STALL_NAMES,
        title="Figure 7: 1b-4VL lane execution-time breakdown (1c / 1c+sw / 2c+sw)",
        width=1200,
    )
    return svg.save(os.path.join(outdir, "plot-amc_exec_time_breakdown.svg"))


def render_fig8(data, outdir):
    series = {w: row for w, row in data.items()}
    svg = svgplot.line_chart(series, title="Figure 8: VMU data-queue depth",
                             xlabel="queue depth (lines/VMSU)",
                             ylabel="relative performance")
    return svg.save(os.path.join(outdir, "plot-lsq_perf.svg"))


def render_fig9(data, outdir):
    paths = []
    for w, per_sys in data.items():
        for s, pts in per_sys.items():
            grid = {(b, l): pts[(b, l)] for b in BIG_LEVELS for l in LITTLE_LEVELS}
            svg = svgplot.heatmap(grid, list(BIG_LEVELS), list(LITTLE_LEVELS),
                                  title=f"Fig 9: {w} on {s} (speedup over 1L)")
            safe = s.replace("-", "_")
            paths.append(svg.save(os.path.join(
                outdir, f"plot_freq_perf_heatmap-{w}-{safe}.svg")))
    return paths


def render_fig10(data, outdir):
    paths = []
    for w, d in data.items():
        svg = svgplot.scatter(d["points"], pareto=d["pareto"],
                              title=f"Fig 10: {w} 1b-4VL time vs power",
                              xlabel="time (ps)",
                              series_of=lambda tag: f"big {tag[0]}")
        paths.append(svg.save(os.path.join(outdir, f"plot_freq_power-{w}.svg")))
    return paths


def render_fig11(data, outdir):
    paths = []
    for w, d in data.items():
        pts = [p for rows in d["points"].values() for p in rows]
        svg = svgplot.scatter(pts, pareto=d["pareto"],
                              title=f"Fig 11: {w} all designs",
                              xlabel="time (ps)",
                              series_of=lambda tag: tag[0])
        paths.append(svg.save(os.path.join(outdir, f"plot_freq_power_all-{w}.svg")))
    return paths


RENDERERS = {
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "fig9": render_fig9,
    "fig10": render_fig10,
    "fig11": render_fig11,
}


def render(name, data, outdir):
    os.makedirs(outdir, exist_ok=True)
    if name not in RENDERERS:
        return None
    return RENDERERS[name](data, outdir)
