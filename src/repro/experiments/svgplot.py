"""Dependency-free SVG chart rendering for the figure generators.

The paper's artifact produces one SVG per figure (``plot-perf.svg``,
``plot-lsq_perf.svg``, ...); this module does the same without matplotlib:
grouped bar charts (Figs. 4-6), stacked bars (Fig. 7), line charts (Fig. 8),
heatmaps (Fig. 9) and scatter plots with Pareto frontiers (Figs. 10-11),
rendered as plain SVG.

Used by the CLI: ``bigvlittle fig4 --svg plots/``.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

PALETTE = ["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
           "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2"]


class SVG:
    """A tiny SVG canvas with helpers for chart primitives."""

    def __init__(self, width=960, height=420):
        self.width = width
        self.height = height
        self._parts = []

    def rect(self, x, y, w, h, fill, opacity=1.0, title=None):
        t = f"<title>{escape(str(title))}</title>" if title else ""
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity}">{t}</rect>'
        )

    def line(self, x1, y1, x2, y2, stroke="#444", width=1.0, dash=None):
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{d}/>'
        )

    def circle(self, x, y, r, fill, title=None):
        t = f"<title>{escape(str(title))}</title>" if title else ""
        self._parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}">{t}</circle>'
        )

    def text(self, x, y, s, size=11, anchor="middle", rotate=None, fill="#222"):
        r = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="Helvetica,Arial,sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{r}>{escape(str(s))}</text>'
        )

    def polyline(self, pts, stroke, width=1.5):
        p = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        self._parts.append(
            f'<polyline points="{p}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def render(self):
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>\n'
        )

    def save(self, path):
        with open(path, "w") as f:
            f.write(self.render())
        return path


def _nice_max(v):
    if v <= 0:
        return 1.0
    mag = 10 ** math.floor(math.log10(v))
    for m in (1, 2, 2.5, 5, 10):
        if v <= m * mag:
            return m * mag
    return 10 * mag


def sparkline(values, width=120, height=24, stroke=PALETTE[0]):
    """Inline sparkline SVG for one numeric series (``None`` = gap).

    Used by the benchmark-history dashboard: tiny, axis-free, last point
    marked. Returns the SVG string (embed directly in HTML).
    """
    svg = SVG(width, height)
    pts = [(i, v) for i, v in enumerate(values) if v is not None]
    if not pts:
        return svg.render()
    vmin = min(v for _, v in pts)
    vmax = max(v for _, v in pts)
    span = (vmax - vmin) or 1.0
    n = max(len(values) - 1, 1)
    pad = 3

    def xy(i, v):
        return (pad + (width - 2 * pad) * i / n,
                pad + (height - 2 * pad) * (1 - (v - vmin) / span))

    if len(pts) > 1:
        svg.polyline([xy(i, v) for i, v in pts], stroke=stroke, width=1.2)
    xi, yi = xy(*pts[-1])
    svg.circle(xi, yi, 2.0, fill=stroke, title=f"{pts[-1][1]:g}")
    return svg.render()


def grouped_bars(data, series, title="", ylabel="", width=960, height=420,
                 log=False):
    """``data``: {group: {series_name: value}}; bars grouped per group."""
    svg = SVG(width, height)
    ml, mr, mt, mb = 55, 15, 40, 80
    pw, ph = width - ml - mr, height - mt - mb
    groups = list(data)
    vmax = _nice_max(max(max(row.values()) for row in data.values()))
    svg.text(width / 2, 20, title, size=14)
    svg.text(14, mt + ph / 2, ylabel, size=11, rotate=-90)

    def ypos(v):
        if log:
            lo, hi = 0.0, math.log10(max(vmax, 1.0001))
            vv = math.log10(max(v, 0.01))
            return mt + ph * (1 - max(vv - lo, 0) / (hi - lo))
        return mt + ph * (1 - v / vmax)

    # gridlines
    for i in range(5):
        gv = vmax * i / 4
        y = ypos(gv) if not log else mt + ph * (1 - i / 4)
        label = f"{gv:g}" if not log else f"{10 ** (math.log10(max(vmax,1.0001)) * i / 4):.1f}"
        svg.line(ml, y, ml + pw, y, stroke="#ddd")
        svg.text(ml - 6, y + 4, label, size=9, anchor="end")
    gw = pw / max(len(groups), 1)
    bw = gw * 0.8 / max(len(series), 1)
    for gi, g in enumerate(groups):
        x0 = ml + gi * gw + gw * 0.1
        for si, s in enumerate(series):
            v = data[g].get(s, 0)
            y = ypos(v)
            svg.rect(x0 + si * bw, y, bw * 0.92, mt + ph - y,
                     PALETTE[si % len(PALETTE)], title=f"{g} {s}: {v:.2f}")
        svg.text(ml + gi * gw + gw / 2, mt + ph + 12, g, size=9, rotate=30,
                 anchor="start")
    # legend
    for si, s in enumerate(series):
        x = ml + si * 95
        svg.rect(x, height - 18, 10, 10, PALETTE[si % len(PALETTE)])
        svg.text(x + 14, height - 9, s, size=10, anchor="start")
    svg.line(ml, mt + ph, ml + pw, mt + ph, stroke="#222")
    return svg


def stacked_bars(data, categories, colors=None, title="", width=960, height=420):
    """``data``: {group: {config: {category: value}}} — Fig. 7 style."""
    svg = SVG(width, height)
    ml, mr, mt, mb = 55, 15, 40, 90
    pw, ph = width - ml - mr, height - mt - mb
    colors = colors or PALETTE
    groups = list(data)
    vmax = _nice_max(max(sum(cfg.get(c, 0) for c in categories)
                         for row in data.values() for cfg in row.values()))
    svg.text(width / 2, 20, title, size=14)
    gw = pw / max(len(groups), 1)
    for gi, g in enumerate(groups):
        cfgs = list(data[g])
        bw = gw * 0.8 / max(len(cfgs), 1)
        x0 = ml + gi * gw + gw * 0.1
        for ci, cfg in enumerate(cfgs):
            y = mt + ph
            for k, cat in enumerate(categories):
                v = data[g][cfg].get(cat, 0)
                h = ph * v / vmax
                y -= h
                svg.rect(x0 + ci * bw, y, bw * 0.9, h, colors[k % len(colors)],
                         title=f"{g}/{cfg} {cat}: {v}")
        svg.text(ml + gi * gw + gw / 2, mt + ph + 12, g, size=9, rotate=30,
                 anchor="start")
    for k, cat in enumerate(categories):
        x = ml + k * 90
        svg.rect(x, height - 18, 10, 10, colors[k % len(colors)])
        svg.text(x + 14, height - 9, cat, size=10, anchor="start")
    svg.line(ml, mt + ph, ml + pw, mt + ph, stroke="#222")
    return svg


def line_chart(data, title="", xlabel="", ylabel="", width=720, height=400):
    """``data``: {series: {x: y}} with numeric x."""
    svg = SVG(width, height)
    ml, mr, mt, mb = 55, 120, 40, 45
    pw, ph = width - ml - mr, height - mt - mb
    xs = sorted({x for row in data.values() for x in row})
    ymax = _nice_max(max(y for row in data.values() for y in row.values()))
    svg.text(width / 2, 20, title, size=14)
    svg.text(ml + pw / 2, height - 8, xlabel, size=11)
    svg.text(14, mt + ph / 2, ylabel, size=11, rotate=-90)

    def px(x):
        return ml + pw * xs.index(x) / max(len(xs) - 1, 1)

    def py(y):
        return mt + ph * (1 - y / ymax)

    for i in range(5):
        gv = ymax * i / 4
        svg.line(ml, py(gv), ml + pw, py(gv), stroke="#ddd")
        svg.text(ml - 6, py(gv) + 4, f"{gv:g}", size=9, anchor="end")
    for x in xs:
        svg.text(px(x), mt + ph + 14, str(x), size=9)
    for si, (name, row) in enumerate(data.items()):
        pts = [(px(x), py(row[x])) for x in xs if x in row]
        svg.polyline(pts, PALETTE[si % len(PALETTE)])
        svg.text(width - mr + 6, pts[-1][1] + 3, name, size=9, anchor="start",
                 fill=PALETTE[si % len(PALETTE)])
    svg.line(ml, mt + ph, ml + pw, mt + ph, stroke="#222")
    return svg


def heatmap(grid, row_labels, col_labels, title="", width=420, height=320,
            fmt="{:.1f}"):
    """``grid``: {(row, col): value} — Fig. 9 style."""
    svg = SVG(width, height)
    ml, mt = 60, 50
    cw = (width - ml - 15) / len(col_labels)
    ch = (height - mt - 20) / len(row_labels)
    vals = list(grid.values())
    vmin, vmax = min(vals), max(vals)
    svg.text(width / 2, 20, title, size=13)
    for ri, r in enumerate(row_labels):
        svg.text(ml - 8, mt + ri * ch + ch / 2 + 4, r, size=10, anchor="end")
        for ci, c in enumerate(col_labels):
            v = grid[(r, c)]
            f = 0.0 if vmax == vmin else (v - vmin) / (vmax - vmin)
            rcol = int(255 - 140 * f)
            color = f"rgb({rcol},{int(235 - 90 * f)},255)"
            svg.rect(ml + ci * cw, mt + ri * ch, cw - 2, ch - 2, color,
                     title=f"({r},{c}) = {v:.2f}")
            svg.text(ml + ci * cw + cw / 2, mt + ri * ch + ch / 2 + 4,
                     fmt.format(v), size=10)
    for ci, c in enumerate(col_labels):
        svg.text(ml + ci * cw + cw / 2, mt - 8, c, size=10)
    return svg


def scatter(points, pareto=None, title="", xlabel="time", ylabel="power (W)",
            width=640, height=420, series_of=None):
    """``points``: [(x, y, tag)]; optional frontier polyline; ``series_of``
    maps a tag to a legend series name for coloring."""
    svg = SVG(width, height)
    ml, mr, mt, mb = 60, 130, 40, 45
    pw, ph = width - ml - mr, height - mt - mb
    xmax = _nice_max(max(p[0] for p in points))
    ymax = _nice_max(max(p[1] for p in points))
    svg.text(width / 2, 20, title, size=14)
    svg.text(ml + pw / 2, height - 8, xlabel, size=11)
    svg.text(14, mt + ph / 2, ylabel, size=11, rotate=-90)

    def px(x):
        return ml + pw * x / xmax

    def py(y):
        return mt + ph * (1 - y / ymax)

    for i in range(5):
        gx, gy = xmax * i / 4, ymax * i / 4
        svg.line(px(gx), mt, px(gx), mt + ph, stroke="#eee")
        svg.line(ml, py(gy), ml + pw, py(gy), stroke="#eee")
        svg.text(px(gx), mt + ph + 14, f"{gx:g}", size=9)
        svg.text(ml - 6, py(gy) + 4, f"{gy:g}", size=9, anchor="end")
    series_names = []
    for x, y, tag in points:
        name = series_of(tag) if series_of else "points"
        if name not in series_names:
            series_names.append(name)
        color = PALETTE[series_names.index(name) % len(PALETTE)]
        svg.circle(px(x), py(y), 4, color, title=f"{tag}: ({x:.3g}, {y:.3g})")
    if pareto:
        pts = sorted((px(x), py(y)) for x, y, _ in pareto)
        svg.polyline(pts, "#d65f5f", width=1.2)
    for si, name in enumerate(series_names):
        svg.circle(width - mr + 12, 40 + si * 16, 4, PALETTE[si % len(PALETTE)])
        svg.text(width - mr + 22, 44 + si * 16, name, size=10, anchor="start")
    svg.line(ml, mt + ph, ml + pw, mt + ph, stroke="#222")
    svg.line(ml, mt, ml, mt + ph, stroke="#222")
    return svg
