"""Structured sweep telemetry: what did the harness *do*, and when?

A :class:`SweepTelemetry` collects the experiment harness's run-level
events — sweep started/finished, per-request cache hits and misses,
individual simulations starting and ending, worker-busy spans — as an
append-only JSONL log (one ``{"ts", "ev", ...fields}`` object per line)
plus an in-memory record, and can export the worker-busy spans as a
Chrome ``trace_event`` JSON with **one track per worker process**
(Perfetto-loadable, like the simulator's own :mod:`repro.obs.tracer`
output — but here the tracks are host processes, not simulated units).

Event vocabulary (all carry ``ts``, wall-clock seconds since the epoch):

========== ===========================================================
``sweep_start``   ``requests``, ``jobs``, ``sim_version``
``cache_hit``     ``key``, ``level`` (``memory``/``disk``), ``load_wall_s``
``cache_miss``    ``key``
``cache_corrupt`` ``key``, ``path``
``run_start``     ``key``, ``system``, ``workload``, ``scale``,
                  ``sim_version``
``run_end``       ``key``, ``wall_s``, ``sim_wall_s``, ``load_wall_s``,
                  ``level`` (``fresh``/``disk``), ``cycles``
``worker_busy``   ``worker``, ``label``, ``t_start``, ``t_end``, ``dur_s``
``sweep_end``     the runner's summary dict
``job_enqueued``  ``job``, ``runs``, ``keys`` (sweep-service submit)
``job_start``     ``job``, ``worker`` (a service worker claimed the job)
``job_done``      ``job``, ``ok``, ``levels`` (per-key cache-hit levels)
``job_retry``     ``job``, ``attempt``, ``error``, ``backoff_s``
========== ===========================================================

The ``job_*`` family is emitted by :mod:`repro.service.jobs` on exactly
the branches that bump the queue's own counters (``enqueued`` /
``started`` / ``done`` + ``failed`` / ``retried``), the same contract
the ``cache_*`` events keep with :meth:`ResultCache.stats` — a service
telemetry log reconciles with ``JobQueue.counters`` to the event.

Telemetry is a process-global opt-in, mirroring the cache:
:func:`enable` installs a sink, :func:`current` is what the cache /
runner / ``run_pair`` consult (``None`` when disabled — the common case
costs one module-attribute read per branch). Worker processes spawned by
the parallel runner call :func:`disable` first thing: on fork-start
platforms they inherit the parent's enabled telemetry, and the parent
already emits the authoritative run events from the workers' returned
timing payloads.
"""

from __future__ import annotations

import json
import time

#: event names a well-formed sweep log may contain
EVENTS = ("sweep_start", "cache_hit", "cache_miss", "cache_corrupt",
          "run_start", "run_end", "worker_busy", "sweep_end",
          "job_enqueued", "job_start", "job_done", "job_retry")


class SweepTelemetry:
    """One sweep's structured event log (JSONL sink + in-memory record)."""

    __slots__ = ("path", "_f", "events", "counts", "spans")

    def __init__(self, path=None):
        self.path = path
        self._f = open(path, "a", encoding="utf-8") if path else None
        self.events = []   # every event dict, in emit order
        self.counts = {}   # event name -> occurrences
        self.spans = []    # worker-busy spans for the Chrome trace

    # ------------------------------------------------------------- recording

    def event(self, ev, **fields):
        """Record one event (and append it to the JSONL sink, if any)."""
        rec = {"ts": round(time.time(), 6), "ev": ev}
        rec.update(fields)
        self.events.append(rec)
        self.counts[ev] = self.counts.get(ev, 0) + 1
        if self._f is not None:
            self._f.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
            self._f.flush()
        return rec

    def span(self, worker, label, t_start, t_end, **fields):
        """Record one worker-busy interval (absolute epoch seconds)."""
        self.spans.append({"worker": str(worker), "label": label,
                           "t_start": t_start, "t_end": t_end})
        return self.event("worker_busy", worker=str(worker), label=label,
                          t_start=round(t_start, 6), t_end=round(t_end, 6),
                          dur_s=round(t_end - t_start, 6), **fields)

    def busy_s(self):
        """Total worker-busy seconds across all recorded spans."""
        return sum(s["t_end"] - s["t_start"] for s in self.spans)

    # --------------------------------------------------------------- exports

    def chrome_trace(self):
        """The sweep as Chrome ``trace_event`` JSON: one ``sweep`` process,
        one thread (track) per distinct worker, X (complete) events in
        microseconds relative to the first span."""
        events = []
        workers = sorted({s["worker"] for s in self.spans})
        tids = {w: i + 1 for i, w in enumerate(workers)}
        events.append({"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                       "args": {"name": "sweep"}})
        for w, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": 1,
                           "tid": tid, "args": {"name": f"worker {w}"}})
        t0 = min((s["t_start"] for s in self.spans), default=0.0)
        for s in self.spans:
            events.append({
                "name": s["label"], "ph": "X", "pid": 1,
                "tid": tids[s["worker"]],
                "ts": round((s["t_start"] - t0) * 1e6, 1),
                "dur": round((s["t_end"] - s["t_start"]) * 1e6, 1),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path):
        doc = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
            f.write("\n")
        return len(doc["traceEvents"])

    def close(self):
        if self._f is not None:
            self._f.close()
            self._f = None

    def __repr__(self):
        return (f"<SweepTelemetry events={len(self.events)} "
                f"spans={len(self.spans)} path={self.path!r}>")


# ------------------------------------------------------------ process global

_current = None


def enable(path=None):
    """Install a fresh process-wide telemetry sink; returns it."""
    global _current
    if _current is not None:
        _current.close()
    _current = SweepTelemetry(path=path)
    return _current


def disable():
    """Close and remove the process-wide sink (workers call this first)."""
    global _current
    if _current is not None:
        _current.close()
    _current = None


def current():
    """The active :class:`SweepTelemetry`, or ``None`` when disabled."""
    return _current


def load_jsonl(path):
    """Parse a telemetry JSONL log back into a list of event dicts
    (corrupt or truncated lines are skipped, mirroring the cache's
    tolerance for damaged files)."""
    events = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict) and "ev" in rec:
                events.append(rec)
    return events
