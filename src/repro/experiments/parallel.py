"""Parallel experiment runner: fan (system, workload, scale, knobs) requests
out over a process pool, backed by the persistent result cache.

The unit of work is a :class:`RunRequest` — everything needed to rebuild the
run in a worker process (`preset(system, **overrides)` + workload identity).
The runner:

1. resolves each request against the cache (memory, then disk) in the
   parent — hits never reach the pool;
2. deduplicates the misses by cache key, so a sweep that mentions the same
   pair twice simulates it once;
3. simulates the remaining keys on ``jobs`` worker processes (serially
   in-process for ``jobs <= 1``), each worker writing its result into the
   shared on-disk cache as it finishes, so an interrupted sweep resumes;
4. emits optional per-run progress lines (through the
   :mod:`repro.log` structured logger) and a wall-clock/hit-rate/worker-
   utilization summary.

A warm cache therefore turns a full figure sweep into pure lookups — zero
``System.run`` calls — and a cold one runs at ``jobs``-way parallelism.

When sweep telemetry is enabled (:mod:`repro.experiments.telemetry`), the
runner brackets the sweep with ``sweep_start``/``sweep_end`` events, the
cache emits per-request hit/miss events, and every simulation — whether in
a pool worker or inline — lands as ``run_start``/``run_end`` plus a
``worker_busy`` span, so the whole sweep exports as a one-track-per-worker
Chrome trace (``SweepTelemetry.write_chrome_trace``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.experiments import telemetry
from repro.experiments.cache import SIM_VERSION, ResultCache, get_cache
from repro.experiments.runner import run_pair
from repro.log import get_logger
from repro.soc import preset
from repro.stats import RunResult

_logger = get_logger("repro.experiments.parallel")


@dataclass
class RunRequest:
    """One (system, workload) simulation request with config overrides."""

    system: str
    workload: str
    scale: str = "small"
    overrides: dict = field(default_factory=dict)

    def config(self):
        return preset(self.system, **self.overrides)

    def label(self):
        knobs = ",".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))
        return f"{self.system}/{self.workload}@{self.scale}" + (
            f" [{knobs}]" if knobs else "")


def _simulate(req, cache_dir, disk, use_cache):
    """Worker body: simulate one request, persisting through a local cache.

    Returns the result dict plus the worker's identity and busy interval;
    the parent turns those into the authoritative telemetry events (the
    worker disables its inherited telemetry so nothing is double-logged).
    """
    telemetry.disable()
    cache = ResultCache(cache_dir=cache_dir, disk=disk and use_cache)
    t_start = time.time()
    result = run_pair(req.system, req.workload, req.scale,
                      use_cache=use_cache, cache=cache, **req.overrides)
    return {"result": result.to_dict(), "pid": os.getpid(),
            "t_start": t_start, "t_end": time.time()}


class ParallelRunner:
    """Run many :class:`RunRequest`\\ s concurrently with shared caching."""

    def __init__(self, jobs=None, use_cache=True, cache=None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.cache = cache if cache is not None else get_cache()
        self._summary = None
        self._levels = None

    # ------------------------------------------------------------------- run

    def run(self, requests, progress=False):
        """Resolve every request; returns RunResults aligned with input."""
        requests = list(requests)
        t0 = time.perf_counter()
        results = [None] * len(requests)
        levels = [None] * len(requests)  # per-request cache-hit level
        hits = 0
        load_wall = 0.0
        # a disabled parent cache means fully cacheless (workers included)
        use_cache = self.use_cache and self.cache.enabled
        tel = telemetry.current()
        if tel is not None:
            tel.event("sweep_start", requests=len(requests), jobs=self.jobs,
                      sim_version=SIM_VERSION)
        pending = {}  # cache key -> (request, [indices])
        for i, req in enumerate(requests):
            key = self.cache.key_for(req.config(), req.workload, req.scale)
            # only a *fresh* disk load costs load time; a memory-level
            # re-hit of a previously loaded result is free
            dh0 = self.cache.disk_hits
            hit = self.cache.get(key) if use_cache else None
            if hit is not None:
                if self.cache.disk_hits > dh0:
                    load_wall += hit.timing.get("load_wall_s", 0.0)
                    levels[i] = "disk"
                else:
                    levels[i] = "memory"
                results[i] = hit
                hits += 1
                continue
            # without caching, duplicate requests are deliberately re-simulated
            pending.setdefault(key if use_cache else object(),
                               (req, []))[1].append(i)

        n_sim = len(pending)
        done = 0
        sim_wall = 0.0
        busy_s = 0.0
        if progress and hits:
            self._log(f"[cache] {hits}/{len(requests)} requests served "
                      f"from cache")

        def finish(key, req, idxs, result):
            nonlocal done, sim_wall
            done += 1
            sim_wall += result.timing.get("wall_s", 0.0)
            if use_cache:
                self.cache.put(key, result)
            for i in idxs:
                results[i] = result
                levels[i] = "fresh"
            if progress:
                self._log(f"[{done}/{n_sim}] {req.label()} simulated in "
                          f"{result.timing.get('wall_s', 0.0):.2f}s")

        if n_sim and self.jobs > 1:
            workers = min(self.jobs, n_sim)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futs = {
                    pool.submit(_simulate, req, self.cache.cache_dir,
                                self.cache.disk, use_cache): (key, req, idxs)
                    for key, (req, idxs) in pending.items()
                }
                not_done = set(futs)
                while not_done:
                    ready, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in ready:
                        key, req, idxs = futs[fut]
                        payload = fut.result()
                        result = RunResult.from_dict(payload["result"])
                        busy_s += payload["t_end"] - payload["t_start"]
                        if tel is not None:
                            # the worker disabled its inherited telemetry;
                            # replay its run from the returned payload
                            tel.event("run_start", key=key, system=req.system,
                                      workload=req.workload, scale=req.scale,
                                      sim_version=SIM_VERSION)
                            timing = result.timing
                            tel.event(
                                "run_end", key=key,
                                wall_s=round(timing.get("wall_s", 0.0), 6),
                                sim_wall_s=round(
                                    timing.get("sim_wall_s",
                                               timing.get("wall_s", 0.0)), 6),
                                load_wall_s=round(
                                    timing.get("load_wall_s", 0.0), 6),
                                level="disk" if timing.get("from_cache")
                                else "fresh",
                                cycles=result.cycles)
                            tel.span(payload["pid"], req.label(),
                                     payload["t_start"], payload["t_end"],
                                     key=key)
                        finish(key, req, idxs, result)
        else:
            workers = 1 if n_sim else 0
            for key, (req, idxs) in pending.items():
                # run_pair emits its own run/span telemetry on this path
                t_start = time.time()
                result = run_pair(req.system, req.workload, req.scale,
                                  use_cache=use_cache, cache=self.cache,
                                  **req.overrides)
                busy_s += time.time() - t_start
                finish(key, req, idxs, result)

        wall = time.perf_counter() - t0
        self._levels = levels
        level_counts = {}
        for lv in levels:
            if lv is not None:
                level_counts[lv] = level_counts.get(lv, 0) + 1
        self._summary = {
            "levels": level_counts,
            "requests": len(requests),
            "cache_hits": hits,
            "simulated": n_sim,
            "jobs": self.jobs,
            "workers": workers,
            "wall_s": wall,
            "sim_wall_s": sim_wall,
            "load_wall_s": load_wall,
            "hit_ratio": hits / len(requests) if requests else 0.0,
            "worker_util": min(1.0, busy_s / (workers * wall))
            if workers and wall > 0 else 0.0,
        }
        if tel is not None:
            tel.event("sweep_end", **{k: round(v, 6)
                                      if isinstance(v, float) else v
                                      for k, v in self._summary.items()})
        return results

    def warm(self, requests, progress=False):
        """Fill the cache for ``requests``; the sweep's serial readers then
        hit memory/disk only."""
        self.run(requests, progress=progress)
        return self._summary

    def summary(self):
        """Stats from the most recent :meth:`run`."""
        return dict(self._summary) if self._summary else None

    def levels(self):
        """Per-request cache-hit levels from the most recent :meth:`run`,
        aligned with its inputs: ``"memory"``, ``"disk"``, or ``"fresh"``
        (every request is ``"fresh"`` under ``use_cache=False``).  The
        sweep service forwards these so every API response says how hot
        its path was."""
        return list(self._levels) if self._levels is not None else None

    @staticmethod
    def _log(msg):
        _logger.info(msg)


def warm_cache(requests, jobs=None, progress=False):
    """Convenience: prefetch ``requests`` into the global cache in parallel.

    No-op (beyond cache lookups) when everything is already cached; called by
    the figure/table/ablation generators when invoked with ``jobs > 1``.
    """
    if jobs is None or jobs <= 1:
        return None
    return ParallelRunner(jobs=jobs).warm(requests, progress=progress)


def format_summary(summary):
    if not summary:
        return "no runs recorded"
    line = (f"{summary['requests']} requests: {summary['cache_hits']} cache "
            f"hits, {summary['simulated']} simulated on {summary['jobs']} "
            f"jobs in {summary['wall_s']:.1f}s wall "
            f"({summary['sim_wall_s']:.1f}s total sim time)")
    extras = []
    if "hit_ratio" in summary:
        extras.append(f"hit ratio {summary['hit_ratio'] * 100:.0f}%")
    if summary.get("load_wall_s"):
        extras.append(f"cache loads {summary['load_wall_s'] * 1000:.0f}ms")
    if summary.get("simulated") and "worker_util" in summary:
        extras.append(f"worker util {summary['worker_util'] * 100:.0f}% "
                      f"on {summary.get('workers', summary['jobs'])} workers")
    if extras:
        line += f" [{', '.join(extras)}]"
    return line
