"""Parallel experiment runner: fan (system, workload, scale, knobs) requests
out over a process pool, backed by the persistent result cache.

The unit of work is a :class:`RunRequest` — everything needed to rebuild the
run in a worker process (`preset(system, **overrides)` + workload identity).
The runner:

1. resolves each request against the cache (memory, then disk) in the
   parent — hits never reach the pool;
2. deduplicates the misses by cache key, so a sweep that mentions the same
   pair twice simulates it once;
3. simulates the remaining keys on ``jobs`` worker processes (serially
   in-process for ``jobs <= 1``), each worker writing its result into the
   shared on-disk cache as it finishes, so an interrupted sweep resumes;
4. emits optional per-run progress lines and a wall-clock/hit-rate summary.

A warm cache therefore turns a full figure sweep into pure lookups — zero
``System.run`` calls — and a cold one runs at ``jobs``-way parallelism.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache, get_cache
from repro.experiments.runner import run_pair
from repro.soc import preset
from repro.stats import RunResult


@dataclass
class RunRequest:
    """One (system, workload) simulation request with config overrides."""

    system: str
    workload: str
    scale: str = "small"
    overrides: dict = field(default_factory=dict)

    def config(self):
        return preset(self.system, **self.overrides)

    def label(self):
        knobs = ",".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))
        return f"{self.system}/{self.workload}@{self.scale}" + (
            f" [{knobs}]" if knobs else "")


def _simulate(req, cache_dir, disk, use_cache):
    """Worker body: simulate one request, persisting through a local cache."""
    cache = ResultCache(cache_dir=cache_dir, disk=disk and use_cache)
    result = run_pair(req.system, req.workload, req.scale,
                      use_cache=use_cache, cache=cache, **req.overrides)
    return result.to_dict()


class ParallelRunner:
    """Run many :class:`RunRequest`\\ s concurrently with shared caching."""

    def __init__(self, jobs=None, use_cache=True, cache=None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.cache = cache if cache is not None else get_cache()
        self._summary = None

    # ------------------------------------------------------------------- run

    def run(self, requests, progress=False):
        """Resolve every request; returns RunResults aligned with input."""
        requests = list(requests)
        t0 = time.perf_counter()
        results = [None] * len(requests)
        hits = 0
        # a disabled parent cache means fully cacheless (workers included)
        use_cache = self.use_cache and self.cache.enabled
        pending = {}  # cache key -> (request, [indices])
        for i, req in enumerate(requests):
            key = self.cache.key_for(req.config(), req.workload, req.scale)
            hit = self.cache.get(key) if use_cache else None
            if hit is not None:
                results[i] = hit
                hits += 1
                continue
            # without caching, duplicate requests are deliberately re-simulated
            pending.setdefault(key if use_cache else object(),
                               (req, []))[1].append(i)

        n_sim = len(pending)
        done = 0
        sim_wall = 0.0
        if progress and hits:
            self._log(f"[cache] {hits}/{len(requests)} requests served "
                      f"from cache")

        def finish(key, req, idxs, result):
            nonlocal done, sim_wall
            done += 1
            sim_wall += result.timing.get("wall_s", 0.0)
            if use_cache:
                self.cache.put(key, result)
            for i in idxs:
                results[i] = result
            if progress:
                self._log(f"[{done}/{n_sim}] {req.label()} simulated in "
                          f"{result.timing.get('wall_s', 0.0):.2f}s")

        if n_sim and self.jobs > 1:
            with ProcessPoolExecutor(max_workers=min(self.jobs, n_sim)) as pool:
                futs = {
                    pool.submit(_simulate, req, self.cache.cache_dir,
                                self.cache.disk, use_cache): (key, req, idxs)
                    for key, (req, idxs) in pending.items()
                }
                not_done = set(futs)
                while not_done:
                    ready, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in ready:
                        key, req, idxs = futs[fut]
                        finish(key, req, idxs, RunResult.from_dict(fut.result()))
        else:
            for key, (req, idxs) in pending.items():
                result = run_pair(req.system, req.workload, req.scale,
                                  use_cache=use_cache, cache=self.cache,
                                  **req.overrides)
                finish(key, req, idxs, result)

        self._summary = {
            "requests": len(requests),
            "cache_hits": hits,
            "simulated": n_sim,
            "jobs": self.jobs,
            "wall_s": time.perf_counter() - t0,
            "sim_wall_s": sim_wall,
        }
        return results

    def warm(self, requests, progress=False):
        """Fill the cache for ``requests``; the sweep's serial readers then
        hit memory/disk only."""
        self.run(requests, progress=progress)
        return self._summary

    def summary(self):
        """Stats from the most recent :meth:`run`."""
        return dict(self._summary) if self._summary else None

    @staticmethod
    def _log(msg):
        print(msg, file=sys.stderr, flush=True)


def warm_cache(requests, jobs=None, progress=False):
    """Convenience: prefetch ``requests`` into the global cache in parallel.

    No-op (beyond cache lookups) when everything is already cached; called by
    the figure/table/ablation generators when invoked with ``jobs > 1``.
    """
    if jobs is None or jobs <= 1:
        return None
    return ParallelRunner(jobs=jobs).warm(requests, progress=progress)


def format_summary(summary):
    if not summary:
        return "no runs recorded"
    return (f"{summary['requests']} requests: {summary['cache_hits']} cache "
            f"hits, {summary['simulated']} simulated on {summary['jobs']} "
            f"jobs in {summary['wall_s']:.1f}s wall "
            f"({summary['sim_wall_s']:.1f}s total sim time)")
