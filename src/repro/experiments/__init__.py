"""Experiment harness: runners, caching, per-figure/table generators, CLI."""

from repro.experiments.cache import ResultCache, configure, get_cache, set_cache
from repro.experiments.parallel import (
    ParallelRunner,
    RunRequest,
    format_summary,
    warm_cache,
)
from repro.experiments.runner import clear_cache, run_pair, speedups_over_1l
from repro.experiments import figures, tables

__all__ = [
    "ResultCache",
    "configure",
    "get_cache",
    "set_cache",
    "ParallelRunner",
    "RunRequest",
    "format_summary",
    "warm_cache",
    "clear_cache",
    "run_pair",
    "speedups_over_1l",
    "figures",
    "tables",
]
