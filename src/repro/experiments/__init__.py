"""Experiment harness: runners, per-figure/table generators, CLI."""

from repro.experiments.runner import clear_cache, run_pair, speedups_over_1l
from repro.experiments import figures, tables

__all__ = ["clear_cache", "run_pair", "speedups_over_1l", "figures", "tables"]
