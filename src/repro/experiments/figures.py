"""Regenerate every figure of the paper's evaluation (Figs. 4-11).

Each ``figN`` function returns plain data structures (dicts keyed by
workload/system) that the CLI and the benchmark harness print; shapes match
the corresponding paper figure so paper-vs-measured comparison is direct.

Every generator accepts ``jobs=N``: with ``N > 1`` it first enumerates its
(system, workload, knobs) sweep and prefetches the misses through
:class:`~repro.experiments.parallel.ParallelRunner`, then reads everything
back from the (now warm) result cache — so the serial aggregation below
stays byte-identical while the simulations run ``N``-wide.
"""

from __future__ import annotations

from repro.power import (
    BIG_LEVELS,
    LITTLE_LEVELS,
    freqs,
    pareto_frontier,
    system_power_w,
)
from repro.soc import SYSTEM_NAMES
from repro.experiments.parallel import RunRequest, warm_cache
from repro.experiments.runner import run_pair
from repro.utils import geomean
from repro.workloads import DATA_PARALLEL, KERNELS, TASK_PARALLEL

#: Figure 7's three 1b-4VL configurations (chimes / packed-element support).
FIG7_CONFIGS = {
    "1c": dict(chimes=1, packed=False),
    "1c+sw": dict(chimes=1, packed=True),
    "2c+sw": dict(chimes=2, packed=True),
}

#: Figure 8's VMU load/store data-queue depths (cache lines per VMSU).
FIG8_DEPTHS = (4, 8, 16, 32, 64)

#: The engine-bearing systems compared in Figs. 5 & 6.
VECTOR_SYSTEMS = ("1bIV-4L", "1bDV", "1b-4VL")


def fig4(scale="small", systems=SYSTEM_NAMES, workloads=None, jobs=None):
    """Speedup over 1L for every system and workload (plus geomeans)."""
    if workloads is None:
        workloads = TASK_PARALLEL + KERNELS + DATA_PARALLEL
    warm_cache(fig4_requests(scale, systems, workloads), jobs=jobs)
    out = {}
    for w in workloads:
        base = run_pair("1L", w, scale).stats["time_ps"]
        out[w] = {s: base / run_pair(s, w, scale).stats["time_ps"] for s in systems}
    summary = {}
    tp = [w for w in workloads if w in TASK_PARALLEL]
    dp = [w for w in workloads if w in DATA_PARALLEL]
    for s in systems:
        if tp:
            summary[f"{s}.task_parallel_geomean"] = geomean([out[w][s] for w in tp])
        if dp:
            summary[f"{s}.data_parallel_geomean"] = geomean([out[w][s] for w in dp])
    return {"speedups": out, "summary": summary}


def fig4_requests(scale="small", systems=SYSTEM_NAMES, workloads=None):
    """The full (system, workload) sweep behind :func:`fig4`."""
    if workloads is None:
        workloads = TASK_PARALLEL + KERNELS + DATA_PARALLEL
    sys_all = list(dict.fromkeys(["1L", *systems]))
    return [RunRequest(s, w, scale) for w in workloads for s in sys_all]


def _normalized_requests(stat_key, scale, workloads, jobs=None):
    warm_cache([RunRequest(s, w, scale)
                for w in workloads for s in ("1bDV", *VECTOR_SYSTEMS)],
               jobs=jobs)
    out = {}
    for w in workloads:
        base = run_pair("1bDV", w, scale).stats[stat_key]
        out[w] = {
            s: run_pair(s, w, scale).stats[stat_key] / max(base, 1)
            for s in VECTOR_SYSTEMS
        }
    return out


def fig5(scale="small", workloads=None, jobs=None):
    """Instruction-fetch requests normalized to 1bDV (vectorizable apps)."""
    if workloads is None:
        workloads = KERNELS + DATA_PARALLEL
    return _normalized_requests("fetch_requests", scale, workloads, jobs=jobs)


def fig6(scale="small", workloads=None, jobs=None):
    """Data requests to memory normalized to 1bDV."""
    if workloads is None:
        workloads = KERNELS + DATA_PARALLEL
    return _normalized_requests("data_requests", scale, workloads, jobs=jobs)


def fig7(scale="small", workloads=None, jobs=None):
    """Per-lane execution-time breakdown of 1b-4VL under the three
    compute-pipeline configurations (1c, 1c+sw, 2c+sw)."""
    if workloads is None:
        workloads = KERNELS + DATA_PARALLEL
    warm_cache([RunRequest("1b-4VL", w, scale, dict(kw))
                for w in workloads for kw in FIG7_CONFIGS.values()], jobs=jobs)
    out = {}
    for w in workloads:
        out[w] = {}
        for cname, kw in FIG7_CONFIGS.items():
            res = run_pair("1b-4VL", w, scale, **kw)
            bd = {
                k.split(".")[-1]: v
                for k, v in res.stats.items()
                if k.startswith("vlittle.lane_stall.")
            }
            bd["cycles"] = res.cycles
            out[w][cname] = bd
    return out


def fig8(scale="small", workloads=None, depths=FIG8_DEPTHS, jobs=None):
    """1b-4VL performance vs VMU load/store data-queue depth, normalized to
    the deepest configuration."""
    if workloads is None:
        workloads = KERNELS + DATA_PARALLEL
    warm_cache([RunRequest("1b-4VL", w, scale, dict(vmu_loadq=d, vmu_storeq=d))
                for w in workloads for d in depths], jobs=jobs)
    out = {}
    for w in workloads:
        times = {}
        for d in depths:
            times[d] = run_pair("1b-4VL", w, scale,
                                vmu_loadq=d, vmu_storeq=d).stats["time_ps"]
        best = times[max(depths)]
        out[w] = {d: best / t for d, t in times.items()}  # relative performance
    return out


def _dvfs_requests(system, workload, scale, big_levels, little_levels):
    out = []
    for b in big_levels:
        for l in little_levels:
            fb, fl = freqs(b, l)
            out.append(RunRequest(system, workload, scale,
                                  dict(freq_big=fb, freq_little=fl)))
    return out


def _dvfs_points(system, workload, scale, big_levels, little_levels):
    pts = {}
    for b in big_levels:
        for l in little_levels:
            fb, fl = freqs(b, l)
            r = run_pair(system, workload, scale, freq_big=fb, freq_little=fl)
            pts[(b, l)] = r.stats["time_ps"]
    return pts


def fig9(scale="small", workloads=None, systems=("1bIV-4L", "1b-4VL"), jobs=None):
    """Speedup over 1L@1GHz at every (big, little) DVFS combination."""
    if workloads is None:
        workloads = DATA_PARALLEL
    reqs = [RunRequest("1L", w, scale) for w in workloads]
    for w in workloads:
        for s in systems:
            reqs += _dvfs_requests(s, w, scale, BIG_LEVELS, LITTLE_LEVELS)
    warm_cache(reqs, jobs=jobs)
    out = {}
    for w in workloads:
        base = run_pair("1L", w, scale).stats["time_ps"]
        out[w] = {}
        for s in systems:
            pts = _dvfs_points(s, w, scale, BIG_LEVELS, LITTLE_LEVELS)
            out[w][s] = {k: base / t for k, t in pts.items()}
    return out


def fig10(scale="small", workloads=None, jobs=None):
    """1b-4VL execution time vs estimated power across the DVFS grid,
    plus the per-workload Pareto-optimal points."""
    if workloads is None:
        workloads = DATA_PARALLEL
    warm_cache([r for w in workloads
                for r in _dvfs_requests("1b-4VL", w, scale,
                                        BIG_LEVELS, LITTLE_LEVELS)], jobs=jobs)
    out = {}
    for w in workloads:
        pts = []
        for (b, l), t in _dvfs_points("1b-4VL", w, scale,
                                      BIG_LEVELS, LITTLE_LEVELS).items():
            pts.append((t, system_power_w("1b-4VL", b, l), (b, l)))
        out[w] = {"points": pts, "pareto": pareto_frontier(pts)}
    return out


def fig11(scale="small", workloads=None,
          systems=("1b-4L", "1bIV-4L", "1bDV", "1b-4VL"), jobs=None):
    """All designs' time/power points and the overall Pareto frontier."""
    if workloads is None:
        workloads = DATA_PARALLEL
    reqs = []
    for w in workloads:
        for s in systems:
            little = LITTLE_LEVELS if s != "1bDV" else {"l1": LITTLE_LEVELS["l1"]}
            reqs += _dvfs_requests(s, w, scale, BIG_LEVELS, little)
    warm_cache(reqs, jobs=jobs)
    out = {}
    for w in workloads:
        sys_pts = {}
        for s in systems:
            little = LITTLE_LEVELS if s != "1bDV" else {"l1": LITTLE_LEVELS["l1"]}
            pts = []
            for (b, l), t in _dvfs_points(s, w, scale, BIG_LEVELS, little).items():
                pts.append((t, system_power_w(s, b, l), (s, b, l)))
            sys_pts[s] = pts
        allpts = [p for pts in sys_pts.values() for p in pts]
        out[w] = {"points": sys_pts, "pareto": pareto_frontier(allpts)}
    return out


# ------------------------------------------------------------------ printing


def print_fig4(data):
    systems = list(next(iter(data["speedups"].values())))
    print(f"{'workload':16s}" + "".join(f"{s:>10s}" for s in systems))
    for w, row in data["speedups"].items():
        print(f"{w:16s}" + "".join(f"{row[s]:10.2f}" for s in systems))
    for k, v in data["summary"].items():
        print(f"  {k}: {v:.2f}")


def print_normalized(data, title):
    print(title)
    systems = list(next(iter(data.values())))
    print(f"{'workload':16s}" + "".join(f"{s:>10s}" for s in systems))
    for w, row in data.items():
        print(f"{w:16s}" + "".join(f"{row[s]:10.2f}" for s in systems))


def print_fig7(data):
    cats = ["busy", "simd", "raw_mem", "raw_llfu", "struct", "xelem", "misc"]
    for w, cfgs in data.items():
        print(w)
        for cname, bd in cfgs.items():
            total = max(sum(bd.get(c, 0) for c in cats), 1)
            frac = " ".join(f"{c}={bd.get(c, 0) / total:.2f}" for c in cats)
            print(f"  {cname:7s} cycles={bd['cycles']:8d}  {frac}")


def print_fig8(data):
    depths = sorted(next(iter(data.values())))
    print(f"{'workload':16s}" + "".join(f"{d:>8d}" for d in depths))
    for w, row in data.items():
        print(f"{w:16s}" + "".join(f"{row[d]:8.2f}" for d in depths))


def print_fig9(data):
    for w, systems in data.items():
        print(w)
        for s, pts in systems.items():
            print(f"  {s}")
            for b in BIG_LEVELS:
                row = " ".join(f"{pts[(b, l)]:6.2f}" for l in LITTLE_LEVELS)
                print(f"    {b}: {row}")


def print_fig10(data):
    for w, d in data.items():
        tags = [t for _, _, t in d["pareto"]]
        print(f"{w:16s} pareto points (low power -> high perf): {tags}")


def print_fig11(data):
    for w, d in data.items():
        tags = [t for _, _, t in d["pareto"]]
        print(f"{w:16s} frontier: {tags}")
