"""Persistent result cache for the experiment harness.

Every ``run_pair`` outcome is memoized twice:

* **in memory** — a per-process dict, so repeated lookups within one harness
  invocation return the *same* :class:`RunResult` object, and
* **on disk** — one JSON file per result under ``results/cache/`` (override
  with ``$BIGVLITTLE_CACHE_DIR``), so a re-run of the CLI, the figure
  generators, or a killed full-paper reproduction resumes instead of
  re-simulating.

The key is a SHA-256 over a canonical payload containing the **complete**
serialized :class:`~repro.soc.SoCConfig` (every field, ``mem`` included),
the workload identity ``(name, scale)``, and the simulator version.  Hashing
the whole config replaces the old hand-picked key tuple, which silently
aliased configs that differed in any field it forgot to list.

A corrupted or truncated cache file is treated as a miss: the harness warns,
counts it (``stats()["corrupt"]``, shown by ``bigvlittle cache stats``), and
re-simulates rather than crashing.

The disk level can be **sharded** by config-hash prefix
(``shards=N`` > 0): entries land in ``<cache_dir>/<key[:N]>/<key>.json``
instead of one flat directory, so a long-lived service holding hundreds of
thousands of results never pays a single giant ``listdir`` and the shard
directories are natural units for multi-host distribution.  A sharded
cache still *reads* flat legacy entries (written by ``shards=0`` harness
runs against the same directory), so pointing the sweep service at an
existing ``results/cache`` loses nothing.  ``prune(max_bytes)`` evicts
least-recently-touched entries (by file mtime) until the disk level fits
the budget — shard-aware, counted in ``stats()["pruned"]`` and exposed as
``bigvlittle cache prune --max-bytes N``.

When sweep telemetry is enabled (:mod:`repro.experiments.telemetry`), every
lookup also emits a ``cache_hit`` / ``cache_miss`` / ``cache_corrupt`` event
on exactly the branches that bump the hit/miss counters, so a sweep's JSONL
log reconciles with :meth:`ResultCache.stats` to the event.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings

import repro
from repro.experiments import telemetry
from repro.stats import RunResult

#: results produced by a different simulator version never collide with ours
SIM_VERSION = repro.__version__

_ENV_DIR = "BIGVLITTLE_CACHE_DIR"
_DEFAULT_DIR = os.path.join("results", "cache")


def default_cache_dir():
    return os.environ.get(_ENV_DIR, _DEFAULT_DIR)


class ResultCache:
    """Two-level (memory + disk) cache keyed by full-config content hash."""

    def __init__(self, cache_dir=None, disk=True, enabled=True, shards=0):
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self.disk = disk
        self.enabled = enabled
        self.shards = int(shards)  # hex-prefix length; 0 = flat legacy layout
        self._mem = {}
        self.hits = 0          # served from memory or disk
        self.disk_hits = 0     # subset of hits that came off disk
        self.misses = 0
        self.corrupt = 0       # disk files that failed to parse (each a miss)
        self.pruned = 0        # entries evicted by prune(max_bytes)

    # ------------------------------------------------------------------ keys

    def key_for(self, cfg, workload_name, scale):
        """Content-hash key for one (config, workload, scale) run."""
        payload = {
            "sim_version": SIM_VERSION,
            "workload": workload_name,
            "scale": scale,
            "config": cfg.to_dict(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, key):
        """On-disk path for ``key`` under the cache's current layout."""
        if self.shards:
            return os.path.join(self.cache_dir, key[: self.shards],
                                f"{key}.json")
        return os.path.join(self.cache_dir, f"{key}.json")

    # legacy private name, still used by older call sites
    _path = path_for

    def _flat_path(self, key):
        return os.path.join(self.cache_dir, f"{key}.json")

    def _entry_paths(self):
        """Every entry file on disk: the flat level plus one shard level."""
        if not os.path.isdir(self.cache_dir):
            return
        for fn in sorted(os.listdir(self.cache_dir)):
            p = os.path.join(self.cache_dir, fn)
            if fn.endswith(".json"):
                yield p
            elif os.path.isdir(p):
                for sub in sorted(os.listdir(p)):
                    if sub.endswith(".json"):
                        yield os.path.join(p, sub)

    # ---------------------------------------------------------------- lookup

    def get(self, key):
        """Return the cached :class:`RunResult` for ``key``, or ``None``."""
        if not self.enabled:
            return None
        # telemetry events are emitted on exactly the branches that bump the
        # counters, so a sweep log's hit/miss counts match stats() exactly
        tel = telemetry.current()
        if key in self._mem:
            self.hits += 1
            if tel is not None:
                tel.event("cache_hit", key=key, level="memory",
                          load_wall_s=0.0)
            return self._mem[key]
        if self.disk:
            path = self.path_for(key)
            if self.shards and not os.path.exists(path):
                # a sharded cache still reads flat legacy entries in place
                path = self._flat_path(key)
            if os.path.exists(path):
                t0 = time.perf_counter()
                try:
                    with open(path) as f:
                        record = json.load(f)
                    result = RunResult.from_dict(record["result"])
                except (OSError, ValueError, KeyError, TypeError) as e:
                    self.corrupt += 1
                    if tel is not None:
                        tel.event("cache_corrupt", key=key, path=path)
                    warnings.warn(
                        f"corrupted result-cache file {path} ({e!r}); "
                        f"re-simulating", RuntimeWarning, stacklevel=2)
                else:
                    load_s = time.perf_counter() - t0
                    result.timing["from_cache"] = True
                    result.timing["load_wall_s"] = round(load_s, 6)
                    self._mem[key] = result
                    self.hits += 1
                    self.disk_hits += 1
                    if tel is not None:
                        tel.event("cache_hit", key=key, level="disk",
                                  load_wall_s=round(load_s, 6))
                    return result
        self.misses += 1
        if tel is not None:
            tel.event("cache_miss", key=key)
        return None

    def put(self, key, result):
        if not self.enabled:
            return
        self._mem[key] = result
        if self.disk:
            target = self.path_for(key)
            target_dir = os.path.dirname(target)
            os.makedirs(target_dir, exist_ok=True)
            record = {"sim_version": SIM_VERSION, "result": result.to_dict()}
            # atomic write: parallel workers may race on the same key, so the
            # temp file lives in the *target* directory (same filesystem) and
            # lands via an atomic rename — a reader sees the old complete
            # file or the new complete file, never a torn one
            fd, tmp = tempfile.mkstemp(dir=target_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(record, f)
                os.replace(tmp, target)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------- lifecycle

    def clear(self):
        """Empty both levels: the process dict and the on-disk files
        (flat entries, shard directories, and stray temp files alike)."""
        self._mem.clear()
        if not os.path.isdir(self.cache_dir):
            return
        for fn in os.listdir(self.cache_dir):
            p = os.path.join(self.cache_dir, fn)
            if fn.endswith(".json") or fn.endswith(".tmp"):
                try:
                    os.unlink(p)
                except OSError:
                    pass
            elif os.path.isdir(p):
                for sub in os.listdir(p):
                    if sub.endswith(".json") or sub.endswith(".tmp"):
                        try:
                            os.unlink(os.path.join(p, sub))
                        except OSError:
                            pass

    def prune(self, max_bytes):
        """Evict least-recently-touched disk entries until the disk level
        fits ``max_bytes``.

        LRU is approximated by file mtime (a disk hit does not rewrite the
        file, so this is least-recently-*written*; a service whose hot keys
        re-land via ``put`` keeps them fresh).  Shard-aware: entries are
        collected across the flat level and every shard directory.  Evicted
        keys are dropped from the memory level too, so a pruned entry is
        really gone.  Returns ``{"removed", "bytes_freed", "disk_bytes"}``.
        """
        entries = []
        total = 0
        for p in self._entry_paths():
            try:
                st = os.stat(p)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        entries.sort()
        removed = freed = 0
        for mtime, size, p in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(p)
            except OSError:
                continue
            key = os.path.basename(p)[: -len(".json")]
            self._mem.pop(key, None)
            total -= size
            freed += size
            removed += 1
        self.pruned += removed
        return {"removed": removed, "bytes_freed": freed,
                "disk_bytes": total}

    def stats(self):
        disk_entries = disk_bytes = 0
        shard_dirs = set()
        if self.disk:
            for p in self._entry_paths():
                disk_entries += 1
                try:
                    disk_bytes += os.path.getsize(p)
                except OSError:
                    pass
                parent = os.path.dirname(p)
                if parent != self.cache_dir.rstrip(os.sep):
                    shard_dirs.add(parent)
        return {
            "dir": self.cache_dir,
            "enabled": self.enabled,
            "disk": self.disk,
            "shards": self.shards,
            "shard_dirs": len(shard_dirs),
            "memory_entries": len(self._mem),
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "pruned": self.pruned,
        }


# --------------------------------------------------------------- global cache

_cache = None


def get_cache():
    """The process-wide cache used by ``run_pair`` when none is passed."""
    global _cache
    if _cache is None:
        _cache = ResultCache()
    return _cache


def set_cache(cache):
    """Replace the global cache (tests point it at a tmp directory)."""
    global _cache
    _cache = cache
    return _cache


def configure(cache_dir=None, disk=None, enabled=None, shards=None):
    """Tweak the global cache in place; returns it."""
    c = get_cache()
    if cache_dir is not None:
        c.cache_dir = cache_dir
        c._mem.clear()
    if disk is not None:
        c.disk = disk
    if enabled is not None:
        c.enabled = enabled
    if shards is not None:
        c.shards = int(shards)
    return c
