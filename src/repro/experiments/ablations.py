"""Design-space ablations for the choices DESIGN.md calls out.

Beyond the paper's own sweeps (Fig. 7 chimes/packing, Fig. 8 queue depth),
these ablate the remaining design decisions and the paper's stated future
work:

* ``cluster_scaling``   — VLITTLE engines built from 2 / 4 / 8 little cores
  (the paper's conclusion: "future research can explore the scalability of
  big.VLITTLE architectures").
* ``switch_penalty``    — sensitivity to the mode-switch cost (§IV-A's fixed
  500 cycles) as a function of vector-region size.
* ``vxu_topology``      — the pipelined ring (§III-D) vs an idealized
  crossbar (extra latency 0) for cross-element-heavy code.
* ``coalesce_width``    — the VMIU's indexed-coalescing window (§III-E's
  "e.g., four").
* ``dram_bandwidth``    — how much of big.VLITTLE's win survives on a
  bandwidth-starved memory system.
"""

from __future__ import annotations

from repro.experiments.parallel import RunRequest, warm_cache
from repro.experiments.runner import run_pair
from repro.soc import preset


def cluster_scaling(workload="saxpy", scale="small", sizes=(2, 4, 8), jobs=None):
    """Speedup over 1L of VLITTLE engines with different lane counts.

    The trace is regenerated per size: more lanes -> longer hardware vector
    (VLA code adapts automatically, as on real RVV hardware)."""
    warm_cache([RunRequest("1L", workload, scale)]
               + [RunRequest("1b-4VL", workload, scale, dict(n_little=n))
                  for n in sizes], jobs=jobs)
    base = run_pair("1L", workload, scale).stats["time_ps"]
    out = {}
    for n in sizes:
        cfg = preset("1b-4VL", n_little=n)
        r = run_pair("1b-4VL", workload, scale, cfg=cfg)
        out[n] = {
            "vlen_bits": cfg.vlen_bits(4),
            "speedup": base / r.stats["time_ps"],
        }
    return out


def switch_penalty(workload="saxpy", scales=("tiny", "small"),
                   penalties=(0, 500, 2000, 8000), jobs=None):
    """Relative slowdown of 1b-4VL vs zero-cost switching, per region size."""
    warm_cache([RunRequest("1b-4VL", workload, s, dict(switch_penalty=p))
                for s in scales for p in penalties], jobs=jobs)
    out = {}
    for scale in scales:
        base = None
        row = {}
        for p in penalties:
            t = run_pair("1b-4VL", workload, scale,
                         switch_penalty=p).stats["time_ps"]
            base = base or t
            row[p] = t / base
        out[scale] = row
    return out


def vxu_topology(workload="kmeans", scale="small", latencies=(0, 2, 8), jobs=None):
    """Ring (latency 2) vs crossbar (0) vs a slow serial network (8)."""
    warm_cache([RunRequest("1b-4VL", workload, scale, dict(vxu_extra_latency=lat))
                for lat in latencies], jobs=jobs)
    out = {}
    for lat in latencies:
        out[lat] = run_pair("1b-4VL", workload, scale,
                            vxu_extra_latency=lat).stats["time_ps"]
    base = out[min(latencies)]
    return {lat: t / base for lat, t in out.items()}


def coalesce_width(workload="particlefilter", scale="small", widths=(1, 2, 4, 8),
                   jobs=None):
    """VMIU indexed-coalescing window sweep (relative performance)."""
    warm_cache([RunRequest("1b-4VL", workload, scale, dict(coalesce_width=wdt))
                for wdt in widths], jobs=jobs)
    times = {}
    for wdt in widths:
        times[wdt] = run_pair("1b-4VL", workload, scale,
                              coalesce_width=wdt).stats["time_ps"]
    best = min(times.values())
    return {wdt: best / t for wdt, t in times.items()}


def dram_bandwidth(workload="vvadd", scale="small", intervals=(1, 2, 8, 16),
                   jobs=None):
    """1b-4VL vs 1bIV-4L advantage as DRAM bandwidth shrinks
    (line service interval in memory cycles: larger = less bandwidth)."""
    warm_cache([RunRequest(s, workload, scale,
                           dict(mem=dict(dram_line_interval=iv)))
                for s in ("1b-4VL", "1bIV-4L") for iv in intervals], jobs=jobs)
    out = {}
    for iv in intervals:
        mem = dict(dram_line_interval=iv)
        t_vl = run_pair("1b-4VL", workload, scale, mem=mem).stats["time_ps"]
        t_iv = run_pair("1bIV-4L", workload, scale, mem=mem).stats["time_ps"]
        out[iv] = t_iv / t_vl
    return out


def graph_topology(apps=("bfs", "pagerank", "cc"), scale="small", jobs=None):
    """Multicore scaling (1b-4L over 1b) on power-law vs uniform graphs.

    Skewed rMAT degree distributions create load imbalance that random work
    stealing must absorb; uniform graphs parallelize more evenly."""
    from repro.soc import System, preset
    from repro.workloads import get_workload

    out = {}
    for kind in ("rmat", "uniform"):
        row = {}
        for app in apps:
            w1 = get_workload(app, scale, graph_kind=kind)
            t1 = System(preset("1b")).run(w1.scalar_trace()).stats["time_ps"]
            w2 = get_workload(app, scale, graph_kind=kind)
            t4 = System(preset("1b-4L")).run(w2.task_program()).stats["time_ps"]
            row[app] = t1 / t4
        out[kind] = row
    return out


def region_granularity(scale="small", n_regions=(1, 2, 4, 8), elems=2048,
                       switch_penalty=500, jobs=None):
    """Cost of fine-grained mode switching (§III-B: switching "typically
    happens at a coarse-grained level ... to amortize its overhead").

    The same total vector work split into N regions with a mode exit (CSR
    write + engine drain + re-switch) between them; reported as slowdown
    relative to a single region."""
    from repro.soc import System, preset
    from repro.trace import TraceBuilder, VectorBuilder

    def trace(vlen_bits, n):
        tb = TraceBuilder()
        vb = VectorBuilder(tb, vlen_bits=vlen_bits)
        per = elems // n
        for r in range(n):
            base = 0x100000 + r * 0x40000
            for chunk, vl in vb.strip_mine(base, per, ew=4):
                v = vb.vle(chunk, vl=vl)
                v2 = vb.vfmul(v, v)
                vb.vse(v2, chunk + 0x20000, vl=vl)
            if r != n - 1:
                vb.mode_exit()
                for _ in range(30):
                    tb.addi(None)
        return tb.finish(f"regions-{n}")

    out = {}
    base_t = None
    for n in n_regions:
        cfg = preset("1b-4VL", switch_penalty=switch_penalty)
        t = System(cfg).run(trace(cfg.vlen_bits(4), n)).stats["time_ps"]
        base_t = base_t or t
        out[n] = t / base_t
    return out
