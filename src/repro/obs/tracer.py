"""Structured event tracer with Chrome ``trace_event`` export.

Events are timestamped in simulated picoseconds and stored in a bounded
ring buffer (oldest events are dropped once ``max_events`` is reached, so
an instrumented run can never exhaust host memory).  ``retain="ends"``
switches the drop policy to *keep first N/2 + last N/2*: the first half of
the budget is frozen once filled and the ring only recycles the second
half, so a long run keeps both its prologue (mode switches, cold misses)
and its steady state.  Each component logs onto its own *track*; tracks
are grouped into processes (``cores``, ``vector``, ``mem``) so Perfetto /
``chrome://tracing`` renders one lane per component.

On export, timestamps are divided by 1000 (1 viewer microsecond == 1
simulated nanosecond == one cycle at 1 GHz), which keeps the JSON integer
and the viewer's time axis readable.
"""

from __future__ import annotations

import json
from collections import deque

# event kinds (match Chrome trace_event "ph" phases)
_BEGIN = "B"
_END = "E"
_INSTANT = "i"
_COMPLETE = "X"
_COUNTER = "C"

#: divide sim-picosecond timestamps by this for export (ps -> ns)
TS_DIVISOR = 1000


class Tracer:
    """Bounded structured event log with per-component tracks."""

    __slots__ = ("max_events", "retain", "events", "head", "_head_cap",
                 "dropped", "_tracks", "_pids")

    def __init__(self, max_events=1_000_000, retain="tail"):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        if retain not in ("tail", "ends"):
            raise ValueError("retain must be 'tail' or 'ends'")
        self.max_events = max_events
        self.retain = retain
        # "tail" keeps the newest max_events; "ends" freezes the first half
        # of the budget and rings only the second half
        self._head_cap = max_events // 2 if retain == "ends" else 0
        self.head = []
        self.events = deque(maxlen=max_events - self._head_cap)
        self.dropped = 0
        self._tracks = {}  # name -> (pid, tid)
        self._pids = {}  # process name -> pid

    # ---------------------------------------------------------------- tracks

    def track(self, name, process="sim"):
        """Register (or look up) a track; returns its name as the handle."""
        if name not in self._tracks:
            pid = self._pids.setdefault(process, len(self._pids) + 1)
            tid = 1 + sum(1 for p, _ in self._tracks.values() if p == pid)
            self._tracks[name] = (pid, tid)
        return name

    # ---------------------------------------------------------------- events

    def _push(self, ev):
        if len(self.head) < self._head_cap:
            self.head.append(ev)
            return
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(ev)

    def instant(self, track, name, ts, args=None):
        self._push((_INSTANT, track, name, ts, 0, args))

    def begin(self, track, name, ts, args=None):
        self._push((_BEGIN, track, name, ts, 0, args))

    def end(self, track, name, ts):
        self._push((_END, track, name, ts, 0, None))

    def complete(self, track, name, ts, dur, args=None):
        """A span with a known duration (Chrome "X" event)."""
        self._push((_COMPLETE, track, name, ts, dur, args))

    def counter(self, track, name, ts, value):
        """A sampled counter series (Chrome "C" event)."""
        self._push((_COUNTER, track, name, ts, 0, value))

    def __len__(self):
        return len(self.head) + len(self.events)

    # ---------------------------------------------------------------- export

    def chrome_trace(self):
        """The full trace as a Chrome ``trace_event`` JSON object."""
        out = []
        for process, pid in sorted(self._pids.items(), key=lambda kv: kv[1]):
            out.append({"ph": "M", "pid": pid, "tid": 0,
                        "name": "process_name", "args": {"name": process}})
        for name, (pid, tid) in self._tracks.items():
            out.append({"ph": "M", "pid": pid, "tid": tid,
                        "name": "thread_name", "args": {"name": name}})
        for ph, track, name, ts, dur, payload in (*self.head, *self.events):
            pid, tid = self._tracks[track]
            ev = {"ph": ph, "pid": pid, "tid": tid, "name": name,
                  "ts": ts // TS_DIVISOR, "cat": "sim"}
            if ph == _COMPLETE:
                ev["dur"] = max(dur // TS_DIVISOR, 1)
            if ph == _INSTANT:
                ev["s"] = "t"  # thread-scoped instant
            if ph == _COUNTER:
                ev["args"] = {"value": payload}
            elif payload is not None:
                ev["args"] = payload
            out.append(ev)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ns",
            "otherData": {
                "source": "repro big.VLITTLE simulator",
                "time_unit": "1 trace us = 1 simulated ns (1 cycle at 1 GHz)",
                "events": len(self),
                "max_events": self.max_events,
                "retain": self.retain,
                "dropped_events": self.dropped,
            },
        }

    def write_json(self, path):
        """Write the Chrome trace to ``path``; returns the event count."""
        doc = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, separators=(",", ":"))
        return len(doc["traceEvents"])
