"""Instruction-grain pipeline lifecycle tracking (``repro.obs.pipeview``).

Every dynamic instruction — scalar and vector, plus the VCU's per-element-
group µops, the VMU's line requests, and the VXU's cross-element ops — gets
a :class:`PipeRecord` carrying begin timestamps for each pipeline stage it
passes through (fetch, issue, complete, VCU queue, broadcast, lane execute,
VMSU/L1 access, ring rotate, …). Records are exported in two formats that
standard pipeline viewers open directly:

* **Kanata** text (``write_kanata``) — the native log format of the
  `Konata <https://github.com/shioyadan/Konata>`_ pipeline visualizer;
* **gem5 O3PipeView** text (``write_o3pipeview``) — consumed by Konata and
  by gem5's ``util/o3-pipeview.py``.

Timestamps are simulated picoseconds; Kanata cycles are reported at the
1 GHz reference clock (1 cycle = 1000 ps), matching the Chrome-trace
convention of :mod:`repro.obs.tracer`. Retired records live in a bounded
ring (``window`` newest instructions); older records drop and are counted
in ``dropped``, mirroring the Tracer's ring-buffer accounting, so tracking
a long run can never exhaust host memory. ``retain="ends"`` freezes the
first ``window // 2`` retirees and rings only the second half, keeping a
long run's prologue *and* its steady state (the Tracer offers the same
policy).

The layer is opt-in *on top of* the opt-in Observation: pass
``Observation(pipeview=PipeView())``. Every hook site in the simulator is
gated on a class-level ``_pv is None`` check, so an Observation without a
PipeView does zero per-instruction work (the overhead guard in
``benchmarks/bench_pipeview_overhead.py`` enforces this).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError

#: 1 Kanata cycle == this many simulated picoseconds (1 GHz reference).
PS_PER_CYCLE = 1000

KANATA_HEADER = "Kanata\t0004"

#: Stage mnemonics used by the simulator's hook sites (left = short name
#: shown by Konata). Kept in one place so exports and docs stay in sync.
STAGES = {
    "F": "fetch / dispatch into the ROB or issue stage",
    "Is": "issued to a functional unit",
    "X": "single-cycle in-order execute",
    "Cp": "result complete / writeback",
    "VD": "handed from the ROB head to the decoupled vector engine",
    "Q": "buffered in a command / µop queue",
    "Bc": "µop broadcast from the VCU to the lanes",
    "Lx": "lane execute",
    "VM": "line request issued by the VMIU",
    "L1": "L1D slice access",
    "SQ": "store line waiting in the VMSU store queue",
    "Gt": "VXU gathering source elements",
    "Rt": "VXU ring rotating",
}

#: Mapping from simulator stage mnemonics onto gem5's fixed O3 stage set.
_O3_MAP = {
    "F": "fetch",
    "Ds": "dispatch",
    "VD": "dispatch",
    "Is": "issue",
    "X": "issue",
    "Cp": "complete",
    "Q": "fetch",
    "Bc": "dispatch",
    "Lx": "issue",
    "VM": "fetch",
    "SQ": "dispatch",
    "L1": "issue",
    "Gt": "fetch",
    "Rt": "issue",
}

_O3_STAGES = ("decode", "rename", "dispatch", "issue", "complete")


class PipeRecord:
    """Lifecycle of one dynamic instruction / µop / line request."""

    __slots__ = ("pvid", "unit", "label", "pc", "stages", "end", "parent", "seq")

    def __init__(self, pvid, unit, label, pc, stage, ts, parent, seq):
        self.pvid = pvid
        self.unit = unit
        self.label = label
        self.pc = pc
        self.stages = [(stage, ts)]
        self.end = None
        self.parent = parent  # producing PipeRecord (dependency edge) or None
        self.seq = seq  # vector sequence id, for µop -> instruction linking

    @property
    def start(self):
        return self.stages[0][1]

    def __repr__(self):
        state = "live" if self.end is None else f"end={self.end}"
        return f"<PipeRecord #{self.pvid} {self.unit} {self.label!r} {state}>"


class PipeView:
    """Bounded per-instruction pipeline tracker with Konata/O3 export."""

    __slots__ = ("window", "retain", "_live", "_head", "_head_cap", "_done",
                 "_seq2rec", "_next_id", "dropped", "retired")

    def __init__(self, window=50_000, retain="tail"):
        if window < 1:
            raise ConfigError("pipeview window must be >= 1")
        if retain not in ("tail", "ends"):
            raise ConfigError("pipeview retain must be 'tail' or 'ends'")
        self.window = window
        self.retain = retain
        self._live = {}  # pvid -> PipeRecord still in flight
        # "tail" rings the whole window; "ends" freezes the first half of
        # the budget and rings only the second half
        self._head_cap = window // 2 if retain == "ends" else 0
        self._head = []
        self._done = deque(maxlen=window - self._head_cap)
        self._seq2rec = {}  # vector seq -> dispatching core's record
        self._next_id = 0
        self.dropped = 0
        self.retired = 0

    # -------------------------------------------------------------- recording

    def begin(self, unit, label, ts, stage="F", pc=0, seq=None, parent=None):
        """Open a record in stage ``stage`` at simulated-ps ``ts``."""
        rec = PipeRecord(self._next_id, unit, label, pc, stage, ts, parent, seq)
        self._next_id += 1
        self._live[rec.pvid] = rec
        if seq is not None:
            self._seq2rec[seq] = rec
        return rec

    def stage(self, rec, name, ts):
        """Advance ``rec`` into stage ``name``; the previous stage ends here."""
        rec.stages.append((name, ts))

    def retire(self, rec, ts):
        """Close the record; it enters the bounded retired ring."""
        rec.end = ts
        self._live.pop(rec.pvid, None)
        if rec.seq is not None:
            self._seq2rec.pop(rec.seq, None)
        if len(self._head) < self._head_cap:
            self._head.append(rec)
        else:
            if len(self._done) == self._done.maxlen:
                self.dropped += 1
            self._done.append(rec)
        self.retired += 1

    def seq_record(self, seq):
        """The in-flight record of the vector instruction with this seq id."""
        return self._seq2rec.get(seq)

    def __len__(self):
        return len(self._head) + len(self._done) + len(self._live)

    # ---------------------------------------------------------------- folding

    def stats_dict(self):
        """Deterministic ints, merged under ``obs.pipeview.*`` in stats."""
        return {
            "obs.pipeview.records": self.retired + len(self._live),
            "obs.pipeview.retired": self.retired,
            "obs.pipeview.dropped": self.dropped,
            "obs.pipeview.window": self.window,
        }

    # ----------------------------------------------------------------- export

    def _export_records(self):
        """Retired + still-live records in start-time order."""
        recs = self._head + list(self._done) + list(self._live.values())
        recs.sort(key=lambda r: (r.start, r.pvid))
        return recs

    @staticmethod
    def _end_of(rec):
        last_stage_ts = rec.stages[-1][1]
        end = rec.end if rec.end is not None else last_stage_ts
        return max(end, last_stage_ts, rec.start)

    def kanata_lines(self, lane=None):
        """The trace as Kanata log lines (Konata's native format).

        With ``lane`` (a :func:`lane_of` group name) only that unit
        group's records are exported — one self-contained log per lane,
        each with its own ``Kanata`` header. Cross-lane dependency
        edges are dropped with the records they point at; within-lane
        edges survive.
        """
        recs = self._export_records()
        if lane is not None:
            recs = [r for r in recs if lane_of(r.unit) == lane]
        fid = {r.pvid: i for i, r in enumerate(recs)}
        events = []  # (cycle, emit order, text)
        n = 0

        def emit(cycle, text):
            nonlocal n
            events.append((cycle, n, text))
            n += 1

        for i, r in enumerate(recs):
            start_c = r.start // PS_PER_CYCLE
            end_c = max(self._end_of(r) // PS_PER_CYCLE, start_c)
            emit(start_c, f"I\t{i}\t{i}\t0")
            emit(start_c, f"L\t{i}\t0\t{_clean(r.label)}")
            emit(start_c, f"L\t{i}\t1\t{_clean(r.unit)} pc={r.pc:#x} start={r.start}ps")
            if r.parent is not None and r.parent.pvid in fid:
                emit(start_c, f"W\t{i}\t{fid[r.parent.pvid]}\t0")
            prev = None
            for name, ts in r.stages:
                c = min(max(ts // PS_PER_CYCLE, start_c), end_c)
                if prev is not None:
                    emit(c, f"E\t{i}\t0\t{prev}")
                emit(c, f"S\t{i}\t0\t{name}")
                prev = name
            emit(end_c, f"E\t{i}\t0\t{prev}")
            emit(end_c, f"R\t{i}\t{i}\t0")

        events.sort(key=lambda e: (e[0], e[1]))
        lines = [KANATA_HEADER]
        cur = events[0][0] if events else 0
        lines.append(f"C=\t{cur}")
        for c, _, text in events:
            if c > cur:
                lines.append(f"C\t{c - cur}")
                cur = c
            lines.append(text)
        return lines

    def o3_lines(self):
        """The trace as gem5 ``O3PipeView:`` lines."""
        lines = []
        for i, r in enumerate(self._export_records()):
            mapped = {}
            for name, ts in r.stages:
                o3 = _O3_MAP.get(name)
                if o3 is not None and o3 not in mapped:
                    mapped[o3] = ts
            start = mapped.pop("fetch", r.start)
            lines.append(
                f"O3PipeView:fetch:{start}:0x{r.pc:08x}:0:{i}:{_clean(r.label, o3=True)}")
            last = start
            for st in _O3_STAGES:
                last = max(mapped.get(st, last), last)
                lines.append(f"O3PipeView:{st}:{last}")
            end = max(self._end_of(r), last)
            lines.append(f"O3PipeView:retire:{end}:store:0")
        return lines

    def lanes(self):
        """Sorted lane-group names with at least one record."""
        return sorted({lane_of(r.unit) for r in self._export_records()})

    def write_kanata(self, path):
        """Write the Kanata log to ``path``; returns the record count."""
        lines = self.kanata_lines()
        with open(path, "w", encoding="utf-8") as f:
            f.write("\n".join(lines))
            f.write("\n")
        return len(self)

    def write_kanata_lanes(self, prefix):
        """Write one Kanata log per unit-group lane.

        Konata renders one flat id space per file, so a combined log
        interleaves big-core ROB entries with VCU µops and VMU line
        requests; splitting by :func:`lane_of` group gives one viewer
        tab per machine layer. Files are named
        ``<prefix>.<lane>.kanata``; returns ``{lane: path}`` for the
        non-empty lanes.
        """
        out = {}
        for lane in self.lanes():
            path = f"{prefix}.{lane}.kanata"
            with open(path, "w", encoding="utf-8") as f:
                f.write("\n".join(self.kanata_lines(lane=lane)))
                f.write("\n")
            out[lane] = path
        return out

    def write_o3pipeview(self, path):
        """Write gem5 O3PipeView lines to ``path``; returns the record count."""
        with open(path, "w", encoding="utf-8") as f:
            for line in self.o3_lines():
                f.write(line)
                f.write("\n")
        return len(self)


def lane_of(unit):
    """Konata lane group for a hook-site unit name: core pipelines
    (big ROBs and little in-order pipes), engine µops (VCU / DVE
    command streams, lane executes, VXU ring ops), or memory-side line
    requests (the VMU's VMIU/VMSU traffic)."""
    if unit.startswith(("big", "lit")):
        return "cores"
    if unit == "vmu":
        return "mem"
    return "engine"


def _clean(text, o3=False):
    """Labels must not carry the format's structural characters."""
    text = str(text).replace("\t", " ").replace("\n", " ")
    if o3:
        text = text.replace(":", ";")
    return text
