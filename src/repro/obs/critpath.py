"""Sim-time critical-path attribution for the event-driven core.

:mod:`repro.obs.host` answers "where does the *host* spend wall-time?";
this module answers the dual scheduling question: **which unit group
gates simulated time?** A :class:`CritPath` attaches to one run of the
event core (``System.run(..., critpath=CritPath())``) and charges every
advance of the union-grid clock to the unit group whose armed event
gated it — the first unit to *execute* at the new instant, which by the
event core's determinism rules (ties break by uid, uids are assigned in
ground order) is exactly the earliest-armed unit that forced the loop to
stop there. Spans that end in a boundary-only iteration (sampler,
watchdog, horizon — no unit executes) roll forward into the next
executing instant, so the per-group critical sim-times **tile the total
simulated time exactly**: ``sum(groups) == time_ps``, enforced by
:meth:`tiles` and the critpath tests.

Alongside the time breakdown, every ``_ev_notify`` wakeup edge is
counted (waker unit -> woken unit), giving a wakeup-graph profile: which
seams actually re-arm sleepers, and how often. The edge where the waker
is the scheduler itself (boundary iterations, outside any unit tick) is
reported as ``external``.

Like :class:`~repro.obs.host.HostScope`, a CritPath is a null-object
opt-in: nothing in the simulator references it unless one is attached,
stats stay bit-identical with and without it (determinism-tested), and
it is never part of :class:`~repro.soc.SoCConfig` or cache keys. It
requires the event loop — the legacy/dense loops advance all domains in
lockstep and have no per-unit gating to attribute.

The report (``bigvlittle-critpath-v1``; CLI ``bigvlittle critpath``)
is the before/after measurement for the ROADMAP's vectorized-lane-
execution work: the group carrying the largest critical-sim-time share
is the one whose latency actually bounds the simulated clock.

A run that deadlocks still tiles: the span from the last executed
instant to the watchdog/horizon raise is charged to the pseudo-group
``stalled`` (no unit was armed — that is what a deadlock *is*).
"""

from __future__ import annotations

import json

SCHEMA = "bigvlittle-critpath-v1"

#: canonical group order for reports (zero-time groups are elided);
#: ``stalled`` only appears on deadlocked runs, ``idle`` only if the
#: run ends before any unit ever executes (not reachable in practice)
GROUPS = ("big", "little", "vcu", "dve", "mem", "stalled", "idle")


class CritPath:
    """Per-unit-group critical-sim-time attribution for one event-core run."""

    __slots__ = ("total_ps", "finalized", "edges",
                 "_crit", "_gates", "_units", "_cur")

    def __init__(self):
        self.total_ps = 0
        self.finalized = False
        #: ``(waker_uid, wakee_uid) -> count`` of ``_ev_notify`` firings;
        #: waker ``-1`` means outside any unit tick (scheduler/boundary)
        self.edges = {}
        self._crit = {}   # group -> critical sim ps
        self._gates = {}  # group -> union-grid advances this group gated
        self._units = {}  # uid -> (name, group)
        # [last charged instant marker, last charged instant, last group]:
        # the marker equals the instant of the most recent charge so that
        # only the *first* executing unit at a new T pays for the advance
        self._cur = [-1, 0, None]

    # ---------------------------------------------------------------- wiring

    def attach(self, units):
        """Register the event core's unit table: ``(uid, name, group)``
        triples in ground order, used to resolve wakeup-edge uids."""
        for uid, name, group in units:
            self._units[uid] = (name, group)
            self._crit.setdefault(group, 0)
            self._gates.setdefault(group, 0)

    def wrap(self, fn, group):
        """Wrap a unit's ``tick(T)`` so the first execution at each new
        union-grid instant charges the span since the previous charged
        instant to ``group``.

        The event core services units in ground order within one
        iteration, so the first wrapper to observe a new ``T`` belongs
        to the lowest-uid executing unit — the tie-break the module
        docstring promises. Pure bookkeeping (two int compares on the
        repeat path); simulated state is untouched.
        """
        crit = self._crit
        gates = self._gates
        cur = self._cur

        def gated(T):
            if T != cur[0]:
                crit[group] += T - cur[1]
                gates[group] += 1
                cur[0] = T
                cur[1] = T
                cur[2] = group
            return fn(T)

        return gated

    def finalize(self, t_ps, stalled=False):
        """Close the run at ``t_ps`` (the result's ``time_ps``, or the
        deadlock timestamp). The tail span past the last executed
        instant is charged to the last gating group — it is that
        group's final event the run drained — or to ``stalled`` when
        the run deadlocked (nothing was armed; the watchdog/horizon
        ended it)."""
        cur = self._cur
        rem = t_ps - cur[1]
        if rem > 0 or cur[2] is None:
            group = "stalled" if stalled else (cur[2] or "idle")
            self._crit[group] = self._crit.get(group, 0) + rem
            self._gates.setdefault(group, 0)
        self.total_ps = t_ps
        self.finalized = True

    # --------------------------------------------------------------- reports

    def tiles(self):
        """True when the per-group critical times sum exactly to the
        total simulated time (the attribution invariant)."""
        return sum(self._crit.values()) == self.total_ps

    def _unit_name(self, uid):
        if uid < 0:
            return "external", "external"
        ent = self._units.get(uid)
        return ent if ent is not None else (f"unit{uid}", "unknown")

    def group_rows(self):
        """Per-group attribution rows, canonical order first, zero-time
        zero-gate groups elided."""
        rows = []
        total = self.total_ps
        order = list(GROUPS) + sorted(set(self._crit) - set(GROUPS))
        for group in order:
            ps = self._crit.get(group)
            if ps is None or (ps == 0 and not self._gates.get(group, 0)):
                continue
            rows.append({
                "group": group,
                "crit_ps": ps,
                "gates": self._gates.get(group, 0),
                "share": ps / total if total > 0 else 0.0,
            })
        rows.sort(key=lambda r: (-r["crit_ps"], r["group"]))
        return rows

    def wakeup_rows(self):
        """Wakeup-graph profile: one row per (waker, wakee) seam, most
        frequent first."""
        rows = []
        for (wk, we), n in self.edges.items():
            wk_name, wk_group = self._unit_name(wk)
            we_name, we_group = self._unit_name(we)
            rows.append({
                "waker": wk_name, "waker_group": wk_group,
                "wakee": we_name, "wakee_group": we_group,
                "count": n,
            })
        rows.sort(key=lambda r: (-r["count"], r["waker"], r["wakee"]))
        return rows

    def report(self, meta=None):
        """The ``bigvlittle-critpath-v1`` document (JSON-safe dict)."""
        rows = self.group_rows()
        wakeups = self.wakeup_rows()
        doc = {
            "schema": SCHEMA,
            "total_ps": self.total_ps,
            "attributed_ps": sum(r["crit_ps"] for r in rows),
            "tiles": self.tiles(),
            "groups": [
                {"group": r["group"],
                 "crit_ps": r["crit_ps"],
                 "gates": r["gates"],
                 "share": round(r["share"], 4)}
                for r in rows
            ],
            "wakeups": wakeups,
            "wakeup_edges": sum(w["count"] for w in wakeups),
        }
        if meta:
            doc["meta"] = dict(meta)
        return doc

    def write_json(self, path, meta=None):
        doc = self.report(meta=meta)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        return doc

    def format_table(self, top=None):
        """Text report: the critical-time breakdown, then the busiest
        wakeup seams."""
        rows = self.group_rows()
        hdr = f"{'group':<10} {'crit':>14} {'share':>7} {'gates':>10}"
        lines = [hdr, "-" * len(hdr)]
        for r in rows:
            lines.append(f"{r['group']:<10} {r['crit_ps']:>11} ps "
                         f"{r['share'] * 100:>6.1f}% {r['gates']:>10}")
        lines.append(f"{'total':<10} {self.total_ps:>11} ps "
                     f"({'tiles exactly' if self.tiles() else 'GAP'})")
        wakeups = self.wakeup_rows()
        if top is not None:
            wakeups = wakeups[:top]
        if wakeups:
            lines.append("")
            hdr = f"{'waker':<10} {'wakee':<10} {'wakeups':>10}"
            lines.append(hdr)
            lines.append("-" * len(hdr))
            for w in wakeups:
                lines.append(f"{w['waker']:<10} {w['wakee']:<10} "
                             f"{w['count']:>10}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"<CritPath groups={len(self._crit)} "
                f"total_ps={self.total_ps}>")
