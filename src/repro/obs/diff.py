"""Cross-run stat comparison and regression gating (``repro.obs.diff``).

A run dump is the canonical machine-readable outcome of one simulation:
``RunResult.to_dict()`` (or the superset printed by
``bigvlittle profile --json``) — a flat ``stats`` mapping of deterministic
integers. This module diffs two such dumps and *classifies* every delta:

* **exact** — structural facts of the simulated trace (instruction and
  µop counts, cache/DRAM access counts, ``obs.metric.*`` instruments).
  These must be bit-identical between runs of the same configuration on
  any simulator version; any delta is a regression.
* **timing** — quantities measured in cycles or picoseconds (``time_ps``,
  stall breakdowns, ``obs.cycles.*``, latency histograms). A relative
  tolerance applies, so an intentional timing refinement can pass the
  gate while a silent cycle-count change fails.
* **meta** — simulator/observability bookkeeping (``sim.ticks_*``
  executed/skipped tick accounting, trace event counts, pipeview window
  accounting, sampler sample counts). Reported, never gated: the
  quiescence-skipping scheduler changes how many loop iterations run
  without changing the simulated outcome.

Timing tolerance comes in two granularities. The quick knob is a single
``rel_tol`` applied to every timing delta (CLI ``--rel-tol``). The
precise knob is a :class:`ToleranceSchema` (``bigvlittle-tolerances-v1``
JSON, CLI ``--tolerances``): named stat *families* — ordered match rules
over key names — each carrying its own relative tolerance, so a CI gate
can allow small drift in stall attribution while holding end-to-end time
and instruction counts bit-exact. The checked-in policy lives at
``benchmarks/diff_tolerances.json``.

Beyond scalar run dumps, :func:`diff_timelines` compares two
``bigvlittle-timeline-v1`` interval dumps (``bigvlittle timeline``):
rows are aligned on their ``cycle`` values (not array position, so a
prefix that merely shifted still lines up), every shared column is
compared under its tolerance family, and the report localizes *where*
the runs first diverge — the earliest out-of-tolerance cycle per column
and overall — instead of only saying that end-of-run totals moved.

``bigvlittle diff a.json b.json [--gate]`` wraps this for the CLI and CI:
identical runs exit 0; under ``--gate`` any exact mismatch or
out-of-tolerance timing delta exits nonzero. ``bigvlittle diff
--timeline a.json b.json`` switches to timeline mode.
"""

from __future__ import annotations

import json

EXACT = "exact"
TIMING = "timing"
META = "meta"

RUN_DUMP_SCHEMA = "bigvlittle-run-v1"

#: stats-key prefixes/fragments that denote cycle-denominated quantities
_TIMING_KEYS = frozenset(("time_ps", "cycles_1ghz", "dram_busy_cycles"))
_META_PREFIXES = ("obs.trace.", "obs.pipeview.", "obs.sampler.", "sim.ticks_",
                  # scheduler-shaped bookkeeping: the forced-scalar
                  # differential arm never enters batch mode
                  "obs.metric.vcu.batch_fallbacks")


def classify(key):
    """Classify one stats key as ``exact`` | ``timing`` | ``meta``."""
    for p in _META_PREFIXES:
        if key.startswith(p):
            return META
    if key in _TIMING_KEYS:
        return TIMING
    if key.startswith("obs.cycles."):
        return TIMING
    if ".stall." in key or ".lane_stall." in key:
        return TIMING
    if "latency" in key or key.endswith("_ps"):
        return TIMING
    # everything else is a structural fact of the simulated trace
    return EXACT


TOLERANCES_SCHEMA = "bigvlittle-tolerances-v1"


class ToleranceFamily:
    """One named match rule: keys it covers and the tolerance they get."""

    __slots__ = ("name", "rel_tol", "keys", "prefixes", "contains")

    def __init__(self, name, rel_tol=0.0, keys=(), prefixes=(), contains=()):
        if rel_tol < 0:
            raise ValueError(f"family {name!r}: rel_tol must be >= 0")
        self.name = name
        self.rel_tol = float(rel_tol)
        self.keys = frozenset(keys)
        self.prefixes = tuple(prefixes)
        self.contains = tuple(contains)

    def matches(self, key):
        return (key in self.keys
                or any(key.startswith(p) for p in self.prefixes)
                or any(s in key for s in self.contains))

    def as_dict(self):
        doc = {"name": self.name, "rel_tol": self.rel_tol}
        if self.keys:
            doc["keys"] = sorted(self.keys)
        if self.prefixes:
            doc["prefixes"] = list(self.prefixes)
        if self.contains:
            doc["contains"] = list(self.contains)
        return doc


class ToleranceSchema:
    """Ordered per-stat-family relative tolerances (first match wins).

    Replaces the single global ``--rel-tol`` for gating: every stats key
    or timeline column resolves to the first :class:`ToleranceFamily`
    whose rule matches it, falling back to ``default_rel_tol``. A family
    only *loosens or tightens the timing gate* — exact-class stats keys
    stay bit-exact regardless (a tolerance on instruction counts would be
    a category error, not a policy).
    """

    def __init__(self, families=(), default_rel_tol=0.0, name="tolerances"):
        self.name = name
        self.default_rel_tol = float(default_rel_tol)
        self.families = [f if isinstance(f, ToleranceFamily)
                         else ToleranceFamily(**f) for f in families]

    def family_for(self, key):
        """``(family_name, rel_tol)`` for one key; name is None on fallback."""
        for fam in self.families:
            if fam.matches(key):
                return fam.name, fam.rel_tol
        return None, self.default_rel_tol

    def rel_tol_for(self, key):
        return self.family_for(key)[1]

    def as_dict(self):
        return {
            "schema": TOLERANCES_SCHEMA,
            "name": self.name,
            "default_rel_tol": self.default_rel_tol,
            "families": [f.as_dict() for f in self.families],
        }

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise ValueError("tolerance schema: expected a JSON object")
        schema = doc.get("schema")
        if schema is not None and schema != TOLERANCES_SCHEMA:
            raise ValueError(f"unsupported tolerance schema {schema!r}")
        return cls(families=doc.get("families", ()),
                   default_rel_tol=doc.get("default_rel_tol", 0.0),
                   name=doc.get("name", "tolerances"))

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_dict(json.load(f))


class Delta:
    """One differing stats key."""

    __slots__ = ("key", "kind", "a", "b")

    def __init__(self, key, kind, a, b):
        self.key = key
        self.kind = kind
        self.a = a
        self.b = b

    @property
    def rel(self):
        """Relative magnitude of the change, in [0, 1]."""
        denom = max(abs(self.a), abs(self.b))
        return abs(self.a - self.b) / denom if denom else 0.0

    def __repr__(self):
        return f"<Delta {self.key} [{self.kind}] {self.a} -> {self.b}>"


class DiffReport:
    """Classified comparison of two run dumps."""

    def __init__(self, a_name, b_name, deltas, only_a, only_b):
        self.a_name = a_name
        self.b_name = b_name
        self.deltas = deltas  # [Delta], keys present in both with a != b
        self.only_a = only_a  # keys present only in dump a
        self.only_b = only_b  # keys present only in dump b

    def identical(self):
        return not self.deltas and not self.only_a and not self.only_b

    def _gated_missing(self):
        """Missing keys that matter: obs.* keys legitimately differ when
        one run was observed more deeply than the other, and meta keys
        (e.g. ``sim.ticks_skipped_*``) may appear or vanish across
        scheduler versions without changing the simulated outcome."""
        return [k for k in self.only_a + self.only_b
                if not k.startswith("obs.") and classify(k) != META]

    def _tol_for(self, key, rel_tol, tolerances):
        return tolerances.rel_tol_for(key) if tolerances is not None else rel_tol

    def regressions(self, rel_tol=0.0, tolerances=None):
        """Deltas that fail the gate.

        Timing-class deltas are gated at ``tolerances.rel_tol_for(key)``
        when a :class:`ToleranceSchema` is given, else at the flat
        ``rel_tol``. Exact-class deltas always gate.
        """
        out = [d for d in self.deltas
               if d.kind == EXACT
               or (d.kind == TIMING
                   and d.rel > self._tol_for(d.key, rel_tol, tolerances))]
        out.sort(key=lambda d: (-d.rel, d.key))
        return out

    def ok(self, rel_tol=0.0, tolerances=None):
        return (not self.regressions(rel_tol, tolerances)
                and not self._gated_missing())

    def counts(self):
        c = {EXACT: 0, TIMING: 0, META: 0}
        for d in self.deltas:
            c[d.kind] += 1
        return c

    # ------------------------------------------------------------- rendering

    def format_table(self, top=25, rel_tol=0.0, tolerances=None):
        lines = [f"diff: {self.a_name}  vs  {self.b_name}"]
        if tolerances is not None:
            lines.append(f"tolerances: {tolerances.name} "
                         f"({len(tolerances.families)} families, "
                         f"default rel_tol={tolerances.default_rel_tol})")
        if self.identical():
            lines.append("identical: 0 deltas")
            return "\n".join(lines)
        c = self.counts()
        lines.append(f"{len(self.deltas)} differing keys "
                     f"({c[EXACT]} exact, {c[TIMING]} timing, {c[META]} meta); "
                     f"{len(self.only_a)} only in a, {len(self.only_b)} only in b")
        hdr = f"{'key':<44} {'class':<7} {'a':>14} {'b':>14} {'rel':>8}"
        lines += [hdr, "-" * len(hdr)]
        shown = sorted(self.deltas, key=lambda d: (-d.rel, d.key))[:top]
        for d in shown:
            flag = ""
            if d.kind == EXACT or (d.kind == TIMING and
                                   d.rel > self._tol_for(d.key, rel_tol,
                                                         tolerances)):
                flag = "  <- gate"
            lines.append(f"{d.key:<44} {d.kind:<7} {d.a:>14} {d.b:>14} "
                         f"{d.rel:>7.2%}{flag}")
        if len(self.deltas) > top:
            lines.append(f"... and {len(self.deltas) - top} more")
        for k in self._gated_missing()[:10]:
            side = "a" if k in self.only_a else "b"
            lines.append(f"{k:<44} only in {side}  <- gate")
        return "\n".join(lines)


def diff_stats(a_stats, b_stats, a_name="a", b_name="b"):
    """Diff two flat stats mappings into a :class:`DiffReport`."""
    deltas = []
    only_a, only_b = [], []
    for k in sorted(set(a_stats) | set(b_stats)):
        if k not in a_stats:
            only_b.append(k)
        elif k not in b_stats:
            only_a.append(k)
        elif a_stats[k] != b_stats[k]:
            deltas.append(Delta(k, classify(k), a_stats[k], b_stats[k]))
    return DiffReport(a_name, b_name, deltas, only_a, only_b)


def dump_result(result, extra=None):
    """Canonical JSON-safe dump of a :class:`~repro.stats.RunResult`."""
    doc = {
        "schema": RUN_DUMP_SCHEMA,
        "name": result.name,
        "system": result.system,
        "cycles": result.cycles,
        "stats": dict(result.stats),
    }
    if extra:
        doc.update(extra)
    return doc


def load_dump(path):
    """Load a run dump; returns ``(display_name, stats_dict)``.

    Accepts the canonical run-dump schema, ``RunResult.to_dict()`` output,
    ``bigvlittle profile --json`` output, or a bare flat stats mapping.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    stats = doc.get("stats", doc)
    if not isinstance(stats, dict) or not stats:
        raise ValueError(f"{path}: no 'stats' mapping found")
    name = doc.get("system") or doc.get("name") or path
    wl = doc.get("workload") or (doc.get("name") if doc.get("system") else None)
    if doc.get("system") and wl:
        name = f"{doc['system']}:{wl}"
    return str(name), stats


def diff_files(path_a, path_b):
    """Diff two run-dump files into a :class:`DiffReport`."""
    a_name, a_stats = load_dump(path_a)
    b_name, b_stats = load_dump(path_b)
    return diff_stats(a_stats, b_stats, a_name, b_name)


# --------------------------------------------------------------- timelines


class ColumnDiff:
    """Comparison of one timeline column over the aligned cycle range."""

    __slots__ = ("column", "family", "rel_tol", "n_compared", "n_diverged",
                 "first_cycle", "max_rel", "max_rel_cycle")

    def __init__(self, column, family, rel_tol):
        self.column = column
        self.family = family       # tolerance-family name, or None
        self.rel_tol = rel_tol
        self.n_compared = 0
        self.n_diverged = 0        # rows where rel > rel_tol
        self.first_cycle = None    # cycle of the first out-of-tolerance row
        self.max_rel = 0.0
        self.max_rel_cycle = None

    def compare(self, cycle, va, vb):
        self.n_compared += 1
        denom = max(abs(va), abs(vb))
        rel = abs(va - vb) / denom if denom else 0.0
        if rel > self.max_rel:
            self.max_rel = rel
            self.max_rel_cycle = cycle
        if rel > self.rel_tol:
            self.n_diverged += 1
            if self.first_cycle is None:
                self.first_cycle = cycle

    def as_dict(self):
        return {
            "column": self.column,
            "family": self.family,
            "rel_tol": self.rel_tol,
            "n_compared": self.n_compared,
            "n_diverged": self.n_diverged,
            "first_cycle": self.first_cycle,
            "max_rel": self.max_rel,
            "max_rel_cycle": self.max_rel_cycle,
        }


class TimelineDiffReport:
    """Cycle-aligned comparison of two ``bigvlittle-timeline-v1`` dumps."""

    def __init__(self, a_name, b_name, interval_cycles, columns,
                 n_aligned, n_only_a, n_only_b, cols_only_a, cols_only_b):
        self.a_name = a_name
        self.b_name = b_name
        self.interval_cycles = interval_cycles
        self.columns = columns        # {column -> ColumnDiff}, shared cols
        self.n_aligned = n_aligned    # rows whose cycle exists in both
        self.n_only_a = n_only_a      # a-rows with no b row at that cycle
        self.n_only_b = n_only_b
        self.cols_only_a = cols_only_a  # e.g. energy columns on one side
        self.cols_only_b = cols_only_b

    def diverged(self):
        """Columns with at least one out-of-tolerance row, worst first."""
        out = [c for c in self.columns.values() if c.n_diverged]
        out.sort(key=lambda c: (-c.max_rel, c.column))
        return out

    def first_divergence(self):
        """``(cycle, column)`` of the earliest out-of-tolerance sample,
        or None when every aligned sample is within tolerance."""
        firsts = [(c.first_cycle, c.column) for c in self.columns.values()
                  if c.first_cycle is not None]
        return min(firsts) if firsts else None

    def ok(self):
        return self.n_aligned > 0 and not self.diverged()

    def as_dict(self):
        first = self.first_divergence()
        return {
            "a": self.a_name,
            "b": self.b_name,
            "interval_cycles": self.interval_cycles,
            "n_aligned": self.n_aligned,
            "n_only_a": self.n_only_a,
            "n_only_b": self.n_only_b,
            "columns_only_a": list(self.cols_only_a),
            "columns_only_b": list(self.cols_only_b),
            "first_divergence": (
                {"cycle": first[0], "column": first[1]} if first else None),
            "columns": {c: d.as_dict() for c, d in self.columns.items()},
        }

    def format_table(self, top=25):
        lines = [f"timeline diff: {self.a_name}  vs  {self.b_name}  "
                 f"(interval={self.interval_cycles} cycles)"]
        lines.append(f"{self.n_aligned} aligned rows; "
                     f"{self.n_only_a} cycles only in a, "
                     f"{self.n_only_b} only in b")
        for side, cols in (("a", self.cols_only_a), ("b", self.cols_only_b)):
            if cols:
                lines.append(f"columns only in {side} (not compared): "
                             + ", ".join(cols))
        bad = self.diverged()
        if not bad:
            lines.append(f"all {len(self.columns)} shared columns within "
                         f"tolerance")
            return "\n".join(lines)
        first = self.first_divergence()
        lines.append(f"FIRST DIVERGENCE at cycle {first[0]} "
                     f"(column {first[1]})")
        hdr = (f"{'column':<18} {'family':<12} {'tol':>8} {'diverged':>12} "
               f"{'first@cyc':>10} {'max rel':>9} {'@cyc':>9}")
        lines += [hdr, "-" * len(hdr)]
        for c in bad[:top]:
            lines.append(
                f"{c.column:<18} {c.family or '-':<12} {c.rel_tol:>8.2g} "
                f"{c.n_diverged:>5}/{c.n_compared:<6} {c.first_cycle:>10} "
                f"{c.max_rel:>8.2%} {c.max_rel_cycle:>9}")
        if len(bad) > top:
            lines.append(f"... and {len(bad) - top} more columns")
        return "\n".join(lines)


def diff_timelines(a_doc, b_doc, tolerances=None, a_name="a", b_name="b"):
    """Compare two timeline dumps into a :class:`TimelineDiffReport`.

    Rows are aligned on their ``cycle`` column values — not on array
    position — so a run whose later intervals shifted still compares its
    common prefix sample-for-sample, and the report pinpoints the first
    cycle at which any column leaves its tolerance family's band.
    """
    for side, doc in (("a", a_doc), ("b", b_doc)):
        schema = doc.get("schema")
        if schema is not None and schema != "bigvlittle-timeline-v1":
            raise ValueError(f"{side}: unsupported timeline schema {schema!r}")
    ia = a_doc.get("interval_cycles", 1)
    ib = b_doc.get("interval_cycles", 1)
    if ia != ib:
        raise ValueError(f"cannot align timelines sampled at different "
                         f"intervals ({ia} vs {ib} cycles)")
    tol = tolerances or ToleranceSchema()
    sa, sb = a_doc["series"], b_doc["series"]
    cols_a = [c for c in a_doc["columns"] if c != "cycle"]
    cols_b = set(b_doc["columns"]) - {"cycle"}
    shared = [c for c in cols_a if c in cols_b]
    cols_only_a = [c for c in cols_a if c not in cols_b]
    cols_only_b = [c for c in b_doc["columns"]
                   if c != "cycle" and c not in set(cols_a)]

    idx_a = {cyc: i for i, cyc in enumerate(sa["cycle"])}
    idx_b = {cyc: i for i, cyc in enumerate(sb["cycle"])}
    aligned = sorted(set(idx_a) & set(idx_b))

    columns = {}
    for c in shared:
        fam, rel_tol = tol.family_for(c)
        columns[c] = ColumnDiff(c, fam, rel_tol)
    for cyc in aligned:
        i, j = idx_a[cyc], idx_b[cyc]
        for c in shared:
            columns[c].compare(cyc, sa[c][i], sb[c][j])

    return TimelineDiffReport(
        a_name, b_name, ia, columns,
        n_aligned=len(aligned),
        n_only_a=len(idx_a) - len(aligned),
        n_only_b=len(idx_b) - len(aligned),
        cols_only_a=cols_only_a, cols_only_b=cols_only_b)


def diff_timeline_files(path_a, path_b, tolerances=None):
    """Diff two timeline-dump files into a :class:`TimelineDiffReport`."""
    from repro.obs.sampler import load_timeline

    return diff_timelines(load_timeline(path_a), load_timeline(path_b),
                          tolerances=tolerances, a_name=path_a, b_name=path_b)
