"""Cross-run stat comparison and regression gating (``repro.obs.diff``).

A run dump is the canonical machine-readable outcome of one simulation:
``RunResult.to_dict()`` (or the superset printed by
``bigvlittle profile --json``) — a flat ``stats`` mapping of deterministic
integers. This module diffs two such dumps and *classifies* every delta:

* **exact** — structural facts of the simulated trace (instruction and
  µop counts, cache/DRAM access counts, ``obs.metric.*`` instruments).
  These must be bit-identical between runs of the same configuration on
  any simulator version; any delta is a regression.
* **timing** — quantities measured in cycles or picoseconds (``time_ps``,
  stall breakdowns, ``obs.cycles.*``, latency histograms). A relative
  tolerance applies, so an intentional timing refinement can pass the
  gate while a silent cycle-count change fails.
* **meta** — simulator/observability bookkeeping (``sim.ticks_*``
  executed/skipped tick accounting, trace event counts, pipeview window
  accounting, sampler sample counts). Reported, never gated: the
  quiescence-skipping scheduler changes how many loop iterations run
  without changing the simulated outcome.

``bigvlittle diff a.json b.json [--gate]`` wraps this for the CLI and CI:
identical runs exit 0; under ``--gate`` any exact mismatch or
out-of-tolerance timing delta exits nonzero.
"""

from __future__ import annotations

import json

EXACT = "exact"
TIMING = "timing"
META = "meta"

RUN_DUMP_SCHEMA = "bigvlittle-run-v1"

#: stats-key prefixes/fragments that denote cycle-denominated quantities
_TIMING_KEYS = frozenset(("time_ps", "cycles_1ghz", "dram_busy_cycles"))
_META_PREFIXES = ("obs.trace.", "obs.pipeview.", "obs.sampler.", "sim.ticks_")


def classify(key):
    """Classify one stats key as ``exact`` | ``timing`` | ``meta``."""
    for p in _META_PREFIXES:
        if key.startswith(p):
            return META
    if key in _TIMING_KEYS:
        return TIMING
    if key.startswith("obs.cycles."):
        return TIMING
    if ".stall." in key or ".lane_stall." in key:
        return TIMING
    if "latency" in key or key.endswith("_ps"):
        return TIMING
    # everything else is a structural fact of the simulated trace
    return EXACT


class Delta:
    """One differing stats key."""

    __slots__ = ("key", "kind", "a", "b")

    def __init__(self, key, kind, a, b):
        self.key = key
        self.kind = kind
        self.a = a
        self.b = b

    @property
    def rel(self):
        """Relative magnitude of the change, in [0, 1]."""
        denom = max(abs(self.a), abs(self.b))
        return abs(self.a - self.b) / denom if denom else 0.0

    def __repr__(self):
        return f"<Delta {self.key} [{self.kind}] {self.a} -> {self.b}>"


class DiffReport:
    """Classified comparison of two run dumps."""

    def __init__(self, a_name, b_name, deltas, only_a, only_b):
        self.a_name = a_name
        self.b_name = b_name
        self.deltas = deltas  # [Delta], keys present in both with a != b
        self.only_a = only_a  # keys present only in dump a
        self.only_b = only_b  # keys present only in dump b

    def identical(self):
        return not self.deltas and not self.only_a and not self.only_b

    def _gated_missing(self):
        """Missing keys that matter: obs.* keys legitimately differ when
        one run was observed more deeply than the other, and meta keys
        (e.g. ``sim.ticks_skipped_*``) may appear or vanish across
        scheduler versions without changing the simulated outcome."""
        return [k for k in self.only_a + self.only_b
                if not k.startswith("obs.") and classify(k) != META]

    def regressions(self, rel_tol=0.0):
        """Deltas that fail the gate at the given timing tolerance."""
        out = [d for d in self.deltas
               if d.kind == EXACT or (d.kind == TIMING and d.rel > rel_tol)]
        out.sort(key=lambda d: (-d.rel, d.key))
        return out

    def ok(self, rel_tol=0.0):
        return not self.regressions(rel_tol) and not self._gated_missing()

    def counts(self):
        c = {EXACT: 0, TIMING: 0, META: 0}
        for d in self.deltas:
            c[d.kind] += 1
        return c

    # ------------------------------------------------------------- rendering

    def format_table(self, top=25, rel_tol=0.0):
        lines = [f"diff: {self.a_name}  vs  {self.b_name}"]
        if self.identical():
            lines.append("identical: 0 deltas")
            return "\n".join(lines)
        c = self.counts()
        lines.append(f"{len(self.deltas)} differing keys "
                     f"({c[EXACT]} exact, {c[TIMING]} timing, {c[META]} meta); "
                     f"{len(self.only_a)} only in a, {len(self.only_b)} only in b")
        hdr = f"{'key':<44} {'class':<7} {'a':>14} {'b':>14} {'rel':>8}"
        lines += [hdr, "-" * len(hdr)]
        shown = sorted(self.deltas, key=lambda d: (-d.rel, d.key))[:top]
        for d in shown:
            flag = ""
            if d.kind == EXACT or (d.kind == TIMING and d.rel > rel_tol):
                flag = "  <- gate"
            lines.append(f"{d.key:<44} {d.kind:<7} {d.a:>14} {d.b:>14} "
                         f"{d.rel:>7.2%}{flag}")
        if len(self.deltas) > top:
            lines.append(f"... and {len(self.deltas) - top} more")
        for k in self._gated_missing()[:10]:
            side = "a" if k in self.only_a else "b"
            lines.append(f"{k:<44} only in {side}  <- gate")
        return "\n".join(lines)


def diff_stats(a_stats, b_stats, a_name="a", b_name="b"):
    """Diff two flat stats mappings into a :class:`DiffReport`."""
    deltas = []
    only_a, only_b = [], []
    for k in sorted(set(a_stats) | set(b_stats)):
        if k not in a_stats:
            only_b.append(k)
        elif k not in b_stats:
            only_a.append(k)
        elif a_stats[k] != b_stats[k]:
            deltas.append(Delta(k, classify(k), a_stats[k], b_stats[k]))
    return DiffReport(a_name, b_name, deltas, only_a, only_b)


def dump_result(result, extra=None):
    """Canonical JSON-safe dump of a :class:`~repro.stats.RunResult`."""
    doc = {
        "schema": RUN_DUMP_SCHEMA,
        "name": result.name,
        "system": result.system,
        "cycles": result.cycles,
        "stats": dict(result.stats),
    }
    if extra:
        doc.update(extra)
    return doc


def load_dump(path):
    """Load a run dump; returns ``(display_name, stats_dict)``.

    Accepts the canonical run-dump schema, ``RunResult.to_dict()`` output,
    ``bigvlittle profile --json`` output, or a bare flat stats mapping.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    stats = doc.get("stats", doc)
    if not isinstance(stats, dict) or not stats:
        raise ValueError(f"{path}: no 'stats' mapping found")
    name = doc.get("system") or doc.get("name") or path
    wl = doc.get("workload") or (doc.get("name") if doc.get("system") else None)
    if doc.get("system") and wl:
        name = f"{doc['system']}:{wl}"
    return str(name), stats


def diff_files(path_a, path_b):
    """Diff two run-dump files into a :class:`DiffReport`."""
    a_name, a_stats = load_dump(path_a)
    b_name, b_stats = load_dump(path_b)
    return diff_stats(a_stats, b_stats, a_name, b_name)
