"""Host-side profiling: where does the *simulator* spend wall-time?

Everything else in :mod:`repro.obs` watches the simulated machine; this
module watches the simulation. A :class:`HostScope` attaches to one run
of the event-driven core (``System.run(..., hostscope=HostScope())``)
and attributes host wall-seconds to per-component **unit groups** —
``big`` / ``little`` / ``vcu`` / ``vmu`` / ``vxu`` / ``dve`` / ``l2`` /
``dram`` / ``mem`` / ``scheduler``, plus the ``vcu.lanes.batch`` /
``vcu.lanes.scalar`` executor split nested under the VLITTLE engine —
by timing the event core's per-unit
dispatch with the monotonic clock, plus a handful of nested seams
(VMU/VXU inside the engine tick, L2/DRAM request processing inside
whichever unit triggered it).

Attribution is *exclusive*: a nested timed region's wall-time is
subtracted from its enclosing region via a scope stack, so the group
walls tile the run and ``scheduler`` (the event core's own select /
re-arm / settle overhead) is the measured residual — total run wall
minus the sum of all dispatched work. Coverage is therefore exact by
construction at ``stride=1``; a sampling ``stride > 1`` times only every
N-th dispatch per group (event counts stay exact) and extrapolates, for
workloads where even the paired ``perf_counter`` calls would distort the
measurement.

Like :class:`~repro.obs.hooks.Observation`, a HostScope is a null-object
opt-in: nothing in the simulator references it unless one is attached,
``stats`` stay bit-identical with and without it (the determinism tests
enforce this), and it is never part of :class:`~repro.soc.SoCConfig` or
cache keys. Unlike an Observation it requires the event loop
(``loop="event"``, the default) — the legacy and dense loops have no
per-unit dispatch seam to hook.

The report (``bigvlittle-hostprof-v1``; CLI ``bigvlittle hostprof``)
answers the ROADMAP's vectorization question with a measurement: the
group with the largest host share is what to batch next.

.. note::
   The nested seams are installed as class-level method wrappers for the
   duration of the one profiled run (restored in a ``finally``), so only
   one hostscoped run may be active per process at a time.
"""

from __future__ import annotations

import json
import time

from repro.errors import ConfigError

SCHEMA = "bigvlittle-hostprof-v1"

#: canonical group order for reports (groups with zero events are elided)
GROUPS = ("big", "little", "vcu", "vcu.lanes.batch", "vcu.lanes.scalar",
          "vmu", "vxu", "dve", "l2", "dram", "mem", "scheduler")

# per-group record layout: [inclusive_s, child_s, calls, sampled]
_INCL, _CHILD, _CALLS, _SAMPLED = range(4)


class HostScope:
    """Per-unit-group host wall-time attribution for one event-core run."""

    __slots__ = ("stride", "wall_s", "loop_events", "finalized",
                 "_recs", "_stack", "_patches", "_flushes")

    def __init__(self, stride=1):
        if not isinstance(stride, int) or stride < 1:
            raise ConfigError(f"hostscope stride must be a positive int, "
                              f"got {stride!r}")
        self.stride = stride
        self.wall_s = 0.0
        self.loop_events = 0
        self.finalized = False
        self._recs = {}
        self._stack = []
        self._patches = []
        self._flushes = []  # sampled wrappers' deferred call-count writers

    # ---------------------------------------------------------------- wiring

    def _rec(self, group):
        rec = self._recs.get(group)
        if rec is None:
            rec = self._recs[group] = [0.0, 0.0, 0, 0]
        return rec

    def wrap(self, fn, group, arity=None):
        """Wrap ``fn`` so each call's wall-time accrues to ``group``.

        The scope stack makes attribution exclusive: time spent inside a
        nested timed call is charged to the inner group and subtracted
        from the outer one. With ``stride > 1`` only every N-th call per
        wrapper is timed; calls are still counted exactly, via a
        countdown cell reconciled into the record at :meth:`finalize`.

        ``arity`` (1 or 2) marks seams whose every call site passes
        exactly that many positional arguments — the event core's unit
        dispatch (``tick(T)``) and the ``VMU.tick(self, now)`` class
        patch. Those wrappers skip ``*args``/``**kwargs`` packing
        entirely: they are the hottest host-side call sites in a
        profiled run, and every nanosecond on the untimed path is pure
        profiler overhead.
        """
        rec = self._rec(group)
        stack = self._stack
        stride = self.stride
        pc = time.perf_counter

        def sample(dt):
            stack.pop()
            rec[_INCL] += dt
            rec[_SAMPLED] += 1
            if stack:
                stack[-1][_CHILD] += dt

        if stride == 1:
            if arity == 1:
                def timed(a):
                    rec[_CALLS] += 1
                    stack.append(rec)
                    t0 = pc()
                    try:
                        return fn(a)
                    finally:
                        sample(pc() - t0)
            elif arity == 2:
                def timed(a, b):
                    rec[_CALLS] += 1
                    stack.append(rec)
                    t0 = pc()
                    try:
                        return fn(a, b)
                    finally:
                        sample(pc() - t0)
            else:
                def timed(*args, **kwargs):
                    rec[_CALLS] += 1
                    stack.append(rec)
                    t0 = pc()
                    try:
                        return fn(*args, **kwargs)
                    finally:
                        sample(pc() - t0)
            return timed

        # sampled mode: a countdown cell (one subtract + truth test per
        # untimed call — no modulo) picks every stride-th call to time
        n = stride
        s = 0  # timed samples taken by THIS wrapper (records are shared
        #        per group, so the call-count reconstruction needs its own)

        if arity == 1:
            def timed(a):
                nonlocal n
                n -= 1
                if n:
                    return fn(a)
                nonlocal s
                s += 1
                n = stride
                stack.append(rec)
                t0 = pc()
                try:
                    return fn(a)
                finally:
                    sample(pc() - t0)
        elif arity == 2:
            def timed(a, b):
                nonlocal n
                n -= 1
                if n:
                    return fn(a, b)
                nonlocal s
                s += 1
                n = stride
                stack.append(rec)
                t0 = pc()
                try:
                    return fn(a, b)
                finally:
                    sample(pc() - t0)
        else:
            def timed(*args, **kwargs):
                nonlocal n
                n -= 1
                if n:
                    return fn(*args, **kwargs)
                nonlocal s
                s += 1
                n = stride
                stack.append(rec)
                t0 = pc()
                try:
                    return fn(*args, **kwargs)
                finally:
                    sample(pc() - t0)

        def flush():
            nonlocal n, s
            # calls = completed sample cycles plus the partial countdown
            rec[_CALLS] += s * stride + (stride - n)
            n = stride
            s = 0

        self._flushes.append(flush)
        return timed

    def install(self, system):
        """Patch the nested sub-unit seams for one run of ``system``.

        The event core times whole unit dispatches (``big`` / ``little``
        / ``vcu`` / ``dve`` / ``mem``); the seams below split out the
        work nested inside them. Class-level patches — restore with
        :meth:`uninstall` in a ``finally``.
        """
        from repro.mem.dram import DRAM
        from repro.mem.l2 import L2Cache
        from repro.vector import VLittleEngine

        patches = [
            # the request path is where L2/DRAM host time is actually
            # spent — the "mem" unit tick only drains L1 response queues
            (L2Cache, "request", "l2", None),
            (L2Cache, "writeback", "l2", None),
            (DRAM, "request", "dram", None),
        ]
        if isinstance(system.engine, VLittleEngine):
            from repro.vector.vmu import VectorMemoryUnit
            from repro.vector.vxu import VXU

            from repro.vector.vlittle import Lane

            patches += [
                # the engine drives the VMU as ``self.vmu.tick(now)`` —
                # always exactly two positionals, so the cheap wrapper
                (VectorMemoryUnit, "tick", "vmu", 2),
                (VXU, "start", "vxu", None),
                (VXU, "read_arrived", "vxu", None),
                (VXU, "result_ready", "vxu", None),
                # lane execution, split by executor: the chime-batched
                # leader+mirror step vs the per-lane scalar path it
                # falls back to on divergence. Both are sub-rows of
                # ``vcu`` — their wall-time is subtracted from the
                # engine tick by the scope stack
                (VLittleEngine, "_batch_tick", "vcu.lanes.batch", 2),
                (Lane, "tick", "vcu.lanes.scalar", 2),
            ]
        for cls, name, group, arity in patches:
            orig = getattr(cls, name)
            setattr(cls, name, self.wrap(orig, group, arity=arity))
            self._patches.append((cls, name, orig))

    def uninstall(self):
        """Restore every class-level seam patched by :meth:`install`."""
        while self._patches:
            cls, name, orig = self._patches.pop()
            setattr(cls, name, orig)

    def finalize(self, wall_s, loop_events=0):
        """Close the scope after the run: record total wall and derive the
        ``scheduler`` residual (select / re-arm / settle / boundary
        overhead = run wall minus all dispatched work)."""
        self.wall_s = wall_s
        self.loop_events = loop_events
        for fl in self._flushes:
            fl()
        dispatched = sum(self._excl_est(g) for g in self._recs)
        sched = self._rec("scheduler")
        sched[_INCL] = max(0.0, wall_s - dispatched)
        # calls == sampled keeps the extrapolation factor at exactly 1
        # for the residual (it is measured, not sampled)
        sched[_CALLS] = sched[_SAMPLED] = max(loop_events, 1)
        self.finalized = True

    # --------------------------------------------------------------- reports

    def _excl_est(self, group):
        """Stride-extrapolated exclusive wall-seconds for ``group``."""
        rec = self._recs[group]
        if not rec[_SAMPLED]:
            return 0.0
        excl = rec[_INCL] - rec[_CHILD]
        return excl * (rec[_CALLS] / rec[_SAMPLED])

    def group_rows(self):
        """Per-group attribution rows, canonical order, zero-event groups
        elided (``scheduler`` always present once finalized)."""
        rows = []
        wall = self.wall_s
        order = list(GROUPS) + sorted(set(self._recs) - set(GROUPS))
        for group in order:
            rec = self._recs.get(group)
            if rec is None or (rec[_CALLS] == 0 and group != "scheduler"):
                continue
            excl = self._excl_est(group)
            rows.append({
                "group": group,
                "wall_s": excl,
                "incl_s": rec[_INCL] * (rec[_CALLS] / rec[_SAMPLED])
                if rec[_SAMPLED] else 0.0,
                "events": rec[_CALLS],
                "sampled": rec[_SAMPLED],
                "share": excl / wall if wall > 0 else 0.0,
            })
        rows.sort(key=lambda r: (-r["wall_s"], r["group"]))
        return rows

    def report(self, meta=None):
        """The ``bigvlittle-hostprof-v1`` document (JSON-safe dict)."""
        rows = self.group_rows()
        attributed = sum(r["wall_s"] for r in rows)
        doc = {
            "schema": SCHEMA,
            "wall_s": round(self.wall_s, 6),
            "attributed_s": round(attributed, 6),
            "coverage": round(attributed / self.wall_s, 4)
            if self.wall_s > 0 else 0.0,
            "stride": self.stride,
            "loop_events": self.loop_events,
            "groups": [
                {"group": r["group"],
                 "wall_s": round(r["wall_s"], 6),
                 "incl_s": round(r["incl_s"], 6),
                 "events": r["events"],
                 "sampled": r["sampled"],
                 "share": round(r["share"], 4)}
                for r in rows
            ],
        }
        if meta:
            doc["meta"] = dict(meta)
        return doc

    def write_json(self, path, meta=None):
        doc = self.report(meta=meta)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        return doc

    def format_table(self, top=None):
        """Text report: one row per group, largest host share first."""
        rows = self.group_rows()
        if top is not None:
            rows = rows[:top]
        hdr = (f"{'group':<16} {'wall':>10} {'share':>7} {'events':>10} "
               f"{'us/event':>9}")
        lines = [hdr, "-" * len(hdr)]
        for r in rows:
            per = (r["wall_s"] / r["events"] * 1e6) if r["events"] else 0.0
            lines.append(f"{r['group']:<16} {r['wall_s'] * 1000:>8.1f}ms "
                         f"{r['share'] * 100:>6.1f}% {r['events']:>10} "
                         f"{per:>9.2f}")
        attributed = sum(r["wall_s"] for r in self.group_rows())
        cov = attributed / self.wall_s * 100 if self.wall_s > 0 else 0.0
        lines.append(f"{'total':<16} {self.wall_s * 1000:>8.1f}ms "
                     f"(attributed {attributed * 1000:.1f}ms = {cov:.1f}%, "
                     f"stride {self.stride})")
        return "\n".join(lines)

    def __repr__(self):
        return (f"<HostScope stride={self.stride} "
                f"groups={len(self._recs)} wall_s={self.wall_s:.3f}>")


def unit_group(name, domain):
    """Map an event-core unit (name, domain index) to its hostprof group.

    Unit names follow the dense loop's construction: big cores are
    ``big<i>``, littles ``lit<i>``, the engines ``vcu``/``dve``, the
    memory subsystem ``mem``; domain 0 is big, 1 little, 2 mem.
    """
    if name in ("vcu", "dve", "mem"):
        return name
    if domain == 0:
        return "big"
    if domain == 1:
        return "little"
    return "mem"
