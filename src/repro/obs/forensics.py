"""Deadlock forensics: structured scheduling-state snapshots.

When the watchdog fires, the interesting question is never "did we
deadlock" (the :class:`~repro.errors.DeadlockError` already says so) but
*who is asleep waiting on whom*. This module answers it: a
:func:`snapshot` probes every ticking unit's scheduling state through
the same pure seams the event core schedules with — ``next_work_ps``
bounds plus a per-component ``forensic_state`` summary (ROB / queue /
in-flight occupancies) — and assembles a **wait-for graph** with cycle
detection and a blocking frontier.

The simulator attaches the resulting ``bigvlittle-forensics-v1`` report
to every :class:`DeadlockError` it raises (watchdog *and* ``max_ns``
horizon, both run loops), as ``err.forensics``; ``bigvlittle inspect
<wl> --at-ns N`` produces the same snapshot on demand from a healthy
run. Everything here is read-only by construction — the probes are the
scheduler's own side-effect-free contracts — so taking a snapshot can
never perturb stats (determinism-tested).

Graph semantics:

* a unit's ``waits_on`` edges name what its *own* state says it is
  blocked on: ``mem`` (fills/lines in flight), the engine
  (``vcu``/``dve``: undrained dispatch, pending scalar response, a
  mode-switch drain), or the external ``source`` node (an instruction
  source that is exhausted but reports not-done — the classic wedged
  workload);
* ``cycles`` lists every dependency cycle among the units (a true
  deadlock loop);
* ``blocking_frontier`` lists the not-done units that wait on no other
  not-done unit — with no cycle, these are the units actually holding
  the run up (or wedged on an external input).
"""

from __future__ import annotations

import json

from repro.obs.host import unit_group
from repro.vector import DecoupledVectorEngine, VLittleEngine

SCHEMA = "bigvlittle-forensics-v1"

_INF = 1 << 60

_DOMAINS = ("big", "little", "mem")


def _unit_entries(system):
    """``(name, domain, component)`` triples in the event core's ground
    order (mirrors ``repro.soc.events._build_units``, including the
    littles reconfigured as vector lanes)."""
    entries = []
    engine = system.engine
    for c in system.bigs:
        entries.append((c.core_id, 0, c))
    if isinstance(engine, DecoupledVectorEngine):
        entries.append(("dve", 0, engine))
    for c in system.littles:
        entries.append((c.core_id, 1, c))
    if isinstance(engine, VLittleEngine):
        entries.append(("vcu", 1, engine))
    entries.append(("mem", 2, system.ms))
    return entries


def _engine_name(system):
    engine = system.engine
    if isinstance(engine, VLittleEngine):
        return "vcu"
    if isinstance(engine, DecoupledVectorEngine):
        return "dve"
    return "engine"


def _find_cycles(adj):
    """Every elementary dependency cycle reachable in ``adj`` (name ->
    iterable of names), as closed paths. The graphs here have a handful
    of nodes, so a plain colored DFS is plenty."""
    cycles = []
    color = {}  # 0/absent = white, 1 = on path, 2 = finished
    path = []

    def visit(n):
        color[n] = 1
        path.append(n)
        for m in sorted(adj.get(n, ())):
            c = color.get(m, 0)
            if c == 1:
                cyc = path[path.index(m):] + [m]
                # canonicalize rotation so the same loop reports once
                base = cyc[:-1]
                k = base.index(min(base))
                canon = base[k:] + base[:k] + [base[k]]
                if canon not in cycles:
                    cycles.append(canon)
            elif c == 0:
                visit(m)
        path.pop()
        color[n] = 2

    for n in sorted(adj):
        if color.get(n, 0) == 0:
            visit(n)
    return cycles


def snapshot(system, t_ps, reason=""):
    """The ``bigvlittle-forensics-v1`` report for ``system`` at ``t_ps``.

    Read-only: every probe used is one of the scheduler's pure
    contracts, so snapshotting a live (or deadlocked, or finished)
    system never changes simulated state or stats.
    """
    engine_name = _engine_name(system)
    units = []
    edges = []
    for name, domain, obj in _unit_entries(system):
        det = obj.forensic_state(t_ps)
        done = det.pop("done")
        waits = det.pop("waits_on")
        if getattr(obj, "active", True) is False:
            # a little core reconfigured as a vector lane: permanently
            # quiescent, its cycles belong to the engine
            state, bound = "lane", None
        else:
            b = obj.next_work_ps(t_ps)
            if b <= t_ps:
                state, bound = "ready", int(b)
            elif b >= _INF:
                state, bound = "asleep", None
            else:
                state, bound = "timed", int(b)
        unit = {
            "unit": name,
            "group": unit_group(name, domain),
            "domain": _DOMAINS[domain],
            "state": state,
            "next_work_ps": bound,
            "done": done,
            "waits_on": [],
            "detail": det,
        }
        for target, why in waits:
            if target == "engine":
                target = engine_name
            unit["waits_on"].append({"on": target, "why": why})
            edges.append({"waiter": name, "on": target, "why": why})
        units.append(unit)

    adj = {}
    for e in edges:
        adj.setdefault(e["waiter"], set()).add(e["on"])
    cycles = _find_cycles(adj)

    busy = {u["unit"] for u in units if not u["done"]}
    frontier = [
        u["unit"] for u in units
        if u["unit"] in busy
        and not any(t in busy for t in adj.get(u["unit"], ()))
    ]

    return {
        "schema": SCHEMA,
        "t_ps": t_ps,
        "t_ns": t_ps // 1000,
        "reason": reason,
        "system": system.config.name,
        "workload": system._name,
        "progress_signature": system._progress_signature(),
        "units": units,
        "wait_for": edges,
        "cycles": cycles,
        "blocking_frontier": frontier,
    }


def write_json(report, path):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    return report


def format_report(report):
    """Text rendering of a forensics report: the unit table, then the
    wait-for edges, cycles, and blocking frontier."""
    lines = [
        f"forensics @ {report['t_ps']} ps"
        + (f" ({report['reason']})" if report.get("reason") else "")
        + f" — system {report['system']}"
        + (f", workload {report['workload']}" if report["workload"] else ""),
    ]
    hdr = (f"{'unit':<8} {'group':<8} {'state':<7} {'next_work':>12} "
           f"{'done':<5} occupancy")
    lines.append(hdr)
    lines.append("-" * len(hdr))
    for u in report["units"]:
        nw = f"{u['next_work_ps']} ps" if u["next_work_ps"] is not None else "-"
        det = u["detail"]
        occ = ", ".join(
            f"{k}={v}" for k, v in det.items()
            if isinstance(v, int) and not isinstance(v, bool)
            and not k.endswith(("_ps", "_size", "_depth")) and v
        ) or "-"
        lines.append(f"{u['unit']:<8} {u['group']:<8} {u['state']:<7} "
                     f"{nw:>12} {'yes' if u['done'] else 'no':<5} {occ}")
    for e in report["wait_for"]:
        lines.append(f"  {e['waiter']} -> {e['on']}: {e['why']}")
    if report["cycles"]:
        for cyc in report["cycles"]:
            lines.append(f"cycle: {' -> '.join(cyc)}")
    else:
        lines.append("cycles: none")
    lines.append("blocking frontier: "
                 + (", ".join(report["blocking_frontier"]) or "none"))
    return "\n".join(lines)
