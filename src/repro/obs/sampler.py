"""Interval time-series sampling (``repro.obs.sampler``).

Aggregate observability (stall totals, end-of-run metrics) answers *how
much*; this module answers *when*: every ``interval`` reference cycles
(1 cycle = 1 ns at the 1 GHz reference clock) the sampler snapshots

* committed-instruction deltas per cluster (→ interval IPC),
* the cluster-wide stall-category mix delta (Fig.-7 categories),
* queue occupancies: big-core ROB, VCU µop queue, scalar-operand data
  queue, VMSU load-queue lines (or the DVE command queue / lines in
  flight on a ``1bDV`` system),
* L2 hit/miss and DRAM read/write line deltas (→ interval MPKI and DRAM
  bandwidth),
* mode-switch activity (switch starts this interval, and whether the
  VLITTLE engine is mid-penalty at the sample point),
* optionally — pass ``energy=("b1", "l1")`` — per-interval power and
  energy from the Table VII DVFS model (:func:`repro.power.power_split`):
  big-cluster W, engine W, interval joules, and cumulative joules,

into columnar series. The series are exported three ways: as Chrome
``counter`` tracks on the run's :class:`~repro.obs.tracer.Tracer` (one
``sampler`` process in Perfetto), as CSV, and as JSON — so IPC dips,
occupancy ramps, bandwidth saturation, and power-over-time curves can be
read over time and compared across runs mechanically (see
:mod:`repro.obs.diff` and :mod:`repro.obs.phases`).

Opt-in on top of the opt-in Observation: pass
``Observation(sampler=IntervalSampler(interval))``. With no sampler
attached the simulation loop pays a single integer compare per scheduler
iteration and nothing else.

Rates (IPC, GB/s, W) are normalized by each interval's *actual* width:
the final flush at run end closes a partial interval, and cumulative
energy is computed from the exact simulated end time, so the last
cumulative-joules sample equals ``energy_j(time_ps, system_power_w(...))``
bit for bit.
"""

from __future__ import annotations

import json

from repro.errors import ConfigError
from repro.stats.breakdown import STALL_NAMES, Stall

#: simulated picoseconds per reference cycle (1 GHz)
PS_PER_CYCLE = 1000

#: columns added by ``energy=``; every value is in SI units (W / J)
ENERGY_COLUMNS = ("big_w", "engine_w", "power_w", "energy_j", "cum_energy_j")

TIMELINE_SCHEMA = "bigvlittle-timeline-v1"


def load_timeline(path):
    """Load a ``bigvlittle-timeline-v1`` dump written by :meth:`to_json`."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or doc.get("schema") != TIMELINE_SCHEMA:
        raise ValueError(f"{path}: not a {TIMELINE_SCHEMA} dump")
    return doc


class IntervalSampler:
    """Fixed-interval time-series snapshots of one observed run."""

    __slots__ = ("interval", "interval_ps", "samples", "columns", "_series",
                 "_sys", "_obs", "_track", "_last_ps", "_prev",
                 "_vlittle", "_dve", "energy", "_big_w", "_engine_w")

    def __init__(self, interval=1000, energy=None):
        if interval < 1:
            raise ConfigError("sampler interval must be >= 1 cycle")
        self.interval = int(interval)
        self.interval_ps = self.interval * PS_PER_CYCLE
        self.samples = 0
        self.columns = []
        self._series = {}  # column -> list of values, all equal length
        self._sys = None
        self._obs = None
        self._track = None
        self._last_ps = 0
        self._prev = {}
        if energy is True:
            energy = ("b1", "l1")
        elif isinstance(energy, dict):
            energy = (energy.get("big", "b1"), energy.get("little", "l1"))
        elif energy is not None:
            energy = tuple(energy)
            if len(energy) != 2:
                raise ConfigError(
                    "energy expects (big_level, little_level), e.g. ('b1','l1')")
        self.energy = energy
        self._big_w = self._engine_w = 0.0

    # ----------------------------------------------------------------- wiring

    def attach(self, system, obs):
        """Bind to a built system; called by ``System`` when obs attaches."""
        self._sys = system
        self._obs = obs
        self._track = obs.tracer.track("timeline", process="sampler")
        self._last_ps = 0
        engine = system.engine
        self._vlittle = engine is not None and hasattr(engine, "_uopq")
        self._dve = engine is not None and hasattr(engine, "_cmdq")
        self.columns = (
            ["cycle", "d_cycles", "d_instrs_big", "d_instrs_little", "d_uops"]
            + [f"d_stall_{name}" for name in STALL_NAMES]
            + ["rob0", "uopq", "dataq", "ldq",
               "d_l2_hits", "d_l2_misses", "d_dram_reads", "d_dram_writes",
               "d_switches", "switching",
               "ipc_big", "ipc_little", "l2_mpki", "dram_gbps"]
        )
        if self.energy is not None:
            from repro.power import power_split

            big, little = self.energy
            cfg = system.config
            self._big_w, self._engine_w = power_split(
                cfg.name, big, little, n_little=cfg.n_little or 4)
            self.columns += list(ENERGY_COLUMNS)
        self._series = {c: [] for c in self.columns}
        self._prev = self._cumulative()

    def _cumulative(self):
        """Monotonic counters snapshotted for per-interval deltas."""
        s = self._sys
        engine = s.engine
        out = {
            "instrs_big": sum(c.instrs for c in s.bigs),
            "instrs_little": sum(c.instrs for c in s.littles),
            "uops": (sum(l.uops_issued for l in engine.lanes)
                     if self._vlittle else 0),
            "switches": engine.mode_switches if self._vlittle else 0,
            "l2_hits": s.ms.l2.hits,
            "l2_misses": s.ms.l2.misses,
            "dram_reads": s.ms.dram.reads,
            "dram_writes": s.ms.dram.writes,
        }
        units = self._obs.units.values()
        for cat, name in enumerate(STALL_NAMES):
            out[f"stall_{name}"] = sum(u.counts[cat] for u in units)
        return out

    def _levels(self):
        """Instantaneous occupancies at the sample point."""
        s = self._sys
        engine = s.engine
        rob0 = len(s.bigs[0]._rob) if s.bigs else 0
        if self._vlittle:
            uopq = len(engine._uopq)
            dataq = engine._dataq_used
            ldq = sum(v.ldq_used for v in engine.vmu.vmsus)
        elif self._dve:
            uopq = len(engine._cmdq)
            dataq = engine._inflight
            ldq = engine._loadq_used
        else:
            uopq = dataq = ldq = 0
        return rob0, uopq, dataq, ldq

    # --------------------------------------------------------------- sampling

    def sample(self, t_ps):
        """Record one interval ending at simulated-ps ``t_ps``."""
        d_ps = t_ps - self._last_ps
        if d_ps <= 0:
            return
        # rates are normalized by the interval's *actual* width: the final
        # flush closes a partial interval, and dividing its deltas by the
        # rounded-down whole-cycle count would bias the last row
        d_cycles = d_ps // PS_PER_CYCLE
        width = d_ps / PS_PER_CYCLE
        cur = self._cumulative()
        prev, self._prev = self._prev, cur
        d = {k: cur[k] - prev[k] for k in cur}
        rob0, uopq, dataq, ldq = self._levels()
        engine = self._sys.engine
        switching = int(self._vlittle and engine._ready_at is not None
                        and t_ps < engine._ready_at)

        ipc_big = round(d["instrs_big"] / width, 6)
        ipc_little = round(d["instrs_little"] / width, 6)
        d_instrs = d["instrs_big"] + d["instrs_little"]
        l2_mpki = round(1000.0 * d["l2_misses"] / max(d_instrs, 1), 6)
        # one line per DRAM read/write; 64 B per line; interval width is ns
        d_lines = d["dram_reads"] + d["dram_writes"]
        dram_gbps = round(64.0 * d_lines / width, 6)

        row = {
            "cycle": t_ps // PS_PER_CYCLE,
            "d_cycles": d_cycles,
            "d_instrs_big": d["instrs_big"],
            "d_instrs_little": d["instrs_little"],
            "d_uops": d["uops"],
            "rob0": rob0, "uopq": uopq, "dataq": dataq, "ldq": ldq,
            "d_l2_hits": d["l2_hits"], "d_l2_misses": d["l2_misses"],
            "d_dram_reads": d["dram_reads"], "d_dram_writes": d["dram_writes"],
            "d_switches": d["switches"], "switching": switching,
            "ipc_big": ipc_big, "ipc_little": ipc_little,
            "l2_mpki": l2_mpki, "dram_gbps": dram_gbps,
        }
        for name in STALL_NAMES:
            row[f"d_stall_{name}"] = d[f"stall_{name}"]
        if self.energy is not None:
            # cumulative joules come straight from the exact simulated end
            # time of the interval (same expression as repro.power.energy_j),
            # so the final sample reconciles bit-for-bit with the
            # end-of-run energy total instead of accumulating float error
            power_w = self._big_w + self._engine_w
            row["big_w"] = self._big_w
            row["engine_w"] = self._engine_w
            row["power_w"] = power_w
            row["energy_j"] = d_ps * 1e-12 * power_w
            row["cum_energy_j"] = t_ps * 1e-12 * power_w
        for c in self.columns:
            self._series[c].append(row[c])

        tr = self._obs.tracer
        counters = [
            ("ipc_big", ipc_big), ("ipc_little", ipc_little),
            ("rob0", rob0), ("uopq", uopq), ("ldq", ldq),
            ("l2_mpki", l2_mpki), ("dram_gbps", dram_gbps),
            ("stall_busy_frac",
             round(d[f"stall_{STALL_NAMES[Stall.BUSY]}"]
                   / max(sum(d[f"stall_{n}"] for n in STALL_NAMES), 1), 6)),
        ]
        if self.energy is not None:
            counters.append(("power_w", row["power_w"]))
            counters.append(("cum_energy_mj", round(row["cum_energy_j"] * 1e3, 9)))
        for name, value in counters:
            tr.counter(self._track, name, t_ps, value)

        self._last_ps = t_ps
        self.samples += 1

    # ---------------------------------------------------------------- folding

    def stats_dict(self):
        """Deterministic ints, merged under ``obs.sampler.*`` in stats."""
        return {
            "obs.sampler.samples": self.samples,
            "obs.sampler.interval_cycles": self.interval,
        }

    # ----------------------------------------------------------------- export

    def series(self, column):
        return list(self._series[column])

    def rows(self):
        """The samples as a list of per-interval dicts."""
        cols = self.columns
        n = self.samples
        return [{c: self._series[c][i] for c in cols} for i in range(n)]

    def as_dict(self):
        """Columnar machine-readable form (JSON-safe)."""
        doc = {
            "schema": TIMELINE_SCHEMA,
            "interval_cycles": self.interval,
            "samples": self.samples,
            "columns": list(self.columns),
            "series": {c: list(self._series[c]) for c in self.columns},
        }
        if self.energy is not None:
            doc["energy_levels"] = list(self.energy)
        return doc

    def to_json(self, path):
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.as_dict(), f, indent=1)
            f.write("\n")
        return self.samples

    def to_csv(self, path):
        with open(path, "w", encoding="utf-8") as f:
            f.write(",".join(self.columns))
            f.write("\n")
            for i in range(self.samples):
                f.write(",".join(repr(self._series[c][i]) for c in self.columns))
                f.write("\n")
        return self.samples
