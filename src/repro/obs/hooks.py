"""The :class:`Observation` facade and per-component :class:`UnitObs` hooks.

An ``Observation`` is attached to a :class:`~repro.soc.system.System` (via
``System(cfg, obs=...)`` or ``System.run(..., obs=...)``); the system hands
each ticking component a :class:`UnitObs` handle bundling

* a per-unit **cycle classifier** — exactly one :class:`~repro.stats.Stall`
  category per tick of the unit's clock domain, so per-unit sums equal
  ``sim.ticks_<domain>`` (checked by :meth:`Observation.validate`);
* the shared :class:`~repro.obs.tracer.Tracer` with the unit's track
  pre-bound;
* the shared :class:`~repro.obs.metrics.MetricsRegistry`.

Components that never attach keep their class-level ``obs = None`` and pay
only one ``is None`` check per hook site.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.stats.breakdown import STALL_NAMES, Stall


class ObsValidationError(AssertionError):
    """A unit's per-cycle attribution failed to sum to its domain ticks."""


class UnitObs:
    """Observability handle for one ticking component."""

    __slots__ = ("name", "domain", "counts", "tracer", "metrics", "track")

    def __init__(self, name, domain, tracer, metrics, track):
        self.name = name
        self.domain = domain
        self.counts = [0] * len(Stall)
        self.tracer = tracer
        self.metrics = metrics
        self.track = track

    # ---------------------------------------------------- cycle attribution

    def cycle(self, category, n=1):
        """Charge this unit's current cycle to one Stall category."""
        self.counts[category] += n

    def total(self):
        return sum(self.counts)

    # ------------------------------------------------------- tracing sugar

    def instant(self, name, ts, args=None):
        self.tracer.instant(self.track, name, ts, args)

    def begin(self, name, ts, args=None):
        self.tracer.begin(self.track, name, ts, args)

    def end(self, name, ts):
        self.tracer.end(self.track, name, ts)

    def complete(self, name, ts, dur, args=None):
        self.tracer.complete(self.track, name, ts, dur, args)

    def counter(self, name, ts, value):
        self.tracer.counter(self.track, name, ts, value)

    def __repr__(self):
        return f"<UnitObs {self.name} ({self.domain}) total={self.total()}>"


class Observation:
    """One simulation's worth of traces, metrics, and stall attribution.

    Two further layers are opt-in on top (each ``None`` by default, so an
    Observation without them does zero per-instruction / per-interval
    work):

    * ``pipeview`` — a :class:`~repro.obs.pipeview.PipeView` tracking
      per-instruction pipeline lifecycles (Konata / O3PipeView export);
    * ``sampler`` — an :class:`~repro.obs.sampler.IntervalSampler`
      snapshotting IPC / occupancy / stall-mix time series every N cycles.
    """

    __slots__ = ("tracer", "metrics", "units", "pipeview", "sampler",
                 "_validated_ticks")

    def __init__(self, max_events=1_000_000, pipeview=None, sampler=None,
                 retain="tail"):
        self.tracer = Tracer(max_events, retain=retain)
        self.metrics = MetricsRegistry()
        self.units = {}  # name -> UnitObs
        self.pipeview = pipeview
        self.sampler = sampler
        self._validated_ticks = None

    # ----------------------------------------------------------- unit setup

    def unit(self, name, domain, process="sim"):
        """Register a ticking unit; ``domain`` is big | little | mem."""
        if domain not in ("big", "little", "mem"):
            raise ConfigError(f"unknown clock domain {domain!r}")
        if name in self.units:
            raise ConfigError(f"duplicate obs unit {name!r}")
        u = UnitObs(name, domain, self.tracer, self.metrics,
                    self.tracer.track(name, process))
        self.units[name] = u
        return u

    # ----------------------------------------------------------- validation

    def validate(self, ticks_by_domain):
        """Check every unit's cycle sum against its domain's tick count.

        A unit that never ticked (e.g. a VLITTLE engine bypassed for a
        task-parallel run) legitimately sums to zero; anything else must
        account for *every* tick of its domain.
        """
        for u in self.units.values():
            expected = ticks_by_domain.get(u.domain, 0)
            got = u.total()
            if got not in (0, expected):
                raise ObsValidationError(
                    f"unit {u.name!r} attributed {got} cycles but its "
                    f"{u.domain!r} domain ticked {expected} times")
        self._validated_ticks = dict(ticks_by_domain)
        return True

    # -------------------------------------------------------------- folding

    def stats_dict(self):
        """Deterministic flat stats: per-unit cycles plus all metrics.

        Safe to merge into ``RunResult.stats`` — values are ints and a
        function only of the simulated events.
        """
        out = {}
        for name in sorted(self.units):
            u = self.units[name]
            for cat, v in zip(STALL_NAMES, u.counts):
                out[f"obs.cycles.{name}.{cat}"] = v
        out.update(self.metrics.as_stats())
        # ring-buffer drop accounting is surfaced both here and in the
        # Chrome trace metadata, so truncated traces are never silent
        out["obs.metric.tracer.dropped"] = self.tracer.dropped
        out["obs.trace.events"] = len(self.tracer)
        out["obs.trace.dropped"] = self.tracer.dropped
        if self.pipeview is not None:
            out.update(self.pipeview.stats_dict())
        if self.sampler is not None:
            out.update(self.sampler.stats_dict())
        return out

    # ---------------------------------------------------------------- trace

    def chrome_trace(self):
        return self.tracer.chrome_trace()

    def write_chrome_trace(self, path):
        return self.tracer.write_json(path)

    # -------------------------------------------------------------- profile

    def profile_rows(self):
        """Per-unit attribution rows (dicts), idle units omitted."""
        rows = []
        for name in sorted(self.units):
            u = self.units[name]
            total = u.total()
            if total == 0:
                continue
            row = {"unit": name, "domain": u.domain, "total": total,
                   "busy_frac": u.counts[Stall.BUSY] / total}
            for cat, v in zip(STALL_NAMES, u.counts):
                row[cat] = v
            rows.append(row)
        rows.sort(key=lambda r: (r["busy_frac"], r["unit"]))
        return rows

    def profile_table(self, top=None):
        """Text stall table: one row per unit, most-stalled units first."""
        rows = self.profile_rows()
        if top is not None:
            rows = rows[:top]
        hdr = f"{'unit':<10} {'domain':<7} {'cycles':>10} {'busy%':>6}"
        for cat in STALL_NAMES[1:]:
            hdr += f" {cat:>8}"
        lines = [hdr, "-" * len(hdr)]
        for r in rows:
            line = (f"{r['unit']:<10} {r['domain']:<7} {r['total']:>10}"
                    f" {100.0 * r['busy_frac']:>5.1f}%")
            for cat in STALL_NAMES[1:]:
                line += f" {r[cat]:>8}"
            lines.append(line)
        return "\n".join(lines)
