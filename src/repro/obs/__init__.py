"""Observability: structured event tracing, metrics, stall attribution.

The subsystem is strictly opt-in: components carry a class-level
``obs = None`` attribute and every hook sits behind a single
``if self.obs is not None:`` check, so a simulation without an attached
:class:`Observation` does *zero* extra work and its ``RunResult.stats``
stay bit-identical to an uninstrumented build.

Enable it by handing an :class:`Observation` to the system::

    from repro.obs import Observation
    from repro.soc import preset, System

    obs = Observation()
    result = System(preset("1b-4VL")).run(program, obs=obs)
    obs.write_chrome_trace("trace.json")   # load in Perfetto / chrome://tracing
    print(obs.profile_table())             # per-unit stall attribution

Three pillars (see ``docs/observability.md``):

* :class:`~repro.obs.tracer.Tracer` — ring-buffer-bounded begin/end,
  instant, complete, and counter events on per-component tracks,
  exportable as Chrome ``trace_event`` JSON.
* :class:`~repro.obs.metrics.MetricsRegistry` — typed counters, gauges,
  and fixed-bucket histograms folded deterministically into
  ``RunResult.stats`` under ``obs.metric.*``.
* Per-unit **stall attribution** — every cycle of every ticking unit is
  classified into the Figure-7 :class:`~repro.stats.Stall` categories and
  the per-unit sums are checked against ``sim.ticks_*``.

Two deeper layers opt in on top of an Observation (each ``None`` unless
requested, and free when off):

* :class:`~repro.obs.pipeview.PipeView` — instruction-grain pipeline
  lifecycle traces (ROB, VCU µop broadcast, lane execute, VMU, VXU),
  exported as Konata / gem5-O3PipeView text.
* :class:`~repro.obs.sampler.IntervalSampler` — IPC / occupancy /
  stall-mix / MPKI / DRAM-bandwidth time series every N cycles — plus
  Table-VII power/energy columns with ``energy=("b1", "l1")`` — exported
  as Chrome counter tracks, CSV, and JSON.

Two analysis layers consume those series after the run:

* :mod:`repro.obs.phases` — :func:`~repro.obs.phases.detect_phases`
  segments a sampled timeline into the paper's scalar / mode-switch /
  vector-burst / drain phases, each carrying its stall mix and energy.
* :mod:`repro.obs.diff` compares the canonical stat dumps of two runs
  with exact/timing/meta delta classification (gated per stat family by
  a :class:`~repro.obs.diff.ToleranceSchema`), aligns two timeline dumps
  cycle-for-cycle (:func:`~repro.obs.diff.diff_timelines`) to localize
  where runs first diverge, and drives the CLI's ``bigvlittle diff
  --gate`` regression gate.
"""

from repro.obs.diff import (
    DiffReport,
    TimelineDiffReport,
    ToleranceSchema,
    classify,
    diff_files,
    diff_stats,
    diff_timeline_files,
    diff_timelines,
    dump_result,
)
from repro.obs.critpath import CritPath
from repro.obs.forensics import format_report as format_forensics
from repro.obs.forensics import snapshot as forensics_snapshot
from repro.obs.hooks import Observation, UnitObs
from repro.obs.host import HostScope
from repro.obs.metrics import MetricsRegistry
from repro.obs.phases import PhaseReport, PhaseThresholds, detect_phases
from repro.obs.pipeview import PipeView
from repro.obs.sampler import IntervalSampler, load_timeline
from repro.obs.tracer import Tracer

__all__ = [
    "Observation", "UnitObs", "MetricsRegistry", "Tracer", "HostScope",
    "CritPath", "forensics_snapshot", "format_forensics",
    "PipeView", "IntervalSampler", "load_timeline",
    "PhaseReport", "PhaseThresholds", "detect_phases",
    "DiffReport", "classify", "diff_files", "diff_stats", "dump_result",
    "ToleranceSchema", "TimelineDiffReport",
    "diff_timelines", "diff_timeline_files",
]
