"""Sampler-driven execution-phase detection (``repro.obs.phases``).

The paper's §V-B narrative describes every big.VLITTLE run as a sequence
of qualitatively different regimes: **scalar** stretches where only the
out-of-order core commits, the **mode-switch** penalty where the whole
SoC sits idle while the little cluster reconfigures (§III-B), the
**vector burst** where the VCU broadcasts µops to the lanes, and the
**drain** tail where commits have stopped but the memory system is still
retiring outstanding lines. This module recovers that narrative
mechanically from an :class:`~repro.obs.sampler.IntervalSampler`
timeline: each interval is labeled from its IPC, lane-µop rate, engine
queue occupancies, and mode-switch flags, with hysteresis on the
vector-burst thresholds and a minimum phase length so sampling noise
cannot shred a burst into confetti. Adjacent same-label intervals merge
into :class:`PhaseSegment` records carrying per-phase instruction/µop
counts, the Fig.-7 stall-mix slice, and (when the timeline carries
energy columns) per-phase joules.

Because every interval lands in exactly one phase, the per-phase stall
mixes and energies *tile* the run: summed over all phases they equal the
whole-run Fig.-7 breakdown and the end-of-run energy total.

Entry points: :func:`detect_phases` (a sampler, its ``as_dict()`` form,
or a loaded ``bigvlittle-timeline-v1`` JSON dump) and the CLI's
``bigvlittle phases <workload>``.
"""

from __future__ import annotations

import json

from repro.errors import ConfigError
from repro.obs.sampler import TIMELINE_SCHEMA, load_timeline  # noqa: F401
from repro.stats.breakdown import STALL_NAMES

PHASES_SCHEMA = "bigvlittle-phases-v1"

#: phase labels, in the order the paper's narrative introduces them
SCALAR = "scalar"
SWITCH = "mode_switch"
VECTOR = "vector_burst"
DRAIN = "drain"
PHASE_NAMES = (SCALAR, SWITCH, VECTOR, DRAIN)


class PhaseThresholds:
    """Detector knobs; the defaults match ``docs/observability.md``.

    ``vector_enter``/``vector_exit`` form the hysteresis pair on the
    lane-µop issue rate (µops per reference cycle): a burst begins only
    above ``vector_enter`` but persists until the rate falls below
    ``vector_exit``, so a memory-stalled lull inside one burst does not
    split it. ``min_intervals`` merges any phase shorter than that many
    samples into its predecessor.
    """

    __slots__ = ("vector_enter", "vector_exit", "scalar_ipc", "min_intervals")

    def __init__(self, vector_enter=0.10, vector_exit=0.02,
                 scalar_ipc=0.01, min_intervals=2):
        if vector_exit > vector_enter:
            raise ConfigError("hysteresis requires vector_exit <= vector_enter")
        if min_intervals < 1:
            raise ConfigError("min_intervals must be >= 1")
        self.vector_enter = vector_enter
        self.vector_exit = vector_exit
        self.scalar_ipc = scalar_ipc
        self.min_intervals = int(min_intervals)

    def as_dict(self):
        return {
            "vector_enter": self.vector_enter,
            "vector_exit": self.vector_exit,
            "scalar_ipc": self.scalar_ipc,
            "min_intervals": self.min_intervals,
        }


class PhaseSegment:
    """One contiguous run of same-phase intervals."""

    __slots__ = ("phase", "start_cycle", "end_cycle", "intervals", "cycles",
                 "instrs", "uops", "switches", "stalls", "energy_j")

    def __init__(self, phase, start_cycle):
        self.phase = phase
        self.start_cycle = start_cycle
        self.end_cycle = start_cycle
        self.intervals = 0
        self.cycles = 0
        self.instrs = 0
        self.uops = 0
        self.switches = 0
        self.stalls = {name: 0 for name in STALL_NAMES}
        self.energy_j = None

    def absorb(self, row):
        self.end_cycle = row["cycle"]
        self.intervals += 1
        self.cycles += row["d_cycles"]
        self.instrs += row["d_instrs_big"] + row["d_instrs_little"]
        self.uops += row["d_uops"]
        self.switches += row.get("d_switches", 0)
        for name in STALL_NAMES:
            self.stalls[name] += row[f"d_stall_{name}"]
        if "energy_j" in row:
            self.energy_j = (self.energy_j or 0.0) + row["energy_j"]

    @property
    def ipc(self):
        return self.instrs / self.cycles if self.cycles else 0.0

    def stall_fractions(self):
        total = sum(self.stalls.values())
        if not total:
            return {name: 0.0 for name in STALL_NAMES}
        return {name: self.stalls[name] / total for name in STALL_NAMES}

    def as_dict(self):
        doc = {
            "phase": self.phase,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "intervals": self.intervals,
            "cycles": self.cycles,
            "instrs": self.instrs,
            "uops": self.uops,
            "switches": self.switches,
            "ipc": round(self.ipc, 6),
            "stalls": dict(self.stalls),
        }
        if self.energy_j is not None:
            doc["energy_j"] = self.energy_j
        return doc

    def __repr__(self):
        return (f"<PhaseSegment {self.phase} "
                f"[{self.start_cycle}, {self.end_cycle}] "
                f"intervals={self.intervals}>")


class PhaseReport:
    """The segmented timeline of one run."""

    def __init__(self, segments, interval_cycles, thresholds):
        self.segments = segments
        self.interval_cycles = interval_cycles
        self.thresholds = thresholds

    def __len__(self):
        return len(self.segments)

    def counts(self):
        """Number of segments per phase label (zero-filled)."""
        out = {name: 0 for name in PHASE_NAMES}
        for seg in self.segments:
            out[seg.phase] += 1
        return out

    def total_stalls(self):
        """Whole-run stall mix: the per-phase mixes summed back together."""
        out = {name: 0 for name in STALL_NAMES}
        for seg in self.segments:
            for name in STALL_NAMES:
                out[name] += seg.stalls[name]
        return out

    def total_energy_j(self):
        if not any(seg.energy_j is not None for seg in self.segments):
            return None
        return sum(seg.energy_j or 0.0 for seg in self.segments)

    def as_dict(self):
        doc = {
            "schema": PHASES_SCHEMA,
            "interval_cycles": self.interval_cycles,
            "thresholds": self.thresholds.as_dict(),
            "n_phases": len(self.segments),
            "counts": self.counts(),
            "phases": [seg.as_dict() for seg in self.segments],
            "total_stalls": self.total_stalls(),
        }
        energy = self.total_energy_j()
        if energy is not None:
            doc["total_energy_j"] = energy
        return doc

    def to_json(self, path):
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.as_dict(), f, indent=1)
            f.write("\n")
        return len(self.segments)

    def format_table(self):
        has_energy = any(seg.energy_j is not None for seg in self.segments)
        hdr = (f"{'#':>3} {'phase':<12} {'cycles':>18} {'instrs':>9} "
               f"{'uops':>9} {'ipc':>6} {'top stalls':<28}")
        if has_energy:
            hdr += f" {'energy':>10}"
        lines = [hdr, "-" * len(hdr)]
        for i, seg in enumerate(self.segments):
            top = sorted(((v, k) for k, v in seg.stall_fractions().items()),
                         reverse=True)[:2]
            mix = " ".join(f"{k}={v:.0%}" for v, k in top if v > 0)
            span = f"[{seg.start_cycle:>7}, {seg.end_cycle:>7}]"
            line = (f"{i:>3} {seg.phase:<12} {span:>18} {seg.instrs:>9} "
                    f"{seg.uops:>9} {seg.ipc:>6.2f} {mix:<28}")
            if has_energy:
                line += f" {seg.energy_j * 1e6:>8.3f}uJ"
            lines.append(line)
        counts = self.counts()
        summary = ", ".join(f"{counts[p]} {p}" for p in PHASE_NAMES
                            if counts[p])
        lines.append(f"{len(self.segments)} phases: {summary}")
        return "\n".join(lines)


def _timeline_rows(timeline):
    """Normalize a sampler / ``as_dict()`` doc / loaded JSON into rows."""
    if hasattr(timeline, "rows"):  # an IntervalSampler
        return timeline.rows(), timeline.interval
    if not isinstance(timeline, dict):
        raise ConfigError("detect_phases expects an IntervalSampler or a "
                          "bigvlittle-timeline-v1 dict")
    schema = timeline.get("schema")
    if schema is not None and schema != TIMELINE_SCHEMA:
        raise ConfigError(f"unsupported timeline schema {schema!r}")
    cols = timeline["columns"]
    series = timeline["series"]
    n = timeline.get("samples", len(series.get("cycle", ())))
    rows = [{c: series[c][i] for c in cols} for i in range(n)]
    return rows, timeline.get("interval_cycles", 1)


def _raw_labels(rows, th):
    """Per-interval phase labels with vector-burst hysteresis."""
    labels = []
    prev = None
    for row in rows:
        width = max(row["d_cycles"], 1)
        uop_rate = row["d_uops"] / width
        ipc = row["ipc_big"] + row["ipc_little"]
        engine_busy = row["uopq"] > 0 or row["dataq"] > 0
        vec_gate = th.vector_exit if prev == VECTOR else th.vector_enter
        if row.get("switching") or (
                row.get("d_switches", 0) > 0 and uop_rate < th.vector_enter):
            label = SWITCH
        elif (uop_rate > 0 and uop_rate >= vec_gate) or engine_busy:
            label = VECTOR
        elif ipc >= th.scalar_ipc:
            label = SCALAR
        elif (row["ldq"] > 0 or row["d_dram_reads"] or row["d_dram_writes"]
              or row["d_l2_misses"]):
            label = DRAIN
        else:
            # a fully quiet interval extends whatever came before it
            label = prev if prev is not None else SCALAR
        labels.append(label)
        prev = label
    return labels


def _smooth(labels, min_intervals):
    """Merge phase runs shorter than ``min_intervals`` into a neighbor."""
    if min_intervals <= 1 or not labels:
        return list(labels)
    out = list(labels)
    changed = True
    while changed:
        changed = False
        runs = []
        start = 0
        for i in range(1, len(out) + 1):
            if i == len(out) or out[i] != out[start]:
                runs.append((start, i))
                start = i
        if len(runs) <= 1:
            break
        for k, (lo, hi) in enumerate(runs):
            if hi - lo >= min_intervals:
                continue
            # absorb into the longer neighbor (predecessor wins ties)
            prev_len = runs[k - 1][1] - runs[k - 1][0] if k > 0 else -1
            next_len = runs[k + 1][1] - runs[k + 1][0] if k + 1 < len(runs) else -1
            target = (out[runs[k - 1][0]] if prev_len >= next_len
                      else out[runs[k + 1][0]])
            for i in range(lo, hi):
                out[i] = target
            changed = True
            break
    return out


def detect_phases(timeline, thresholds=None):
    """Segment a sampled timeline into a :class:`PhaseReport`.

    ``timeline`` may be a live :class:`~repro.obs.sampler.IntervalSampler`,
    its ``as_dict()`` form, or a ``bigvlittle-timeline-v1`` JSON document
    loaded from disk.
    """
    th = thresholds or PhaseThresholds()
    rows, interval = _timeline_rows(timeline)
    labels = _smooth(_raw_labels(rows, th), th.min_intervals)
    segments = []
    prev_cycle = 0
    for row, label in zip(rows, labels):
        if not segments or segments[-1].phase != label:
            segments.append(PhaseSegment(label, prev_cycle))
        segments[-1].absorb(row)
        prev_cycle = row["cycle"]
    return PhaseReport(segments, interval, th)
