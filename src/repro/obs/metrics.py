"""Typed metrics: counters, gauges, and fixed-bucket histograms.

Every metric folds into a flat ``{name: int}`` dict (:meth:`as_stats`)
whose keys and values are a pure function of the simulated events, so the
result can be merged into ``RunResult.stats`` without breaking the
harness's determinism checks or cache round-trips (all values are ints —
JSON-lossless).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import ConfigError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, n=1):
        self.value += n

    def as_stats(self, prefix):
        return {prefix: self.value}


class Gauge:
    """A sampled level: tracks last / min / max of ``set`` calls."""

    __slots__ = ("last", "lo", "hi", "samples")

    def __init__(self):
        self.last = 0
        self.lo = None
        self.hi = None
        self.samples = 0

    def set(self, v, n=1):
        """Record ``v``; ``n`` folds a run of identical samples (used by
        the quiescence-skipping scheduler to compensate skipped ticks)."""
        self.last = v
        if self.lo is None or v < self.lo:
            self.lo = v
        if self.hi is None or v > self.hi:
            self.hi = v
        self.samples += n

    def as_stats(self, prefix):
        return {
            f"{prefix}.last": self.last,
            f"{prefix}.min": self.lo if self.lo is not None else 0,
            f"{prefix}.max": self.hi if self.hi is not None else 0,
            f"{prefix}.samples": self.samples,
        }


class Histogram:
    """Fixed-bucket histogram: bucket ``i`` counts values in
    ``(bounds[i-1], bounds[i]]``, with one implicit overflow bucket; also
    tracks total count and sum."""

    __slots__ = ("bounds", "counts", "n", "total")

    def __init__(self, bounds):
        b = tuple(bounds)
        if not b or list(b) != sorted(b):
            raise ConfigError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.n = 0
        self.total = 0

    def observe(self, v, n=1):
        self.counts[bisect_left(self.bounds, v)] += n
        self.n += n
        self.total += v * n

    def as_stats(self, prefix):
        out = {}
        for b, c in zip(self.bounds, self.counts):
            out[f"{prefix}.le_{b}"] = c
        out[f"{prefix}.inf"] = self.counts[-1]
        out[f"{prefix}.count"] = self.n
        out[f"{prefix}.sum"] = self.total
        return out


class MetricsRegistry:
    """Named metric store; re-requesting a name returns the same object."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics = {}

    def _get(self, name, kind, factory):
        m = self._metrics.get(name)
        if m is None:
            m = factory()
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise ConfigError(f"metric {name!r} already registered as {type(m).__name__}")
        return m

    def counter(self, name):
        return self._get(name, Counter, Counter)

    def gauge(self, name):
        return self._get(name, Gauge, Gauge)

    def histogram(self, name, bounds):
        h = self._get(name, Histogram, lambda: Histogram(bounds))
        if h.bounds != tuple(bounds):
            raise ConfigError(f"metric {name!r} re-registered with different buckets")
        return h

    def __len__(self):
        return len(self._metrics)

    def as_stats(self, prefix="obs.metric."):
        """Deterministic flat dict of every metric (keys sorted)."""
        out = {}
        for name in sorted(self._metrics):
            out.update(self._metrics[name].as_stats(prefix + name))
        return out
