"""Work-stealing task runtime model."""

from repro.runtime.workstealing import WorkStealingRuntime

__all__ = ["WorkStealingRuntime"]
