"""Work-stealing task runtime model (paper §IV-B).

The paper parallelizes task-parallel applications with a TBB/Cilk-Plus-like
runtime using random work stealing, and lets each data-parallel task carry
both a scalar and a vectorized body so the scheduler can run vector tasks on
the big core (via its integrated vector unit) and scalar tasks on the little
cores.

We model the runtime at instruction granularity: every scheduling action
(task spawn, local dequeue, steal, barrier) costs a burst of runtime
instructions spliced into the worker's instruction stream, so scheduling
overhead shows up in the same pipelines, caches and branch predictors as the
application itself — which is exactly why the paper's ``1bIV-4L`` issues more
instruction fetches than the single-engine systems (Fig. 5).

Phases execute sequentially: an optional serial prologue runs on the big
core (worker 0 by convention), then the phase's task bag is drained by all
workers, then an implicit barrier.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.isa.scalar import Op
from repro.trace.instr import SInstr, Trace
from repro.trace.source import ChainSource, InstrSource, TraceSource
from repro.utils import Xorshift64

_RUNTIME_PC = 0x8000  # runtime code region: shared, stays hot in the L1I


def _overhead_trace(n, tag):
    """``n`` ALU-ish instructions at stable runtime PCs."""
    instrs = []
    pc = _RUNTIME_PC + tag * 256
    reg = 1_000_000 + tag  # dedicated runtime registers, self-dependences ok
    for i in range(n):
        instrs.append(SInstr(pc + 4 * (i % 16), Op.ADDI, dst=reg + (i % 4)))
    return Trace(instrs, name=f"rt-{tag}")


# stages of a phase
_SERIAL = 0
_PARALLEL = 1


class _Worker(InstrSource):
    # peek() may claim the next task (or barrier slice) from the shared
    # scheduler, so probing it off the exact tick grid would reorder
    # task-steal races; the skip scheduler must never peek a worker.
    pure_peek = False

    __slots__ = ("sched", "idx", "vector_capable", "_cur")

    def __init__(self, sched, idx, vector_capable):
        self.sched = sched
        self.idx = idx
        self.vector_capable = vector_capable
        self._cur = None

    def peek(self):
        while True:
            if self._cur is not None and not self._cur.done():
                return self._cur.peek()
            self._cur = self.sched._next_work(self)
            if self._cur is None:
                return None

    def pop(self):
        return self._cur.pop()

    def done(self):
        return self.sched.finished and (self._cur is None or self._cur.done())


class WorkStealingRuntime:
    """Builds one :class:`InstrSource` per worker from a TaskProgram."""

    __slots__ = ("program", "n_workers", "_rng", "spawn_overhead",
                 "deque_overhead", "steal_overhead", "barrier_overhead",
                 "workers", "_phase", "_stage", "_tasks", "_arrived",
                 "_serial_given", "finished", "tasks_executed", "steals",
                 "_executed_ids")

    def __init__(
        self,
        program,
        n_workers,
        vector_capable=(),
        seed=12345,
        spawn_overhead=10,
        deque_overhead=30,
        steal_overhead=140,
        barrier_overhead=60,
    ):
        if n_workers < 1:
            raise WorkloadError("need at least one worker")
        self.program = program
        self.n_workers = n_workers
        self._rng = Xorshift64(seed)
        self.spawn_overhead = spawn_overhead
        self.deque_overhead = deque_overhead
        self.steal_overhead = steal_overhead
        self.barrier_overhead = barrier_overhead

        caps = list(vector_capable) + [False] * (n_workers - len(vector_capable))
        self.workers = [_Worker(self, i, caps[i]) for i in range(n_workers)]

        self._phase = 0
        self._stage = _SERIAL
        self._tasks = []
        self._arrived = set()
        self._serial_given = False
        self.finished = False
        self.tasks_executed = 0
        self.steals = 0
        self._executed_ids = []
        self._enter_phase()

    # ---------------------------------------------------------------- phases

    def _enter_phase(self):
        while self._phase < len(self.program.phases):
            phase = self.program.phases[self._phase]
            self._tasks = list(phase.tasks)
            self._arrived = set()
            self._serial_given = False
            if phase.serial is not None:
                self._stage = _SERIAL
                return
            if self._tasks:
                self._stage = _PARALLEL
                return
            self._phase += 1
        self.finished = True

    def _next_work(self, worker):
        if self.finished:
            return None
        if self._stage == _SERIAL:
            if worker.idx != 0:
                return None
            if not self._serial_given:
                self._serial_given = True
                phase = self.program.phases[self._phase]
                spawn_cost = self.spawn_overhead * len(self._tasks)
                parts = [TraceSource(phase.serial)]
                if spawn_cost:
                    parts.append(TraceSource(_overhead_trace(spawn_cost, tag=1)))

                return ChainSource(parts)
            # serial body fully consumed by worker 0 -> open the task bag
            if self._tasks:
                self._stage = _PARALLEL
            else:
                self._phase += 1
                self._enter_phase()
                if self.finished:
                    return None
            return self._next_work(worker)
        # parallel stage
        if self._tasks:
            task = self._pick_task(worker)
            self.tasks_executed += 1
            self._executed_ids.append(task.tid)
            overhead = self.deque_overhead if worker.idx == 0 else self._grab_cost(worker)

            return ChainSource([
                TraceSource(_overhead_trace(overhead, tag=2 + worker.idx)),
                TraceSource(task.trace_for(worker.vector_capable)),
            ])
        # barrier
        self._arrived.add(worker.idx)
        if len(self._arrived) == self.n_workers:
            self._phase += 1
            self._enter_phase()
            cost = self.barrier_overhead

            return ChainSource([TraceSource(_overhead_trace(cost, tag=10 + worker.idx))])
        return None

    def _pick_task(self, worker):
        # random victim selection is what "random work stealing" randomizes;
        # with a central bag we randomize which task a thief grabs
        if worker.idx == 0:
            return self._tasks.pop(0)
        i = self._rng.randint(0, len(self._tasks) - 1)
        return self._tasks.pop(i)

    def _grab_cost(self, worker):
        self.steals += 1
        return self.steal_overhead

    # ----------------------------------------------------------------- stats

    def stats(self):
        return {
            "runtime.tasks": self.tasks_executed,
            "runtime.steals": self.steals,
        }
