"""Vector memory unit of the VLITTLE engine (paper §III-E).

* **VMIU** — receives memory commands from the VCU the moment the big core
  dispatches them (decoupling), generates one cache-line request per cycle
  from base+stride, coalesces up to four indexed elements per cycle, and
  routes each request to the VMSU owning its bank.
* **VMSU** (one per little-core L1D slice) — a store-address CAM disambiguates
  loads against outstanding stores; load and store data live in FIFOs carved
  from the (idle) L1I SRAM arrays, whose depth is the Figure 8 sweep knob.
* **VLU** — returns load lines strictly in request order, slicing each into
  per-lane element groups pushed into the lanes' load queues.
* **VSU** — collects per-element store data from the lanes and releases each
  store line to its VMSU once assembled.

Element-to-lane geometry: element ``i`` of a ``vl``-element instruction lives
in chime ``i // (lanes*pack)`` and lane ``(i % (lanes*pack)) // pack`` — the
paper's Figure 2 mapping with ``pack`` consecutive elements packed into one
64-bit scalar register.
"""

from __future__ import annotations

from collections import deque

from repro.isa.vector import VClass, VOP_CLASS, VOP_IS_LOAD
from repro.mem.message import BLOCKED, HIT
from repro.stats.breakdown import Stall

_INF = 1 << 60


class LineReq:
    __slots__ = ("rid", "line", "is_write", "seq", "deliveries", "data_ready",
                 "store_data_at", "nelems", "pv")

    def __init__(self, rid, line, is_write, seq, deliveries, nelems):
        self.rid = rid
        self.line = line
        self.is_write = is_write
        self.seq = seq
        self.deliveries = deliveries  # [(chime, lane, count)]
        self.data_ready = None  # loads: cycle line data arrived from the L1D
        self.store_data_at = None  # stores: cycle the VSU assembled the data
        self.nelems = nelems
        self.pv = None  # PipeRecord when instruction-grain tracking is on


class _MemCmd:
    """Per-instruction bookkeeping created when the VCU registers a memory op."""

    __slots__ = ("ins", "lines", "next_line", "indexed", "addr_credits",
                 "next_elem", "elem_lines", "elem_cl", "pv_parent")

    def __init__(self, ins, lines, indexed, elem_lines, elem_cl):
        self.ins = ins
        self.lines = lines  # [(line, deliveries, nelems)] in element order
        self.next_line = 0
        self.indexed = indexed
        self.addr_credits = 0  # indexed: element addresses received from lanes
        self.next_elem = 0
        self.elem_lines = elem_lines  # indexed: per-element line addr
        self.elem_cl = elem_cl  # per-element (chime, lane)
        self.pv_parent = None  # dispatching PipeRecord, captured at register()


class VectorMemoryUnit:
    __slots__ = ("engine", "bank_map", "coalesce_width", "_cmdq", "_rid",
                 "vmsus", "vlu", "vsu", "line_reqs", "store_line_reqs",
                 "obs", "_pv", "_obs_coalesce")

    def __init__(self, engine, l1ds, bank_map, loadq_lines=64, storeq_lines=64,
                 vmsu_inq_depth=4, coalesce_width=4):
        self.engine = engine
        self.bank_map = bank_map
        self.coalesce_width = coalesce_width
        self._cmdq = deque()
        self._rid = 0
        self.vmsus = [VMSU(self, i, l1d, loadq_lines, storeq_lines, vmsu_inq_depth)
                      for i, l1d in enumerate(l1ds)]
        self.vlu = VLU(engine)
        self.vsu = VSU(engine)
        # counters
        self.line_reqs = 0
        self.store_line_reqs = 0

        self.obs = None  # VMIU UnitObs; every hook is a single cheap check
        self._pv = None  # PipeView handle; same cheap-check discipline

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit("vmu", "little", process="vector")
        self._pv = obs.pipeview
        self._obs_coalesce = obs.metrics.histogram(
            "vmu.coalesce_elems", (1, 2, 4, 8, 16, 32))
        for v in self.vmsus:
            v.attach_obs(obs)

    # ---------------------------------------------------------- VCU interface

    def cmd_space(self):
        return len(self._cmdq) < 64

    def register(self, ins):
        """Accept a memory instruction (called at dispatch — decoupling)."""
        lanes, pack = self.engine.lanes_count, self.engine.pack_for(ins.ew)
        epc = lanes * pack
        cls = VOP_CLASS[ins.op]
        indexed = cls == VClass.MEM_INDEX
        addrs = ins.element_addrs()
        lb = self.bank_map.line_bytes
        elem_cl = [((i // epc), (i % epc) // pack) for i in range(len(addrs))]
        elem_lines = [a // lb * lb for a in addrs]
        lines = []
        cur_line, cur_deliv, cur_n = None, None, 0
        for i, ln in enumerate(elem_lines):
            if ln != cur_line:
                if cur_line is not None:
                    lines.append((cur_line, cur_deliv, cur_n))
                cur_line, cur_deliv, cur_n = ln, {}, 0
            key = elem_cl[i]
            cur_deliv[key] = cur_deliv.get(key, 0) + 1
            cur_n += 1
        if cur_line is not None:
            lines.append((cur_line, cur_deliv, cur_n))
        cmd = _MemCmd(ins, lines, indexed, elem_lines, elem_cl)
        if self._pv is not None:
            # capture the dispatching record now — by the time the VMIU
            # issues this command's lines the ROB entry may have retired
            cmd.pv_parent = self._pv.seq_record(ins.seq)
        self._cmdq.append(cmd)
        # per-(chime, lane) element counts drive the lanes' LDWB/STDATA µops
        expected = {}
        for c, l in elem_cl:
            expected[(c, l)] = expected.get((c, l), 0) + 1
        self.engine.set_elem_expected(ins.seq, expected)
        if not VOP_IS_LOAD[ins.op]:
            self.vsu.register_store(ins.seq, len(addrs))

    def credit_indexed(self, seq, count):
        """Lanes delivered ``count`` element addresses for instruction seq."""
        for cmd in self._cmdq:
            if cmd.ins.seq == seq:
                cmd.addr_credits += count
                return
        # command already fully issued (late credits are harmless)

    def idle(self):
        return (not self._cmdq and all(v.idle() for v in self.vmsus)
                and self.vlu.idle() and self.vsu.idle())

    def forensic_state(self, now):
        """Occupancy summary for :mod:`repro.obs.forensics` (pure),
        nested into the owning engine's snapshot."""
        return {
            "cmdq": len(self._cmdq),
            "loadq_pending": len(self.vlu.pending),
            "storeq_pending": len(self.vsu.pending),
            "vmsu_inq": [len(v.inq) for v in self.vmsus],
            "vmsu_ldq_used": [v.ldq_used for v in self.vmsus],
            "vmsu_sdq": [len(v.sdq) for v in self.vmsus],
            "store_fills_inflight": sum(v._store_fills for v in self.vmsus),
        }

    # ------------------------------------------------------------------ tick

    def tick(self, now):
        for v in self.vmsus:
            v.tick(now)
        self.vsu.tick(now)
        self.vlu.tick(now)
        cat = self._vmiu_tick(now)
        if self.obs is not None:
            self.obs.cycle(cat)

    # ------------------------------------------------------- skip scheduling

    def _vmiu_probe(self, now):
        """Pure mirror of ``_vmiu_tick``: ``(category, bound)`` where
        category is the stall an idle cycle charges (None when the next
        tick would issue or pop — a veto) and bound the earliest future
        ps the VMIU's own state unblocks (always ``_INF`` here: credits,
        queue space, and pops all arrive on executed ticks)."""
        if not self._cmdq:
            return Stall.MISC, _INF
        cmd = self._cmdq[0]
        if cmd.next_line >= len(cmd.lines):
            return None, 0
        line, _deliveries, nelems = cmd.lines[cmd.next_line]
        if cmd.indexed:
            need = cmd.next_elem + min(nelems, self.coalesce_width)
            if cmd.addr_credits < need:
                return Stall.RAW_LLFU, _INF
        if not self.vmsus[self.bank_map.bank_of(line)].can_accept():
            return Stall.STRUCT, _INF
        return None, 0

    def next_work_ps(self, now):
        """Earliest future ps at which any VMU sub-unit could do work."""
        cat, bound = self._vmiu_probe(now)
        if cat is None:
            return 0
        for v in self.vmsus:
            t = v.next_work_ps(now)
            if t <= now:
                return 0
            if t < bound:
                bound = t
        t = self.vsu.next_work_ps(now)
        if t <= now:
            return 0
        if t < bound:
            bound = t
        t = self.vlu.next_work_ps(now)
        if t <= now:
            return 0
        if t < bound:
            bound = t
        return bound

    def skip_ticks(self, n, now):
        """Replay per-tick constant effects of ``n`` provably idle ticks."""
        for v in self.vmsus:
            v.skip_ticks(n, now)
        self.vlu.skip_ticks(n, now)
        # the VSU's idle paths have no per-tick effects
        if self.obs is not None:
            cat, _ = self._vmiu_probe(now)
            self.obs.cycle(cat, n)

    def _vmiu_tick(self, now):
        """Generate at most one line request per cycle (shared command bus).

        Returns the Stall category this VMIU cycle is attributed to."""
        if not self._cmdq:
            return Stall.MISC
        cmd = self._cmdq[0]
        if cmd.next_line >= len(cmd.lines):
            self._cmdq.popleft()
            return Stall.MISC
        line, deliveries, nelems = cmd.lines[cmd.next_line]
        if cmd.indexed:
            # only issue once the lanes have produced the addresses of every
            # element in this line-group (coalescing window <= 4 elements)
            need = cmd.next_elem + min(nelems, self.coalesce_width)
            if cmd.addr_credits < need:
                return Stall.RAW_LLFU  # waiting on lane address generation
        is_write = not VOP_IS_LOAD[cmd.ins.op]
        bank = self.bank_map.bank_of(line)
        vmsu = self.vmsus[bank]
        if not vmsu.can_accept():
            return Stall.STRUCT  # target slice's input queue is full
        req = LineReq(self._rid, line, is_write,
                      cmd.ins.seq, list(deliveries.items()), nelems)
        if self._pv is not None:
            req.pv = self._pv.begin(
                "vmu", f"{'st' if is_write else 'ld'} 0x{line:x} s{cmd.ins.seq}",
                now, stage="VM", pc=cmd.ins.pc, parent=cmd.pv_parent)
        self._rid += 1
        self.line_reqs += 1
        if is_write:
            self.store_line_reqs += 1
        if self.obs is not None:
            self._obs_coalesce.observe(nelems)
            self.obs.instant("store_line" if is_write else "load_line", now,
                             {"bank": bank, "seq": cmd.ins.seq})
        vmsu.push(req, now)
        if not is_write:
            self.vlu.pending.append(req)
        else:
            self.vsu.pending.append(req)
        cmd.next_line += 1
        cmd.next_elem += nelems
        if cmd.next_line >= len(cmd.lines):
            self._cmdq.popleft()
        return Stall.BUSY

    def stats(self):
        return {
            "vmu.line_reqs": self.line_reqs,
            "vmu.store_line_reqs": self.store_line_reqs,
            "vmu.load_blocked_on_cam": sum(v.cam_stalls for v in self.vmsus),
            "vmu.ldq_full_stalls": sum(v.ldq_full_stalls for v in self.vmsus),
        }


class VMSU:
    """Vector memory slice unit: front end of one L1D bank slice."""

    __slots__ = ("vmu", "bank", "l1d", "loadq_lines", "storeq_lines",
                 "inq_depth", "inq", "ldq_used", "sdq", "cam", "_store_fills",
                 "_port_cycle", "cam_stalls", "ldq_full_stalls",
                 "obs", "_obs_ldq")

    def __init__(self, vmu, bank, l1d, loadq_lines, storeq_lines, inq_depth):
        self.vmu = vmu
        self.bank = bank
        self.l1d = l1d
        self.loadq_lines = loadq_lines
        self.storeq_lines = storeq_lines
        self.inq_depth = inq_depth
        self.inq = deque()
        self.ldq_used = 0
        self.sdq = deque()  # store LineReqs waiting for data / L1D write
        self.cam = {}  # line -> count of outstanding stores to it
        self._store_fills = 0  # write misses completing inside the L1D
        self._port_cycle = -1
        self.cam_stalls = 0
        self.ldq_full_stalls = 0

        self.obs = None  # UnitObs handle; every hook is a single cheap check

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit(f"vmsu{self.bank}", "little", process="vector")
        self._obs_ldq = obs.metrics.histogram(
            f"vmsu{self.bank}.ldq_occupancy", (0, 4, 8, 16, 32, 64))

    def can_accept(self):
        return len(self.inq) < self.inq_depth

    def push(self, req, now):
        self.inq.append(req)

    def idle(self):
        return (not self.inq and not self.sdq and self.ldq_used == 0
                and self._store_fills == 0)

    # ------------------------------------------------------- skip scheduling

    def next_work_ps(self, now):
        """Earliest future ps at which either sub-pipe could do work.
        ``_port_cycle`` is never equal to a future tick, so the probe
        evaluates both pipes as if the port were free. Pure."""
        bound = _INF
        if self.inq:
            req = self.inq[0]
            if req.is_write:
                if len(self.sdq) < self.storeq_lines:
                    return 0  # store enters the CAM/sdq next tick
            elif not self.cam.get(req.line):
                if self.ldq_used < self.loadq_lines:
                    return 0  # load accesses the L1D slice next tick
            # CAM-blocked or queue-full: unblocked by the store pipe below
            # or by the VLU freeing ldq entries on an executed tick
        if self.sdq:
            t = self.sdq[0].store_data_at
            if t is not None:
                if t <= now:
                    return 0  # store writes to the L1D slice next tick
                if t < bound:
                    bound = t
        return bound

    def skip_ticks(self, n, now):
        """Replay ``n`` provably idle ticks: the blocked sub-pipes charge
        their stall counters and obs attribution every cycle."""
        a = s = None
        if self.inq:
            req = self.inq[0]
            if req.is_write:
                a = Stall.STRUCT  # sdq full (anything else was vetoed)
            elif self.cam.get(req.line):
                self.cam_stalls += n
                a = Stall.RAW_MEM
            else:
                self.ldq_full_stalls += n
                a = Stall.STRUCT  # ldq full (anything else was vetoed)
        if self.sdq:
            s = Stall.RAW_LLFU  # waiting on store data (else vetoed)
        if self.obs is not None:
            cat = a if a is not None else (s if s is not None else Stall.MISC)
            self.obs.cycle(cat, n)
            self._obs_ldq.observe(self.ldq_used, n)

    def tick(self, now):
        a = self._accept_tick(now)
        s = self._store_write_tick(now)
        if self.obs is not None:
            # one category per slice cycle: progress on either sub-pipe wins
            if a == Stall.BUSY or s == Stall.BUSY:
                cat = Stall.BUSY
            elif a is not None:
                cat = a
            elif s is not None:
                cat = s
            else:
                cat = Stall.MISC
            self.obs.cycle(cat)
            self._obs_ldq.observe(self.ldq_used)

    def _accept_tick(self, now):
        """Returns the Stall category for the accept pipe, or None if idle."""
        if not self.inq:
            return None
        req = self.inq[0]
        if req.is_write:
            if len(self.sdq) >= self.storeq_lines:
                return Stall.STRUCT
            # the store enters the CAM only now: the in-order inq guarantees
            # it is older than every load still queued behind it
            self.cam[req.line] = self.cam.get(req.line, 0) + 1
            self.sdq.append(req)
            self.inq.popleft()
            if req.pv is not None:
                self.vmu._pv.stage(req.pv, "SQ", now)
            return Stall.BUSY
        # load: RAW disambiguation against queued stores to the same line
        if self.cam.get(req.line):
            self.cam_stalls += 1
            return Stall.RAW_MEM
        if self.ldq_used >= self.loadq_lines:
            self.ldq_full_stalls += 1
            return Stall.STRUCT
        if self._port_cycle == now:
            return Stall.STRUCT
        res, ready = self.l1d.access(req.line, False, now, waiter=self._fill_waiter(req))
        if res == BLOCKED:
            return Stall.STRUCT
        self._port_cycle = now
        if res == HIT:
            req.data_ready = ready
        self.ldq_used += 1
        self.inq.popleft()
        if req.pv is not None:
            self.vmu._pv.stage(req.pv, "L1", now)
        return Stall.BUSY

    def _fill_waiter(self, req):
        def waiter(line, ready):
            n = self.vmu.engine._ev_notify
            if n is not None:
                n()
            req.data_ready = ready

        return waiter

    def _store_write_tick(self, now):
        """Issue the oldest data-complete store to the L1D slice. The CAM
        entry clears as soon as the store is *sent to memory* (paper §III-E:
        loads stall only "until the store request is sent to the memory
        subsystem"); a write miss finishes inside the cache via its MSHR."""
        if not self.sdq:
            return None
        if self._port_cycle == now:
            return Stall.STRUCT
        req = self.sdq[0]
        if req.store_data_at is None or req.store_data_at > now:
            return Stall.RAW_LLFU  # waiting on store data from the lanes
        res, ready = self.l1d.access(req.line, True, now, waiter=self._store_done_waiter())
        if res == BLOCKED:
            self._store_fills -= 1
            return Stall.STRUCT
        self._port_cycle = now
        if res == HIT:
            self._store_fills -= 1
        if req.pv is not None:
            pv = self.vmu._pv
            pv.stage(req.pv, "L1", now)
            pv.retire(req.pv, now)
        self._retire_store()
        return Stall.BUSY

    def _store_done_waiter(self):
        self._store_fills += 1

        def waiter(line, ready):
            n = self.vmu.engine._ev_notify
            if n is not None:
                n()
            self._store_fills -= 1

        return waiter

    def _retire_store(self):
        req = self.sdq.popleft()
        n = self.cam.get(req.line, 0) - 1
        if n <= 0:
            self.cam.pop(req.line, None)
        else:
            self.cam[req.line] = n


class VLU:
    """Vector load unit: strict in-order line return, sliced per lane."""

    __slots__ = ("engine", "pending", "lane_q_elems", "lane_q_used",
                 "lane_q_stalls")

    def __init__(self, engine, lane_q_elems=32):
        self.engine = engine
        self.pending = deque()  # load LineReqs in request order
        self.lane_q_elems = lane_q_elems
        self.lane_q_used = [0] * engine.lanes_count
        self.lane_q_stalls = 0

    def idle(self):
        return not self.pending

    def next_work_ps(self, now):
        """Earliest future ps the VLU could deliver; ``_INF`` while the
        head line is in flight (the L1D fill fires on an executed memory
        tick) or a lane queue is full (lanes drain on executed ticks)."""
        if not self.pending:
            return _INF
        req = self.pending[0]
        t = req.data_ready
        if t is None:
            return _INF
        if t > now:
            return t
        for (_chime, lane), count in req.deliveries:
            if self.lane_q_used[lane] + count > self.lane_q_elems:
                return _INF  # skip_ticks compensates the per-tick stall
        return 0

    def skip_ticks(self, n, now):
        if not self.pending:
            return
        req = self.pending[0]
        if req.data_ready is None or req.data_ready > now:
            return
        self.lane_q_stalls += n  # head blocked on a full lane queue

    def tick(self, now):
        if not self.pending:
            return
        req = self.pending[0]
        if req.data_ready is None or req.data_ready > now:
            return
        for (chime, lane), count in req.deliveries:
            if self.lane_q_used[lane] + count > self.lane_q_elems:
                self.lane_q_stalls += 1
                return
        for (_chime, lane), count in req.deliveries:
            self.lane_q_used[lane] += count
        self.engine.deliver_load_batch(req.seq, req.deliveries,
                                       now + self.engine.period)
        self.pending.popleft()
        if req.pv is not None:
            self.engine.vmu._pv.retire(req.pv, now + self.engine.period)
        # free the slice's SRAM load-queue entry
        bank = self.engine.vmu.bank_map.bank_of(req.line)
        self.engine.vmu.vmsus[bank].ldq_used -= 1

    def consume(self, lane, count):
        """A lane's load-writeback µop drained ``count`` elements."""
        self.lane_q_used[lane] -= count


class VSU:
    """Vector store unit: assembles store lines from per-lane element data."""

    __slots__ = ("engine", "pending", "_have", "_need")

    def __init__(self, engine):
        self.engine = engine
        self.pending = deque()  # store LineReqs in request order
        self._have = {}  # seq -> (elements received, last arrival cycle)
        self._need = {}  # seq -> total elements

    def register_store(self, seq, nelems):
        self._need[seq] = nelems
        self._have.setdefault(seq, [0, 0])

    def credit(self, seq, count, at):
        h = self._have.setdefault(seq, [0, 0])
        h[0] += count
        if at > h[1]:
            h[1] = at

    def idle(self):
        return not self.pending

    def next_work_ps(self, now):
        """Earliest future ps the VSU could assemble its head line;
        ``_INF`` while waiting on lane store-data credits."""
        if not self.pending:
            return _INF
        req = self.pending[0]
        if req.store_data_at is not None:
            return 0  # head pops next tick
        h = self._have.get(req.seq)
        need = self._need.get(req.seq, 0)
        if h is None or h[0] < need:
            return _INF
        if h[1] > now:
            return h[1]
        return 0

    def tick(self, now):
        if not self.pending:
            return
        req = self.pending[0]
        if req.store_data_at is not None:
            self.pending.popleft()
            return
        h = self._have.get(req.seq)
        need = self._need.get(req.seq, 0)
        if h is None or h[0] < need or h[1] > now:
            return
        req.store_data_at = now + self.engine.period
        self.pending.popleft()
