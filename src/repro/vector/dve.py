"""Aggressive decoupled vector engine — the ``1bDV`` baseline (paper Fig. 3).

Tarantula-class resources: a 2048-bit vector register file, sixteen 32-bit
execution lanes (a 64-element instruction executes in 4 chimes), deep command
and data buffers, and a private high-bandwidth port into the shared L2 that
can issue multiple cache-line requests per cycle with many in flight.

Memory decoupling is first-class: load instructions start fetching their
lines the moment the big core dispatches them (well before the compute
pipeline reaches them); the compute side is a single in-order issue pipe
whose dependences are tracked through producer sequence ids.
"""

from __future__ import annotations

from collections import deque

from repro.cores.fu import DEFAULT_LATENCY
from repro.errors import ConfigError
from repro.isa.scalar import FUClass
from repro.isa.vector import VClass, VOp, VOP_CLASS, VOP_IS_LOAD, VOP_IS_STORE
from repro.stats.breakdown import Stall
from repro.utils import ceil_div

_INF = 1 << 60

_CLS_FU = {
    VClass.INT_SIMPLE: FUClass.ALU,
    VClass.INT_COMPLEX: FUClass.DIV,
    VClass.FP: FUClass.FPU,
    VClass.FDIV: FUClass.FDIV,
    VClass.MASK: FUClass.ALU,
    VClass.MOVE: FUClass.ALU,
}


class _LoadTracker:
    __slots__ = ("seq", "lines", "arrived", "ready_time")

    def __init__(self, seq, lines):
        self.seq = seq
        self.lines = lines
        self.arrived = 0
        self.ready_time = None


class DecoupledVectorEngine:
    """Engine interface: ``can_accept`` / ``dispatch`` / ``tick`` / ``idle``."""

    __slots__ = (
        "l2", "port", "vlen_bits", "lanes", "cmdq_depth", "loadq_lines",
        "max_inflight", "lines_per_cycle", "line_bytes", "period",
        "_cmdq", "_vready", "_trackers", "_line_to_tracker", "_pending_reqs",
        "_inflight", "_loadq_used", "_store_outstanding", "_pipe_free",
        "_token", "instrs", "line_reqs", "store_line_reqs", "_pop_at",
        "obs", "_pv", "_obs_inflight", "_ev_notify",
    )

    def __init__(
        self,
        l2,
        port,
        vlen_bits=2048,
        lanes=16,
        cmdq_depth=64,
        loadq_lines=64,
        max_inflight=32,
        lines_per_cycle=2,
        line_bytes=64,
        period=1,
    ):
        if vlen_bits % 64:
            raise ConfigError("VLEN must be a multiple of 64")
        self.l2 = l2
        self.port = port
        self.vlen_bits = vlen_bits
        self.lanes = lanes
        self.cmdq_depth = cmdq_depth
        self.loadq_lines = loadq_lines
        self.max_inflight = max_inflight
        self.lines_per_cycle = lines_per_cycle
        self.line_bytes = line_bytes
        self.period = period

        self._cmdq = deque()  # (ins, respond)
        self._vready = {}  # producer seq -> cycle its register value is ready
        self._trackers = {}  # seq -> _LoadTracker
        self._line_to_tracker = {}  # token -> tracker
        self._pending_reqs = deque()  # (line, tracker) awaiting issue to L2
        self._inflight = 0
        self._loadq_used = 0
        self._store_outstanding = 0
        self._pipe_free = 0
        self._token = 0

        # counters
        self.instrs = 0
        self.line_reqs = 0
        self.store_line_reqs = 0

        # head popping folded into tick entry to keep the FSM tiny
        self._pop_at = -1

        self.obs = None  # UnitObs handle; every hook is a single cheap check
        self._pv = None  # PipeView handle; same cheap-check discipline
        # event-loop wakeup: fired on dispatch pushes from the big core
        self._ev_notify = None

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit("dve", "big", process="vector")
        self._pv = obs.pipeview
        self._obs_inflight = obs.metrics.gauge("dve.inflight_lines")

    # ------------------------------------------------------------- interface

    def vlmax(self, ew):
        return self.vlen_bits // (8 * ew)

    def can_accept(self, now):
        return len(self._cmdq) < self.cmdq_depth

    def dispatch(self, ins, now, respond=None):
        n = self._ev_notify
        if n is not None:
            n()  # big-core push: settle + re-arm before the queues mutate
        self.instrs += 1
        if ins.op == VOp.VSETVL:
            # the grant depends only on avl and vtype — no need to traverse
            # the command queue; respond right away so the big core's ROB
            # head never serializes on strip-mine bookkeeping
            if respond:
                respond(now + 2 * self.period)
            return
        entry = [ins, respond, False, None]  # [ins, respond, started, pv]
        if self._pv is not None:
            entry[3] = self._pv.begin(
                "dve", f"{VOp(ins.op).name} s{ins.seq}", now, stage="Q",
                pc=ins.pc, parent=self._pv.seq_record(ins.seq))
        self._cmdq.append(entry)
        if VOP_IS_LOAD[ins.op]:
            # decoupling: begin fetching lines immediately
            lines = self._lines_of(ins)
            tracker = _LoadTracker(ins.seq, len(lines))
            self._trackers[ins.seq] = tracker
            for line in lines:
                self._pending_reqs.append((line, tracker))

    def idle(self):
        return (
            not self._cmdq
            and not self._pending_reqs
            and self._inflight == 0
            and self._store_outstanding == 0
        )

    def forensic_state(self, now):
        """Scheduling-state summary for :mod:`repro.obs.forensics`.
        Pure (read-only); see :meth:`BigCore.forensic_state`."""
        waits = []
        if (self._inflight or self._pending_reqs
                or self._store_outstanding):
            waits.append(("mem",
                          f"{self._inflight} line(s) in flight, "
                          f"{len(self._pending_reqs)} queued, "
                          f"{self._store_outstanding} store(s) outstanding"))
        return {
            "cmdq": len(self._cmdq),
            "cmdq_depth": self.cmdq_depth,
            "pending_line_reqs": len(self._pending_reqs),
            "inflight_lines": self._inflight,
            "loadq_used": self._loadq_used,
            "store_outstanding": self._store_outstanding,
            "instrs": self.instrs,
            "done": self.idle(),
            "waits_on": waits,
        }

    # ------------------------------------------------------- skip scheduling

    def next_accept_ps(self, now):
        """Pure bound on ``can_accept`` (which is itself pure here)."""
        return 0 if len(self._cmdq) < self.cmdq_depth else _INF

    def _compute_probe(self, now):
        """Pure mirror of ``_compute_tick``: ``(category, bound)`` with
        category None when the next tick would pop/issue/execute."""
        if self._cmdq and self._cmdq[0][2]:
            if self._pop_at <= now:
                return None, 0
            return Stall.BUSY, self._pop_at
        if not self._cmdq:
            return Stall.MISC, _INF
        ins = self._cmdq[0][0]
        if ins.op == VOp.VMFENCE:
            if (self._inflight == 0 and self._store_outstanding == 0
                    and not self._pending_reqs):
                return None, 0
            return Stall.RAW_MEM, _INF  # drained by L2 responses
        for dep in ins.dep_ids:
            t = self._vready.get(dep, 0)
            if t > now:
                return Stall.RAW_LLFU, t
        if self._pipe_free > now:
            return Stall.STRUCT, self._pipe_free
        if VOP_IS_LOAD[ins.op]:
            tr = self._trackers.get(ins.seq)
            if tr is None or tr.ready_time is None:
                return Stall.RAW_MEM, _INF  # lines still in flight
            if tr.ready_time > now:
                return Stall.RAW_MEM, tr.ready_time
        return None, 0

    def next_work_ps(self, now):
        """Earliest future ps at which the engine could do real work."""
        bound = _INF
        t = self.port.resp_queue.next_time()
        if t is not None:
            if t <= now:
                return 0  # a response pops next tick
            if t < bound:
                bound = t
        if (self._pending_reqs and self._inflight < self.max_inflight
                and self._loadq_used < self.loadq_lines):
            return 0  # line requests issue next tick
        cat, t = self._compute_probe(now)
        if cat is None:
            return 0
        if t < bound:
            bound = t
        return bound

    def skip_ticks(self, n, now):
        """Replay ``n`` provably idle ticks (per-cycle obs attribution is
        the engine's only per-tick effect)."""
        if self.obs is not None:
            cat, _ = self._compute_probe(now)
            self.obs.cycle(cat, n)
            self._obs_inflight.set(self._inflight, n)

    # ----------------------------------------------------------------- tick

    def tick(self, now):
        self._mem_tick(now)
        cat = self._compute_tick(now)
        if self.obs is not None:
            self.obs.cycle(cat)
            self._obs_inflight.set(self._inflight)

    def _mem_tick(self, now):
        # responses from the L2
        while True:
            resp = self.port.pop_ready(now)
            if resp is None:
                break
            line, granted, token = resp
            tr = self._line_to_tracker.pop(token, None)
            self._inflight -= 1
            if tr is None:
                self._store_outstanding -= 1
                continue
            tr.arrived += 1
            if tr.arrived == tr.lines:
                tr.ready_time = now
        # issue new line requests
        issued = 0
        while (
            self._pending_reqs
            and issued < self.lines_per_cycle
            and self._inflight < self.max_inflight
            and self._loadq_used < self.loadq_lines
        ):
            line, tr = self._pending_reqs.popleft()
            token = self._token
            self._token += 1
            self._line_to_tracker[token] = tr
            self._l2_request(line, False, now, token)
            self._inflight += 1
            self._loadq_used += 1
            self.line_reqs += 1
            issued += 1
            if self.obs is not None:
                self.obs.instant("load_line", now, {"seq": tr.seq})

    def _l2_request(self, line, is_write, now, token):
        # the raw port was registered with the L2 under its port_id
        self.l2.request(self.port.port_id, line, is_write, now, token=token)

    def _compute_tick(self, now):
        """One issue-pipe cycle; returns its Stall attribution category."""
        if self._cmdq and self._cmdq[0][2]:
            if self._pop_at <= now:
                self._cmdq.popleft()
            else:
                return Stall.BUSY  # head executing over its chimes
        if not self._cmdq:
            return Stall.MISC
        ins, respond, started, _pv_rec = self._cmdq[0]
        cls = VOP_CLASS[ins.op]
        nchimes = max(1, ceil_div(max(ins.vl, 1), self.lanes))

        P = self.period
        if ins.op == VOp.VMFENCE:
            if self._inflight == 0 and self._store_outstanding == 0 and not self._pending_reqs:
                self._finish(now, now + P)
                return Stall.BUSY
            return Stall.RAW_MEM  # fence draining outstanding lines
        # register dependences
        for dep in ins.dep_ids:
            if self._vready.get(dep, 0) > now:
                return Stall.RAW_LLFU
        if self._pipe_free > now:
            return Stall.STRUCT

        if VOP_IS_LOAD[ins.op]:
            tr = self._trackers.get(ins.seq)
            if tr is None or tr.ready_time is None or tr.ready_time > now:
                return Stall.RAW_MEM
            # write back over the chimes; free load-queue lines
            done = now + nchimes * P
            self._vready[ins.seq] = done + P
            self._pipe_free = done
            self._loadq_used -= tr.lines
            del self._trackers[ins.seq]
            self._finish(now, done)
            return Stall.BUSY
        if VOP_IS_STORE[ins.op]:
            lines = self._lines_of(ins)
            for line in lines:
                token = self._token
                self._token += 1
                self._store_outstanding += 1
                self._inflight += 1
                self._l2_request(line, True, now, token)
                self.line_reqs += 1
                self.store_line_reqs += 1
            done = now + nchimes * P
            self._pipe_free = done
            self._finish(now, done)
            return Stall.BUSY
        if cls in (VClass.CROSS_PERM, VClass.CROSS_RED):
            lat = (max(ins.vl, 1) + DEFAULT_LATENCY[FUClass.FPU]) * P
            done = now + lat
            self._vready[ins.seq] = done
            self._pipe_free = done
            if respond:
                respond(done + 2 * P)
            self._finish(now, done)
            return Stall.BUSY
        # plain arithmetic: chime-pipelined over the wide lanes
        fu = _CLS_FU.get(cls, FUClass.ALU)
        lat = DEFAULT_LATENCY[fu] * P
        occupancy = (nchimes if fu not in (FUClass.DIV, FUClass.FDIV)
                     else nchimes * DEFAULT_LATENCY[fu]) * P
        done = now + occupancy
        self._vready[ins.seq] = done + lat
        self._pipe_free = done
        if respond:
            respond(done + lat + 2 * P)
        self._finish(now, done)
        return Stall.BUSY

    def _finish(self, now, at):
        """Mark the head instruction as started; it pops when ``at`` passes."""
        head = self._cmdq[0]
        head[2] = True
        self._pop_at = at
        if head[3] is not None:
            self._pv.stage(head[3], "X", now)
            self._pv.retire(head[3], at)

    def _lines_of(self, ins):
        seen = []
        last = None
        for a in ins.element_addrs():
            ln = a // self.line_bytes * self.line_bytes
            if ln != last:
                if ln not in seen[-4:]:
                    seen.append(ln)
                last = ln
        return seen

    def stats(self):
        return {
            "dve.instrs": self.instrs,
            "dve.line_reqs": self.line_reqs,
            "dve.store_line_reqs": self.store_line_reqs,
        }
