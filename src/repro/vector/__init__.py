"""Vector engines: the VLITTLE engine (paper's contribution), the aggressive
decoupled engine (``1bDV`` baseline), and the cross-element / memory units."""

from repro.vector.dve import DecoupledVectorEngine
from repro.vector.vlittle import VLittleEngine
from repro.vector.vmu import VectorMemoryUnit, VMSU, VLU, VSU, LineReq
from repro.vector.vxu import VXU

__all__ = [
    "DecoupledVectorEngine",
    "VLittleEngine",
    "VectorMemoryUnit",
    "VMSU",
    "VLU",
    "VSU",
    "LineReq",
    "VXU",
]
