"""The VLITTLE engine: little cores reconfigured as a decoupled vector engine.

This module implements the paper's §III end to end:

* The **VCU** receives vector instructions dispatched from the head of the
  big core's ROB, buffers them in command/data FIFOs, forwards memory ops to
  the VMIU *immediately* (memory/compute decoupling), expands every
  instruction into per-element-group (chime) µops, and broadcasts one µop per
  cycle over a pipelined bus — but only when **every** target lane can accept
  it (lockstep issue; the blocked cycles of the other lanes are the paper's
  ``simd`` stall category).
* Each **lane** is a little core's back end: the scalar register file holds
  the vector elements (chime 0 in the integer registers, chime 1 in the FP
  registers, ``pack`` consecutive elements per 64-bit register — Fig. 2); the
  lane issues µops in order against its own functional units. Packed simple
  integer ops process both sub-elements in one cycle; complex integer and all
  FP ops serialize over the packed sub-elements (§III-C).
* The **VXU** ring and the **VMU** (VMIU/VMSU/VLU/VSU) come from their own
  modules.
* Mode switching costs a fixed penalty (default 500 cycles — §IV-A) applied
  when the first vector instruction arrives, modeling context save and
  pipeline flushes; the little cores' L1Ds are switched to bank-interleaved
  shared indexing, and their front ends (plus the L1Is, whose SRAM now backs
  the VMU data queues) are disabled.

Per-cycle, per-lane stall attribution matches Figure 7 exactly:
``busy / simd / raw_mem / raw_llfu / struct / xelem / misc``.
"""

from __future__ import annotations

from collections import deque

from repro.cores.fu import DEFAULT_LATENCY
from repro.errors import ConfigError
from repro.isa.scalar import FUClass
from repro.isa.vector import (
    PACK_SERIALIZED,
    VClass,
    VOp,
    VOP_CLASS,
    VOP_IS_LOAD,
    VOP_IS_MEM,
    VOP_IS_STORE,
)
from repro.mem.banked import BankMap
from repro.stats.breakdown import Breakdown, Stall
from repro.utils import ceil_div
from repro.vector.vmu import VectorMemoryUnit
from repro.vector.vxu import VXU

_INF = 1 << 60

# µop kinds
EXEC = 0
LDWB = 1
STDATA = 2
IDXADDR = 3
VXREAD = 4
VXWRITE = 5
VXREDUCE = 6
MOVEXS = 7
FENCE_MARK = 8

UOP_NAMES = ("exec", "ldwb", "stdata", "idxaddr", "vxread", "vxwrite",
             "vxreduce", "movexs", "fence")

#: sentinel returned by ``VLittleEngine._batch_tick`` when the lanes can
#: no longer act in lockstep: the caller materializes the per-lane state
#: (``_fallback``) and re-runs this very tick on the scalar path
_DIVERGE = "diverge"

_CLS_FU = {
    VClass.INT_SIMPLE: FUClass.ALU,
    VClass.INT_COMPLEX: FUClass.DIV,
    VClass.FP: FUClass.FPU,
    VClass.FDIV: FUClass.FDIV,
    VClass.MASK: FUClass.ALU,
    VClass.MOVE: FUClass.ALU,
    VClass.CTRL: FUClass.ALU,
    VClass.CROSS_PERM: FUClass.ALU,
    VClass.CROSS_RED: FUClass.FPU,
}


class Uop:
    __slots__ = ("kind", "ins", "chime", "lane_only", "pv", "pv_left")

    def __init__(self, kind, ins, chime=0, lane_only=None):
        self.kind = kind
        self.ins = ins
        self.chime = chime
        self.lane_only = lane_only  # None = broadcast to all lanes
        self.pv = None  # PipeRecord when instruction-grain tracking is on
        self.pv_left = 0  # target lanes that have not yet issued this µop


class Lane:
    """One little core's back end operating as a vector lane.

    The per-tick scalar state (``avail`` / ``busy_until`` / ``uops_issued``
    and the batch-convergence watermark) lives in engine-owned parallel
    arrays indexed by ``idx`` so the batched executor can evaluate the
    whole lane array in one step; the properties below keep the existing
    per-lane API (tests, sampler, progress signature) working unchanged.
    """

    __slots__ = ("engine", "idx", "fu", "latch", "ready", "arrived",
                 "breakdown")

    def __init__(self, engine, idx, fu):
        self.engine = engine
        self.idx = idx
        self.fu = fu
        self.latch = None
        self.ready = {}  # (seq, chime) -> cycle the lane's slice is ready
        self.arrived = {}  # (seq, chime) -> [elements arrived, last arrival]
        self.breakdown = Breakdown()

    @property
    def avail(self):
        return self.engine._l_avail[self.idx]

    @avail.setter
    def avail(self, v):
        self.engine._l_avail[self.idx] = v

    @property
    def busy_until(self):
        return self.engine._l_busy[self.idx]

    @busy_until.setter
    def busy_until(self, v):
        self.engine._l_busy[self.idx] = v

    @property
    def uops_issued(self):
        return self.engine._l_uops[self.idx]

    # ------------------------------------------------------------------ tick

    def tick(self, now):
        """Returns 'busy', 'empty', or a Stall category for this cycle."""
        eng = self.engine
        if self.latch is None or eng._l_avail[self.idx] > now:
            return "empty"
        uop = self.latch
        status = self._try_issue(uop, now)
        if status is None:
            self.latch = None
            eng._n_latched -= 1
            eng._l_uops[self.idx] += 1
            if uop.pv is not None:
                uop.pv_left -= 1
                if uop.pv_left <= 0:
                    pv = self.engine._pv
                    pv.stage(uop.pv, "Lx", now)
                    pv.retire(uop.pv, now + self.engine.period)
            return "busy"
        return status

    def probe(self, now):
        """Pure mirror of ``tick``: ``(status, bound)`` where status is
        what a provably idle tick would return ('empty' or a Stall
        category), or None when the very next tick would issue the
        latched µop (a veto), and bound the earliest future ps this
        lane's own timers could unblock it."""
        if self.latch is None:
            return "empty", _INF
        if self.avail > now:
            return "empty", self.avail
        eng = self.engine
        uop = self.latch
        ins = uop.ins
        kind = uop.kind
        if kind == LDWB:
            expected = eng.elem_count(ins.seq, uop.chime, self.idx)
            if expected:
                a = self.arrived.get((ins.seq, uop.chime))
                if a is None or a[0] < expected:
                    return Stall.RAW_MEM, _INF  # waiting on VMU delivery
                if a[1] > now:
                    return Stall.RAW_MEM, a[1]
            return None, 0
        if kind in (VXWRITE, VXREDUCE):
            if not eng.vxu.result_ready(ins.seq, now):
                return Stall.XELEM, eng.vxu.next_event_ps(now)
            return None, 0
        # EXEC / STDATA / IDXADDR / VXREAD / MOVEXS gate on dependences
        chime = 0 if kind == MOVEXS else uop.chime
        for dep in ins.dep_ids:
            t = self.ready.get((dep, chime))
            if t is None:
                t = self.ready.get((dep, 0), 0)
            if t > now:
                return eng.seq_kind(dep), (t if t < _INF else _INF)
        if kind in (EXEC, STDATA):
            if self.busy_until > now:
                return Stall.STRUCT, self.busy_until
            if kind == EXEC:
                t = self.fu.next_free_ps(_CLS_FU[VOP_CLASS[ins.op]], now)
                if t:
                    return Stall.STRUCT, t
        return None, 0

    def _deps_ready(self, ins, chime, now):
        """None if ready, else the stall category to charge."""
        for dep in ins.dep_ids:
            t = self.ready.get((dep, chime))
            if t is None:
                t = self.ready.get((dep, 0), 0)
            if t > now:
                return self.engine.seq_kind(dep)
        return None

    def _try_issue(self, uop, now):
        eng = self.engine
        ins = uop.ins
        kind = uop.kind
        if kind == EXEC:
            stall = self._deps_ready(ins, uop.chime, now)
            if stall is not None:
                return stall
            if self.busy_until > now:
                return Stall.STRUCT
            cls = VOP_CLASS[ins.op]
            fu = _CLS_FU[cls]
            occ = eng.pack_for(ins.ew) if cls in PACK_SERIALIZED else 1
            # in vector mode the dividers sustain one element per cycle per
            # lane (paper §V-A: "four complex integer and floating-point
            # operations per cycle"); packed sub-elements still serialize
            lat = self.fu.try_issue(fu, now, occupancy=occ)
            if lat is None:
                return Stall.STRUCT
            P = eng.period
            self.busy_until = now + occ * P
            r = now + (occ - 1) * P + lat  # lat >= P, so r >= busy_until
            self.ready[(ins.seq, uop.chime)] = r
            if r > eng._l_hot[self.idx]:
                eng._l_hot[self.idx] = r
            return None
        if kind == LDWB:
            expected = eng.elem_count(ins.seq, uop.chime, self.idx)
            if expected:
                a = self.arrived.get((ins.seq, uop.chime))
                if a is None or a[0] < expected or a[1] > now:
                    return Stall.RAW_MEM
                eng.vmu.vlu.consume(self.idx, expected)
            extra = 1 if VOP_CLASS[ins.op] == VClass.MEM_INDEX else 0
            r = now + (1 + extra) * eng.period
            self.ready[(ins.seq, uop.chime)] = r
            if r > eng._l_hot[self.idx]:
                eng._l_hot[self.idx] = r
            return None
        if kind == STDATA:
            stall = self._deps_ready(ins, uop.chime, now)
            if stall is not None:
                return stall
            if self.busy_until > now:
                return Stall.STRUCT
            count = eng.elem_count(ins.seq, uop.chime, self.idx)
            r = now + eng.period
            self.busy_until = r
            if r > eng._l_hot[self.idx]:
                eng._l_hot[self.idx] = r
            eng.vmu.vsu.credit(ins.seq, count, now + 2 * eng.period)
            if VOP_CLASS[ins.op] == VClass.MEM_INDEX:
                eng.vmu.credit_indexed(ins.seq, count)
            return None
        if kind == IDXADDR:
            stall = self._deps_ready(ins, uop.chime, now)
            if stall is not None:
                return stall
            count = eng.elem_count(ins.seq, uop.chime, self.idx)
            eng.vmu.credit_indexed(ins.seq, count)
            return None
        if kind == VXREAD:
            stall = self._deps_ready(ins, uop.chime, now)
            if stall is not None:
                return stall
            eng.vxu.read_arrived(ins.seq, now + eng.period)
            return None
        if kind == VXWRITE:
            if not eng.vxu.result_ready(ins.seq, now):
                return Stall.XELEM
            r = now + eng.period
            self.ready[(ins.seq, uop.chime)] = r
            if r > eng._l_hot[self.idx]:
                eng._l_hot[self.idx] = r
            eng.vxwrite_done(ins.seq)
            return None
        if kind == VXREDUCE:
            if not eng.vxu.result_ready(ins.seq, now):
                return Stall.XELEM
            lat = DEFAULT_LATENCY[FUClass.FPU] * eng.period
            r = now + lat
            self.ready[(ins.seq, 0)] = r
            if r > eng._l_hot[self.idx]:
                eng._l_hot[self.idx] = r
            eng.cross_done(ins.seq, now + lat)
            return None
        if kind == MOVEXS:
            stall = self._deps_ready(ins, 0, now)
            if stall is not None:
                return stall
            eng.movexs_done(ins.seq, now + eng.period)
            return None
        raise ConfigError(f"unknown µop kind {kind}")


class VLittleEngine:
    """Engine interface used by the big core: can_accept / dispatch / tick."""

    __slots__ = (
        "cores", "lanes_count", "chimes", "packed", "uopq_depth",
        "dataq_depth", "switch_penalty", "period", "bank_map", "lanes",
        "vmu", "vxu", "_uopq", "_dataq_used", "_ready_at", "_seq_kind",
        "_elem_expected", "_cross", "_fence_buffer", "_fences_pending",
        "_dataq_release", "instrs", "mode_switches", "_bcast_issued",
        "batched", "_batch_uop", "_batch_avail", "_diverged", "_n_latched",
        "_l_avail", "_l_busy", "_l_hot", "_l_uops", "_bd_batch",
        "batch_fallbacks", "_obs_fallbacks",
        "obs", "_pv", "_lane_obs", "_obs_uopq", "_obs_dataq",
        "_obs_last_uopq", "_vxu_obs", "_ev_notify",
    )

    def __init__(
        self,
        cores,
        chimes=2,
        packed=True,
        uopq_depth=96,
        dataq_depth=8,
        switch_penalty=500,
        loadq_lines=64,
        storeq_lines=64,
        vxu_extra_latency=2,
        coalesce_width=4,
        line_bytes=64,
        period=1,
    ):
        if not cores:
            raise ConfigError("VLITTLE engine needs at least one little core")
        if chimes not in (1, 2):
            raise ConfigError("chimes must be 1 (int regs) or 2 (int+fp regs)")
        self.cores = list(cores)
        self.lanes_count = len(cores)
        self.chimes = chimes
        self.packed = packed
        self.uopq_depth = uopq_depth
        self.dataq_depth = dataq_depth
        self.switch_penalty = switch_penalty
        self.period = period

        # reconfigure: front ends off, L1Ds become a banked shared cache,
        # L1I SRAMs become the VMU's data queues
        self.bank_map = BankMap(self.lanes_count, line_bytes)
        l1ds = []
        for c in self.cores:
            c.active = False
            c.l1d.set_banked_mode(self.lanes_count)
            # the repurposed L1I SRAM also tracks outstanding requests, so a
            # slice sustains far more misses in flight than a scalar core
            c.l1d.n_mshrs = max(c.l1d.n_mshrs, 32)
            l1ds.append(c.l1d)
        # batched lane execution: per-lane scalar state flattened into
        # engine-owned parallel arrays (indexed by lane), evaluated in one
        # step while the lanes run in lockstep. ``batched`` is a run-time
        # knob only (the forced-scalar differential arm clears it) — never
        # part of SoCConfig or cache keys, and by contract stat-invisible.
        self._l_avail = [0] * self.lanes_count  # broadcast-latch ready time
        self._l_busy = [0] * self.lanes_count  # EXEC/STDATA structural busy
        self._l_hot = [0] * self.lanes_count  # latest future ps ever written
        self._l_uops = [0] * self.lanes_count  # issued µop count
        self.batched = True
        self._batch_uop = None  # broadcast µop held by the whole lane array
        self._batch_avail = 0  # its pipelined-bus arrival (scalar: avail)
        self._diverged = False  # lanes left lockstep; per-lane state is live
        self._n_latched = 0  # lanes holding a scalar (per-lane) latch
        self._bd_batch = Breakdown()  # lane-cycle charges from batch steps
        self.batch_fallbacks = 0  # times the executor left batch mode
        self._obs_fallbacks = None
        self.lanes = [Lane(self, i, c.fu) for i, c in enumerate(self.cores)]
        self.vmu = VectorMemoryUnit(self, l1ds, self.bank_map,
                                    loadq_lines=loadq_lines,
                                    storeq_lines=storeq_lines,
                                    coalesce_width=coalesce_width)
        self.vxu = VXU(self.lanes_count, extra_latency=vxu_extra_latency,
                       period=period)

        self._uopq = deque()
        self._dataq_used = 0
        self._ready_at = None
        self._seq_kind = {}  # producer seq -> stall kind its consumers charge
        self._elem_expected = {}  # seq -> {(chime, lane): count}
        self._cross = {}  # seq -> dict(writes_left, respond, started)
        self._fence_buffer = []  # mem instrs registered after a pending fence
        self._fences_pending = 0
        self._dataq_release = set()  # id(µop) whose broadcast frees a slot

        self.instrs = 0
        self.mode_switches = 0
        self._bcast_issued = False  # _broadcast handed a µop out this cycle

        self.obs = None  # VCU UnitObs; every hook is a single cheap check
        self._pv = None  # PipeView handle; same cheap-check discipline
        # event-loop wakeup: fired on dispatch/end_region pushes from the
        # big core and on L1D slice fills arriving for the VMU
        self._ev_notify = None

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit("vcu", "little", process="vector")
        self._pv = obs.pipeview
        self._lane_obs = [obs.unit(f"vcu.lane{i}", "little", process="vector")
                          for i in range(self.lanes_count)]
        self._obs_uopq = obs.metrics.histogram(
            "vcu.uopq_occupancy", (0, 8, 16, 32, 48, 64, 96))
        self._obs_dataq = obs.metrics.gauge("vcu.dataq_used")
        # divergence-fallback entries (META in repro.obs.diff: the forced-
        # scalar differential arm never enters batch mode, so the count is
        # scheduler-shaped bookkeeping, not a simulated-machine fact)
        self._obs_fallbacks = obs.metrics.counter("vcu.batch_fallbacks")
        self._obs_last_uopq = -1
        self._vxu_obs = self.vxu.attach_obs(obs)
        self.vmu.attach_obs(obs)

    # ---------------------------------------------------------- geometry

    def pack_for(self, ew):
        return max(1, 8 // ew) if self.packed else 1

    def vlmax(self, ew):
        return self.chimes * self.lanes_count * self.pack_for(ew)

    def vlen_bits(self, ew=4):
        return self.vlmax(ew) * ew * 8

    def elem_count(self, seq, chime, lane):
        m = self._elem_expected.get(seq)
        if m is None:
            return 0
        return m.get((chime, lane), 0)

    def set_elem_expected(self, seq, expected):
        self._elem_expected[seq] = expected

    def seq_kind(self, seq):
        return self._seq_kind.get(seq, Stall.MISC)

    # --------------------------------------------------------- dispatch side

    def can_accept(self, now):
        if self._ready_at is None:
            # the OS switches the cluster into vector mode on first use
            self._ready_at = now + self.switch_penalty * self.period
            self.mode_switches += 1
            if self.obs is not None:
                self.obs.complete("mode_switch", now,
                                  self.switch_penalty * self.period)
        if now < self._ready_at:
            return False
        return (
            len(self._uopq) < self.uopq_depth
            and self.vmu.cmd_space()
            and self._dataq_used < self.dataq_depth
        )

    def end_region(self):
        """OS switched the cluster back to scalar mode (CSR write): the next
        vector region pays the switch penalty again (§III-B)."""
        n = self._ev_notify
        if n is not None:
            n()
        self._ready_at = None

    def next_accept_ps(self, now):
        """Pure bound on ``can_accept``: 0 when the next call could mutate
        (first use arms the mode switch) or succeed, the mode-switch
        ready time while the penalty runs, ``_INF`` when capacity-blocked
        (the engine's own activity frees the queues)."""
        if self._ready_at is None:
            return 0  # first call mutates: it must run on an executed tick
        if now < self._ready_at:
            return self._ready_at
        if (len(self._uopq) < self.uopq_depth and self.vmu.cmd_space()
                and self._dataq_used < self.dataq_depth):
            return 0
        return _INF

    def dispatch(self, ins, now, respond=None):
        n = self._ev_notify
        if n is not None:
            n()  # big-core push: settle + re-arm before the queues mutate
        self.instrs += 1
        op = ins.op
        if ins.rd is None and op != VOp.VSETVL:
            respond = None  # nothing to send back to the big core
        if op == VOp.VSETVL:
            if ins.vl > self.vlmax(ins.ew):
                raise ConfigError(
                    f"trace grants vl={ins.vl} but engine vlmax={self.vlmax(ins.ew)}"
                    " — the trace was generated for a different VLEN"
                )
            if respond:
                respond(now + 2 * self.period)
            return
        if op == VOp.VMFENCE:
            self._fences_pending += 1
            fence = Uop(FENCE_MARK, ins)
            if self._pv is not None:
                fence.pv = self._pv.begin(
                    "vcu", f"fence s{ins.seq}", now, stage="Q", pc=ins.pc,
                    parent=self._pv.seq_record(ins.seq))
            self._uopq.append(fence)
            return
        if ins.rs:
            self._dataq_used += 1
        nch = max(1, ceil_div(ins.vl, self.lanes_count * self.pack_for(ins.ew)))
        cls = VOP_CLASS[op]
        if VOP_IS_MEM[op]:
            if self._fences_pending:
                self._fence_buffer.append(ins)
            else:
                self.vmu.register(ins)
            self._seq_kind[ins.seq] = Stall.RAW_MEM
            if VOP_IS_LOAD[op]:
                uops = []
                if cls == VClass.MEM_INDEX:
                    uops += [Uop(IDXADDR, ins, c) for c in range(nch)]
                uops += [Uop(LDWB, ins, c) for c in range(nch)]
            else:
                uops = [Uop(STDATA, ins, c) for c in range(nch)]
        elif op == VOp.VMV_XS:
            self._cross[ins.seq] = {"respond": respond, "writes_left": 0}
            uops = [Uop(MOVEXS, ins, 0, lane_only=0)]
        elif cls == VClass.CROSS_PERM:
            self._seq_kind[ins.seq] = Stall.RAW_LLFU
            self._cross[ins.seq] = {"respond": respond,
                                    "writes_left": nch * self.lanes_count,
                                    "nelems": ins.vl, "reads": nch * self.lanes_count}
            uops = [Uop(VXREAD, ins, c) for c in range(nch)]
            uops += [Uop(VXWRITE, ins, c) for c in range(nch)]
        elif cls == VClass.CROSS_RED:
            self._seq_kind[ins.seq] = Stall.RAW_LLFU
            self._cross[ins.seq] = {"respond": respond, "writes_left": 0,
                                    "nelems": ins.vl, "reads": nch * self.lanes_count}
            uops = [Uop(VXREAD, ins, c) for c in range(nch)]
            uops.append(Uop(VXREDUCE, ins, 0, lane_only=0))
        else:
            fu = _CLS_FU[cls]
            self._seq_kind[ins.seq] = (
                Stall.RAW_LLFU if DEFAULT_LATENCY[fu] >= 3 else Stall.MISC
            )
            uops = [Uop(EXEC, ins, c) for c in range(nch)]
        if self._pv is not None:
            parent = self._pv.seq_record(ins.seq)
            for u in uops:
                u.pv = self._pv.begin(
                    "vcu", f"{UOP_NAMES[u.kind]} s{ins.seq}.c{u.chime}", now,
                    stage="Q", pc=ins.pc, parent=parent)
        self._uopq.extend(uops)
        if ins.rs:
            if uops:
                # the scalar value occupies a data-queue slot until the last
                # µop of its instruction is broadcast to the lanes
                self._dataq_release.add(id(uops[-1]))
            else:
                self._dataq_used -= 1

    # ------------------------------------------------------- lane callbacks

    def deliver_load(self, seq, chime, lane, count, at):
        a = self.lanes[lane].arrived.setdefault((seq, chime), [0, 0])
        a[0] += count
        if at > a[1]:
            a[1] = at

    def deliver_load_batch(self, seq, deliveries, at):
        """Batched VLU delivery: one call per returned line, covering every
        ``(chime, lane)`` element group it carries, instead of one
        :meth:`deliver_load` call per group. ``arrived`` stays per-lane —
        straggler fills are exactly what diverges the batched executor."""
        lanes = self.lanes
        for (chime, lane), count in deliveries:
            a = lanes[lane].arrived.setdefault((seq, chime), [0, 0])
            a[0] += count
            if at > a[1]:
                a[1] = at

    def vxwrite_done(self, seq):
        c = self._cross.get(seq)
        if c is None:
            return
        c["writes_left"] -= 1
        if c["writes_left"] <= 0:
            self.vxu.finish(seq)
            self._cross.pop(seq, None)

    def cross_done(self, seq, ready_time):
        c = self._cross.pop(seq, None)
        self.vxu.finish(seq)
        if c and c.get("respond"):
            c["respond"](ready_time + 2 * self.period)

    def movexs_done(self, seq, ready_time):
        c = self._cross.pop(seq, None)
        if c and c.get("respond"):
            c["respond"](ready_time + 2 * self.period)

    # ------------------------------------------------------------------ tick

    def idle(self):
        return (
            not self._uopq
            and self._batch_uop is None
            and self._n_latched == 0
            and self.vmu.idle()
            and not self.vxu.busy()
        )

    def forensic_state(self, now):
        """Scheduling-state summary for :mod:`repro.obs.forensics`.
        Pure (read-only); see :meth:`BigCore.forensic_state`."""
        waits = []
        if not self.vmu.idle():
            waits.append(("mem", "VMU has commands or lines in flight"))
        ready_at = self._ready_at
        return {
            "uopq": len(self._uopq),
            "uopq_depth": self.uopq_depth,
            "dataq_used": self._dataq_used,
            "dataq_depth": self.dataq_depth,
            "fences_pending": self._fences_pending,
            "busy_lanes": (self.lanes_count if self._batch_uop is not None
                           else self._n_latched),
            "lanes": self.lanes_count,
            "batch_mode": self._batch_uop is not None,
            "batch_fallbacks": self.batch_fallbacks,
            "vxu_busy": self.vxu.busy(),
            "mode": "scalar" if ready_at is None else "vector",
            "mode_ready_ps": (ready_at if ready_at is not None
                              and ready_at > now else None),
            "vmu": self.vmu.forensic_state(now),
            "instrs": self.instrs,
            "done": self.idle(),
            "waits_on": waits,
        }

    # ------------------------------------------------------- skip scheduling

    def _broadcast_probe(self, now):
        """Pure mirror of ``_broadcast``: ``(reason, bound)`` with reason
        None when the next tick would pop/start/broadcast (a veto)."""
        if not self._uopq:
            return Stall.MISC, _INF
        uop = self._uopq[0]
        if uop.kind == FENCE_MARK:
            if (self.vmu.idle() and self._batch_uop is None
                    and self._n_latched == 0):
                return None, 0  # fence drains next tick
            return Stall.MISC, _INF
        if uop.kind in (VXREAD, VXWRITE, VXREDUCE):
            if self.vxu.busy() and self.vxu.active.seq != uop.ins.seq:
                return Stall.XELEM, _INF  # freed by a lane's executed µop
            if uop.kind == VXREAD and not self.vxu.busy():
                return None, 0  # vxu.start mutates
        if self._batch_uop is not None:
            return Stall.SIMD, _INF  # the whole lane array is occupied
        if uop.lane_only is None:
            if self._n_latched:
                return Stall.SIMD, _INF  # lanes unblock on executed ticks
            return None, 0
        if self.lanes[uop.lane_only].latch is not None:
            return Stall.SIMD, _INF
        return None, 0

    # ------------------------------------------------------- batch executor

    def _fallback(self, now):
        """Leave batch mode: materialize the leader lane's lockstep state
        into every follower (their conceptual state is identical while
        converged), then re-latch any pending batch µop so the per-lane
        path executes it — this very tick — exactly as the scalar
        executor would have."""
        self.batch_fallbacks += 1
        if self._obs_fallbacks is not None:
            self._obs_fallbacks.add()
        self._diverged = True
        lanes = self.lanes
        lead = lanes[0]
        busy = self._l_busy
        hot = self._l_hot
        b0 = busy[0]
        h0 = hot[0]
        for i in range(1, self.lanes_count):
            lane = lanes[i]
            lane.ready = dict(lead.ready)
            lane.fu.sync_from(lead.fu)
            busy[i] = b0
            hot[i] = h0
        uop = self._batch_uop
        if uop is not None:
            self._batch_uop = None
            avail = self._l_avail
            av = self._batch_avail
            for i, lane in enumerate(lanes):
                lane.latch = uop
                avail[i] = av
            self._n_latched = self.lanes_count

    def _finish_batch(self, uop, now):
        """Bookkeeping shared by every lockstep µop issue."""
        self._batch_uop = None
        uops = self._l_uops
        for i in range(self.lanes_count):
            uops[i] += 1
        if uop.pv is not None:
            pv = self._pv
            pv.stage(uop.pv, "Lx", now)
            pv.retire(uop.pv, now + self.period)

    def _batch_tick(self, now):
        """Execute the held broadcast µop on the whole lane array in one
        step. Leader-and-mirror: while the lanes are converged, lane 0's
        ready map / busy timer / FU pool are canonical for the array, so
        one scalar-shaped issue decides — and charges — every lane at
        once. Returns 'busy', 'empty', a Stall category, or ``_DIVERGE``
        when the lanes can no longer act in lockstep (straggler VMU
        fills), in which case nothing has been mutated yet and the caller
        falls back to the per-lane path for this very tick."""
        if self._batch_avail > now:
            return "empty"
        uop = self._batch_uop
        ins = uop.ins
        kind = uop.kind
        lead = self.lanes[0]
        if kind == LDWB:
            seq = ins.seq
            chime = uop.chime
            expected = self._elem_expected.get(seq)
            blocked = issuable = False
            for i, lane in enumerate(self.lanes):
                exp = expected.get((chime, i), 0) if expected else 0
                if exp:
                    a = lane.arrived.get((seq, chime))
                    if a is None or a[0] < exp or a[1] > now:
                        blocked = True
                        continue
                issuable = True
            if blocked:
                if not issuable:
                    return Stall.RAW_MEM  # whole array waits on the VMU
                return _DIVERGE  # straggler fills: lanes split this tick
            vlu = self.vmu.vlu
            for i in range(self.lanes_count):
                exp = expected.get((chime, i), 0) if expected else 0
                if exp:
                    vlu.consume(i, exp)
            extra = 1 if VOP_CLASS[ins.op] == VClass.MEM_INDEX else 0
            r = now + (1 + extra) * self.period
            lead.ready[(seq, chime)] = r
            if r > self._l_hot[0]:
                self._l_hot[0] = r
            self._finish_batch(uop, now)
            return "busy"
        if kind == VXWRITE:
            if not self.vxu.result_ready(ins.seq, now):
                return Stall.XELEM
            r = now + self.period
            lead.ready[(ins.seq, uop.chime)] = r
            if r > self._l_hot[0]:
                self._l_hot[0] = r
            for _ in range(self.lanes_count):
                self.vxwrite_done(ins.seq)
            self._finish_batch(uop, now)
            return "busy"
        # EXEC / STDATA / IDXADDR / VXREAD gate on the leader's state
        stall = lead._deps_ready(ins, uop.chime, now)
        if stall is not None:
            return stall
        if kind == EXEC:
            if self._l_busy[0] > now:
                return Stall.STRUCT
            cls = VOP_CLASS[ins.op]
            occ = self.pack_for(ins.ew) if cls in PACK_SERIALIZED else 1
            lat = lead.fu.try_issue(_CLS_FU[cls], now, occupancy=occ)
            if lat is None:
                return Stall.STRUCT
            P = self.period
            self._l_busy[0] = now + occ * P
            r = now + (occ - 1) * P + lat  # lat >= P, so r >= busy_until
            lead.ready[(ins.seq, uop.chime)] = r
            if r > self._l_hot[0]:
                self._l_hot[0] = r
            self._finish_batch(uop, now)
            return "busy"
        if kind == STDATA:
            if self._l_busy[0] > now:
                return Stall.STRUCT
            P = self.period
            r = now + P
            self._l_busy[0] = r
            if r > self._l_hot[0]:
                self._l_hot[0] = r
            at = now + 2 * P
            seq = ins.seq
            vsu = self.vmu.vsu
            indexed = VOP_CLASS[ins.op] == VClass.MEM_INDEX
            for i in range(self.lanes_count):
                count = self.elem_count(seq, uop.chime, i)
                vsu.credit(seq, count, at)
                if indexed:
                    self.vmu.credit_indexed(seq, count)
            self._finish_batch(uop, now)
            return "busy"
        if kind == IDXADDR:
            seq = ins.seq
            for i in range(self.lanes_count):
                self.vmu.credit_indexed(seq, self.elem_count(seq, uop.chime, i))
            self._finish_batch(uop, now)
            return "busy"
        if kind == VXREAD:
            at = now + self.period
            for _ in range(self.lanes_count):
                self.vxu.read_arrived(ins.seq, at)
            self._finish_batch(uop, now)
            return "busy"
        raise ConfigError(f"unbatchable µop kind {kind} in batch mode")

    def _batch_probe(self, now):
        """Pure mirror of ``_batch_tick``: ``(status, bound)`` exactly as
        the per-lane probes would report it for the converged array, with
        status None (a veto) when the next tick would issue *or*
        diverge — both mutate."""
        if self._batch_avail > now:
            return "empty", self._batch_avail
        uop = self._batch_uop
        ins = uop.ins
        kind = uop.kind
        lead = self.lanes[0]
        if kind == LDWB:
            seq = ins.seq
            chime = uop.chime
            expected = self._elem_expected.get(seq)
            bound = _INF
            issuable = False
            for i, lane in enumerate(self.lanes):
                exp = expected.get((chime, i), 0) if expected else 0
                if exp:
                    a = lane.arrived.get((seq, chime))
                    if a is None or a[0] < exp:
                        continue  # in flight: covered by the VMU's bound
                    if a[1] > now:
                        if a[1] < bound:
                            bound = a[1]
                        continue
                issuable = True
            if issuable:
                return None, 0  # issue or divergence fallback next tick
            return Stall.RAW_MEM, bound
        if kind == VXWRITE:
            if not self.vxu.result_ready(ins.seq, now):
                return Stall.XELEM, self.vxu.next_event_ps(now)
            return None, 0
        chime = uop.chime
        ready = lead.ready
        for dep in ins.dep_ids:
            t = ready.get((dep, chime))
            if t is None:
                t = ready.get((dep, 0), 0)
            if t > now:
                return self.seq_kind(dep), (t if t < _INF else _INF)
        if kind in (EXEC, STDATA):
            if self._l_busy[0] > now:
                return Stall.STRUCT, self._l_busy[0]
            if kind == EXEC:
                t = lead.fu.next_free_ps(_CLS_FU[VOP_CLASS[ins.op]], now)
                if t:
                    return Stall.STRUCT, t
        return None, 0

    # ------------------------------------------------------------ scheduling

    def next_work_ps(self, now):
        """Earliest future ps at which the engine (VMU, lanes, broadcast,
        or the VXU ring) could do real work; 0 vetoes skipping."""
        bound = self.vmu.next_work_ps(now)
        if bound <= now:
            return 0
        if self._batch_uop is not None:
            # the whole lane array holds one µop: a single probe over the
            # batch state replaces the per-lane probe loop
            st, t = self._batch_probe(now)
            if st is None or t <= now:
                return 0
            if t < bound:
                bound = t
        elif self._n_latched:
            for lane in self.lanes:
                st, t = lane.probe(now)
                if st is None:
                    return 0
                if t <= now:
                    return 0
                if t < bound:
                    bound = t
        # no latches at all: every lane is ('empty', _INF) — skip the loop
        reason, t = self._broadcast_probe(now)
        if reason is None:
            return 0
        if t < bound:
            bound = t
        # the ring's rotation completing flips lane result_ready and the
        # VXU's per-cycle attribution category
        t = self.vxu.next_event_ps(now)
        if t < bound:
            bound = t
        return bound

    def skip_ticks(self, n, now):
        """Replay the per-tick constant effects of ``n`` provably idle
        ticks: per-lane and VCU stall attribution, VMU counters, and the
        per-cycle obs instruments."""
        self.vmu.skip_ticks(n, now)
        reason = self._broadcast_probe(now)[0]
        statuses = None
        if self._batch_uop is not None:
            st = self._batch_probe(now)[0]
            cat = reason if st == "empty" else st
            self._bd_batch.add(cat, n * self.lanes_count)
        elif self._n_latched:
            statuses = [lane.probe(now)[0] for lane in self.lanes]
            for lane, st in zip(self.lanes, statuses):
                lane.breakdown.add(reason if st == "empty" else st, n)
        else:
            cat = reason  # every lane is empty: one shared charge
            self._bd_batch.add(cat, n * self.lanes_count)
        o = self.obs
        if o is not None:
            if statuses is None:
                for u in self._lane_obs:
                    u.cycle(cat, n)
            else:
                for u, st in zip(self._lane_obs, statuses):
                    u.cycle(reason if st == "empty" else st, n)
            o.cycle(reason, n)  # no broadcast on an idle tick
            self._vxu_obs.cycle(self.vxu.cycle_category(now), n)
            self._obs_uopq.observe(len(self._uopq), n)
            self._obs_dataq.set(self._dataq_used, n)
            # queue depth is frozen during a skip: no counter event

    # ------------------------------------------------------------------ tick

    def tick(self, now):
        self.vmu.tick(now)
        if self._batch_uop is not None:
            st = self._batch_tick(now)
            if st is not _DIVERGE:
                self._bcast_issued = False
                reason = self._broadcast(now)
                cat = (Stall.BUSY if st == "busy"
                       else (reason if st == "empty" else st))
                self._bd_batch.add(cat, self.lanes_count)
                o = self.obs
                if o is not None:
                    for u in self._lane_obs:
                        u.cycle(cat)
                    self._tick_obs(o, reason, now)
                return
            # straggler fills split the array: materialize per-lane state
            # and run this very tick on the scalar path below
            self._fallback(now)
        if self._n_latched:
            statuses = [lane.tick(now) for lane in self.lanes]
            self._bcast_issued = False
            reason = self._broadcast(now)
            for lane, st in zip(self.lanes, statuses):
                if st == "busy":
                    lane.breakdown.add(Stall.BUSY)
                elif st == "empty":
                    lane.breakdown.add(reason)
                else:
                    lane.breakdown.add(st)
            o = self.obs
            if o is not None:
                for u, st in zip(self._lane_obs, statuses):
                    u.cycle(Stall.BUSY if st == "busy"
                            else (reason if st == "empty" else st))
                self._tick_obs(o, reason, now)
            return
        # every lane is empty this tick: broadcast, one shared charge
        self._bcast_issued = False
        reason = self._broadcast(now)
        self._bd_batch.add(reason, self.lanes_count)
        o = self.obs
        if o is not None:
            for u in self._lane_obs:
                u.cycle(reason)
            self._tick_obs(o, reason, now)

    def _tick_obs(self, o, reason, now):
        o.cycle(Stall.BUSY if self._bcast_issued else reason)
        self._vxu_obs.cycle(self.vxu.cycle_category(now))
        depth = len(self._uopq)
        self._obs_uopq.observe(depth)
        self._obs_dataq.set(self._dataq_used)
        if depth != self._obs_last_uopq:
            o.counter("uopq_depth", now, depth)
            self._obs_last_uopq = depth

    def _broadcast(self, now):
        """Try to broadcast the head µop; returns the stall category idle
        lanes should be charged with this cycle."""
        if not self._uopq:
            return Stall.MISC
        uop = self._uopq[0]
        if uop.kind == FENCE_MARK:
            if (self.vmu.idle() and self._batch_uop is None
                    and self._n_latched == 0):
                self._uopq.popleft()
                if uop.pv is not None:
                    self._pv.retire(uop.pv, now)
                self._fences_pending -= 1
                if self._fences_pending == 0:
                    for ins in self._fence_buffer:
                        self.vmu.register(ins)
                    self._fence_buffer.clear()
            return Stall.MISC
        if uop.kind in (VXREAD, VXWRITE, VXREDUCE):
            if self.vxu.busy() and self.vxu.active.seq != uop.ins.seq:
                return Stall.XELEM
            if uop.kind == VXREAD and (not self.vxu.busy()):
                c = self._cross[uop.ins.seq]
                self.vxu.start(uop.ins.seq, c["nelems"], c["reads"], now=now)
        if self._batch_uop is not None:
            return Stall.SIMD  # the whole lane array is occupied
        if uop.lane_only is None:
            if self._n_latched:
                return Stall.SIMD
            if self.batched:
                if self._diverged and max(self._l_hot) <= now:
                    # re-converge: every lane's scalar state is entirely
                    # in the past, so it is behaviorally indistinguishable
                    # from the leader's — lockstep can resume
                    self._diverged = False
                if not self._diverged:
                    self._batch_uop = uop
                    self._batch_avail = now + self.period
                    self._uopq.popleft()
                    self._bcast_issued = True
                    if uop.pv is not None:
                        self._pv.stage(uop.pv, "Bc", now)
                        uop.pv_left = self.lanes_count
                    if self.obs is not None:
                        self.obs.instant(f"uop:{UOP_NAMES[uop.kind]}", now,
                                         {"seq": uop.ins.seq,
                                          "chime": uop.chime})
                    if id(uop) in self._dataq_release:
                        self._dataq_release.discard(id(uop))
                        self._dataq_used -= 1
                    return Stall.MISC
            targets = self.lanes
        else:
            if self.batched and not self._diverged:
                # lane-only µops (MOVEXS, VXREDUCE) run on the per-lane
                # path: leave batch mode first
                self._fallback(now)
            targets = [self.lanes[uop.lane_only]]
        if any(l.latch is not None for l in targets):
            return Stall.SIMD
        for l in targets:
            l.latch = uop
            l.avail = now + self.period
        self._n_latched += len(targets)
        self._uopq.popleft()
        self._bcast_issued = True
        if uop.pv is not None:
            self._pv.stage(uop.pv, "Bc", now)
            uop.pv_left = len(targets)
        if self.obs is not None:
            self.obs.instant(f"uop:{UOP_NAMES[uop.kind]}", now,
                             {"seq": uop.ins.seq, "chime": uop.chime})
        if id(uop) in self._dataq_release:
            self._dataq_release.discard(id(uop))
            self._dataq_used -= 1
        return Stall.MISC

    # ----------------------------------------------------------------- stats

    def breakdown(self):
        """Merged per-lane breakdown (Figure 7's 'average of four cores')."""
        out = Breakdown()
        for l in self.lanes:
            out = out.merged_with(l.breakdown)
        # lane-cycles charged by the batched executor (one shared charge
        # of lanes_count per tick instead of one per lane)
        return out.merged_with(self._bd_batch)

    def stats(self):
        out = {
            "vlittle.instrs": self.instrs,
            "vlittle.mode_switches": self.mode_switches,
            "vlittle.uops": sum(l.uops_issued for l in self.lanes),
            "vlittle.xops": self.vxu.ops_completed,
        }
        out.update(self.vmu.stats())
        merged = self.breakdown()
        for name, v in merged.as_dict().items():
            out[f"vlittle.lane_stall.{name}"] = v
        return out
