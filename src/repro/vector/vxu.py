"""Vector cross-element unit: a pipelined uni-directional ring (paper §III-D).

All little cores sit on a one-hop-per-cycle ring. A cross-element instruction
first gathers its source elements from the lanes (``vxread`` µops), then the
ring rotates the values — after N cycles every requester has seen every
source element — and the results are written back (``vxwrite`` µops) or
reduced on the first lane (``vxreduce``). The VXU processes at most one
cross-element instruction at a time; the VCU holds subsequent ones back.
"""

from __future__ import annotations

from repro.stats.breakdown import Stall

_INF = 1 << 60


class CrossOp:
    __slots__ = ("seq", "nelems", "reads_needed", "reads_done", "complete_at",
                 "pv")

    def __init__(self, seq, nelems, reads_needed):
        self.seq = seq
        self.nelems = nelems
        self.reads_needed = reads_needed
        self.reads_done = 0
        self.complete_at = None
        self.pv = None  # PipeRecord when instruction-grain tracking is on


class VXU:
    __slots__ = ("nlanes", "extra_latency", "period", "active",
                 "ops_completed", "obs", "_pv")

    def __init__(self, nlanes, extra_latency=2, period=1):
        self.nlanes = nlanes
        self.extra_latency = extra_latency
        self.period = period
        self.active = None  # at most one CrossOp in flight
        self.ops_completed = 0
        self.obs = None  # UnitObs handle; every hook is a single cheap check
        self._pv = None  # PipeView handle; same cheap-check discipline

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs.unit("vxu", "little", process="vector")
        self._pv = obs.pipeview
        return self.obs

    def cycle_category(self, now):
        """Classify this ring cycle (called once per engine tick when
        observability is on): idle, gathering lane reads, rotating, or
        holding a finished result for the lanes to drain."""
        op = self.active
        if op is None:
            return Stall.MISC
        if op.complete_at is None:
            return Stall.STRUCT  # waiting on vxread µops from the lanes
        if op.complete_at > now:
            return Stall.BUSY  # ring rotating, one hop per cycle
        return Stall.XELEM  # result ready, waiting for vxwrite/vxreduce

    def busy(self):
        return self.active is not None

    def next_event_ps(self, now):
        """Earliest future ps at which the ring's own timer fires (the
        rotation completing, which flips both ``result_ready`` and
        ``cycle_category``); ``_INF`` otherwise — all other ring progress
        is driven by lane µops on executed ticks. Pure."""
        op = self.active
        if op is not None and op.complete_at is not None and op.complete_at > now:
            return op.complete_at
        return _INF

    def start(self, seq, nelems, reads_needed, now=0):
        if self.active is not None:
            raise RuntimeError("VXU already has an outstanding cross-element op")
        self.active = CrossOp(seq, nelems, max(reads_needed, 1))
        if self._pv is not None:
            self.active.pv = self._pv.begin(
                "vxu", f"ring s{seq} n{nelems}", now, stage="Gt",
                parent=self._pv.seq_record(seq))

    def read_arrived(self, seq, now):
        """A lane executed a vxread µop; once all arrive, the ring rotates."""
        op = self.active
        if op is None or op.seq != seq:
            return
        op.reads_done += 1
        if op.reads_done >= op.reads_needed:
            # full rotation: one hop per cycle for each source element
            op.complete_at = now + (op.nelems + self.extra_latency) * self.period
            if op.pv is not None:
                self._pv.stage(op.pv, "Rt", now)
                self._pv.retire(op.pv, op.complete_at)
            if self.obs is not None:
                self.obs.complete("ring_rotate", now, op.complete_at - now,
                                  {"seq": op.seq, "nelems": op.nelems})

    def result_ready(self, seq, now):
        op = self.active
        return (
            op is not None
            and op.seq == seq
            and op.complete_at is not None
            and op.complete_at <= now
        )

    def finish(self, seq):
        if self.active is not None and self.active.seq == seq:
            self.active = None
            self.ops_completed += 1
