"""Vector cross-element unit: a pipelined uni-directional ring (paper §III-D).

All little cores sit on a one-hop-per-cycle ring. A cross-element instruction
first gathers its source elements from the lanes (``vxread`` µops), then the
ring rotates the values — after N cycles every requester has seen every
source element — and the results are written back (``vxwrite`` µops) or
reduced on the first lane (``vxreduce``). The VXU processes at most one
cross-element instruction at a time; the VCU holds subsequent ones back.
"""

from __future__ import annotations


class CrossOp:
    __slots__ = ("seq", "nelems", "reads_needed", "reads_done", "complete_at")

    def __init__(self, seq, nelems, reads_needed):
        self.seq = seq
        self.nelems = nelems
        self.reads_needed = reads_needed
        self.reads_done = 0
        self.complete_at = None


class VXU:
    def __init__(self, nlanes, extra_latency=2, period=1):
        self.nlanes = nlanes
        self.extra_latency = extra_latency
        self.period = period
        self.active = None  # at most one CrossOp in flight
        self.ops_completed = 0

    def busy(self):
        return self.active is not None

    def start(self, seq, nelems, reads_needed):
        if self.active is not None:
            raise RuntimeError("VXU already has an outstanding cross-element op")
        self.active = CrossOp(seq, nelems, max(reads_needed, 1))

    def read_arrived(self, seq, now):
        """A lane executed a vxread µop; once all arrive, the ring rotates."""
        op = self.active
        if op is None or op.seq != seq:
            return
        op.reads_done += 1
        if op.reads_done >= op.reads_needed:
            # full rotation: one hop per cycle for each source element
            op.complete_at = now + (op.nelems + self.extra_latency) * self.period

    def result_ready(self, seq, now):
        op = self.active
        return (
            op is not None
            and op.seq == seq
            and op.complete_at is not None
            and op.complete_at <= now
        )

    def finish(self, seq):
        if self.active is not None and self.active.seq == seq:
            self.active = None
            self.ops_completed += 1
