"""Async worker pool that drains the sweep-service job queue.

Each worker is a thread that claims up to ``batch`` jobs at a time and
pushes *all* their run specs through one :class:`ParallelRunner` sweep —
so the queue's FIFO batching composes with the runner's key-level dedup:
two queued jobs that share a config simulate it once, and a warm cache
turns a whole batch into pure lookups.  The runner's per-request
cache-hit levels (:meth:`ParallelRunner.levels`) are sliced back per job
so every completed job records how hot each of its keys was.

Failure handling honors the service robustness contract:

* a multi-job batch that raises falls back to per-job execution, so one
  poisoned config cannot take healthy neighbors down with it;
* a single job that raises is re-queued with capped exponential backoff
  (``backoff_s * 2**retries``, capped at ``backoff_cap_s``) until
  ``max_retries`` is exhausted, then marked failed — every attempt is a
  ``job_retry`` telemetry event and journal line;
* ``stop(drain=True)`` closes the queue (new submits get 503), lets the
  workers finish everything already queued, then joins the threads.
"""

from __future__ import annotations

import threading
import time

from repro.experiments.parallel import ParallelRunner, RunRequest
from repro.log import get_logger

_logger = get_logger("repro.service.workers")


class WorkerPool:
    """Threads that claim, batch, execute, and retry queued jobs."""

    def __init__(self, queue, workers=2, runner_jobs=1, batch=4,
                 max_retries=2, backoff_s=0.1, backoff_cap_s=2.0,
                 artifact_store=None, sleep=time.sleep):
        self.queue = queue
        self.workers = max(1, int(workers))
        self.runner_jobs = max(1, int(runner_jobs))
        self.batch = max(1, int(batch))
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.artifacts = artifact_store
        self._sleep = sleep          # injectable so tests don't wait
        self._threads = []
        self._stop = threading.Event()
        self.executed = 0            # jobs this pool ran to a terminal state

    # ------------------------------------------------------------- lifecycle

    def start(self):
        if self._threads:
            raise RuntimeError("worker pool already started")
        for i in range(self.workers):
            t = threading.Thread(target=self._loop,
                                 name=f"svc-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self, drain=True):
        """Shut the pool down.

        ``drain=True`` (the graceful path) closes the queue first — new
        submissions 503 — and lets workers finish every queued job before
        joining; ``drain=False`` asks workers to stop after their current
        batch, leaving the rest queued (the journal re-queues them on the
        next start).
        """
        if not drain:
            self._stop.set()
        self.queue.close()   # wakes blocked claimers; claim returns []
        for t in self._threads:
            t.join()
        self._threads = []

    @property
    def alive(self):
        return sum(1 for t in self._threads if t.is_alive())

    def stats(self):
        return {"workers": self.workers, "alive": self.alive,
                "runner_jobs": self.runner_jobs, "batch": self.batch,
                "max_retries": self.max_retries, "executed": self.executed}

    # ------------------------------------------------------------- execution

    def _loop(self):
        while not self._stop.is_set():
            jobs = self.queue.claim_batch(self.batch, timeout=0.2)
            if not jobs:
                if self.queue.closed and not self.queue.pending():
                    return
                continue
            if len(jobs) == 1:
                self._run_job(jobs[0])
                continue
            try:
                self._execute(jobs)
            except Exception as exc:  # batch poisoned: isolate per job
                _logger.info(f"[service] batch of {len(jobs)} failed "
                             f"({exc}); retrying jobs individually")
                for job in jobs:
                    self._run_job(job)
            else:
                self.executed += len(jobs)

    def _run_job(self, job):
        """Execute one claimed job; on failure either re-queue it with
        backoff (the claim loop — any worker's — picks it up again, so
        each attempt gets its own ``job_start``) or mark it failed once
        retries are exhausted."""
        try:
            self._execute([job])
        except Exception as exc:
            if job.retries >= self.max_retries:
                self.queue.fail(job, exc)
                self.executed += 1
                return
            backoff = min(self.backoff_s * (2 ** job.retries),
                          self.backoff_cap_s)
            self._sleep(backoff)
            self.queue.requeue(job, exc, backoff_s=backoff)
        else:
            self.executed += 1

    def _execute(self, jobs):
        """Run every spec of ``jobs`` through one ParallelRunner sweep,
        then complete each job with its per-key cache levels and any
        requested simulation-backed artifacts."""
        requests = []
        slices = []  # (job, start, end) into the flat request list
        for job in jobs:
            start = len(requests)
            requests.extend(
                RunRequest(system=spec["system"], workload=spec["workload"],
                           scale=spec["scale"],
                           overrides=dict(spec.get("overrides", {})))
                for spec in job.runs)
            slices.append((job, start, len(requests)))
        runner = ParallelRunner(jobs=self.runner_jobs, cache=self.queue.cache)
        runner.run(requests)
        levels = runner.levels() or [None] * len(requests)
        for job, start, end in slices:
            job_levels = dict(zip(job.keys, levels[start:end]))
            if self.artifacts is not None and job.artifacts:
                for key, spec in zip(job.keys, job.runs):
                    self.artifacts.generate_simulated(key, spec,
                                                      job.artifacts)
            self.queue.complete(job, levels=job_levels)
