"""Content-addressed artifact store for the sweep service.

Artifacts are files derived from one cached run, stored under
``<root>/<shard>/<key>/<filename>`` — the same config-hash sharding the
result cache uses, so an operator can co-locate or split the two stores
shard by shard.  Because the key pins the full canonical config, the
workload, and the simulator version, an artifact never goes stale: once
written it is served as raw bytes forever (level ``artifact``).

Two artifact classes exist, mirroring :mod:`repro.service.schemas`:

* **derived** (``stats``, ``result``, ``summary``, ``stall.svg``) —
  pure functions of the cached :class:`RunResult`; generated on first
  ``GET`` (level ``generated``), persisted, and served from disk after.
  The ``stats`` artifact is the canonical ``bigvlittle-run-v1`` dump,
  rendered byte-identically to ``bigvlittle profile --json`` /
  :func:`repro.obs.diff.dump_result` — so a client can diff a served
  artifact against a local run with ``bigvlittle diff``.
* **simulated** (``timeline``, ``phases``) — require one instrumented
  simulation (an :class:`IntervalSampler` run).  Workers generate them
  when the submit body asks (``"artifacts": ["timeline", "phases"]``);
  ``phases`` derives from the written timeline dump with *no* second
  simulation.  ``GET`` never simulates: an absent simulated artifact is
  a 404 with a hint, keeping the serving hot path pure cache.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.obs.diff import dump_result
from repro.service.schemas import SERVICE_SCHEMA

#: artifact name -> (filename, content type)
ARTIFACT_FILES = {
    "stats": ("stats.json", "application/json"),
    "result": ("result.json", "application/json"),
    "summary": ("summary.json", "application/json"),
    "stall.svg": ("stall.svg", "image/svg+xml"),
    "timeline": ("timeline.json", "application/json"),
    "phases": ("phases.json", "application/json"),
}

#: default sampler interval for worker-generated timelines (cycles)
TIMELINE_INTERVAL = 100


# ------------------------------------------------------------------ renderers

def render_stats(result):
    """Canonical run dump, byte-identical to ``bigvlittle profile --json``
    serialization of the same result (deterministic: no host timing)."""
    doc = dump_result(result)
    return (json.dumps(doc, indent=1, sort_keys=True) + "\n").encode("utf-8")


def render_result(result):
    """The full ``RunResult.to_dict()`` round-trip form — includes the
    host-side ``timing`` block, so unlike ``stats`` it is *not*
    byte-deterministic across machines."""
    return (json.dumps(result.to_dict(), indent=1, sort_keys=True)
            + "\n").encode("utf-8")


def render_summary(result, key):
    doc = {
        "schema": SERVICE_SCHEMA,
        "key": key,
        "name": result.name,
        "system": result.system,
        "cycles": result.cycles,
        "time_ps": result.stats.get("time_ps"),
        "instrs": sum(v for k, v in result.stats.items()
                      if k.endswith(".instrs")),
    }
    return (json.dumps(doc, indent=1, sort_keys=True) + "\n").encode("utf-8")


def render_stall_svg(result):
    """Fig.-7-style stacked stall bars per unit, from the run's own
    ``<unit>.stall.<category>`` counters (present on every cached result —
    no observability attachment needed)."""
    from repro.experiments.svgplot import stacked_bars

    per_unit = {}
    for stat, value in sorted(result.stats.items()):
        parts = stat.split(".stall.")
        if len(parts) == 2 and value:
            per_unit.setdefault(parts[0], {})[parts[1]] = value
    categories = sorted({c for cats in per_unit.values() for c in cats})
    data = {unit: {"cycles": cats} for unit, cats in per_unit.items()}
    if not data:  # a run with zero recorded stalls still gets a valid SVG
        data = {"(no stalls)": {"cycles": {}}}
        categories = ["none"]
    svg = stacked_bars(data, categories,
                       title=f"{result.system}/{result.name} stall cycles")
    return svg.render().encode("utf-8")


DERIVED_RENDERERS = {
    "stats": lambda result, key: render_stats(result),
    "result": lambda result, key: render_result(result),
    "summary": render_summary,
    "stall.svg": lambda result, key: render_stall_svg(result),
}


def simulate_timeline(run_spec, interval=TIMELINE_INTERVAL):
    """One fresh instrumented run of ``run_spec`` returning the sampler.

    This is the only simulation the artifact layer ever performs, and only
    worker threads call it (for submit bodies that request ``timeline`` /
    ``phases``); the HTTP GET path never reaches here.
    """
    from repro.experiments.runner import _program_for
    from repro.obs import IntervalSampler, Observation
    from repro.soc import System, preset
    from repro.workloads import get_workload

    cfg = preset(run_spec["system"], **run_spec.get("overrides", {}))
    program = _program_for(
        cfg, get_workload(run_spec["workload"], run_spec["scale"]))
    obs = Observation(sampler=IntervalSampler(interval=interval))
    System(cfg).run(program, obs=obs)
    return obs.sampler


class ArtifactStore:
    """Sharded per-key artifact files with atomic writes."""

    def __init__(self, root, shards=2):
        self.root = root
        self.shards = int(shards)
        self.generated = 0   # artifacts rendered this process
        self.served = 0      # artifact files served from disk

    def dir_for(self, key):
        if self.shards:
            return os.path.join(self.root, key[: self.shards], key)
        return os.path.join(self.root, key)

    def path_for(self, key, name):
        filename, _ = ARTIFACT_FILES[name]
        return os.path.join(self.dir_for(key), filename)

    def content_type(self, name):
        return ARTIFACT_FILES[name][1]

    def get_bytes(self, key, name):
        """Raw bytes of a persisted artifact, or ``None``."""
        try:
            with open(self.path_for(key, name), "rb") as f:
                data = f.read()
        except OSError:
            return None
        self.served += 1
        return data

    def put_bytes(self, key, name, data):
        """Persist one artifact atomically (temp + rename, like the cache)."""
        target = self.path_for(key, name)
        target_dir = os.path.dirname(target)
        os.makedirs(target_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return target

    def ensure_derived(self, key, name, result):
        """Bytes of a derived artifact, generating and persisting on first
        touch; returns ``(data, level)`` with level ``artifact`` (disk) or
        ``generated`` (first render)."""
        data = self.get_bytes(key, name)
        if data is not None:
            return data, "artifact"
        data = DERIVED_RENDERERS[name](result, key)
        self.put_bytes(key, name, data)
        self.generated += 1
        return data, "generated"

    def generate_simulated(self, key, run_spec, names,
                           interval=TIMELINE_INTERVAL):
        """Worker-side generation of the simulation-backed artifacts.

        Runs at most one instrumented simulation: ``timeline`` writes the
        sampler dump, and ``phases`` is detected *from that dump* (or from
        a previously persisted one), so asking for both costs one run and
        re-asking costs zero.
        """
        wanted = [n for n in names if n in ("timeline", "phases")]
        if not wanted:
            return []
        written = []
        tl_path = self.path_for(key, "timeline")
        if not os.path.exists(tl_path):
            sampler = simulate_timeline(run_spec, interval=interval)
            os.makedirs(os.path.dirname(tl_path), exist_ok=True)
            sampler.to_json(tl_path)
            self.generated += 1
            written.append("timeline")
        if "phases" in wanted and not os.path.exists(
                self.path_for(key, "phases")):
            from repro.obs.phases import detect_phases
            from repro.obs.sampler import load_timeline

            report = detect_phases(load_timeline(tl_path))
            report.to_json(self.path_for(key, "phases"))
            self.generated += 1
            written.append("phases")
        return written

    def available(self, key):
        """Artifact names already persisted for ``key``."""
        present = []
        for name, (filename, _) in ARTIFACT_FILES.items():
            if os.path.exists(os.path.join(self.dir_for(key), filename)):
                present.append(name)
        return sorted(present)

    def stats(self):
        files = size = 0
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for fn in filenames:
                    if fn.endswith(".tmp"):
                        continue
                    files += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, fn))
                    except OSError:
                        pass
        return {"root": self.root, "files": files, "bytes": size,
                "generated": self.generated, "served": self.served}
