"""Persistent job queue for the sweep service.

A :class:`Job` is one submitted unit of work: a list of run specs
(``system``/``workload``/``scale``/``overrides``), their config-hash keys
(computed against the service cache at submit time, so the key a client
polls is the key the artifacts land under), and the artifact names to
pre-generate.  The :class:`JobQueue` holds jobs in three places:

* **in memory** — the FIFO the worker pool claims from, guarded by one
  condition variable;
* **in a JSONL journal** — every state transition appends one line, so a
  restarted service replays the journal and *re-queues* whatever was
  queued or running when the process died (counted as ``recovered``);
* **in telemetry** — ``job_enqueued`` / ``job_start`` / ``job_done`` /
  ``job_retry`` events are emitted on exactly the branches that bump the
  queue's :attr:`~JobQueue.counters`, extending the PR-7 sweep log with
  the same reconciliation contract the ``cache_*`` events keep with
  :meth:`ResultCache.stats`.

**In-flight dedup:** submitting a body whose sorted key set and artifact
request match a queued or running job returns that job instead of a new
one (``counters["deduped"]``), so a thundering herd of identical clients
costs one simulation.  The dedup window closes when the job leaves the
queue — a completed job's results live in the cache, which is the
persistent dedup layer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.experiments import telemetry
from repro.service.schemas import SERVICE_SCHEMA
from repro.soc import preset

#: counter names; each maps 1:1 onto a telemetry event branch
COUNTERS = ("enqueued", "started", "done", "failed", "retried", "deduped",
            "recovered")


class Job:
    """One submitted run/sweep request and its lifecycle record."""

    __slots__ = ("id", "runs", "artifacts", "keys", "state", "error",
                 "retries", "created_ts", "started_ts", "finished_ts",
                 "levels", "deduped")

    def __init__(self, job_id, runs, keys, artifacts=()):
        self.id = job_id
        self.runs = runs            # list of normalized run-spec dicts
        self.keys = keys            # config hashes aligned with runs
        self.artifacts = tuple(artifacts)
        self.state = "queued"
        self.error = None
        self.retries = 0
        self.created_ts = time.time()
        self.started_ts = None
        self.finished_ts = None
        self.levels = None          # key -> cache-hit level once done
        self.deduped = 0            # how many submits coalesced onto this job

    def signature(self):
        return (tuple(sorted(self.keys)), self.artifacts)

    def as_dict(self):
        return {
            "schema": SERVICE_SCHEMA,
            "id": self.id,
            "state": self.state,
            "runs": list(self.runs),
            "keys": list(self.keys),
            "artifacts": list(self.artifacts),
            "error": self.error,
            "retries": self.retries,
            "deduped": self.deduped,
            "created_ts": round(self.created_ts, 6),
            "started_ts": round(self.started_ts, 6)
            if self.started_ts else None,
            "finished_ts": round(self.finished_ts, 6)
            if self.finished_ts else None,
            "levels": dict(self.levels) if self.levels else None,
        }

    @classmethod
    def from_dict(cls, d):
        job = cls(d["id"], d.get("runs", []), d.get("keys", []),
                  d.get("artifacts", ()))
        job.state = d.get("state", "queued")
        job.error = d.get("error")
        job.retries = d.get("retries", 0)
        job.deduped = d.get("deduped", 0)
        job.created_ts = d.get("created_ts") or time.time()
        job.started_ts = d.get("started_ts")
        job.finished_ts = d.get("finished_ts")
        job.levels = d.get("levels")
        return job

    def __repr__(self):
        return f"<Job {self.id} {self.state} keys={len(self.keys)}>"


class JobQueue:
    """FIFO job queue with a JSONL journal and telemetry-reconciled
    counters; thread-safe (the HTTP handlers and worker threads share
    one instance)."""

    def __init__(self, cache, journal_path=None):
        self.cache = cache
        self.journal_path = journal_path
        self._jobs = {}                 # id -> Job (full history, FIFO dicts)
        self._pending = deque()         # ids waiting for a worker
        self._inflight = {}             # signature -> id (queued/running)
        self._cond = threading.Condition()
        self._seq = 0
        self._closed = False
        self.counters = {name: 0 for name in COUNTERS}
        self._journal_f = None
        if journal_path:
            os.makedirs(os.path.dirname(journal_path) or ".", exist_ok=True)
            self._journal_f = open(journal_path, "a", encoding="utf-8")

    # ------------------------------------------------------------- internals

    def _journal(self, ev, job):
        if self._journal_f is not None:
            rec = {"ts": round(time.time(), 6), "ev": ev,
                   "job": job.as_dict()}
            self._journal_f.write(json.dumps(rec, sort_keys=True) + "\n")
            self._journal_f.flush()

    def _emit(self, counter, ev, job, **fields):
        """Bump one counter and emit the matching telemetry event — always
        together, so a telemetry log reconciles with the counters."""
        self.counters[counter] += 1
        tel = telemetry.current()
        if tel is not None:
            tel.event(ev, job=job.id, **fields)

    def keys_for(self, runs):
        """Config-hash keys for a list of run specs, via the service cache
        (same hash ``run_pair`` uses, so results land where clients look)."""
        return [self.cache.key_for(
            preset(spec["system"], **spec.get("overrides", {})),
            spec["workload"], spec["scale"]) for spec in runs]

    # ------------------------------------------------------------ submission

    def submit(self, runs, artifacts=()):
        """Enqueue one job; returns ``(job, deduped)``.

        ``deduped`` is True when an identical in-flight job absorbed the
        submit.  Raises ``RuntimeError`` once the queue is closed (the
        HTTP layer turns that into a 503 while draining).
        """
        keys = self.keys_for(runs)
        signature = (tuple(sorted(keys)), tuple(artifacts))
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is draining; not accepting jobs")
            existing_id = self._inflight.get(signature)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.deduped += 1
                self._emit("deduped", "job_enqueued", job,
                           runs=len(job.runs), keys=list(job.keys),
                           deduped=True)
                self._journal("job_deduped", job)
                return job, True
            self._seq += 1
            job = Job(f"job-{self._seq:06d}", runs, keys, artifacts)
            self._jobs[job.id] = job
            self._pending.append(job.id)
            self._inflight[signature] = job.id
            self._emit("enqueued", "job_enqueued", job,
                       runs=len(runs), keys=keys)
            self._journal("job_enqueued", job)
            self._cond.notify()
            return job, False

    # -------------------------------------------------------------- claiming

    def claim(self, timeout=None):
        """Pop the oldest queued job (state -> running), blocking up to
        ``timeout`` seconds; ``None`` on timeout or when closed and empty."""
        batch = self.claim_batch(1, timeout=timeout)
        return batch[0] if batch else None

    def claim_batch(self, max_jobs, timeout=None):
        """Claim up to ``max_jobs`` queued jobs in one go — the worker
        batches them through a single :class:`ParallelRunner` sweep, which
        dedups shared keys across jobs for free."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._pending:
                if self._closed:
                    return []
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._pending:
                            return []
            claimed = []
            while self._pending and len(claimed) < max_jobs:
                job = self._jobs[self._pending.popleft()]
                job.state = "running"
                job.started_ts = time.time()
                self._emit("started", "job_start", job,
                           worker=threading.current_thread().name)
                self._journal("job_start", job)
                claimed.append(job)
            return claimed

    # ------------------------------------------------------------ completion

    def complete(self, job, levels=None):
        with self._cond:
            job.state = "done"
            job.finished_ts = time.time()
            job.levels = dict(levels) if levels else None
            self._inflight.pop(job.signature(), None)
            self._emit("done", "job_done", job, ok=True,
                       levels=job.levels)
            self._journal("job_done", job)
            self._cond.notify_all()

    def fail(self, job, error):
        with self._cond:
            job.state = "failed"
            job.error = str(error)
            job.finished_ts = time.time()
            self._inflight.pop(job.signature(), None)
            self._emit("failed", "job_done", job, ok=False,
                       error=job.error)
            self._journal("job_failed", job)
            self._cond.notify_all()

    def requeue(self, job, error, backoff_s=0.0):
        """Put a crashed job back in line (state -> queued, retries += 1).
        The worker sleeps the backoff *before* calling this, so a re-queued
        job is immediately claimable."""
        with self._cond:
            job.retries += 1
            job.state = "queued"
            job.error = str(error)
            self._pending.append(job.id)
            self._emit("retried", "job_retry", job, attempt=job.retries,
                       error=str(error), backoff_s=round(backoff_s, 3))
            self._journal("job_retry", job)
            self._cond.notify()

    # --------------------------------------------------------------- queries

    def get(self, job_id):
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self, limit=50):
        """Most recent ``limit`` jobs, newest first."""
        with self._cond:
            recent = list(self._jobs.values())[-limit:]
        return list(reversed(recent))

    def pending(self):
        with self._cond:
            return len(self._pending)

    def stats(self):
        with self._cond:
            states = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {"counters": dict(self.counters),
                    "pending": len(self._pending),
                    "jobs": len(self._jobs),
                    "states": states,
                    "closed": self._closed}

    # ------------------------------------------------------------- lifecycle

    def close(self):
        """Stop accepting submissions and wake every blocked claimer.
        Already-queued jobs stay claimable — this is the drain signal,
        not an abort."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._journal_f is not None:
            self._journal_f.close()
            self._journal_f = None

    @property
    def closed(self):
        return self._closed

    # --------------------------------------------------------------- journal

    @classmethod
    def load(cls, cache, journal_path):
        """Rebuild a queue from its journal.

        Terminal jobs (done/failed) are kept for ``GET /v1/jobs`` history;
        jobs that were queued or running when the last process died are
        re-queued and counted as ``recovered``.
        """
        queue = cls(cache, journal_path=None)
        latest = {}
        if journal_path and os.path.exists(journal_path):
            with open(journal_path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        continue  # torn tail line from a crash: skip
                    job_d = rec.get("job")
                    if isinstance(job_d, dict) and "id" in job_d:
                        latest[job_d["id"]] = job_d
        for job_id in sorted(latest):
            job = Job.from_dict(latest[job_id])
            queue._jobs[job.id] = job
            seq = int(job.id.rsplit("-", 1)[-1]) \
                if job.id.rsplit("-", 1)[-1].isdigit() else 0
            queue._seq = max(queue._seq, seq)
            if job.state in ("queued", "running"):
                job.state = "queued"
                queue._pending.append(job.id)
                queue._inflight[job.signature()] = job.id
                queue.counters["recovered"] += 1
        # reopen the journal for appending *after* the replay
        if journal_path:
            queue.journal_path = journal_path
            os.makedirs(os.path.dirname(journal_path) or ".", exist_ok=True)
            queue._journal_f = open(journal_path, "a", encoding="utf-8")
        return queue
