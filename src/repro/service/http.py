"""stdlib HTTP/JSON front end for the sweep service.

One :class:`ServiceApp` owns the whole stack: a sharded
:class:`ResultCache`, an :class:`ArtifactStore`, a journaled
:class:`JobQueue` (replayed from disk on start), a :class:`WorkerPool`,
and a ``ThreadingHTTPServer`` whose handler delegates every route back
into the app (so tests can drive :meth:`handle_get` /
:meth:`handle_post` through a real socket or not at all).

Every response carries two headers:

* ``X-BigVLittle-Schema: bigvlittle-service-v1`` — version skew guard;
* ``X-BigVLittle-Cache: <level>`` — how hot the path was.  Artifact
  fetches report ``artifact`` (bytes straight from disk), ``generated``
  (first render from the cached result), or ``miss``; the results index
  reports the RunResult's own level (``memory``/``disk``/``miss``);
  submissions report ``fresh`` (queued work); pure in-memory endpoints
  (health, stats, jobs) report ``memory``.

``GET /v1/results/...`` never calls ``System.run``: derived artifacts
render from the cache, simulation-backed ones 404 with a hint to
re-submit with ``"artifacts"`` — the worker pool is the only simulating
component.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.experiments import telemetry
from repro.experiments.cache import SIM_VERSION, ResultCache
from repro.log import get_logger
from repro.service.artifacts import ARTIFACT_FILES, ArtifactStore
from repro.service.jobs import JobQueue
from repro.service.schemas import (DERIVED_ARTIFACTS, SERVICE_SCHEMA,
                                   SIMULATED_ARTIFACTS, ValidationError,
                                   error_body, validate_submit)
from repro.service.workers import WorkerPool

_logger = get_logger("repro.service.http")

#: request body size cap — a sweep of every preset x workload is ~100 KiB
MAX_BODY_BYTES = 4 * 1024 * 1024


def _make_handler(app):
    class Handler(BaseHTTPRequestHandler):
        server_version = f"bigvlittle-service/{SERVICE_SCHEMA.rsplit('-', 1)[-1]}"
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):
            _logger.info(f"[http] {self.address_string()} {fmt % args}")

        def do_GET(self):
            app.handle_get(self)

        def do_POST(self):
            app.handle_post(self)

    return Handler


class ServiceApp:
    """The sweep service: cache + artifacts + queue + workers + HTTP."""

    def __init__(self, cache_root="results", host="127.0.0.1", port=0,
                 workers=2, shards=2, runner_jobs=1, batch=4, max_retries=2,
                 backoff_s=0.1, telemetry_path=None):
        self.cache_root = cache_root
        self.cache = ResultCache(cache_dir=os.path.join(cache_root, "cache"),
                                 shards=shards)
        self.artifacts = ArtifactStore(os.path.join(cache_root, "artifacts"),
                                       shards=shards)
        self.telemetry_path = telemetry_path
        if telemetry_path:
            telemetry.enable(telemetry_path)
        self.queue = JobQueue.load(
            self.cache, os.path.join(cache_root, "service", "jobs.jsonl"))
        self.pool = WorkerPool(self.queue, workers=workers,
                               runner_jobs=runner_jobs, batch=batch,
                               max_retries=max_retries, backoff_s=backoff_s,
                               artifact_store=self.artifacts)
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self.httpd.daemon_threads = True
        self._http_thread = None
        self._t0 = time.time()

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self):
        return self.httpd.server_address[1]

    def start(self):
        self.pool.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="svc-http", daemon=True)
        self._http_thread.start()
        _logger.info(f"[service] listening on port {self.port} "
                     f"({self.pool.workers} workers, cache at "
                     f"{self.cache.cache_dir})")
        return self

    def stop(self, drain=True):
        """Graceful shutdown: close the queue (new submits 503), drain the
        workers, then stop the HTTP loop."""
        self.pool.stop(drain=drain)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join()
            self._http_thread = None
        if self.telemetry_path:
            telemetry.disable()

    # -------------------------------------------------------------- plumbing

    def _send(self, handler, status, body, level, content_type=None):
        if isinstance(body, bytes):
            data = body
            content_type = content_type or "application/octet-stream"
        else:
            data = (json.dumps(body, indent=1, sort_keys=True)
                    + "\n").encode("utf-8")
            content_type = content_type or "application/json"
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(data)))
        handler.send_header("X-BigVLittle-Schema", SERVICE_SCHEMA)
        handler.send_header("X-BigVLittle-Cache", level)
        handler.end_headers()
        handler.wfile.write(data)

    def _error(self, handler, status, message, hint=None):
        self._send(handler, status, error_body(message, hint=hint), "miss")

    # ---------------------------------------------------------------- routes

    def handle_get(self, handler):
        url = urlparse(handler.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "healthz"]:
                return self._send(handler, 200, {
                    "schema": SERVICE_SCHEMA, "ok": True,
                    "sim_version": SIM_VERSION,
                    "uptime_s": round(time.time() - self._t0, 3),
                }, "memory")
            if parts == ["v1", "stats"]:
                return self._send(handler, 200, {
                    "schema": SERVICE_SCHEMA,
                    "sim_version": SIM_VERSION,
                    "uptime_s": round(time.time() - self._t0, 3),
                    "cache": self.cache.stats(),
                    "artifacts": self.artifacts.stats(),
                    "queue": self.queue.stats(),
                    "pool": self.pool.stats(),
                }, "memory")
            if parts == ["v1", "jobs"]:
                query = parse_qs(url.query)
                limit = int(query.get("limit", ["50"])[0])
                return self._send(handler, 200, {
                    "schema": SERVICE_SCHEMA,
                    "jobs": [j.as_dict() for j in self.queue.jobs(limit)],
                }, "memory")
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                job = self.queue.get(parts[2])
                if job is None:
                    return self._error(handler, 404,
                                       f"no such job {parts[2]!r}")
                return self._send(handler, 200, job.as_dict(), "memory")
            if len(parts) == 3 and parts[:2] == ["v1", "results"]:
                return self._results_index(handler, parts[2])
            if len(parts) == 4 and parts[:2] == ["v1", "results"]:
                return self._results_artifact(handler, parts[2], parts[3])
            return self._error(handler, 404, f"no route for {url.path}",
                               hint="see GET /v1/healthz, /v1/stats, "
                                    "/v1/jobs, /v1/results/<config_hash>")
        except Exception as exc:  # keep the thread pool alive
            _logger.info(f"[http] 500 on {handler.path}: {exc}")
            self._error(handler, 500, f"internal error: {exc}")

    def handle_post(self, handler):
        url = urlparse(handler.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts != ["v1", "runs"]:
                return self._error(handler, 404,
                                   f"no POST route for {url.path}",
                                   hint="submit work with POST /v1/runs")
            length = int(handler.headers.get("Content-Length") or 0)
            if length <= 0 or length > MAX_BODY_BYTES:
                return self._error(handler, 400,
                                   "a JSON body is required "
                                   f"(1..{MAX_BODY_BYTES} bytes)")
            raw = handler.rfile.read(length)
            try:
                doc = json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                return self._error(handler, 400, f"invalid JSON: {exc}")
            try:
                runs, artifacts = validate_submit(doc)
            except ValidationError as exc:
                return self._error(handler, 400, str(exc))
            try:
                job, deduped = self.queue.submit(runs, artifacts)
            except RuntimeError as exc:
                return self._error(handler, 503, str(exc),
                                   hint="the service is draining; retry "
                                        "against the next instance")
            body = job.as_dict()
            body["deduplicated"] = deduped
            return self._send(handler, 200 if deduped else 202, body,
                              "fresh")
        except Exception as exc:
            _logger.info(f"[http] 500 on {handler.path}: {exc}")
            self._error(handler, 500, f"internal error: {exc}")

    # -------------------------------------------------------------- results

    def _lookup(self, key):
        """Cached RunResult for ``key`` plus its hit level
        (``memory``/``disk``/``miss``)."""
        dh0 = self.cache.disk_hits
        result = self.cache.get(key)
        if result is None:
            return None, "miss"
        return result, "disk" if self.cache.disk_hits > dh0 else "memory"

    def _results_index(self, handler, key):
        result, level = self._lookup(key)
        available = self.artifacts.available(key)
        if result is None and not available:
            return self._error(
                handler, 404, f"no cached result for {key!r}",
                hint="submit it with POST /v1/runs; the job record lists "
                     "the key to poll")
        body = {
            "schema": SERVICE_SCHEMA,
            "key": key,
            "cached": result is not None,
            "cache_level": level,
            "artifacts": {
                "available": available,
                "derived": list(DERIVED_ARTIFACTS),
                "simulated": list(SIMULATED_ARTIFACTS),
            },
        }
        if result is not None:
            body["name"] = result.name
            body["system"] = result.system
            body["cycles"] = result.cycles
        return self._send(handler, 200, body, level)

    def _results_artifact(self, handler, key, name):
        if name not in ARTIFACT_FILES:
            return self._error(handler, 404, f"unknown artifact {name!r}",
                               hint=f"one of {sorted(ARTIFACT_FILES)}")
        data = self.artifacts.get_bytes(key, name)
        if data is not None:
            return self._send(handler, 200, data, "artifact",
                              content_type=self.artifacts.content_type(name))
        if name in SIMULATED_ARTIFACTS:
            return self._error(
                handler, 404,
                f"artifact {name!r} was not generated for {key!r}",
                hint='re-submit the run with "artifacts": '
                     f'["{name}"] — GET never simulates')
        result, level = self._lookup(key)
        if result is None:
            return self._error(
                handler, 404, f"no cached result for {key!r}",
                hint="submit it with POST /v1/runs first")
        data, art_level = self.artifacts.ensure_derived(key, name, result)
        return self._send(handler, 200, data, art_level,
                          content_type=self.artifacts.content_type(name))
