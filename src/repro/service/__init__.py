"""Sweep service: async job queue + sharded result cache + HTTP results API.

The layers, bottom up (each importable on its own):

* :mod:`repro.service.schemas` — the ``bigvlittle-service-v1`` JSON
  contract: submit-body validation, the endpoint table, artifact and
  cache-level vocabularies.
* :mod:`repro.service.jobs` — journaled, telemetry-reconciled
  :class:`JobQueue` with in-flight dedup and crash recovery.
* :mod:`repro.service.artifacts` — sharded :class:`ArtifactStore`;
  derived artifacts render from the cache, simulation-backed ones are
  worker-generated.
* :mod:`repro.service.workers` — :class:`WorkerPool` threads batching
  jobs through :class:`ParallelRunner` with capped-backoff retries.
* :mod:`repro.service.http` — :class:`ServiceApp`, the stdlib HTTP/JSON
  front end (``bigvlittle serve``).

See ``docs/service.md`` for the architecture, endpoint reference, and
operations runbook.
"""

from repro.service.artifacts import ArtifactStore
from repro.service.http import ServiceApp
from repro.service.jobs import Job, JobQueue
from repro.service.schemas import (ARTIFACT_NAMES, CACHE_LEVELS, ENDPOINTS,
                                   SERVICE_SCHEMA, ValidationError,
                                   validate_submit)
from repro.service.workers import WorkerPool

__all__ = [
    "ARTIFACT_NAMES", "ArtifactStore", "CACHE_LEVELS", "ENDPOINTS", "Job",
    "JobQueue", "SERVICE_SCHEMA", "ServiceApp", "ValidationError",
    "WorkerPool", "validate_submit",
]
