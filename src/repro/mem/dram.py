"""Closed-form DRAM timing model.

A single-channel LPDDR-like device: fixed access latency plus a line-service
interval that caps sustained bandwidth (one 64 B line per ``line_interval``
cycles — e.g. 4 cycles/line at 1 GHz ≈ 16 GB/s, typical of a mobile SoC).
Requests are resolved at issue time into a deterministic data-ready cycle,
which keeps the hot path free of per-cycle ticking.
"""

from __future__ import annotations


class DRAM:
    """Bandwidth-limited fixed-latency memory."""

    __slots__ = ("latency", "line_interval", "period", "_next_free",
                 "reads", "writes", "busy_cycles", "obs")

    def __init__(self, latency=80, line_interval=4, period=1):
        if latency < 1 or line_interval < 1:
            raise ValueError("latency and line_interval must be >= 1")
        self.latency = latency * period
        self.line_interval = line_interval * period
        self.period = period
        self._next_free = 0
        # counters
        self.reads = 0
        self.writes = 0
        self.busy_cycles = 0

        self.obs = None  # UnitObs handle; every hook is a single cheap check

    # --------------------------------------------------------- observability

    def attach_obs(self, obs_unit):
        self.obs = obs_unit

    def busy_at(self, now):
        """True while the channel is still serving a previous line."""
        return self._next_free > now

    def next_idle_ps(self, now):
        """ps at which ``busy_at`` flips back to idle, or 0 when already
        idle. Pure — bounds quiescence skips so per-cycle busy/idle
        attribution stays exact."""
        t = self._next_free
        return t if t > now else 0

    def request(self, now, is_write=False):
        """Issue one line request at cycle ``now``; returns data-ready cycle."""
        start = now if now >= self._next_free else self._next_free
        self._next_free = start + self.line_interval
        self.busy_cycles += self.line_interval // self.period
        if self.obs is not None:
            self.obs.complete("write" if is_write else "read", start,
                              self.line_interval if is_write else self.latency)
        if is_write:
            self.writes += 1
            return start + self.line_interval  # write considered done when accepted
        self.reads += 1
        return start + self.latency

    def stats(self):
        return {
            "dram_reads": self.reads,
            "dram_writes": self.writes,
            "dram_busy_cycles": self.busy_cycles,
        }
