"""Level-one cache model (used for both L1I and L1D).

Write-back, write-allocate, set-associative with true-LRU replacement, a
finite MSHR file with same-line merge, and MSI-style share states:

* ``M`` — modified/exclusive (writes allowed)
* ``S`` — shared clean (writes need an ownership upgrade through the L2)

The cache is driven synchronously by its core (``access``), fills
asynchronously from the L2 through a response queue (``tick``), and is probed
synchronously by the L2 directory (``invalidate`` / ``downgrade``) — charging
all protocol latency to the requester keeps the model free of transient
protocol races while preserving the timing effects the paper relies on
(dirty-line migration between banks after a mode switch, sharer invalidation
in task-parallel runs).

Set indexing is mode-dependent (paper §III-E): ``set_banked_mode`` switches
the index function so the cache behaves as one slice of a bank-interleaved
shared cache; lines cached under the other mode stay resident and reachable
(full tags) and migrate lazily via coherence.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.message import BLOCKED, HIT, MISS, DelayQueue
from repro.utils import is_pow2, log2i

STATE_M = 2
STATE_S = 1


class _Mshr:
    __slots__ = ("line", "is_write", "waiters", "issue_time")

    def __init__(self, line, is_write, issue_time):
        self.line = line
        self.is_write = is_write
        self.waiters = []
        self.issue_time = issue_time


class L1Cache:
    """One private L1 (instruction or data)."""

    __slots__ = ("cache_id", "l2", "assoc", "line_bytes", "hit_latency",
                 "n_mshrs", "period", "_off_bits", "_nsets", "_set_mask",
                 "_bank_shift", "_state", "_dirty", "_lru", "_mshrs",
                 "resp_queue", "accesses", "hits", "misses", "upgrades",
                 "writebacks", "invalidations_received", "mshr_blocked",
                 "obs", "_obs_track", "_obs_fill_hist")

    def __init__(
        self,
        cache_id,
        l2=None,
        size_bytes=32 * 1024,
        assoc=2,
        line_bytes=64,
        hit_latency=2,
        n_mshrs=8,
        resp_delay=2,
        period=1,
    ):
        if not (is_pow2(size_bytes) and is_pow2(line_bytes)):
            raise ConfigError("cache size and line size must be powers of two")
        nsets = size_bytes // (assoc * line_bytes)
        if nsets < 1 or not is_pow2(nsets):
            raise ConfigError(f"bad geometry: {size_bytes}B / {assoc}-way / {line_bytes}B line")
        self.cache_id = cache_id
        self.l2 = l2
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.n_mshrs = n_mshrs
        self.period = period
        self._off_bits = log2i(line_bytes)
        self._nsets = nsets
        self._set_mask = nsets - 1
        self._bank_shift = 0  # extra index shift in banked mode

        self._state = {}  # line -> STATE_M | STATE_S
        self._dirty = set()  # lines with locally modified data
        self._lru = {}  # set idx -> list of lines, MRU last
        self._mshrs = {}  # line -> _Mshr
        self.resp_queue = DelayQueue(resp_delay * period)

        # counters
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.upgrades = 0
        self.writebacks = 0
        self.invalidations_received = 0
        self.mshr_blocked = 0

        self.obs = None  # off the hit path entirely: hooks fire only on fills

    # --------------------------------------------------------- observability

    def attach_obs(self, obs, fill_hist):
        self.obs = obs
        self._obs_track = obs.tracer.track(self.cache_id, process="mem")
        self._obs_fill_hist = fill_hist

    # ------------------------------------------------------------- geometry

    def line_of(self, addr):
        return addr >> self._off_bits << self._off_bits

    def _set_of(self, line):
        return (line >> (self._off_bits + self._bank_shift)) & self._set_mask

    def set_banked_mode(self, nbanks):
        """Index as one slice of an ``nbanks``-interleaved shared cache."""
        self._bank_shift = log2i(nbanks)

    def set_private_mode(self):
        self._bank_shift = 0

    # --------------------------------------------------------------- access

    def access(self, addr, is_write, now, waiter=None):
        """Core-side access. Returns ``(HIT, ready_cycle)``, ``(MISS, None)``
        (waiter will be called as ``waiter(line, ready_cycle)`` on fill), or
        ``(BLOCKED, None)`` when no MSHR is available (retry next cycle)."""
        self.accesses += 1
        line = addr >> self._off_bits << self._off_bits
        st = self._state.get(line)
        if st is not None and (not is_write or st == STATE_M):
            self.hits += 1
            if is_write:
                self._dirty.add(line)
            self._touch(line)
            return HIT, now + self.hit_latency * self.period

        mshr = self._mshrs.get(line)
        if mshr is not None:
            if is_write and not mshr.is_write:
                # a write joining an outstanding read miss: let the fill land
                # first, then take the upgrade path on retry
                self.mshr_blocked += 1
                return BLOCKED, None
            if waiter is not None:
                mshr.waiters.append(waiter)
            return MISS, None

        if len(self._mshrs) >= self.n_mshrs:
            self.mshr_blocked += 1
            return BLOCKED, None

        if st is not None and is_write:
            self.upgrades += 1
        else:
            self.misses += 1
        mshr = _Mshr(line, is_write, now)
        if waiter is not None:
            mshr.waiters.append(waiter)
        self._mshrs[line] = mshr
        self.l2.request(self.cache_id, line, is_write, now)
        return MISS, None

    def _touch(self, line):
        s = self._lru.get(self._set_of(line))
        if s is None or line not in s:
            # resident under the other indexing mode's set; leave LRU as-is
            return
        if s[-1] != line:
            s.remove(line)
            s.append(line)

    # ----------------------------------------------------------------- fill

    def tick(self, now):
        """Drain ready fill responses; wake waiters."""
        while True:
            resp = self.resp_queue.pop_ready(now)
            if resp is None:
                return
            line, granted = resp
            self._install(line, granted, now)

    def _install(self, line, granted, now):
        mshr = self._mshrs.pop(line, None)
        if self.obs is not None and mshr is not None:
            # miss-to-fill latency as seen by this cache's requester
            self._obs_fill_hist.observe(now - mshr.issue_time)
        if line not in self._state:
            sidx = self._set_of(line)
            s = self._lru.setdefault(sidx, [])
            if len(s) >= self.assoc:
                victim = s.pop(0)
                self._state.pop(victim)
                if victim in self._dirty:
                    self._dirty.discard(victim)
                    self.writebacks += 1
                    self.l2.writeback(self.cache_id, victim, now)
                    if self.obs is not None:
                        self.obs.tracer.instant(self._obs_track, "writeback", now)
                else:
                    self.l2.drop_sharer(self.cache_id, victim)
            s.append(line)
        else:
            self._touch(line)
        self._state[line] = granted
        if mshr is not None:
            if mshr.is_write:
                self._dirty.add(line)
            ready = now + self.period
            for w in mshr.waiters:
                w(line, ready)

    # ------------------------------------------------------- coherence side

    def invalidate(self, line):
        """Directory-initiated invalidation. Returns True if line was dirty."""
        st = self._state.pop(line, None)
        if st is None:
            return False
        self.invalidations_received += 1
        s = self._lru.get(self._set_of(line))
        if s is not None and line in s:
            s.remove(line)
        else:
            # line may have been installed under the other indexing mode
            for lst in self._lru.values():
                if line in lst:
                    lst.remove(line)
                    break
        was_dirty = line in self._dirty
        self._dirty.discard(line)
        return was_dirty

    def downgrade(self, line):
        """M -> S; dirty data migrates to the L2. Returns True if dirty."""
        if self._state.get(line) == STATE_M:
            self._state[line] = STATE_S
            if line in self._dirty:
                self._dirty.discard(line)
                return True
        return False

    def probe(self, line):
        return self._state.get(line)

    def flush_all(self):
        """Drop every line (used only by tests; mode switches never flush)."""
        self._state.clear()
        self._dirty.clear()
        self._lru.clear()

    @property
    def resident_lines(self):
        return len(self._state)

    def stats(self):
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "upgrades": self.upgrades,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations_received,
            "mshr_blocked": self.mshr_blocked,
        }
