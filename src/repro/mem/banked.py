"""Bank-interleaved addressing for the reconfigured shared L1 (paper §III-E).

In vector mode the private L1 data caches of the little cores form one
logically shared multi-bank cache. The bank bits sit **between** the block
offset and the index bits so that consecutive cache lines map to different
banks (minimizing bank conflicts for unit-stride streams), and the full
address above the offset — including the bank bits — remains part of the tag,
so lines cached in the "wrong" bank before a mode switch stay valid and are
migrated or evicted lazily by the coherence protocol instead of requiring a
flush.
"""

from __future__ import annotations

from repro.utils import is_pow2, log2i


class BankMap:
    """Maps line addresses to banks for an N-bank interleaved cache group."""

    __slots__ = ("nbanks", "line_bytes", "_off_bits", "_bank_bits")

    def __init__(self, nbanks, line_bytes=64):
        if not is_pow2(nbanks):
            raise ValueError(f"nbanks must be a power of two, got {nbanks}")
        if not is_pow2(line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        self.nbanks = nbanks
        self.line_bytes = line_bytes
        self._off_bits = log2i(line_bytes)
        self._bank_bits = log2i(nbanks)

    def bank_of(self, addr):
        """Bank index for a byte (or line) address."""
        return (addr >> self._off_bits) & (self.nbanks - 1)

    def index_bits_of(self, addr):
        """Address bits above bank bits (feed the slice's set index)."""
        return addr >> (self._off_bits + self._bank_bits)

    def partition_lines(self, lines):
        """Group line addresses by bank; returns a list of lists."""
        out = [[] for _ in range(self.nbanks)]
        for ln in lines:
            out[self.bank_of(ln)].append(ln)
        return out
