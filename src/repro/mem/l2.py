"""Shared banked L2 with a full-map coherence directory.

The L2 is the ordering point of the hierarchy (the role the Arm CHI home node
plays in the paper's gem5 setup). Requests are resolved *closed-form* at
arrival: per-bank service slots, directory probes (synchronous invalidate /
downgrade calls into the L1s, with their latency charged to the requester),
optional DRAM fetch, and a response pushed into the requester's response
queue with an explicit ready cycle. This keeps the hierarchy deadlock-free by
construction while modeling the effects that matter at the paper's level:
bank throughput, dirty-line migration, sharer invalidation, and DRAM
bandwidth saturation.

Clients are either *coherent* (L1 caches, tracked by the directory) or *raw*
(the decoupled vector engine's memory unit, which holds no lines but must see
coherent data and invalidate cached copies on stores).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.cache import STATE_M, STATE_S
from repro.utils import is_pow2, log2i


class L2Cache:
    __slots__ = ("dram", "assoc", "line_bytes", "nbanks", "latency",
                 "miss_lookup_latency", "req_delay", "dirty_fwd_latency",
                 "inv_latency", "fill_latency", "period", "_off_bits",
                 "_nsets", "_set_mask", "_bank_mask", "_tags", "_lru",
                 "_dir", "_bank_free", "_clients", "reads", "writes",
                 "hits", "misses", "dirty_forwards", "invalidations_sent",
                 "writebacks_in", "obs", "_obs_lat", "_ev_notify")

    def __init__(
        self,
        dram,
        size_bytes=1024 * 1024,
        assoc=8,
        line_bytes=64,
        nbanks=4,
        latency=12,
        miss_lookup_latency=4,
        req_delay=2,
        dirty_fwd_latency=8,
        inv_latency=6,
        fill_latency=2,
        period=1,
    ):
        if not (is_pow2(size_bytes) and is_pow2(nbanks)):
            raise ConfigError("L2 size and bank count must be powers of two")
        self.dram = dram
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.nbanks = nbanks
        self.latency = latency
        self.miss_lookup_latency = miss_lookup_latency
        self.req_delay = req_delay
        self.dirty_fwd_latency = dirty_fwd_latency
        self.inv_latency = inv_latency
        self.fill_latency = fill_latency
        self.period = period

        self._off_bits = log2i(line_bytes)
        self._nsets = size_bytes // (assoc * line_bytes)
        self._set_mask = self._nsets - 1
        self._bank_mask = nbanks - 1

        self._tags = {}  # line -> dirty bool
        self._lru = {}  # set -> [lines], MRU last
        self._dir = {}  # line -> [owner_id | None, set(sharer_ids)]
        self._bank_free = [0] * nbanks
        self._clients = {}  # id -> (client, coherent)

        # counters
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.dirty_forwards = 0
        self.invalidations_sent = 0
        self.writebacks_in = 0

        self.obs = None  # UnitObs handle; every hook is a single cheap check
        # event-loop wakeup: the L2 is the single entry point for every
        # request into the memory side (L1 misses and raw-port line
        # requests), so one notify here re-arms the memory unit
        self._ev_notify = None

    # --------------------------------------------------------- observability

    def attach_obs(self, obs_unit, metrics):
        self.obs = obs_unit
        self._obs_lat = metrics.histogram(
            "l2.req_latency_ps",
            (20_000, 50_000, 100_000, 150_000, 250_000, 500_000))

    def busy_at(self, now):
        """True while any bank still has a service slot in flight."""
        for b in self._bank_free:
            if b > now:
                return True
        return False

    def next_idle_ps(self, now):
        """ps at which ``busy_at`` flips back to idle (the last in-flight
        bank slot freeing), or 0 when already idle. Pure."""
        t = max(self._bank_free)
        return t if t > now else 0

    # ------------------------------------------------------------- clients

    def register_client(self, client_id, client, coherent=True):
        """Register an L1 (coherent) or a raw engine port (non-coherent)."""
        if client_id in self._clients:
            raise ConfigError(f"duplicate L2 client id {client_id!r}")
        self._clients[client_id] = (client, coherent)

    # ------------------------------------------------------------ requests

    def _bank_slot(self, line, arrival):
        bank = (line >> self._off_bits) & self._bank_mask
        start = arrival if arrival >= self._bank_free[bank] else self._bank_free[bank]
        self._bank_free[bank] = start + self.period
        return start

    def _dir_entry(self, line):
        e = self._dir.get(line)
        if e is None:
            e = [None, set()]
            self._dir[line] = e
        return e

    def request(self, src_id, line, is_write, now, token=None):
        """Handle a fetch/ownership request; respond via the client's queue."""
        n = self._ev_notify
        if n is not None:
            n()  # settle + re-arm the memory unit before any state moves
        client, coherent = self._clients[src_id]
        arrival = now + self.req_delay * self.period
        start = self._bank_slot(line, arrival)
        penalty = 0
        entry = self._dir_entry(line)
        owner, sharers = entry[0], entry[1]

        if is_write:
            self.writes += 1
            others = [j for j in sharers if j != src_id]
            if owner is not None and owner != src_id and owner not in others:
                others.append(owner)
            for j in others:
                holder, _ = self._clients[j]
                if holder.invalidate(line):
                    self._tags[line] = True  # dirty data pulled to L2
                self.invalidations_sent += 1
            if others:
                penalty += self.inv_latency * self.period
            if coherent:
                entry[0] = src_id
                entry[1] = {src_id}
            else:
                entry[0] = None
                entry[1] = set()
            granted = STATE_M
        else:
            self.reads += 1
            if owner is not None and owner != src_id:
                holder, _ = self._clients[owner]
                if holder.downgrade(line):
                    self.dirty_forwards += 1
                    self._tags.setdefault(line, False)
                    self._tags[line] = True
                    penalty += self.dirty_fwd_latency * self.period
                sharers.add(owner)
                entry[0] = None
            if coherent:
                if not sharers and entry[0] is None:
                    # exclusive grant: silent private read-then-write is free
                    entry[0] = src_id
                    entry[1] = {src_id}
                    granted = STATE_M
                else:
                    sharers.add(src_id)
                    granted = STATE_S
            else:
                granted = STATE_S

        if is_write and not coherent:
            # raw full-line store: write straight into the L2
            self._insert(line, dirty=True, now=start)
            ready = start + self.latency * self.period + penalty
            self.hits += 1
        elif line in self._tags:
            self.hits += 1
            self._touch(line)
            ready = start + self.latency * self.period + penalty
        else:
            self.misses += 1
            dram_ready = self.dram.request(start + self.miss_lookup_latency * self.period, is_write=False)
            self._insert(line, dirty=False, now=start)
            ready = dram_ready + self.fill_latency * self.period + penalty
            if self.obs is not None:
                self.obs.instant("miss", now, {"src": src_id})

        if self.obs is not None:
            self._obs_lat.observe(ready - now)
        client.resp_queue.push_at((line, granted) if token is None else (line, granted, token), ready)
        return ready

    # ----------------------------------------------------------- writeback

    def writeback(self, src_id, line, now):
        """Absorb a dirty L1 eviction."""
        self.writebacks_in += 1
        arrival = now + self.req_delay * self.period
        self._bank_slot(line, arrival)
        entry = self._dir.get(line)
        if entry is not None:
            if entry[0] == src_id:
                entry[0] = None
            entry[1].discard(src_id)
        self._insert(line, dirty=True, now=arrival)

    def drop_sharer(self, src_id, line):
        """A clean L1 eviction: keep the directory precise."""
        entry = self._dir.get(line)
        if entry is not None:
            if entry[0] == src_id:
                entry[0] = None
            entry[1].discard(src_id)

    # -------------------------------------------------------------- storage

    def _set_of(self, line):
        return (line >> self._off_bits) & self._set_mask

    def _touch(self, line):
        s = self._lru[self._set_of(line)]
        if s[-1] != line:
            s.remove(line)
            s.append(line)

    def _insert(self, line, dirty, now):
        if line in self._tags:
            self._tags[line] = self._tags[line] or dirty
            self._touch(line)
            return
        sidx = self._set_of(line)
        s = self._lru.setdefault(sidx, [])
        if len(s) >= self.assoc:
            victim = s.pop(0)
            if self._tags.pop(victim):
                self.dram.request(now, is_write=True)
        s.append(line)
        self._tags[line] = dirty

    def probe(self, line):
        return line in self._tags

    def stats(self):
        return {
            "l2_reads": self.reads,
            "l2_writes": self.writes,
            "l2_hits": self.hits,
            "l2_misses": self.misses,
            "l2_dirty_forwards": self.dirty_forwards,
            "l2_invalidations": self.invalidations_sent,
            "l2_writebacks_in": self.writebacks_in,
        }
