"""Coherent memory hierarchy: L1 caches, banked L2 + directory, DRAM."""

from repro.mem.banked import BankMap
from repro.mem.cache import L1Cache, STATE_M, STATE_S
from repro.mem.dram import DRAM
from repro.mem.l2 import L2Cache
from repro.mem.message import BLOCKED, HIT, MISS, DelayQueue, MemRequest
from repro.mem.subsystem import MemorySystem, RawPort

__all__ = [
    "BankMap",
    "L1Cache",
    "STATE_M",
    "STATE_S",
    "DRAM",
    "L2Cache",
    "BLOCKED",
    "HIT",
    "MISS",
    "DelayQueue",
    "MemRequest",
    "MemorySystem",
    "RawPort",
]
