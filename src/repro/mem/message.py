"""Shared message/queue primitives for the memory hierarchy."""

from __future__ import annotations

from collections import deque

#: Access outcomes returned by cache ``access`` methods.
HIT = 0
MISS = 1
BLOCKED = 2  # no MSHR / bank busy — retry next cycle


class DelayQueue:
    """A FIFO whose items become visible only after a fixed delay.

    Models pipelined buses and response networks: ``push`` at time ``t``
    makes the item poppable at ``t + delay``. Items stay FIFO even if pushed
    with the same timestamp.
    """

    __slots__ = ("_q", "delay")

    def __init__(self, delay=1):
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self._q = deque()
        self.delay = delay

    def push(self, item, now):
        self._q.append((now + self.delay, item))

    def push_at(self, item, ready_time):
        """Push with an explicit ready time (must be monotonic)."""
        self._q.append((ready_time, item))

    def pop_ready(self, now):
        """Pop the oldest item whose delay has elapsed, else None."""
        if self._q and self._q[0][0] <= now:
            return self._q.popleft()[1]
        return None

    def peek_ready(self, now):
        if self._q and self._q[0][0] <= now:
            return self._q[0][1]
        return None

    def next_time(self):
        """Ready time of the head entry, or None when empty. Pure — the
        quiescence-skipping scheduler uses it to bound skips by the next
        response without popping anything."""
        return self._q[0][0] if self._q else None

    def __len__(self):
        return len(self._q)

    def __bool__(self):
        return bool(self._q)


class MemRequest:
    """A line-granularity request traveling through the hierarchy."""

    __slots__ = ("line", "is_write", "src_id", "token", "needs_data", "issue_time")

    def __init__(self, line, is_write, src_id, token=None, needs_data=True, issue_time=0):
        self.line = line
        self.is_write = is_write
        self.src_id = src_id
        self.token = token
        self.needs_data = needs_data
        self.issue_time = issue_time

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        return f"<MemReq {kind} {self.line:#x} from {self.src_id}>"
