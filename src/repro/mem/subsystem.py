"""Wiring of the full cache hierarchy for one simulated SoC."""

from __future__ import annotations

from repro.mem.cache import L1Cache
from repro.mem.dram import DRAM
from repro.mem.l2 import L2Cache
from repro.mem.message import DelayQueue
from repro.stats.breakdown import Stall

_INF = 1 << 60


class RawPort:
    """A non-caching L2 client port (used by the decoupled vector engine).

    The owner polls ``pop_ready`` each cycle for ``(line, granted, token)``
    responses.
    """

    __slots__ = ("port_id", "resp_queue")

    def __init__(self, port_id, resp_delay=2):
        self.port_id = port_id
        self.resp_queue = DelayQueue(resp_delay)

    def pop_ready(self, now):
        return self.resp_queue.pop_ready(now)

    # raw ports hold no lines, so coherence probes are no-ops
    def invalidate(self, line):
        return False

    def downgrade(self, line):
        return False


class MemorySystem:
    """DRAM + shared L2 + per-core private L1I/L1D caches."""

    __slots__ = ("line_bytes", "dram", "l2", "big_l1i", "big_l1d",
                 "little_l1i", "little_l1d", "_all_l1", "_l1_queues",
                 "_raw_ports", "obs", "_l2_obs", "_dram_obs")

    def __init__(
        self,
        n_big=1,
        n_little=4,
        l1_size=32 * 1024,
        l1_assoc=2,
        l1_hit_latency=2,
        l1i_hit_latency=1,
        l1_mshrs=8,
        l2_size=1024 * 1024,
        l2_assoc=8,
        l2_banks=4,
        l2_latency=12,
        dram_latency=80,
        dram_line_interval=4,
        line_bytes=64,
        big_period=1,
        little_period=1,
        mem_period=1,
    ):
        self.line_bytes = line_bytes
        self.dram = DRAM(latency=dram_latency, line_interval=dram_line_interval,
                         period=mem_period)
        self.l2 = L2Cache(
            self.dram,
            size_bytes=l2_size,
            assoc=l2_assoc,
            line_bytes=line_bytes,
            nbanks=l2_banks,
            latency=l2_latency,
            period=mem_period,
        )

        def mk(cid, icache, big):
            c = L1Cache(
                cid,
                l2=self.l2,
                size_bytes=l1_size,
                assoc=l1_assoc,
                line_bytes=line_bytes,
                hit_latency=l1i_hit_latency if icache else l1_hit_latency,
                n_mshrs=l1_mshrs * (2 if big else 1),
                period=big_period if big else little_period,
            )
            self.l2.register_client(cid, c, coherent=True)
            return c

        self.big_l1i = [mk(f"big{i}.l1i", True, True) for i in range(n_big)]
        self.big_l1d = [mk(f"big{i}.l1d", False, True) for i in range(n_big)]
        self.little_l1i = [mk(f"lit{i}.l1i", True, False) for i in range(n_little)]
        self.little_l1d = [mk(f"lit{i}.l1d", False, False) for i in range(n_little)]
        self._all_l1 = self.big_l1i + self.big_l1d + self.little_l1i + self.little_l1d
        # response queues in a flat list: next_work_ps is the event
        # core's hottest probe and scans these on every memory re-arm
        self._l1_queues = [c.resp_queue for c in self._all_l1]
        self._raw_ports = []
        self.obs = None  # Observation handle; hooks stay a cheap None check

    def make_raw_port(self, port_id, resp_delay=2):
        port = RawPort(port_id, resp_delay=resp_delay)
        self.l2.register_client(port_id, port, coherent=False)
        self._raw_ports.append(port)
        return port

    # --------------------------------------------------------- observability

    def attach_obs(self, obs):
        self.obs = obs
        self._l2_obs = obs.unit("l2", "mem", process="mem")
        self._dram_obs = obs.unit("dram", "mem", process="mem")
        self.l2.attach_obs(self._l2_obs, obs.metrics)
        self.dram.attach_obs(self._dram_obs)
        fill_hist = obs.metrics.histogram(
            "l1.fill_latency_ps",
            (20_000, 50_000, 100_000, 150_000, 250_000, 500_000))
        for c in self._all_l1:
            c.attach_obs(obs, fill_hist)

    def tick(self, now):
        for c in self._all_l1:
            if c.resp_queue:
                c.tick(now)
        if self.obs is not None:
            self._l2_obs.cycle(Stall.BUSY if self.l2.busy_at(now) else Stall.MISC)
            self._dram_obs.cycle(Stall.BUSY if self.dram.busy_at(now) else Stall.MISC)

    # ------------------------------------------------------- skip scheduling

    def next_work_ps(self, now):
        """Earliest future ps at which a memory tick could do real work:
        the earliest L1 fill response (raw ports are drained by their
        owning engine, which bounds them itself), and the L2/DRAM
        busy->idle flips so per-cycle attribution stays exact. The flip
        bounds apply whether or not an Observation is attached — the skip
        schedule (and with it the sim.ticks_* executed/skipped split) must
        not change when obs is attached. Pure."""
        bound = _INF
        for q in self._l1_queues:
            dq = q._q  # hot path: inlined DelayQueue.next_time()
            if dq:
                t = dq[0][0]
                if t <= now:
                    return 0  # a fill would install next tick
                if t < bound:
                    bound = t
        # inlined l2.next_idle_ps / dram.next_idle_ps: this probe runs on
        # every memory re-arm, so the two busy->idle flips read the
        # underlying fields directly
        t = max(self.l2._bank_free)
        if now < t < bound:
            bound = t
        t = self.dram._next_free
        if now < t < bound:
            bound = t
        return bound

    def forensic_state(self, now):
        """Scheduling-state summary for :mod:`repro.obs.forensics`.
        Pure (read-only): pending L1 fill responses plus the L2/DRAM
        busy horizons — the memory side never *waits* on anyone, so its
        ``waits_on`` is always empty."""
        fills = 0
        next_fill = _INF
        for q in self._l1_queues:
            dq = q._q
            if dq:
                fills += len(dq)
                t = dq[0][0]
                if t < next_fill:
                    next_fill = t
        l2_busy = max(self.l2._bank_free)
        dram_busy = self.dram._next_free
        return {
            "l1_fills_pending": fills,
            "next_fill_ps": None if next_fill >= _INF else next_fill,
            "l2_busy_until_ps": l2_busy if l2_busy > now else None,
            "dram_busy_until_ps": dram_busy if dram_busy > now else None,
            "dram_reads": self.dram.reads,
            "dram_writes": self.dram.writes,
            "done": fills == 0,
            "waits_on": [],
        }

    def skip_ticks(self, n, now):
        """Replay ``n`` provably idle memory ticks (per-cycle busy/idle
        attribution is the only per-tick effect, and only under obs)."""
        if self.obs is not None:
            self._l2_obs.cycle(
                Stall.BUSY if self.l2.busy_at(now) else Stall.MISC, n)
            self._dram_obs.cycle(
                Stall.BUSY if self.dram.busy_at(now) else Stall.MISC, n)

    def data_requests(self):
        """Core/engine-issued data requests into the memory subsystem
        (the Fig. 6 metric): L1D accesses plus raw-port line requests."""
        n = sum(c.accesses for c in self.big_l1d + self.little_l1d)
        return n

    def fetch_requests(self):
        """Front-end instruction fetch requests (the Fig. 5 metric)."""
        return sum(c.accesses for c in self.big_l1i + self.little_l1i)

    def stats(self):
        out = {}
        for c in self._all_l1:
            for k, v in c.stats().items():
                out[f"{c.cache_id}.{k}"] = v
        out.update(self.l2.stats())
        out.update(self.dram.stats())
        return out
