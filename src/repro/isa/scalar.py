"""Scalar (RV64IMAFD-like) opcode metadata.

Opcodes are plain ``IntEnum`` members; the timing-relevant properties are
precomputed into flat lists indexed by opcode value so that core models pay a
single list index in their hot loops.
"""

from __future__ import annotations

from enum import IntEnum


class FUClass(IntEnum):
    """Functional-unit class an opcode executes on."""

    NONE = 0  # no execution resource (e.g. NOP)
    ALU = 1  # single-cycle integer ops and branches
    MUL = 2  # pipelined integer multiply
    DIV = 3  # unpipelined integer divide
    FPU = 4  # pipelined FP add/sub/mul/madd/convert/compare
    FDIV = 5  # unpipelined FP divide / sqrt
    MEM = 6  # loads and stores (address generation + cache port)


class Op(IntEnum):
    """Scalar opcodes. Mnemonics follow RISC-V; several encodings that share
    timing behaviour are collapsed (e.g. all conditional branches are ``BR``).
    """

    NOP = 0
    # integer ALU
    ADD = 1
    ADDI = 2
    SUB = 3
    AND = 4
    OR = 5
    XOR = 6
    SLL = 7
    SRL = 8
    SRA = 9
    SLT = 10
    LUI = 11
    MV = 12
    # integer mul/div
    MUL = 13
    MULH = 14
    DIV = 15
    REM = 16
    # loads / stores (integer)
    LB = 17
    LH = 18
    LW = 19
    LD = 20
    SB = 21
    SH = 22
    SW = 23
    SD = 24
    # FP loads / stores
    FLW = 25
    FLD = 26
    FSW = 27
    FSD = 28
    # FP arithmetic
    FADD = 29
    FSUB = 30
    FMUL = 31
    FMADD = 32
    FDIV = 33
    FSQRT = 34
    FCVT = 35
    FCMP = 36
    FSGNJ = 37
    FMIN = 38
    FMAX = 39
    # control flow
    BR = 40  # any conditional branch (beq/bne/blt/bge/...)
    JAL = 41
    JALR = 42
    # system
    CSRRW = 43  # CSR write (e.g. vector-mode switch request)
    FENCE = 44  # scalar memory fence
    AMOADD = 45  # atomic fetch-and-add (runtime synchronization)


_LOAD_OPS = frozenset({Op.LB, Op.LH, Op.LW, Op.LD, Op.FLW, Op.FLD})
_STORE_OPS = frozenset({Op.SB, Op.SH, Op.SW, Op.SD, Op.FSW, Op.FSD})
_BRANCH_OPS = frozenset({Op.BR, Op.JAL, Op.JALR})

_FU_BY_OP = {
    Op.NOP: FUClass.NONE,
    Op.ADD: FUClass.ALU,
    Op.ADDI: FUClass.ALU,
    Op.SUB: FUClass.ALU,
    Op.AND: FUClass.ALU,
    Op.OR: FUClass.ALU,
    Op.XOR: FUClass.ALU,
    Op.SLL: FUClass.ALU,
    Op.SRL: FUClass.ALU,
    Op.SRA: FUClass.ALU,
    Op.SLT: FUClass.ALU,
    Op.LUI: FUClass.ALU,
    Op.MV: FUClass.ALU,
    Op.MUL: FUClass.MUL,
    Op.MULH: FUClass.MUL,
    Op.DIV: FUClass.DIV,
    Op.REM: FUClass.DIV,
    Op.LB: FUClass.MEM,
    Op.LH: FUClass.MEM,
    Op.LW: FUClass.MEM,
    Op.LD: FUClass.MEM,
    Op.SB: FUClass.MEM,
    Op.SH: FUClass.MEM,
    Op.SW: FUClass.MEM,
    Op.SD: FUClass.MEM,
    Op.FLW: FUClass.MEM,
    Op.FLD: FUClass.MEM,
    Op.FSW: FUClass.MEM,
    Op.FSD: FUClass.MEM,
    Op.FADD: FUClass.FPU,
    Op.FSUB: FUClass.FPU,
    Op.FMUL: FUClass.FPU,
    Op.FMADD: FUClass.FPU,
    Op.FDIV: FUClass.FDIV,
    Op.FSQRT: FUClass.FDIV,
    Op.FCVT: FUClass.FPU,
    Op.FCMP: FUClass.FPU,
    Op.FSGNJ: FUClass.FPU,
    Op.FMIN: FUClass.FPU,
    Op.FMAX: FUClass.FPU,
    Op.BR: FUClass.ALU,
    Op.JAL: FUClass.ALU,
    Op.JALR: FUClass.ALU,
    Op.CSRRW: FUClass.ALU,
    Op.FENCE: FUClass.NONE,
    Op.AMOADD: FUClass.MEM,
}

_N = max(Op) + 1

#: Flat lookup tables indexed by ``int(op)`` — hot-path friendly.
OP_FU = [FUClass.NONE] * _N
OP_IS_LOAD = [False] * _N
OP_IS_STORE = [False] * _N
OP_IS_BRANCH = [False] * _N

for _op in Op:
    OP_FU[_op] = _FU_BY_OP[_op]
    OP_IS_LOAD[_op] = _op in _LOAD_OPS
    OP_IS_STORE[_op] = _op in _STORE_OPS
    OP_IS_BRANCH[_op] = _op in _BRANCH_OPS

# AMO behaves as both a load and a store for dependence purposes.
OP_IS_LOAD[Op.AMOADD] = True
OP_IS_STORE[Op.AMOADD] = True


def mem_size(op: Op) -> int:
    """Natural access size in bytes for a memory opcode."""
    return {
        Op.LB: 1,
        Op.SB: 1,
        Op.LH: 2,
        Op.SH: 2,
        Op.LW: 4,
        Op.SW: 4,
        Op.FLW: 4,
        Op.FSW: 4,
        Op.LD: 8,
        Op.SD: 8,
        Op.FLD: 8,
        Op.FSD: 8,
        Op.AMOADD: 8,
    }[op]
