"""Instruction-set metadata for the simulated RV64-like scalar ISA and the
RVV-1.0-like vector extension subset used throughout the simulator.

The simulator is trace-driven: no instruction encoding/decoding exists, only
per-opcode metadata (functional-unit class, memory semantics, branch-ness)
that the timing models consume.
"""

from repro.isa.scalar import Op, FUClass, OP_FU, OP_IS_LOAD, OP_IS_STORE, OP_IS_BRANCH
from repro.isa.vector import (
    VOp,
    VClass,
    VOP_CLASS,
    VOP_IS_LOAD,
    VOP_IS_STORE,
    VOP_IS_MEM,
    VOP_IS_CROSS,
    VOP_HAS_SCALAR_DEST,
)

__all__ = [
    "Op",
    "FUClass",
    "OP_FU",
    "OP_IS_LOAD",
    "OP_IS_STORE",
    "OP_IS_BRANCH",
    "VOp",
    "VClass",
    "VOP_CLASS",
    "VOP_IS_LOAD",
    "VOP_IS_STORE",
    "VOP_IS_MEM",
    "VOP_IS_CROSS",
    "VOP_HAS_SCALAR_DEST",
]
