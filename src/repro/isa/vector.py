"""Vector (RVV-1.0-like) opcode metadata.

The subset mirrors what the paper's workloads need: ``vsetvl`` strip-mining,
unit-stride / constant-stride / indexed memory ops, integer and FP arithmetic,
mask-producing compares, merges, reductions, and register-gather/slide
permutations, plus the paper's ``vmfence`` scalar/vector ordering fence.

``VClass`` drives the micro-architectural cost model:

* ``INT_SIMPLE`` — packable: two 32-bit elements in a 64-bit register are
  processed in one cycle (paper §III-C; includes integer multiply per §V-A).
* ``INT_COMPLEX`` / ``FP`` / ``FDIV`` — serialized over packed elements.
* ``MEM_*`` — handled by the vector memory unit.
* ``CROSS_*`` — go through the VXU ring (one outstanding at a time).
"""

from __future__ import annotations

from enum import IntEnum


class VClass(IntEnum):
    CTRL = 0  # vsetvl
    INT_SIMPLE = 1  # add/sub/logic/shift/min/max/mul/mac — packable
    INT_COMPLEX = 2  # integer divide/remainder — serialized when packed
    FP = 3  # FP add/sub/mul/madd/cvt/cmp — serialized when packed
    FDIV = 4  # FP divide / sqrt — serialized, unpipelined
    MEM_UNIT = 5  # unit-stride load/store
    MEM_STRIDE = 6  # constant-stride load/store
    MEM_INDEX = 7  # indexed gather/scatter
    MASK = 8  # mask-register ops (compares write masks; merge reads them)
    CROSS_PERM = 9  # vrgather / vslide — VXU
    CROSS_RED = 10  # reductions — VXU
    MOVE = 11  # scalar<->element moves, broadcasts
    FENCE = 12  # vmfence


class VOp(IntEnum):
    VSETVL = 0
    # memory
    VLE = 1  # unit-stride load
    VSE = 2  # unit-stride store
    VLSE = 3  # strided load
    VSSE = 4  # strided store
    VLUXEI = 5  # indexed (gather) load
    VSUXEI = 6  # indexed (scatter) store
    # integer arithmetic
    VADD = 7
    VSUB = 8
    VAND = 9
    VOR = 10
    VXOR = 11
    VSLL = 12
    VSRL = 13
    VMIN = 14
    VMAX = 15
    VMUL = 16
    VMACC = 17
    VDIV = 18
    VREM = 19
    # FP arithmetic
    VFADD = 20
    VFSUB = 21
    VFMUL = 22
    VFMACC = 23
    VFDIV = 24
    VFSQRT = 25
    VFCVT = 26
    VFMIN = 27
    VFMAX = 28
    # comparisons producing masks / mask ops
    VMSEQ = 29
    VMSLT = 30
    VMFLT = 31
    VMAND = 32
    VMOR = 33
    VMERGE = 34
    # reductions
    VREDSUM = 35
    VREDMIN = 36
    VREDMAX = 37
    VFREDSUM = 38
    VFREDMIN = 39
    VPOPC = 40  # mask population count -> scalar
    # permutations
    VRGATHER = 41
    VSLIDEUP = 42
    VSLIDEDOWN = 43
    # moves
    VMV_XS = 44  # element 0 -> scalar register
    VMV_SX = 45  # scalar -> element 0
    VMV_VX = 46  # broadcast scalar to all elements
    VID = 47  # element indices 0..vl-1
    # ordering
    VMFENCE = 48


_CLASS_BY_OP = {
    VOp.VSETVL: VClass.CTRL,
    VOp.VLE: VClass.MEM_UNIT,
    VOp.VSE: VClass.MEM_UNIT,
    VOp.VLSE: VClass.MEM_STRIDE,
    VOp.VSSE: VClass.MEM_STRIDE,
    VOp.VLUXEI: VClass.MEM_INDEX,
    VOp.VSUXEI: VClass.MEM_INDEX,
    VOp.VADD: VClass.INT_SIMPLE,
    VOp.VSUB: VClass.INT_SIMPLE,
    VOp.VAND: VClass.INT_SIMPLE,
    VOp.VOR: VClass.INT_SIMPLE,
    VOp.VXOR: VClass.INT_SIMPLE,
    VOp.VSLL: VClass.INT_SIMPLE,
    VOp.VSRL: VClass.INT_SIMPLE,
    VOp.VMIN: VClass.INT_SIMPLE,
    VOp.VMAX: VClass.INT_SIMPLE,
    VOp.VMUL: VClass.INT_SIMPLE,
    VOp.VMACC: VClass.INT_SIMPLE,
    VOp.VDIV: VClass.INT_COMPLEX,
    VOp.VREM: VClass.INT_COMPLEX,
    VOp.VFADD: VClass.FP,
    VOp.VFSUB: VClass.FP,
    VOp.VFMUL: VClass.FP,
    VOp.VFMACC: VClass.FP,
    VOp.VFDIV: VClass.FDIV,
    VOp.VFSQRT: VClass.FDIV,
    VOp.VFCVT: VClass.FP,
    VOp.VFMIN: VClass.FP,
    VOp.VFMAX: VClass.FP,
    VOp.VMSEQ: VClass.MASK,
    VOp.VMSLT: VClass.MASK,
    VOp.VMFLT: VClass.MASK,
    VOp.VMAND: VClass.MASK,
    VOp.VMOR: VClass.MASK,
    VOp.VMERGE: VClass.MASK,
    VOp.VREDSUM: VClass.CROSS_RED,
    VOp.VREDMIN: VClass.CROSS_RED,
    VOp.VREDMAX: VClass.CROSS_RED,
    VOp.VFREDSUM: VClass.CROSS_RED,
    VOp.VFREDMIN: VClass.CROSS_RED,
    VOp.VPOPC: VClass.CROSS_RED,
    VOp.VRGATHER: VClass.CROSS_PERM,
    VOp.VSLIDEUP: VClass.CROSS_PERM,
    VOp.VSLIDEDOWN: VClass.CROSS_PERM,
    VOp.VMV_XS: VClass.MOVE,
    VOp.VMV_SX: VClass.MOVE,
    VOp.VMV_VX: VClass.MOVE,
    VOp.VID: VClass.INT_SIMPLE,
    VOp.VMFENCE: VClass.FENCE,
}

_N = max(VOp) + 1

VOP_CLASS = [VClass.CTRL] * _N
VOP_IS_LOAD = [False] * _N
VOP_IS_STORE = [False] * _N
VOP_IS_MEM = [False] * _N
VOP_IS_CROSS = [False] * _N
VOP_HAS_SCALAR_DEST = [False] * _N

for _op in VOp:
    _cls = _CLASS_BY_OP[_op]
    VOP_CLASS[_op] = _cls
    VOP_IS_MEM[_op] = _cls in (VClass.MEM_UNIT, VClass.MEM_STRIDE, VClass.MEM_INDEX)
    VOP_IS_CROSS[_op] = _cls in (VClass.CROSS_PERM, VClass.CROSS_RED)

for _op in (VOp.VLE, VOp.VLSE, VOp.VLUXEI):
    VOP_IS_LOAD[_op] = True
for _op in (VOp.VSE, VOp.VSSE, VOp.VSUXEI):
    VOP_IS_STORE[_op] = True
for _op in (VOp.VPOPC, VOp.VMV_XS, VOp.VSETVL):
    VOP_HAS_SCALAR_DEST[_op] = True

#: FP classes serialize over packed sub-elements (paper §III-C).
PACK_SERIALIZED = frozenset({VClass.INT_COMPLEX, VClass.FP, VClass.FDIV})
