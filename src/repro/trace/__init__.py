"""Dynamic traces: instruction records, builder DSLs, tasks, and sources."""

from repro.trace.instr import SInstr, VInstr, Trace
from repro.trace.builder import TraceBuilder
from repro.trace.vbuilder import VectorBuilder
from repro.trace.task import Task, Phase, TaskProgram, single_trace_program
from repro.trace.source import InstrSource, TraceSource, ChainSource, EmptySource

__all__ = [
    "SInstr",
    "VInstr",
    "Trace",
    "TraceBuilder",
    "VectorBuilder",
    "Task",
    "Phase",
    "TaskProgram",
    "single_trace_program",
    "InstrSource",
    "TraceSource",
    "ChainSource",
    "EmptySource",
]
