"""Tasks, phases, and task programs for the work-stealing runtime model.

The paper parallelizes task-parallel (Ligra) applications with a TBB/Cilk-like
random work-stealing runtime, and gives each data-parallel task *two* bodies —
scalar and vectorized — so the ``1bIV-4L`` system can run vector tasks on the
big core and scalar tasks on the little cores (§IV-B). This module models that
structure:

* :class:`Task` — a unit of work with per-core-kind trace variants.
* :class:`Phase` — an optional serial (big-core) prologue trace plus a bag of
  tasks separated from the next phase by a barrier (Ligra's per-iteration
  ``parallel_for`` + frontier swap).
* :class:`TaskProgram` — an ordered list of phases.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.trace.instr import Trace


class Task:
    """A schedulable unit of work.

    ``traces`` maps a variant name (``"scalar"``, ``"vector"``) to a
    :class:`Trace`. A scalar variant is mandatory — every core can run it; the
    vector variant is optional and only used by cores with a vector unit.
    """

    __slots__ = ("tid", "traces")

    def __init__(self, tid, traces):
        if "scalar" not in traces:
            raise WorkloadError(f"task {tid} lacks the mandatory scalar variant")
        self.tid = tid
        self.traces = traces

    def trace_for(self, vector_capable):
        """Pick the best variant for a core."""
        if vector_capable and "vector" in self.traces:
            return self.traces["vector"]
        return self.traces["scalar"]

    def __repr__(self):
        return f"<Task {self.tid} variants={sorted(self.traces)}>"


class Phase:
    """Tasks between two barriers, with an optional serial prologue."""

    __slots__ = ("tasks", "serial")

    def __init__(self, tasks=(), serial=None):
        self.tasks = list(tasks)
        self.serial = serial

    def __repr__(self):
        return f"<Phase serial={self.serial is not None} ntasks={len(self.tasks)}>"


class TaskProgram:
    """An ordered sequence of phases executed by the runtime model."""

    __slots__ = ("phases", "name")

    def __init__(self, phases, name=""):
        self.phases = list(phases)
        self.name = name

    @property
    def total_tasks(self):
        return sum(len(p.tasks) for p in self.phases)

    def all_tasks(self):
        for p in self.phases:
            yield from p.tasks

    def __repr__(self):
        return f"<TaskProgram {self.name!r} phases={len(self.phases)} tasks={self.total_tasks}>"


def single_trace_program(trace, name=""):
    """Wrap a single-threaded trace as a one-phase TaskProgram (serial only)."""
    if not isinstance(trace, Trace):
        raise WorkloadError("single_trace_program expects a Trace")
    return TaskProgram([Phase(tasks=(), serial=trace)], name=name or trace.name)
