"""Scalar trace-builder DSL.

Workload generators use this builder the way a compiler's code generator would
be used: they emit the *dynamic* instruction stream (loops unrolled at
generation time) while the builder keeps program counters stable across loop
iterations so instruction-fetch behaviour looks like real looped code.

Example
-------
>>> tb = TraceBuilder()
>>> acc = tb.li(0)
>>> with tb.loop(4) as loop:
...     for i in loop:
...         x = tb.lw(0x1000 + 4 * i)
...         acc = tb.add(acc, x)
>>> trace = tb.finish("sum4")
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.isa.scalar import Op, mem_size
from repro.trace.instr import SInstr, Trace

_ILEN = 4  # bytes per instruction for PC bookkeeping


class _Loop:
    """Context object returned by :meth:`TraceBuilder.loop`.

    Iterating over it yields the iteration index; between iterations the
    builder resets the program counter to the loop head and emits the
    backward branch of the previous iteration, so every iteration's body
    occupies the same PCs (stable i-cache footprint) and the trace contains
    a realistic taken/not-taken branch stream.
    """

    def __init__(self, builder, n, emit_overhead):
        self._tb = builder
        self._n = n
        self._emit_overhead = emit_overhead
        self._head_pc = None
        self._high_pc = 0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __iter__(self):
        tb = self._tb
        self._head_pc = tb._pc
        for i in range(self._n):
            tb._pc = self._head_pc
            yield i
            if self._emit_overhead:
                # induction-variable increment + compare folded into branch
                tb.addi(None)
            taken = i != self._n - 1
            tb._emit(
                SInstr(tb._pc, Op.BR, taken=taken, target=self._head_pc if taken else None)
            )
            tb._pc += _ILEN
            self._high_pc = max(self._high_pc, tb._pc)
        tb._pc = max(self._high_pc, tb._pc)


class TraceBuilder:
    """Emit a dynamic scalar instruction stream with virtual registers."""

    def __init__(self, start_pc=0x10000, start_reg=64):
        self._pc = start_pc
        self._next_reg = start_reg
        self._instrs = []
        self._finished = False

    # ------------------------------------------------------------------ core

    def newreg(self):
        """Allocate a fresh virtual register id."""
        r = self._next_reg
        self._next_reg += 1
        return r

    def _emit(self, instr):
        if self._finished:
            raise TraceError("builder already finished")
        self._instrs.append(instr)

    def emit_op(self, op, dst=None, srcs=(), addr=None, size=0, taken=None, target=None):
        """Low-level emission; prefer the mnemonic helpers below."""
        ins = SInstr(self._pc, op, dst=dst, srcs=tuple(srcs), addr=addr, size=size,
                     taken=taken, target=target)
        self._emit(ins)
        self._pc += _ILEN
        return ins

    def finish(self, name=""):
        """Seal the builder and return the trace."""
        self._finished = True
        return Trace(self._instrs, name=name)

    @property
    def pc(self):
        return self._pc

    # -------------------------------------------------------------- mnemonics

    def _alu2(self, op, a, b):
        d = self.newreg()
        self.emit_op(op, dst=d, srcs=(a, b))
        return d

    def _alu1(self, op, a):
        d = self.newreg()
        self.emit_op(op, dst=d, srcs=(a,))
        return d

    def li(self, _value=0):
        """Load-immediate; the value is irrelevant to timing."""
        d = self.newreg()
        self.emit_op(Op.LUI, dst=d)
        return d

    def add(self, a, b):
        return self._alu2(Op.ADD, a, b)

    def addi(self, a):
        """Add-immediate; ``a`` may be None for pure overhead instructions."""
        d = self.newreg()
        self.emit_op(Op.ADDI, dst=d, srcs=(a,) if a is not None else ())
        return d

    def sub(self, a, b):
        return self._alu2(Op.SUB, a, b)

    def and_(self, a, b):
        return self._alu2(Op.AND, a, b)

    def or_(self, a, b):
        return self._alu2(Op.OR, a, b)

    def xor(self, a, b):
        return self._alu2(Op.XOR, a, b)

    def sll(self, a, _sh=1):
        return self._alu1(Op.SLL, a)

    def srl(self, a, _sh=1):
        return self._alu1(Op.SRL, a)

    def slt(self, a, b):
        return self._alu2(Op.SLT, a, b)

    def mv(self, a):
        return self._alu1(Op.MV, a)

    def mul(self, a, b):
        return self._alu2(Op.MUL, a, b)

    def div(self, a, b):
        return self._alu2(Op.DIV, a, b)

    def fadd(self, a, b):
        return self._alu2(Op.FADD, a, b)

    def fsub(self, a, b):
        return self._alu2(Op.FSUB, a, b)

    def fmul(self, a, b):
        return self._alu2(Op.FMUL, a, b)

    def fmadd(self, a, b, c):
        d = self.newreg()
        self.emit_op(Op.FMADD, dst=d, srcs=(a, b, c))
        return d

    def fdiv(self, a, b):
        return self._alu2(Op.FDIV, a, b)

    def fsqrt(self, a):
        return self._alu1(Op.FSQRT, a)

    def fcvt(self, a):
        return self._alu1(Op.FCVT, a)

    def fcmp(self, a, b):
        return self._alu2(Op.FCMP, a, b)

    def fmin(self, a, b):
        return self._alu2(Op.FMIN, a, b)

    def fmax(self, a, b):
        return self._alu2(Op.FMAX, a, b)

    # memory -----------------------------------------------------------------

    def _load(self, op, addr, addr_reg=None):
        d = self.newreg()
        srcs = (addr_reg,) if addr_reg is not None else ()
        self.emit_op(op, dst=d, srcs=srcs, addr=addr, size=mem_size(op))
        return d

    def _store(self, op, src, addr, addr_reg=None):
        srcs = (src,) if addr_reg is None else (src, addr_reg)
        self.emit_op(op, srcs=srcs, addr=addr, size=mem_size(op))

    def lw(self, addr, addr_reg=None):
        return self._load(Op.LW, addr, addr_reg)

    def ld(self, addr, addr_reg=None):
        return self._load(Op.LD, addr, addr_reg)

    def lb(self, addr, addr_reg=None):
        return self._load(Op.LB, addr, addr_reg)

    def flw(self, addr, addr_reg=None):
        return self._load(Op.FLW, addr, addr_reg)

    def fld(self, addr, addr_reg=None):
        return self._load(Op.FLD, addr, addr_reg)

    def sw(self, src, addr, addr_reg=None):
        self._store(Op.SW, src, addr, addr_reg)

    def sd(self, src, addr, addr_reg=None):
        self._store(Op.SD, src, addr, addr_reg)

    def sb(self, src, addr, addr_reg=None):
        self._store(Op.SB, src, addr, addr_reg)

    def fsw(self, src, addr, addr_reg=None):
        self._store(Op.FSW, src, addr, addr_reg)

    def fsd(self, src, addr, addr_reg=None):
        self._store(Op.FSD, src, addr, addr_reg)

    def amoadd(self, addr, src):
        d = self.newreg()
        self.emit_op(Op.AMOADD, dst=d, srcs=(src,), addr=addr, size=8)
        return d

    # control flow -----------------------------------------------------------

    def label(self):
        """Return the current PC (for hand-rolled control flow)."""
        return self._pc

    def branch(self, taken, cond_reg=None, target=None):
        """Emit a conditional branch with a resolved direction."""
        srcs = (cond_reg,) if cond_reg is not None else ()
        self.emit_op(Op.BR, srcs=srcs, taken=taken, target=target)

    def jump(self, target=None):
        self.emit_op(Op.JAL, taken=True, target=target)

    def set_pc(self, pc):
        """Force the next instruction's PC (loop helpers use this)."""
        self._pc = pc

    def loop(self, n, overhead=True):
        """Iterate a loop body ``n`` times with stable per-iteration PCs.

        ``overhead=True`` adds the induction-variable update each iteration,
        approximating compiled loop bookkeeping (the compare is folded into
        the branch).
        """
        if n < 0:
            raise TraceError(f"loop count must be >= 0, got {n}")
        return _Loop(self, n, overhead)

    # misc ---------------------------------------------------------------------

    def nop(self, count=1):
        for _ in range(count):
            self.emit_op(Op.NOP)

    def csrrw(self):
        d = self.newreg()
        self.emit_op(Op.CSRRW, dst=d)
        return d

    def fence(self):
        self.emit_op(Op.FENCE)
