"""Vector trace-builder DSL (RVV-intrinsics style).

Mirrors how the paper's workloads are written — "manually vectorized using
RISC-V RVV vector intrinsics" — but at trace level: the builder is
parameterized by the target hardware vector length (VLEN), and ``vsetvl``
performs the strip-mine grant exactly as hardware would (``vl = min(avl,
VLMAX)``), so the same generator function produces correct VLEN-specific
traces for the 128-bit integrated unit, the 512-bit VLITTLE engine, and the
2048-bit decoupled engine.

Vector register allocation rotates through v1..v31 (v0 is the architectural
mask register); true dependences are tracked explicitly through producer
sequence ids (``VInstr.dep_ids``), so rotation never creates false
dependences for the engines.

Example
-------
>>> tb = TraceBuilder()
>>> vb = VectorBuilder(tb, vlen_bits=512)
>>> for base, vl in vb.strip_mine(0x1000, n=100, ew=4):
...     v = vb.vle(base, ew=4, vl=vl)
...     v2 = vb.vadd(v, v)
...     vb.vse(v2, base, ew=4, vl=vl)
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.isa.vector import VOp, VOP_CLASS, VClass
from repro.trace.instr import VInstr

_ILEN = 4

#: Handle type returned for vector values: (vreg_id, producer_seq).
VReg = tuple


class VectorBuilder:
    """Emit vector instructions into an underlying :class:`TraceBuilder`."""

    def __init__(self, tb, vlen_bits):
        if vlen_bits % 64 != 0 or vlen_bits <= 0:
            raise TraceError(f"VLEN must be a positive multiple of 64, got {vlen_bits}")
        self.tb = tb
        self.vlen_bits = vlen_bits
        self._next_vreg = 1  # v0 reserved for masks
        self._seq = 0
        self._vl = 0
        self._ew = 4

    # ----------------------------------------------------------------- state

    def vlmax(self, ew):
        """Maximum vector length in elements for element width ``ew`` bytes."""
        return self.vlen_bits // (8 * ew)

    @property
    def vl(self):
        return self._vl

    def _alloc_vreg(self):
        r = self._next_vreg
        self._next_vreg += 1
        if self._next_vreg == 32:
            self._next_vreg = 1
        return r

    def _emit(self, op, vd=None, vsrcs=(), rs=(), rd=None, vl=None, ew=None,
              base=None, stride=None, addrs=None, masked=False, mask=None):
        """Emit one VInstr. ``vsrcs`` are VReg handles; returns a VReg handle
        for ``vd`` (or the scalar dest register for scalar-producing ops)."""
        vl = self._vl if vl is None else vl
        ew = self._ew if ew is None else ew
        deps = tuple(h[1] for h in vsrcs if h is not None)
        if mask is not None:
            masked = True
            deps = deps + (mask[1],)
        seq = self._seq
        self._seq += 1
        ins = VInstr(
            self.tb.pc,
            op,
            vd=vd,
            vs=tuple(h[0] for h in vsrcs if h is not None),
            rs=tuple(rs),
            rd=rd,
            vl=vl,
            ew=ew,
            base=base,
            stride=stride,
            addrs=addrs,
            masked=masked,
            seq=seq,
            dep_ids=deps,
        )
        self.tb._emit(ins)
        self.tb.set_pc(self.tb.pc + _ILEN)
        if vd is not None:
            return (vd, seq)
        return rd

    # ------------------------------------------------------------------ ctrl

    def vsetvl(self, avl, ew=4):
        """Request ``avl`` elements; returns the granted vl (an int).

        Also emits the VSETVL control instruction carrying the grant, and a
        scalar destination register the big core receives the grant in.
        """
        if avl <= 0:
            raise TraceError(f"vsetvl avl must be positive, got {avl}")
        vl = min(avl, self.vlmax(ew))
        self._vl = vl
        self._ew = ew
        rd = self.tb.newreg()
        self._emit(VOp.VSETVL, rd=rd, vl=vl, ew=ew)
        return vl

    def strip_mine(self, base, n, ew=4, bookkeeping=True):
        """Generate the canonical RVV strip-mine loop.

        Yields ``(chunk_base_addr, vl)`` per iteration after emitting the
        per-iteration ``vsetvl`` plus (optionally) the scalar loop bookkeeping
        the compiler would produce (pointer bumps + branch).
        """
        if n < 0:
            raise TraceError("strip_mine needs n >= 0")
        remaining = n
        addr = base
        head_pc = self.tb.pc
        while remaining > 0:
            self.tb.set_pc(head_pc)
            vl = self.vsetvl(remaining, ew=ew)
            yield addr, vl
            remaining -= vl
            addr += vl * ew
            if bookkeeping:
                self.tb.addi(None)  # pointer bump
                self.tb.addi(None)  # remaining -= vl
            self.tb.branch(taken=remaining > 0, target=head_pc if remaining > 0 else None)

    # ---------------------------------------------------------------- memory

    def vle(self, base, ew=None, vl=None, mask=None):
        """Unit-stride load."""
        return self._emit(VOp.VLE, vd=self._alloc_vreg(), base=base, ew=ew, vl=vl,
                          mask=mask)

    def vse(self, vsrc, base, ew=None, vl=None, mask=None):
        """Unit-stride store."""
        self._emit(VOp.VSE, vsrcs=(vsrc,), base=base, ew=ew, vl=vl, mask=mask)

    def vlse(self, base, stride, ew=None, vl=None, mask=None):
        """Constant-stride load (stride in bytes)."""
        return self._emit(VOp.VLSE, vd=self._alloc_vreg(), base=base, stride=stride,
                          ew=ew, vl=vl, mask=mask)

    def vsse(self, vsrc, base, stride, ew=None, vl=None, mask=None):
        """Constant-stride store."""
        self._emit(VOp.VSSE, vsrcs=(vsrc,), base=base, stride=stride, ew=ew, vl=vl,
                   mask=mask)

    def vluxei(self, addrs, vindex=None, ew=None, mask=None):
        """Indexed (gather) load; ``addrs`` are resolved element addresses."""
        vsrcs = (vindex,) if vindex is not None else ()
        return self._emit(VOp.VLUXEI, vd=self._alloc_vreg(), vsrcs=vsrcs,
                          addrs=list(addrs), ew=ew, vl=len(addrs), mask=mask)

    def vsuxei(self, vsrc, addrs, vindex=None, ew=None, mask=None):
        """Indexed (scatter) store."""
        vsrcs = (vsrc, vindex) if vindex is not None else (vsrc,)
        self._emit(VOp.VSUXEI, vsrcs=vsrcs, addrs=list(addrs), ew=ew,
                   vl=len(addrs), mask=mask)

    # ------------------------------------------------------------ arithmetic

    def _arith2(self, op, a, b, mask=None):
        return self._emit(op, vd=self._alloc_vreg(), vsrcs=(a, b), mask=mask)

    def _arith1(self, op, a, mask=None):
        return self._emit(op, vd=self._alloc_vreg(), vsrcs=(a,), mask=mask)

    def _arith_vx(self, op, a, rs, mask=None):
        """Vector-scalar form: scalar operand travels in the data queue."""
        return self._emit(op, vd=self._alloc_vreg(), vsrcs=(a,), rs=(rs,), mask=mask)

    def vadd(self, a, b, mask=None):
        return self._arith2(VOp.VADD, a, b, mask)

    def vadd_vx(self, a, rs, mask=None):
        return self._arith_vx(VOp.VADD, a, rs, mask)

    def vsub(self, a, b, mask=None):
        return self._arith2(VOp.VSUB, a, b, mask)

    def vand(self, a, b, mask=None):
        return self._arith2(VOp.VAND, a, b, mask)

    def vor(self, a, b, mask=None):
        return self._arith2(VOp.VOR, a, b, mask)

    def vxor(self, a, b, mask=None):
        return self._arith2(VOp.VXOR, a, b, mask)

    def vsll(self, a, mask=None):
        return self._arith1(VOp.VSLL, a, mask)

    def vsrl(self, a, mask=None):
        return self._arith1(VOp.VSRL, a, mask)

    def vmin(self, a, b, mask=None):
        return self._arith2(VOp.VMIN, a, b, mask)

    def vmax(self, a, b, mask=None):
        return self._arith2(VOp.VMAX, a, b, mask)

    def vmul(self, a, b, mask=None):
        return self._arith2(VOp.VMUL, a, b, mask)

    def vmacc(self, acc, a, b, mask=None):
        """acc += a*b; writes the accumulator register in place."""
        return self._emit(VOp.VMACC, vd=acc[0], vsrcs=(acc, a, b), mask=mask)

    def vdiv(self, a, b, mask=None):
        return self._arith2(VOp.VDIV, a, b, mask)

    def vfadd(self, a, b, mask=None):
        return self._arith2(VOp.VFADD, a, b, mask)

    def vfsub(self, a, b, mask=None):
        return self._arith2(VOp.VFSUB, a, b, mask)

    def vfmul(self, a, b, mask=None):
        return self._arith2(VOp.VFMUL, a, b, mask)

    def vfmul_vf(self, a, rs, mask=None):
        return self._arith_vx(VOp.VFMUL, a, rs, mask)

    def vfmacc(self, acc, a, b, mask=None):
        return self._emit(VOp.VFMACC, vd=acc[0], vsrcs=(acc, a, b), mask=mask)

    def vfdiv(self, a, b, mask=None):
        return self._arith2(VOp.VFDIV, a, b, mask)

    def vfsqrt(self, a, mask=None):
        return self._arith1(VOp.VFSQRT, a, mask)

    def vfcvt(self, a, mask=None):
        return self._arith1(VOp.VFCVT, a, mask)

    def vfmin(self, a, b, mask=None):
        return self._arith2(VOp.VFMIN, a, b, mask)

    def vfmax(self, a, b, mask=None):
        return self._arith2(VOp.VFMAX, a, b, mask)

    # ----------------------------------------------------------------- masks

    def vmseq(self, a, b):
        return self._arith2(VOp.VMSEQ, a, b)

    def vmslt(self, a, b):
        return self._arith2(VOp.VMSLT, a, b)

    def vmflt(self, a, b):
        return self._arith2(VOp.VMFLT, a, b)

    def vmand(self, a, b):
        return self._arith2(VOp.VMAND, a, b)

    def vmor(self, a, b):
        return self._arith2(VOp.VMOR, a, b)

    def vmerge(self, a, b, mask):
        return self._emit(VOp.VMERGE, vd=self._alloc_vreg(), vsrcs=(a, b), mask=mask)

    # ------------------------------------------------------------ reductions

    def vredsum(self, a, mask=None):
        return self._arith1(VOp.VREDSUM, a, mask)

    def vredmin(self, a, mask=None):
        return self._arith1(VOp.VREDMIN, a, mask)

    def vredmax(self, a, mask=None):
        return self._arith1(VOp.VREDMAX, a, mask)

    def vfredsum(self, a, mask=None):
        return self._arith1(VOp.VFREDSUM, a, mask)

    def vfredmin(self, a, mask=None):
        return self._arith1(VOp.VFREDMIN, a, mask)

    def vpopc(self, mask_vreg):
        """Population count of a mask; returns the scalar dest register."""
        rd = self.tb.newreg()
        return self._emit(VOp.VPOPC, vsrcs=(mask_vreg,), rd=rd)

    # ---------------------------------------------------------- permutations

    def vrgather(self, a, vindex, mask=None):
        return self._emit(VOp.VRGATHER, vd=self._alloc_vreg(), vsrcs=(a, vindex),
                          mask=mask)

    def vslideup(self, a, mask=None):
        return self._arith1(VOp.VSLIDEUP, a, mask)

    def vslidedown(self, a, mask=None):
        return self._arith1(VOp.VSLIDEDOWN, a, mask)

    # ----------------------------------------------------------------- moves

    def vmv_x_s(self, a):
        """Move element 0 to a scalar register (engine responds to big core)."""
        rd = self.tb.newreg()
        return self._emit(VOp.VMV_XS, vsrcs=(a,), rd=rd)

    def vmv_s_x(self, rs):
        return self._emit(VOp.VMV_SX, vd=self._alloc_vreg(), rs=(rs,))

    def vmv_v_x(self, rs):
        """Broadcast a scalar to all elements."""
        return self._emit(VOp.VMV_VX, vd=self._alloc_vreg(), rs=(rs,))

    def vid(self):
        return self._emit(VOp.VID, vd=self._alloc_vreg())

    # ------------------------------------------------------------- ordering

    def vmfence(self):
        """Scalar/vector memory ordering fence (paper §III-B)."""
        self._emit(VOp.VMFENCE, vl=0)

    def mode_exit(self):
        """Request the OS to switch the cluster back to scalar mode (a CSR
        write on the big core, §III-B); the next vector instruction re-pays
        the mode-switch penalty."""
        self.tb.csrrw()


def vinstr_class(ins):
    """Convenience: VClass of a VInstr."""
    return VOP_CLASS[ins.op]


def is_fp_vop(ins):
    return VOP_CLASS[ins.op] in (VClass.FP, VClass.FDIV)
