"""Dynamic-trace instruction records.

A trace is a list of ``SInstr`` / ``VInstr`` records in program order. Records
carry everything the timing models need — opcode, virtual register operands,
resolved memory addresses, resolved branch direction — and nothing else (no
data values: the simulation is timing-only).

Virtual registers behave like post-rename physical registers: reusing an id
creates a true dependence; builders allocate fresh ids for values that real
hardware would rename. Vector records additionally carry the *granted* vector
length, so engines with different VLENs consume traces generated for their
VLEN (RVV strip-mining is resolved at trace-generation time, exactly as it is
resolved at run time on real hardware).
"""

from __future__ import annotations

from repro.isa.scalar import Op
from repro.isa.vector import VOp


class SInstr:
    """One dynamic scalar instruction."""

    __slots__ = ("pc", "op", "dst", "srcs", "addr", "size", "taken", "target")

    def __init__(self, pc, op, dst=None, srcs=(), addr=None, size=0, taken=None, target=None):
        self.pc = pc
        self.op = op
        self.dst = dst
        self.srcs = srcs
        self.addr = addr
        self.size = size
        self.taken = taken  # branches only: resolved direction
        self.target = target  # branches only: resolved target pc

    @property
    def is_vector(self):
        return False

    def __repr__(self):
        bits = [Op(self.op).name, f"pc={self.pc:#x}"]
        if self.dst is not None:
            bits.append(f"d{self.dst}")
        if self.srcs:
            bits.append("s" + ",".join(str(s) for s in self.srcs))
        if self.addr is not None:
            bits.append(f"@{self.addr:#x}/{self.size}")
        if self.taken is not None:
            bits.append("T" if self.taken else "NT")
        return f"<SInstr {' '.join(bits)}>"


class VInstr:
    """One dynamic vector instruction (dispatched to a vector engine).

    Attributes
    ----------
    vd / vs : destination / source vector register ids (0..31, v0 = mask).
    rs : scalar source virtual registers (values forwarded with the dispatch).
    rd : scalar destination virtual register (engine responds to the core).
    vl : granted vector length in elements for this instruction.
    ew : element width in bytes.
    base, stride : memory ops (stride in bytes; unit-stride => ew).
    addrs : per-element addresses for indexed memory ops.
    masked : executes under the v0 mask.
    seq : builder-assigned sequence id; dep_ids are producer seq ids, giving
        engines an exact dependence graph without re-deriving rename state.
    """

    __slots__ = (
        "pc",
        "op",
        "vd",
        "vs",
        "rs",
        "rd",
        "vl",
        "ew",
        "base",
        "stride",
        "addrs",
        "masked",
        "seq",
        "dep_ids",
    )

    def __init__(
        self,
        pc,
        op,
        vd=None,
        vs=(),
        rs=(),
        rd=None,
        vl=0,
        ew=4,
        base=None,
        stride=None,
        addrs=None,
        masked=False,
        seq=-1,
        dep_ids=(),
    ):
        self.pc = pc
        self.op = op
        self.vd = vd
        self.vs = vs
        self.rs = rs
        self.rd = rd
        self.vl = vl
        self.ew = ew
        self.base = base
        self.stride = stride
        self.addrs = addrs
        self.masked = masked
        self.seq = seq
        self.dep_ids = dep_ids

    @property
    def is_vector(self):
        return True

    def element_addrs(self):
        """Resolved per-element byte addresses for a memory instruction."""
        if self.addrs is not None:
            return self.addrs
        if self.base is None:
            raise ValueError(f"{self!r} is not a memory instruction")
        step = self.stride if self.stride is not None else self.ew
        return [self.base + i * step for i in range(self.vl)]

    def __repr__(self):
        bits = [VOp(self.op).name, f"vl={self.vl}", f"ew={self.ew}"]
        if self.vd is not None:
            bits.append(f"v{self.vd}")
        if self.base is not None:
            bits.append(f"@{self.base:#x}+{self.stride or self.ew}")
        if self.masked:
            bits.append("m")
        return f"<VInstr {' '.join(bits)}>"


class Trace:
    """An ordered dynamic instruction stream plus summary metadata."""

    __slots__ = ("instrs", "name")

    def __init__(self, instrs=None, name=""):
        self.instrs = instrs if instrs is not None else []
        self.name = name

    def __len__(self):
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)

    def __getitem__(self, i):
        return self.instrs[i]

    def counts(self):
        """Return (scalar_count, vector_count)."""
        nv = sum(1 for i in self.instrs if i.is_vector)
        return len(self.instrs) - nv, nv

    def vector_element_ops(self):
        """Total vector element operations (for VOp-fraction accounting)."""
        return sum(i.vl for i in self.instrs if i.is_vector)
