"""Instruction sources: where a core's front end pulls instructions from.

A source decouples "what to execute next" from "how it is timed": fixed
traces (single-threaded programs) and the work-stealing runtime (which splices
task bodies and runtime-overhead sequences together at run time) present the
same pull interface to the core models.
"""

from __future__ import annotations


class InstrSource:
    """Pull interface used by core front ends.

    ``peek()`` returns the next instruction without consuming it, or ``None``
    if no instruction is currently available (the core idles and the stall is
    attributed by the caller). ``pop()`` consumes it. ``done()`` is True once
    the source will never produce again.

    ``pure_peek`` declares whether ``peek()`` is free of observable side
    effects. The quiescence-skipping scheduler only probes sources whose
    peeks are pure; an impure source (e.g. a work-stealing worker whose
    peek may claim a task) vetoes skipping so the claim happens on the
    exact tick it would have without skipping.
    """

    __slots__ = ()

    pure_peek = False

    def peek(self):
        raise NotImplementedError

    def pop(self):
        raise NotImplementedError

    def done(self):
        raise NotImplementedError


class TraceSource(InstrSource):
    """A fixed pre-generated trace."""

    __slots__ = ("_instrs", "_pos")

    pure_peek = True

    def __init__(self, trace):
        self._instrs = trace.instrs if hasattr(trace, "instrs") else list(trace)
        self._pos = 0

    def peek(self):
        if self._pos < len(self._instrs):
            return self._instrs[self._pos]
        return None

    def pop(self):
        ins = self._instrs[self._pos]
        self._pos += 1
        return ins

    def done(self):
        return self._pos >= len(self._instrs)

    @property
    def remaining(self):
        return len(self._instrs) - self._pos


class ChainSource(InstrSource):
    """Concatenate several sources (used to splice runtime overhead + task).

    ``_advance`` is idempotent and externally unobservable, so peeks stay
    pure as long as every chained source's peek is pure; the sources spliced
    by the runtime are all :class:`TraceSource`, hence ``pure_peek``.
    """

    __slots__ = ("_sources", "_idx")

    pure_peek = True

    def __init__(self, sources=()):
        self._sources = list(sources)
        self._idx = 0

    def append(self, source):
        self._sources.append(source)

    def _advance(self):
        while self._idx < len(self._sources) and self._sources[self._idx].done():
            self._idx += 1

    def peek(self):
        self._advance()
        if self._idx < len(self._sources):
            return self._sources[self._idx].peek()
        return None

    def pop(self):
        self._advance()
        return self._sources[self._idx].pop()

    def done(self):
        self._advance()
        return self._idx >= len(self._sources)


class EmptySource(InstrSource):
    """A source that never produces (idle core)."""

    __slots__ = ()

    pure_peek = True

    def peek(self):
        return None

    def pop(self):
        raise IndexError("pop from EmptySource")

    def done(self):
        return True
