"""Structured logging for the experiment layer (``repro.log``).

The experiment harness used to emit bare ``print(msg, file=sys.stderr)``
progress lines; this module replaces them with a small leveled logger
that

* prefixes every line with a wall-clock timestamp, the level, and the
  logger name (the message text itself is untouched, so existing
  progress-line greps keep working);
* optionally mirrors every record into a JSONL sink (one
  ``{"ts", "level", "logger", "msg", ...fields}`` object per line), the
  same shape the sweep-telemetry log uses, so harness progress and sweep
  events can be machine-merged;
* filters by level per logger, with a process-wide default.

It is deliberately tiny — no handler trees, no propagation — because the
simulator itself never logs: only host-side harness code (the parallel
runner, the report driver, the CLI) does, and those paths are not
performance-critical.

Usage::

    from repro.log import get_logger

    log = get_logger("repro.experiments.parallel")
    log.info("[3/8] 1b-4VL/saxpy@small simulated in 1.24s", wall_s=1.24)

    # route all harness logs into a JSONL file as well
    from repro.log import configure
    configure(level="debug", jsonl_path="harness_log.jsonl")
"""

from __future__ import annotations

import json
import sys
import time

#: level name -> numeric severity (matches stdlib logging's ordering)
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _check_level(level):
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} "
                         f"(expected one of {sorted(LEVELS)})")
    return level


class StructuredLogger:
    """One named logger: leveled text lines plus an optional JSONL sink."""

    __slots__ = ("name", "level", "stream", "jsonl_path", "_jsonl")

    def __init__(self, name, level="info", stream=None, jsonl_path=None):
        self.name = name
        self.level = _check_level(level)
        self.stream = stream  # None = sys.stderr at emit time (capturable)
        self.jsonl_path = None
        self._jsonl = None
        if jsonl_path is not None:
            self.set_jsonl(jsonl_path)

    # ------------------------------------------------------------- sinks

    def set_jsonl(self, path):
        """Mirror every record into ``path`` (append mode); None disables."""
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None
        self.jsonl_path = path
        if path is not None:
            self._jsonl = open(path, "a", encoding="utf-8")
        return self

    def close(self):
        self.set_jsonl(None)

    # ------------------------------------------------------------ records

    def enabled_for(self, level):
        return LEVELS[_check_level(level)] >= LEVELS[self.level]

    def log(self, level, msg, **fields):
        """Emit one record at ``level``; extra fields become ``k=v`` text
        suffixes and JSONL keys."""
        if not self.enabled_for(level):
            return None
        ts = time.time()
        stamp = time.strftime("%H:%M:%S", time.localtime(ts))
        stamp += f".{int((ts % 1) * 1000):03d}"
        suffix = "".join(f" {k}={v}" for k, v in sorted(fields.items()))
        line = f"{stamp} {level.upper():<7} {self.name}: {msg}{suffix}"
        stream = self.stream if self.stream is not None else sys.stderr
        print(line, file=stream, flush=True)
        if self._jsonl is not None:
            rec = {"ts": round(ts, 6), "level": level, "logger": self.name,
                   "msg": msg}
            rec.update(fields)
            self._jsonl.write(json.dumps(rec, sort_keys=True,
                                         default=str) + "\n")
            self._jsonl.flush()
        return line

    def debug(self, msg, **fields):
        return self.log("debug", msg, **fields)

    def info(self, msg, **fields):
        return self.log("info", msg, **fields)

    def warning(self, msg, **fields):
        return self.log("warning", msg, **fields)

    def error(self, msg, **fields):
        return self.log("error", msg, **fields)

    def __repr__(self):
        return f"<StructuredLogger {self.name} level={self.level}>"


# ------------------------------------------------------------------ registry

_loggers: dict = {}
_default_level = "info"


def get_logger(name="repro"):
    """The process-wide logger registered under ``name`` (created on
    first use at the current default level)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = StructuredLogger(name, level=_default_level)
    return logger


def configure(level=None, jsonl_path=None, stream=None):
    """Reconfigure every registered logger (and the default for new ones).

    ``jsonl_path``/``stream`` apply to all currently registered loggers;
    pass ``jsonl_path=None`` explicitly via :meth:`StructuredLogger.set_jsonl`
    to detach a single logger's sink.
    """
    global _default_level
    if level is not None:
        _default_level = _check_level(level)
        for logger in _loggers.values():
            logger.level = _default_level
    for logger in _loggers.values():
        if jsonl_path is not None:
            logger.set_jsonl(jsonl_path)
        if stream is not None:
            logger.stream = stream
    return sorted(_loggers)
