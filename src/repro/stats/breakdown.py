"""Per-cycle stall attribution categories.

The categories for little cores in vector mode follow Figure 7 of the paper
exactly; scalar-mode cores reuse the same vector for uniform reporting (the
vector-only categories simply stay zero).
"""

from __future__ import annotations

from enum import IntEnum


class Stall(IntEnum):
    BUSY = 0  # issued work this cycle
    SIMD = 1  # VCU lockstep: another lane stalled the broadcast
    RAW_MEM = 2  # waiting on a value coming from memory
    RAW_LLFU = 3  # waiting on a long-latency functional unit
    STRUCT = 4  # structural hazard (FU busy, port busy, buffer full)
    XELEM = 5  # waiting on the cross-element (VXU) unit
    MISC = 6  # everything else (no µop available, fetch, drain, idle)


STALL_NAMES = [s.name.lower() for s in Stall]


class Breakdown:
    """A per-category cycle counter with exact accounting.

    The invariant ``sum(categories) == cycles observed`` is what makes the
    Figure 7 stacks meaningful; :meth:`total` and the tests enforce it.
    """

    __slots__ = ("counts",)

    def __init__(self):
        self.counts = [0] * len(Stall)

    def add(self, category, n=1):
        self.counts[category] += n

    def total(self):
        return sum(self.counts)

    def fraction(self, category):
        t = self.total()
        return self.counts[category] / t if t else 0.0

    def fractions(self):
        """All category fractions at once (one total() pass, zero-safe)."""
        t = self.total()
        if not t:
            return {name: 0.0 for name in STALL_NAMES}
        return {name: self.counts[i] / t for i, name in enumerate(STALL_NAMES)}

    def as_dict(self):
        return {name: self.counts[i] for i, name in enumerate(STALL_NAMES)}

    def merged_with(self, other):
        out = Breakdown()
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        return out

    def __repr__(self):
        return f"<Breakdown {self.as_dict()}>"
