"""Simple named counters and run-result containers."""

from __future__ import annotations


class Counters:
    """A dict-backed counter bag with merge support."""

    __slots__ = ("_c",)

    def __init__(self):
        self._c = {}

    def add(self, name, n=1):
        self._c[name] = self._c.get(name, 0) + n

    def get(self, name, default=0):
        return self._c.get(name, default)

    def merge(self, other):
        for k, v in other._c.items():
            self.add(k, v)

    def as_dict(self):
        return dict(self._c)

    def items(self):
        return self._c.items()

    def __getitem__(self, name):
        return self.get(name)

    def __contains__(self, name):
        return name in self._c

    def __len__(self):
        return len(self._c)

    def __iter__(self):
        return iter(self._c)

    def __repr__(self):
        return f"<Counters {self._c}>"


class RunResult:
    """Outcome of one simulated run: cycles plus the full stat dump.

    ``stats`` holds only deterministic counters (identical for identical
    configs across processes); host-side measurements — wall-clock seconds,
    whether the result came from the cache — live in ``timing`` so that
    determinism checks and cache round-trips can compare ``stats``
    bit-for-bit.
    """

    __slots__ = ("name", "system", "cycles", "stats", "timing")

    def __init__(self, name, system, cycles, stats, timing=None):
        self.name = name
        self.system = system
        self.cycles = cycles
        self.stats = stats
        self.timing = timing if timing is not None else {}

    def get(self, key, default=0):
        return self.stats.get(key, default)

    def items(self):
        return self.stats.items()

    def __getitem__(self, key):
        return self.get(key)

    def __contains__(self, key):
        return key in self.stats

    def to_dict(self):
        """JSON-safe form for the on-disk result cache."""
        return {
            "name": self.name,
            "system": self.system,
            "cycles": self.cycles,
            "stats": dict(self.stats),
            "timing": dict(self.timing),
        }

    @classmethod
    def from_dict(cls, d):
        return cls(d["name"], d["system"], d["cycles"], d["stats"],
                   d.get("timing", {}))

    def __repr__(self):
        return f"<RunResult {self.system}:{self.name} cycles={self.cycles}>"
