"""Statistics: stall breakdowns, counters, run results."""

from repro.stats.breakdown import Breakdown, Stall, STALL_NAMES
from repro.stats.counters import Counters, RunResult

__all__ = ["Breakdown", "Stall", "STALL_NAMES", "Counters", "RunResult"]
