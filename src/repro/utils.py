"""Small shared helpers: address math, geometric means, deterministic RNG."""

from __future__ import annotations

import math


def is_pow2(x: int) -> bool:
    """Return True if ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2i(x: int) -> int:
    """Integer log2 of a power of two; raises ValueError otherwise."""
    if not is_pow2(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def align_down(addr: int, granule: int) -> int:
    """Align ``addr`` down to a power-of-two ``granule``."""
    return addr & ~(granule - 1)


def align_up(addr: int, granule: int) -> int:
    """Align ``addr`` up to a power-of-two ``granule``."""
    return (addr + granule - 1) & ~(granule - 1)


def line_addr(addr: int, line_bytes: int = 64) -> int:
    """Cache-line address containing ``addr``."""
    return addr & ~(line_bytes - 1)


def lines_spanned(addr: int, nbytes: int, line_bytes: int = 64):
    """Yield the cache-line addresses touched by [addr, addr+nbytes)."""
    if nbytes <= 0:
        return
    first = line_addr(addr, line_bytes)
    last = line_addr(addr + nbytes - 1, line_bytes)
    for a in range(first, last + 1, line_bytes):
        yield a


def geomean(values) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    vals = list(values)
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division."""
    return -(-a // b)


class Xorshift64:
    """Tiny deterministic PRNG so traces never depend on Python's hash seed.

    Used by workload generators and the work-stealing victim selection; the
    simulator must be bit-reproducible across runs for the tests to be
    meaningful.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int = 0x9E3779B97F4A7C15):
        if seed == 0:
            seed = 0x2545F4914F6CDD1D
        self.state = seed & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self.state = x
        return x

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        if hi < lo:
            raise ValueError("empty range")
        return lo + self.next() % (hi - lo + 1)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next() >> 11) / float(1 << 53)
