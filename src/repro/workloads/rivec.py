"""RiVec-suite-derived data-parallel applications: blackscholes, jacobi2d."""

from __future__ import annotations

from repro.workloads.common import ChunkedDataParallel, register


@register
class BlackScholes(ChunkedDataParallel):
    """Black-Scholes option pricing: ~30 FP operations per option including
    divides and polynomial exp/log/CND approximations. Compute-bound — this
    is where multiple chimes hiding FP latency matter (paper §V-B)."""

    name = "blackscholes"
    suite = "rivec"
    kind = "data-parallel"

    def _params(self, scale):
        n = {"tiny": 256, "small": 1024, "full": 8192}[scale]
        return {
            "n": n,
            "s": self.alloc.array(n),
            "k": self.alloc.array(n),
            "t": self.alloc.array(n),
            "r": self.alloc.array(n),
            "v": self.alloc.array(n),
            "call": self.alloc.array(n),
            "put": self.alloc.array(n),
        }

    def _n(self):
        return self.params["n"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        with tb.loop(stop - start) as loop:
            for ii in loop:
                i = start + ii
                s = tb.flw(p["s"] + 4 * i)
                k = tb.flw(p["k"] + 4 * i)
                t = tb.flw(p["t"] + 4 * i)
                r = tb.flw(p["r"] + 4 * i)
                v = tb.flw(p["v"] + 4 * i)
                # log(s/k): one divide + 6-term polynomial
                ratio = tb.fdiv(s, k)
                lg = ratio
                for _ in range(6):
                    lg = tb.fmadd(lg, ratio, r)
                # d1 = (log + (r + v^2/2) t) * rsqrt-approx(v^2 t)
                v2 = tb.fmul(v, v)
                num = tb.fmadd(v2, t, lg)
                den = tb.fmul(v, t)
                rs = den
                for _ in range(3):  # Newton-Raphson reciprocal sqrt
                    rs = tb.fmadd(rs, den, num)
                d1 = tb.fmul(num, rs)
                d2 = tb.fsub(d1, den)
                # CND(d1), CND(d2): 5-term polynomials
                cnd1 = d1
                for _ in range(5):
                    cnd1 = tb.fmadd(cnd1, d1, v)
                cnd2 = d2
                for _ in range(5):
                    cnd2 = tb.fmadd(cnd2, d2, v)
                call = tb.fmadd(s, cnd1, k)
                put = tb.fmadd(k, cnd2, s)
                tb.fsw(call, p["call"] + 4 * i)
                tb.fsw(put, p["put"] + 4 * i)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        rem = stop - start
        i0 = start
        head = tb.pc
        while rem > 0:
            tb.set_pc(head)
            vl = vb.vsetvl(rem, ew=4)
            vs = vb.vle(p["s"] + 4 * i0, vl=vl)
            vk = vb.vle(p["k"] + 4 * i0, vl=vl)
            vt = vb.vle(p["t"] + 4 * i0, vl=vl)
            vr = vb.vle(p["r"] + 4 * i0, vl=vl)
            vv = vb.vle(p["v"] + 4 * i0, vl=vl)
            vratio = vb.vfdiv(vs, vk)
            vlg = vratio
            for _ in range(6):
                vlg = vb.vfmacc(vlg, vratio, vr)
            vv2 = vb.vfmul(vv, vv)
            vnum = vb.vfmacc(vlg, vv2, vt)
            vden = vb.vfmul(vv, vt)
            vrs = vden
            for _ in range(3):
                vrs = vb.vfmacc(vrs, vden, vnum)
            vd1 = vb.vfmul(vnum, vrs)
            vd2 = vb.vfsub(vd1, vden)
            vcnd1 = vd1
            for _ in range(5):
                vcnd1 = vb.vfmacc(vcnd1, vd1, vv)
            vcnd2 = vd2
            for _ in range(5):
                vcnd2 = vb.vfmacc(vcnd2, vd2, vv)
            vcall = vb.vfmacc(vk, vs, vcnd1)
            vput = vb.vfmacc(vs, vk, vcnd2)
            vb.vse(vcall, p["call"] + 4 * i0, vl=vl)
            vb.vse(vput, p["put"] + 4 * i0, vl=vl)
            rem -= vl
            i0 += vl
            tb.branch(taken=rem > 0, target=head if rem > 0 else None)


@register
class Jacobi2D(ChunkedDataParallel):
    """5-point Jacobi stencil sweeps over a 2D grid. Memory-bound streaming
    with three concurrently live input rows."""

    name = "jacobi2d"
    suite = "rivec"
    kind = "data-parallel"

    def _params(self, scale):
        side, sweeps = {
            "tiny": (32, 2),
            "small": (64, 2),
            "full": (256, 4),
        }[scale]
        return {
            "side": side,
            "sweeps": sweeps,
            "a": self.alloc.array(side * side),
            "b": self.alloc.array(side * side),
        }

    def _n(self):
        return self.params["side"] - 2  # interior rows

    def _row(self, grid, r):
        return self.params[grid] + 4 * r * self.params["side"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        side = p["side"]
        with tb.loop(p["sweeps"], overhead=False) as sweeps:
            for s in sweeps:
                src, dst = ("a", "b") if s % 2 == 0 else ("b", "a")
                with tb.loop(stop - start) as rloop:
                    for rr in rloop:
                        r = start + rr + 1
                        with tb.loop(side - 2) as cloop:
                            for c in cloop:
                                j = c + 1
                                up = tb.flw(self._row(src, r - 1) + 4 * j)
                                dn = tb.flw(self._row(src, r + 1) + 4 * j)
                                lf = tb.flw(self._row(src, r) + 4 * (j - 1))
                                rt = tb.flw(self._row(src, r) + 4 * (j + 1))
                                ce = tb.flw(self._row(src, r) + 4 * j)
                                s1 = tb.fadd(up, dn)
                                s2 = tb.fadd(lf, rt)
                                s3 = tb.fadd(s1, s2)
                                out = tb.fmadd(s3, ce, ce)
                                tb.fsw(out, self._row(dst, r) + 4 * j)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        side = p["side"]
        with tb.loop(p["sweeps"], overhead=False) as sweeps:
            for s in sweeps:
                src, dst = ("a", "b") if s % 2 == 0 else ("b", "a")
                with tb.loop(stop - start) as rloop:
                    for rr in rloop:
                        r = start + rr + 1
                        rem = side - 2
                        j0 = 1
                        head = tb.pc
                        while rem > 0:
                            tb.set_pc(head)
                            vl = vb.vsetvl(rem, ew=4)
                            vup = vb.vle(self._row(src, r - 1) + 4 * j0, vl=vl)
                            vdn = vb.vle(self._row(src, r + 1) + 4 * j0, vl=vl)
                            vlf = vb.vle(self._row(src, r) + 4 * (j0 - 1), vl=vl)
                            vrt = vb.vle(self._row(src, r) + 4 * (j0 + 1), vl=vl)
                            vce = vb.vle(self._row(src, r) + 4 * j0, vl=vl)
                            v1 = vb.vfadd(vup, vdn)
                            v2 = vb.vfadd(vlf, vrt)
                            v3 = vb.vfadd(v1, v2)
                            vout = vb.vfmacc(vce, v3, vce)
                            vb.vse(vout, self._row(dst, r) + 4 * j0, vl=vl)
                            rem -= vl
                            j0 += vl
                            tb.branch(taken=rem > 0, target=head if rem > 0 else None)
