"""Workloads: kernels, Rodinia/RiVec/genomics data-parallel apps, Ligra
task-parallel graph apps (paper Tables IV & V)."""

from repro.workloads.common import (
    REGISTRY,
    SCALES,
    Alloc,
    ChunkedDataParallel,
    Workload,
    chunk_ranges,
    get_workload,
    register,
    workloads_by_kind,
)

# importing the suites populates the registry
from repro.workloads import (  # noqa: F401
    genomics,
    kernels,
    ligra,
    rivec,
    rodinia,
    synthetic,
)
from repro.workloads.graphs import Graph, bfs_levels, make_rmat

KERNELS = workloads_by_kind("kernel")
DATA_PARALLEL = workloads_by_kind("data-parallel")
TASK_PARALLEL = workloads_by_kind("task-parallel")
VECTORIZABLE = KERNELS + DATA_PARALLEL
#: phase-structure microbenchmarks; never part of the figure sweeps
SYNTHETIC = workloads_by_kind("synthetic")

__all__ = [
    "REGISTRY",
    "SCALES",
    "Alloc",
    "ChunkedDataParallel",
    "Workload",
    "chunk_ranges",
    "get_workload",
    "register",
    "workloads_by_kind",
    "Graph",
    "bfs_levels",
    "make_rmat",
    "KERNELS",
    "DATA_PARALLEL",
    "TASK_PARALLEL",
    "VECTORIZABLE",
    "SYNTHETIC",
]
