"""Synthetic power-law graph generation (rMAT) and CSR layout.

The paper evaluates Ligra applications on real-world-like graphs; we generate
Kronecker/rMAT graphs (the standard synthetic stand-in, used by Graph500 and
by Ligra's own inputs) with the classic (0.57, 0.19, 0.19, 0.05) quadrant
probabilities, symmetrized, deduplicated, laid out in CSR form.
"""

from __future__ import annotations

from repro.utils import Xorshift64, log2i, is_pow2


class Graph:
    """Undirected graph in CSR form."""

    __slots__ = ("n", "offsets", "edges")

    def __init__(self, n, adj):
        self.n = n
        self.offsets = [0] * (n + 1)
        self.edges = []
        for v in range(n):
            self.offsets[v] = len(self.edges)
            self.edges.extend(adj[v])
        self.offsets[n] = len(self.edges)

    @property
    def m(self):
        return len(self.edges)

    def degree(self, v):
        return self.offsets[v + 1] - self.offsets[v]

    def neighbors(self, v):
        return self.edges[self.offsets[v]:self.offsets[v + 1]]


def make_rmat(n, avg_degree=8, seed=42, a=0.57, b=0.19, c=0.19):
    """Generate an undirected rMAT graph with ~n*avg_degree/2 distinct edges."""
    if not is_pow2(n):
        raise ValueError(f"rMAT size must be a power of two, got {n}")
    levels = log2i(n)
    rng = Xorshift64(seed)
    target = n * avg_degree // 2
    seen = set()
    adj = [[] for _ in range(n)]
    attempts = 0
    while len(seen) < target and attempts < target * 20:
        attempts += 1
        u = v = 0
        for _ in range(levels):
            r = rng.random()
            if r < a:
                q = (0, 0)
            elif r < a + b:
                q = (0, 1)
            elif r < a + b + c:
                q = (1, 0)
            else:
                q = (1, 1)
            u = (u << 1) | q[0]
            v = (v << 1) | q[1]
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        adj[u].append(v)
        adj[v].append(u)
    for lst in adj:
        lst.sort()
    # connect isolated vertices to vertex 0 so traversals cover the graph
    for v in range(1, n):
        if not adj[v]:
            adj[v].append(0)
            adj[0].append(v)
    adj[0].sort()
    return Graph(n, adj)


def make_uniform(n, avg_degree=8, seed=42):
    """Erdos-Renyi-style uniform random graph (contrast to rMAT's skew)."""
    if not is_pow2(n):
        raise ValueError(f"size must be a power of two, got {n}")
    rng = Xorshift64(seed)
    target = n * avg_degree // 2
    seen = set()
    adj = [[] for _ in range(n)]
    attempts = 0
    while len(seen) < target and attempts < target * 20:
        attempts += 1
        u = rng.randint(0, n - 1)
        v = rng.randint(0, n - 1)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        adj[u].append(v)
        adj[v].append(u)
    for lst in adj:
        lst.sort()
    for v in range(1, n):
        if not adj[v]:
            adj[v].append(0)
            adj[0].append(v)
    adj[0].sort()
    return Graph(n, adj)


def bfs_levels(graph, root=0):
    """Level sets of a BFS from ``root`` (the phases of a Ligra BFS)."""
    level = {root: 0}
    frontier = [root]
    levels = [frontier]
    while frontier:
        nxt = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in level:
                    level[w] = level[v] + 1
                    nxt.append(w)
        if nxt:
            levels.append(nxt)
        frontier = nxt
    return levels
