"""Ligra task-parallel graph applications (paper Table IV).

All eight applications share the Ligra structure: iterations (phases) of an
``edgeMap``/``vertexMap`` over an active vertex set, separated by barriers,
with a small serial frontier-management step between iterations. The active
sets are computed functionally in Python (the algorithms really run, on the
real rMAT graph); the emitted traces then perform the corresponding memory
accesses and compute per vertex, so load balance, cache behaviour and
runtime overheads are all faithful to the algorithm's actual shape.

These applications are irregular and branchy — the workloads the paper uses
to show that a big decoupled vector engine is wasted silicon for a large
class of mobile code (Fig. 4, task-parallel half).
"""

from __future__ import annotations

from repro.trace import Phase, Task, TaskProgram
from repro.workloads.common import Workload, chunk_ranges, register
from repro.workloads.graphs import bfs_levels, make_rmat, make_uniform

_GRAPH_SIZES = {"tiny": (128, 6), "small": (512, 8), "full": (2048, 10)}


class LigraApp(Workload):
    """Base: builds the graph, lays out CSR arrays, assembles phases.

    ``graph_kind`` selects the input topology: ``"rmat"`` (power-law, the
    default and the paper's implied inputs) or ``"uniform"`` (Erdos-Renyi,
    for topology-sensitivity studies).
    """

    kind = "task-parallel"
    suite = "ligra"
    chunk_vertices = 48

    def __init__(self, scale="small", seed=1, graph_kind="rmat"):
        self.graph_kind = graph_kind
        super().__init__(scale=scale, seed=seed)

    def _params(self, scale):
        n, deg = _GRAPH_SIZES[scale]
        gen = {"rmat": make_rmat, "uniform": make_uniform}[self.graph_kind]
        g = gen(n, avg_degree=deg, seed=self.seed + 7)
        params = {
            "g": g,
            "off": self.alloc.array(g.n + 1),
            "edge": self.alloc.array(g.m),
        }
        params.update(self._app_arrays(g))
        return params

    def _app_arrays(self, g):
        return {"data": self.alloc.array(g.n)}

    # -- per-app hooks --------------------------------------------------------

    def _compute_phases(self):
        """Return a list of active-vertex lists, one per iteration."""
        raise NotImplementedError

    def _emit_vertex(self, tb, v, phase_idx):
        raise NotImplementedError

    # -- shared emission ------------------------------------------------------

    def _emit_edge_scan(self, tb, v, per_edge):
        """Canonical Ligra edgeMap inner loop for vertex ``v``."""
        p = self.params
        g = p["g"]
        tb.lw(p["off"] + 4 * v)
        tb.lw(p["off"] + 4 * (v + 1))
        nghs = g.neighbors(v)
        e0 = g.offsets[v]
        with tb.loop(len(nghs)) as loop:
            for k in loop:
                ngh = nghs[k]
                re = tb.lw(p["edge"] + 4 * (e0 + k))
                per_edge(tb, v, ngh, re)

    def _serial_step(self, tb, n_active):
        """Frontier swap / bookkeeping between iterations."""
        self._region(tb, ("serial",))
        with tb.loop(max(4, min(n_active, 64)), overhead=False) as loop:
            for _ in loop:
                tb.addi(None)

    # -- trace products -------------------------------------------------------

    def _phase_kind(self, pi):
        """Phases sharing a kind run the same static code (same PCs)."""
        return 0

    def _region(self, tb, key):
        """Pin the builder to the fixed code region for ``key`` — every task
        and phase that runs this code fetches the *same* PCs, like a real
        compiled edgeMap function."""
        regions = getattr(self, "_regions", None)
        if regions is None:
            regions = self._regions = {}
        pc = regions.get(key)
        if pc is None:
            pc = 0x10000 + 0x1000 * len(regions)
            regions[key] = pc
        tb.set_pc(pc)

    def _emit_vertices(self, tb, vertices, pi):
        """Emit the per-vertex bodies as one shared-PC vertex loop: all
        vertices execute the *same static code* (one edgeMap loop), exactly
        like compiled Ligra — the i-cache footprint is the loop body, not the
        whole traversal."""
        self._region(tb, ("vloop", self._phase_kind(pi)))
        head = tb.pc
        for n, v in enumerate(vertices):
            tb.set_pc(head)
            self._emit_vertex(tb, v, pi)
            last = n == len(vertices) - 1
            tb.branch(taken=not last, target=None if last else head)

    def scalar_trace(self):
        tb = self._tb()
        for pi, active in enumerate(self._compute_phases()):
            self._serial_step(tb, len(active))
            self._emit_vertices(tb, active, pi)
        return tb.finish(self.name)

    def task_program(self, vector_vlen=None, n_chunks=None):
        phases = []
        for pi, active in enumerate(self._compute_phases()):
            stb = self._tb()
            self._serial_step(stb, len(active))
            serial = stb.finish(f"{self.name}.p{pi}")
            tasks = []
            nch = max(1, len(active) // self.chunk_vertices)
            for tid, (lo, hi) in enumerate(chunk_ranges(len(active), nch)):
                tb = self._tb()
                self._emit_vertices(tb, active[lo:hi], pi)
                tasks.append(Task(f"{pi}.{tid}", {"scalar": tb.finish()}))
            phases.append(Phase(tasks, serial=serial))
        return TaskProgram(phases, name=self.name)


@register
class BFS(LigraApp):
    """Breadth-first search: one phase per level, frontier-driven."""

    name = "bfs"

    def _app_arrays(self, g):
        return {"parent": self.alloc.array(g.n)}

    def _compute_phases(self):
        self._visited = {0}  # reset per trace product
        return bfs_levels(self.params["g"])[:-1]  # last frontier expands nothing

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params
        visited = self._visited

        def per_edge(tb, v, ngh, re):
            rp = tb.lw(p["parent"] + 4 * ngh)
            new = ngh not in visited
            tb.branch(taken=not new, cond_reg=rp)
            if new:
                visited.add(ngh)
                tb.amoadd(p["parent"] + 4 * ngh, rp)

        self._emit_edge_scan(tb, v, per_edge)


@register
class BC(LigraApp):
    """Betweenness centrality: BFS forward pass + FP backward accumulation."""

    name = "bc"

    def _app_arrays(self, g):
        return {"sigma": self.alloc.array(g.n), "delta": self.alloc.array(g.n)}

    def _compute_phases(self):
        levels = bfs_levels(self.params["g"])
        self._n_forward = len(levels) - 1
        return levels[:-1] + list(reversed(levels[1:]))

    def _phase_kind(self, pi):
        return 0 if pi < self._n_forward else 1

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params
        forward = phase_idx < self._n_forward

        def per_edge(tb, v, ngh, re):
            if forward:
                rs = tb.lw(p["sigma"] + 4 * ngh)
                racc = tb.add(rs, re)
                tb.branch(taken=ngh % 8 == 0, cond_reg=racc)
                tb.sw(racc, p["sigma"] + 4 * ngh)
            else:
                rd = tb.flw(p["delta"] + 4 * ngh)
                rs = tb.flw(p["sigma"] + 4 * ngh)
                r = tb.fmadd(rd, rs, rd)
                tb.fsw(r, p["delta"] + 4 * v)

        self._emit_edge_scan(tb, v, per_edge)


@register
class PageRank(LigraApp):
    """PageRank: dense iterations, FP gather-sum over in-neighbors."""

    name = "pagerank"
    iterations = 3

    def _app_arrays(self, g):
        return {"rank": self.alloc.array(g.n), "next": self.alloc.array(g.n)}

    def _compute_phases(self):
        return [list(range(self.params["g"].n)) for _ in range(self.iterations)]

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params
        acc = tb.li()
        accs = [acc]

        def per_edge(tb, v, ngh, re):
            rr = tb.flw(p["rank"] + 4 * ngh)
            accs[0] = tb.fadd(accs[0], rr)

        self._emit_edge_scan(tb, v, per_edge)
        damp = tb.fmul(accs[0], accs[0])
        tb.fsw(damp, p["next"] + 4 * v)


@register
class Components(LigraApp):
    """Connected components via label propagation until convergence."""

    name = "cc"

    def _app_arrays(self, g):
        return {"label": self.alloc.array(g.n)}

    def _compute_phases(self):
        g = self.params["g"]
        label = list(range(g.n))
        phases = []
        active = list(range(g.n))
        for _ in range(10):
            if not active:
                break
            phases.append(list(active))
            nxt = set()
            new_label = list(label)
            for v in active:
                m = min([label[v]] + [label[w] for w in g.neighbors(v)])
                if m < label[v]:
                    new_label[v] = m
                    nxt.update(g.neighbors(v))
                    nxt.add(v)
            changed = {v for v in range(g.n) if new_label[v] != label[v]}
            label = new_label
            active = sorted(nxt & changed | changed)
        return phases

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params

        def per_edge(tb, v, ngh, re):
            rl = tb.lw(p["label"] + 4 * ngh)
            rc = tb.slt(rl, re)
            tb.branch(taken=ngh % 8 == 0, cond_reg=rc)

        self._emit_edge_scan(tb, v, per_edge)
        r = tb.lw(p["label"] + 4 * v)
        tb.sw(r, p["label"] + 4 * v)


@register
class Radii(LigraApp):
    """Graph eccentricity estimation via multi-source BFS bitmasks."""

    name = "radii"
    iterations = 4

    def _app_arrays(self, g):
        return {"bits": self.alloc.array(g.n, 8), "next_bits": self.alloc.array(g.n, 8)}

    def _compute_phases(self):
        # active set shrinks as bitmasks saturate
        g = self.params["g"]
        phases = []
        frac = 1.0
        for _ in range(self.iterations):
            k = max(1, int(g.n * frac))
            phases.append(list(range(k)))
            frac *= 0.6
        return phases

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params
        acc = tb.ld(p["bits"] + 8 * v)
        accs = [acc]

        def per_edge(tb, v, ngh, re):
            rb = tb.ld(p["bits"] + 8 * ngh)
            accs[0] = tb.or_(accs[0], rb)

        self._emit_edge_scan(tb, v, per_edge)
        tb.sd(accs[0], p["next_bits"] + 8 * v)


@register
class MIS(LigraApp):
    """Maximal independent set: priority comparisons against neighbors."""

    name = "mis"

    def _app_arrays(self, g):
        return {"prio": self.alloc.array(g.n), "state": self.alloc.array(g.n)}

    def _compute_phases(self):
        g = self.params["g"]
        rng = self.rng()
        prio = [rng.random() for _ in range(g.n)]
        undecided = set(range(g.n))
        phases = []
        while undecided and len(phases) < 12:
            phases.append(sorted(undecided))
            winners = {
                v for v in undecided
                if all(w not in undecided or prio[v] < prio[w] for w in g.neighbors(v))
            }
            removed = set(winners)
            for v in winners:
                removed.update(w for w in g.neighbors(v) if w in undecided)
            undecided -= removed
        return phases

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params
        rp = tb.lw(p["prio"] + 4 * v)

        def per_edge(tb, v, ngh, re):
            rn = tb.lw(p["prio"] + 4 * ngh)
            rc = tb.slt(rp, rn)
            tb.branch(taken=ngh % 8 == 1, cond_reg=rc)

        self._emit_edge_scan(tb, v, per_edge)
        tb.sw(rp, p["state"] + 4 * v)


@register
class KCore(LigraApp):
    """k-core decomposition: peel low-degree vertices round by round."""

    name = "kcore"

    def _app_arrays(self, g):
        return {"deg": self.alloc.array(g.n)}

    def _compute_phases(self):
        g = self.params["g"]
        deg = [g.degree(v) for v in range(g.n)]
        alive = set(range(g.n))
        phases = []
        k = 1
        while alive and len(phases) < 10:
            peel = sorted(v for v in alive if deg[v] <= k)
            if peel:
                phases.append(peel)
                for v in peel:
                    alive.discard(v)
                    for w in g.neighbors(v):
                        if w in alive:
                            deg[w] -= 1
            else:
                k += 1
        return phases

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params

        def per_edge(tb, v, ngh, re):
            r = tb.amoadd(p["deg"] + 4 * ngh, re)  # atomic degree decrement
            tb.branch(taken=ngh % 8 == 0, cond_reg=r)

        self._emit_edge_scan(tb, v, per_edge)


@register
class BellmanFord(LigraApp):
    """Single-source shortest paths with edge relaxation rounds."""

    name = "bf"

    def _app_arrays(self, g):
        return {"dist": self.alloc.array(g.n), "wt": self.alloc.array(g.m)}

    def _compute_phases(self):
        # relaxation wavefronts equal BFS levels on an unweighted rMAT, plus
        # a couple of correction rounds typical of weighted graphs
        levels = bfs_levels(self.params["g"])[:-1]
        extra = levels[len(levels) // 2:] if len(levels) > 2 else levels
        return levels + extra

    def _emit_vertex(self, tb, v, phase_idx):
        p = self.params
        g = p["g"]
        rd = tb.lw(p["dist"] + 4 * v)
        e0 = g.offsets[v]

        def per_edge(tb, v, ngh, re):
            k = 0  # weight index handled through edge register
            rw = tb.lw(p["wt"] + 4 * (e0 + k))
            rsum = tb.add(rd, rw)
            rold = tb.lw(p["dist"] + 4 * ngh)
            rc = tb.slt(rsum, rold)
            tb.branch(taken=ngh % 4 != 0, cond_reg=rc)
            if ngh % 4 != 0:
                tb.sw(rsum, p["dist"] + 4 * ngh)

        self._emit_edge_scan(tb, v, per_edge)
