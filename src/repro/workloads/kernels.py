"""The three study kernels: vvadd, mmult, saxpy (paper Table IV)."""

from __future__ import annotations

from repro.workloads.common import ChunkedDataParallel, chunk_ranges, register
from repro.trace import Phase, Task, TaskProgram


@register
class VVAdd(ChunkedDataParallel):
    """Integer vector addition: c[i] = a[i] + b[i]. Memory-bound."""

    name = "vvadd"
    suite = "kernel"
    kind = "kernel"

    def _params(self, scale):
        n = {"tiny": 512, "small": 4096, "full": 32768}[scale]
        return {
            "n": n,
            "a": self.alloc.array(n),
            "b": self.alloc.array(n),
            "c": self.alloc.array(n),
        }

    def _n(self):
        return self.params["n"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        with tb.loop(stop - start) as loop:
            for i in loop:
                j = start + i
                ra = tb.lw(p["a"] + 4 * j)
                rb = tb.lw(p["b"] + 4 * j)
                rc = tb.add(ra, rb)
                tb.sw(rc, p["c"] + 4 * j)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        off = 4 * start
        for base_off, vl in vb.strip_mine(p["a"] + off, stop - start, ew=4):
            delta = base_off - p["a"]
            va = vb.vle(p["a"] + delta, vl=vl)
            vb_ = vb.vle(p["b"] + delta, vl=vl)
            vc = vb.vadd(va, vb_)
            vb.vse(vc, p["c"] + delta, vl=vl)


@register
class Saxpy(ChunkedDataParallel):
    """Single-precision a*X + Y. Streaming FP, memory-bound."""

    name = "saxpy"
    suite = "kernel"
    kind = "kernel"

    def _params(self, scale):
        n = {"tiny": 512, "small": 4096, "full": 32768}[scale]
        return {"n": n, "x": self.alloc.array(n), "y": self.alloc.array(n)}

    def _n(self):
        return self.params["n"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        ra = tb.li()  # the scalar a
        with tb.loop(stop - start) as loop:
            for i in loop:
                j = start + i
                rx = tb.flw(p["x"] + 4 * j)
                ry = tb.flw(p["y"] + 4 * j)
                rm = tb.fmadd(rx, ra, ry)
                tb.fsw(rm, p["y"] + 4 * j)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        ra = tb.li()
        vb.vsetvl(stop - start, ew=4)
        va = vb.vmv_v_x(ra)  # broadcast a once, outside the strip loop
        for base_off, vl in vb.strip_mine(p["x"] + 4 * start, stop - start, ew=4):
            delta = base_off - p["x"]
            vx = vb.vle(p["x"] + delta, vl=vl)
            vy = vb.vle(p["y"] + delta, vl=vl)
            vs = vb.vfmacc(vy, va, vx)
            vb.vse(vs, p["y"] + delta, vl=vl)


@register
class MMult(ChunkedDataParallel):
    """Dense FP matrix multiply C = A x B (i-k-j order, vectorized over j).

    Compute-bound with reuse: the vectorized inner loop broadcasts A[i][k]
    and runs a fused multiply-accumulate across a row slice of B.
    """

    name = "mmult"
    suite = "kernel"
    kind = "kernel"

    def _params(self, scale):
        n = {"tiny": 8, "small": 20, "full": 48}[scale]
        return {
            "n": n,
            "A": self.alloc.array(n * n),
            "B": self.alloc.array(n * n),
            "C": self.alloc.array(n * n),
        }

    def _n(self):
        # parallel/vector dimension is the output row index i
        return self.params["n"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        n = p["n"]
        with tb.loop(stop - start) as rows:
            for ii in rows:
                i = start + ii
                with tb.loop(n) as kloop:
                    for k in kloop:
                        ra = tb.flw(p["A"] + 4 * (i * n + k))
                        with tb.loop(n) as jloop:
                            for j in jloop:
                                rb = tb.flw(p["B"] + 4 * (k * n + j))
                                rc = tb.flw(p["C"] + 4 * (i * n + j))
                                rs = tb.fmadd(ra, rb, rc)
                                tb.fsw(rs, p["C"] + 4 * (i * n + j))

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        n = p["n"]
        with tb.loop(stop - start) as rows:
            for ii in rows:
                i = start + ii
                # strip over the j dimension; accumulate in a register
                rem = n
                j0 = 0
                while rem > 0:
                    vl = vb.vsetvl(rem, ew=4)
                    vc = vb.vle(p["C"] + 4 * (i * n + j0), vl=vl)
                    with tb.loop(n) as kloop:
                        for k in kloop:
                            ra = tb.flw(p["A"] + 4 * (i * n + k))
                            vbrow = vb.vle(p["B"] + 4 * (k * n + j0), vl=vl)
                            vsc = vb.vmv_v_x(ra)
                            vc = vb.vfmacc(vc, vsc, vbrow)
                    vb.vse(vc, p["C"] + 4 * (i * n + j0), vl=vl)
                    rem -= vl
                    j0 += vl
