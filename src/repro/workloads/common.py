"""Workload framework: registry, allocation, chunking, scales.

Every benchmark (Tables IV & V) is a :class:`Workload` subclass providing up
to three views of the same computation:

* ``scalar_trace()`` — single-threaded scalar code (runs on ``1L``/``1b``,
  and is the per-task body on the multicore systems),
* ``vector_trace(vlen_bits)`` — the RVV-intrinsics version, strip-mined for
  the target engine's hardware vector length (``1bIV``/``1bDV``/``1b-4VL``),
* ``task_program(vector_vlen=)`` — the work-stealing decomposition
  (``1b-4L``/``1bIV-4L``); data-parallel apps attach a vector variant to each
  task so the big core's integrated unit gets used, exactly as §IV-B
  describes.

``scale`` picks input sizes: ``tiny`` for unit tests and pytest-benchmark,
``small`` for the figure harness, ``full`` for the examples.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.trace import Phase, Task, TaskProgram, TraceBuilder, VectorBuilder
from repro.utils import Xorshift64, ceil_div

SCALES = ("tiny", "small", "full")

#: data segment start; code PCs live far below
_HEAP_BASE = 0x1000_0000


class Alloc:
    """Bump allocator for workload data arrays (64-byte aligned)."""

    def __init__(self, base=_HEAP_BASE):
        self._next = base

    def array(self, n_elems, elem_bytes=4):
        size = n_elems * elem_bytes
        base = self._next
        self._next = (base + size + 63) & ~63
        return base


def chunk_ranges(n, n_chunks):
    """Split [0, n) into n_chunks nearly equal [start, stop) ranges."""
    n_chunks = max(1, min(n_chunks, n)) if n else 1
    step = ceil_div(n, n_chunks)
    out = []
    start = 0
    while start < n:
        out.append((start, min(start + step, n)))
        start += step
    return out


class Workload:
    """Base class; subclasses set ``name``, ``suite``, ``kind``."""

    name = ""
    suite = ""
    kind = ""  # 'kernel' | 'data-parallel' | 'task-parallel'
    #: approximate fraction of dynamic work that is vectorized (Table V VOp)
    vop_fraction = 1.0

    def __init__(self, scale="small", seed=1):
        if scale not in SCALES:
            raise WorkloadError(f"unknown scale {scale!r}")
        self.scale = scale
        self.seed = seed
        self.alloc = Alloc()
        self.params = self._params(scale)

    # -- subclass interface --------------------------------------------------

    def _params(self, scale):
        raise NotImplementedError

    def scalar_trace(self):
        raise NotImplementedError

    def vector_trace(self, vlen_bits):
        raise NotImplementedError("this workload has no vectorized version")

    def task_program(self, vector_vlen=None, n_chunks=16):
        """Default data-parallel decomposition: chunked parallel loop."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------

    def _tb(self):
        return TraceBuilder()

    def _vb(self, tb, vlen_bits):
        return VectorBuilder(tb, vlen_bits=vlen_bits)

    def rng(self):
        return Xorshift64(self.seed * 0x9E3779B9 + 7)


REGISTRY = {}


def register(cls):
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise WorkloadError("workload must define a name")
    if cls.name in REGISTRY:
        raise WorkloadError(f"duplicate workload {cls.name}")
    REGISTRY[cls.name] = cls
    return cls


def get_workload(name, scale="small", **kw):
    if name not in REGISTRY:
        raise WorkloadError(f"unknown workload {name!r}; have {sorted(REGISTRY)}")
    return REGISTRY[name](scale=scale, **kw)


def workloads_by_kind(kind):
    return [n for n, c in sorted(REGISTRY.items()) if c.kind == kind]


class ChunkedDataParallel(Workload):
    """Shared scaffolding for data-parallel apps: a chunkable main loop.

    Subclasses implement ``_emit_scalar(tb, start, stop)`` and
    ``_emit_vector(tb, vb, start, stop)`` over the element range plus an
    optional ``_emit_prologue`` / ``_emit_epilogue`` (scalar-only work such
    as Smith-Waterman's traceback, included in every view).
    """

    def _n(self):
        raise NotImplementedError

    def _emit_scalar(self, tb, start, stop):
        raise NotImplementedError

    def _emit_vector(self, tb, vb, start, stop):
        raise NotImplementedError

    def _emit_prologue(self, tb):
        pass

    def _emit_epilogue(self, tb):
        pass

    def scalar_trace(self):
        tb = self._tb()
        self._emit_prologue(tb)
        self._emit_scalar(tb, 0, self._n())
        self._emit_epilogue(tb)
        return tb.finish(self.name)

    def vector_trace(self, vlen_bits):
        tb = self._tb()
        vb = self._vb(tb, vlen_bits)
        self._emit_prologue(tb)
        self._emit_vector(tb, vb, 0, self._n())
        self._emit_epilogue(tb)
        return tb.finish(self.name)

    def task_program(self, vector_vlen=None, n_chunks=16):
        tasks = []
        for tid, (start, stop) in enumerate(chunk_ranges(self._n(), n_chunks)):
            tb = self._tb()
            self._emit_scalar(tb, start, stop)
            traces = {"scalar": tb.finish(f"{self.name}.s{tid}")}
            if vector_vlen:
                tbv = self._tb()
                vbv = self._vb(tbv, vector_vlen)
                self._emit_vector(tbv, vbv, start, stop)
                traces["vector"] = tbv.finish(f"{self.name}.v{tid}")
            tasks.append(Task(tid, traces))
        ptb = self._tb()
        self._emit_prologue(ptb)
        phases = [Phase(tasks, serial=ptb.finish(f"{self.name}.pro"))]
        etb = self._tb()
        self._emit_epilogue(etb)
        epi = etb.finish(f"{self.name}.epi")
        if len(epi):
            phases.append(Phase((), serial=epi))
        return TaskProgram(phases, name=self.name)
