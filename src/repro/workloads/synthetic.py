"""Synthetic phase-structure microbenchmarks (``kind="synthetic"``).

Unlike the Tables IV & V apps, these two workloads exist to exercise
specific *temporal* regimes of the simulator — the phase taxonomy that
:mod:`repro.obs.phases` detects and that ``benchmarks/
bench_sim_throughput.py`` stresses:

* ``switch_thrash`` — alternating scalar stretches and short vector
  regions, each region re-arming the §III-B mode-switch penalty on a
  VLITTLE system. One run walks the full scalar → mode-switch →
  vector-burst cycle dozens of times, which makes it the canonical input
  for ``bigvlittle phases`` and for quiescence-skipping benchmarks.
* ``dram_chain`` — a serially dependent pointer-chase at a cache-hostile
  stride: every load misses the whole hierarchy, the ROB drains while
  DRAM serves it, and the timeline shows scalar phases whose stall mix
  is almost pure ``raw_mem``.

They register under ``kind="synthetic"`` so the Tables IV & V suites
(``KERNELS`` / ``DATA_PARALLEL`` / ``TASK_PARALLEL``) — and therefore
every figure and energy table — are unchanged. The experiment runner
maps synthetic workloads onto any system as a single trace: vectorized
where the system has an engine, scalar otherwise.

Constructor keywords override the per-scale defaults
(``get_workload("switch_thrash", "small", regions=80, scalar=10,
nvec=16)``); the sim-throughput benchmark pins its historical parameters
that way so recorded baselines stay comparable.
"""

from __future__ import annotations

from repro.workloads.common import Workload, register


@register
class SwitchThrash(Workload):
    """Scalar / mode-switch / vector-burst alternation (§III-B thrash)."""

    name = "switch_thrash"
    suite = "synthetic"
    kind = "synthetic"

    def __init__(self, scale="small", seed=1, regions=None, scalar=None,
                 nvec=None):
        super().__init__(scale=scale, seed=seed)
        if regions is not None:
            self.params["regions"] = int(regions)
        if scalar is not None:
            self.params["scalar"] = int(scalar)
        if nvec is not None:
            self.params["nvec"] = int(nvec)

    def _params(self, scale):
        # scalar = addi count per region: long enough that a scalar phase
        # spans whole sampler intervals at the documented 100-cycle default
        return {
            "tiny": dict(regions=6, scalar=300, nvec=64),
            "small": dict(regions=30, scalar=1200, nvec=256),
            "full": dict(regions=120, scalar=4000, nvec=1024),
        }[scale]

    def _bases(self, r):
        src = 0x300000 + r * 0x4000
        return src, src + 0x100000

    def scalar_trace(self):
        p = self.params
        tb = self._tb()
        for r in range(p["regions"]):
            for _ in range(p["scalar"]):
                tb.addi(None)
            src, dst = self._bases(r)
            with tb.loop(p["nvec"]) as loop:
                for i in loop:
                    x = tb.flw(src + 4 * i)
                    y = tb.fadd(x, x)
                    tb.fsw(y, dst + 4 * i)
        return tb.finish(self.name)

    def vector_trace(self, vlen_bits):
        p = self.params
        tb = self._tb()
        vb = self._vb(tb, vlen_bits)
        for r in range(p["regions"]):
            for _ in range(p["scalar"]):
                tb.addi(None)
            src, dst = self._bases(r)
            for base, vl in vb.strip_mine(src, n=p["nvec"], ew=4):
                v = vb.vle(base, vl=vl)
                v2 = vb.vfadd(v, v)
                vb.vse(v2, base + 0x100000, vl=vl)
            # the OS returns the cluster to scalar mode after every region,
            # so the next region re-pays the switch penalty
            tb.csrrw()
        return tb.finish(self.name)


@register
class DramChain(Workload):
    """Serially dependent loads at a page-ish stride: pure DRAM latency."""

    name = "dram_chain"
    suite = "synthetic"
    kind = "synthetic"

    def __init__(self, scale="small", seed=1, n=None, stride=None):
        super().__init__(scale=scale, seed=seed)
        if n is not None:
            self.params["n"] = int(n)
        if stride is not None:
            self.params["stride"] = int(stride)

    def _params(self, scale):
        return {
            "tiny": dict(n=200, stride=8192),
            "small": dict(n=1000, stride=8192),
            "full": dict(n=8000, stride=8192),
        }[scale]

    def scalar_trace(self):
        p = self.params
        tb = self._tb()
        for i in range(p["n"]):
            r = tb.lw(0x1000000 + i * p["stride"])
            tb.addi(r)
        return tb.finish(self.name)

    def vector_trace(self, vlen_bits):
        # a dependent miss chain has no data parallelism to expose; vector
        # systems run the same scalar trace on their control core
        return self.scalar_trace()
