"""Genomics benchmark: Smith-Waterman local sequence alignment.

Anti-diagonal vectorization of the DP matrix fill — the standard approach —
with the three live anti-diagonals kept in rotating *contiguous diagonal
buffers* so the vector accesses are unit-stride (striped/diagonal layouts are
how real vectorized SW implementations, e.g. SWPS3/Farrar-style kernels,
avoid strided DP-matrix walks). The scalar reference walks the DP matrix
row-major with a previous-row buffer.

The DP fill is followed by a *scalar* traceback walk with data-dependent
branches and pointer-chasing loads; roughly 69% of the dynamic work is
vectorized (paper Table V), which is why ``sw`` is the one application whose
``1b-4VL`` performance still responds to big-core frequency boosts (Fig. 9).
"""

from __future__ import annotations

from repro.workloads.common import ChunkedDataParallel, register


@register
class SmithWaterman(ChunkedDataParallel):
    name = "sw"
    suite = "genomics"
    kind = "data-parallel"
    vop_fraction = 0.69

    def _params(self, scale):
        m, n = {
            "tiny": (48, 48),
            "small": (96, 96),
            "full": (256, 256),
        }[scale]
        dlen = min(m, n) + 2
        return {
            "m": m,  # reference length
            "n": n,  # query length
            "ref": self.alloc.array(m, 1),
            "query": self.alloc.array(n, 1),
            "diag": [self.alloc.array(dlen) for _ in range(3)],  # rotating
            "prev_row": self.alloc.array(n + 1),
            "row": self.alloc.array(n + 1),
            "best": self.alloc.array(m + 1),  # per-row running maxima
        }

    def _n(self):
        # vector/parallel dimension: anti-diagonals
        return self.params["m"] + self.params["n"] - 1

    def _diag_len(self, d):
        m, n = self.params["m"], self.params["n"]
        i_lo = max(1, d + 2 - n)
        i_hi = min(m, d + 1)
        return max(0, i_hi - i_lo + 1)

    def _emit_scalar(self, tb, start, stop):
        """Row-major scalar DP over the anti-diagonal range's rows."""
        p = self.params
        n = p["n"]
        # scalar code processes the equivalent amount of DP cells row-wise
        cells = sum(self._diag_len(d) for d in range(start, stop))
        rows = max(1, cells // n)
        with tb.loop(rows, overhead=False) as rloop:
            for _ in rloop:
                rref = tb.lb(p["ref"])
                with tb.loop(n) as jloop:
                    for j in jloop:
                        rq = tb.lb(p["query"] + j)
                        match = tb.xor(rref, rq)
                        diag = tb.lw(p["prev_row"] + 4 * j)
                        up = tb.lw(p["prev_row"] + 4 * (j + 1))
                        left = tb.lw(p["row"] + 4 * j)
                        sc = tb.add(diag, match)
                        m1 = tb.fmax(sc, up)
                        m2 = tb.fmax(m1, left)
                        zero = tb.li()
                        h = tb.fmax(m2, zero)
                        tb.sw(h, p["row"] + 4 * (j + 1))
                tb.sw(rref, p["best"])

    def _emit_vector(self, tb, vb, start, stop):
        """Anti-diagonal vector DP with unit-stride rotating diag buffers."""
        p = self.params
        outer_head = tb.pc
        for d in range(start, stop):
            tb.set_pc(outer_head)
            length = self._diag_len(d)
            if length == 0:
                continue
            cur = p["diag"][d % 3]
            prev = p["diag"][(d - 1) % 3]
            prev2 = p["diag"][(d - 2) % 3]
            rem = length
            c0 = 0
            head = tb.pc
            while rem > 0:
                tb.set_pc(head)
                vl = vb.vsetvl(rem, ew=4)
                vdiag = vb.vle(prev2 + 4 * c0, vl=vl)
                vup = vb.vle(prev + 4 * c0, vl=vl)
                vleft = vb.vle(prev + 4 * (c0 + 1), vl=vl)
                vref = vb.vle(p["ref"] + (d - c0) % max(p["m"] - vl, 1), ew=1, vl=vl)
                vq = vb.vle(p["query"] + c0 % max(p["n"] - vl, 1), ew=1, vl=vl)
                vmatch = vb.vxor(vref, vq)
                vsc = vb.vadd(vdiag, vmatch)
                vm = vb.vmax(vsc, vup)
                vm = vb.vmax(vm, vleft)
                vzero = vb.vmv_v_x(tb.li())
                vh = vb.vmax(vm, vzero)
                vb.vse(vh, cur + 4 * c0, vl=vl)
                rem -= vl
                c0 += vl
                tb.branch(taken=rem > 0, target=head if rem > 0 else None)

    def _emit_epilogue(self, tb):
        """Scalar traceback: ~31% of dynamic work, data-dependent walk."""
        p = self.params
        m, n = p["m"], p["n"]
        rng = self.rng()
        # pointer-chasing walk over the scores with unpredictable branches,
        # sized so the scalar share of dynamic work matches Table V's VOp
        steps = int(m * n * (1 - self.vop_fraction) / 4)
        head = tb.pc
        i, j = m, n
        for k in range(steps):
            tb.set_pc(head)
            h = tb.lw(p["prev_row"] + 4 * (j % (n + 1)))
            d = tb.lw(p["row"] + 4 * (j % (n + 1)))
            c1 = tb.slt(d, h)
            tb.branch(taken=rng.random() < 0.55, cond_reg=c1)
            u = tb.add(h, d)
            c2 = tb.slt(u, h)
            tb.branch(taken=rng.random() < 0.5, cond_reg=c2)
            move = rng.randint(0, 2)
            if move == 0 and i > 1:
                i -= 1
            elif move == 1 and j > 1:
                j -= 1
            else:
                i, j = max(i - 1, 1), max(j - 1, 1)
            tb.branch(taken=k != steps - 1, target=head if k != steps - 1 else None)