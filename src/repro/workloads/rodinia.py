"""Rodinia-derived data-parallel applications (paper Table V).

Each generator reproduces the algorithmic structure — loop nests, operation
mix, and memory access pattern — of the corresponding Rodinia benchmark at
reduced input sizes (the paper's gem5 runs took up to 20 hours each; a pure
Python cycle-level model needs proportionally smaller inputs, which preserves
the *relative* behaviour across systems).
"""

from __future__ import annotations

from repro.workloads.common import ChunkedDataParallel, register


@register
class Backprop(ChunkedDataParallel):
    """Fully-connected layer forward pass + sigmoid activation.

    For each input unit the weight row is walked unit-stride while the
    output-unit accumulator vector sits in registers (vectorized over output
    units j): ``out[j] += in[i] * w[i][j]``.
    """

    name = "backprop"
    suite = "rodinia"
    kind = "data-parallel"

    def _params(self, scale):
        n_in, n_out = {
            "tiny": (16, 64),
            "small": (48, 256),
            "full": (128, 1024),
        }[scale]
        return {
            "n_in": n_in,
            "n_out": n_out,
            "input": self.alloc.array(n_in),
            "w": self.alloc.array(n_in * n_out),
            "out": self.alloc.array(n_out),
        }

    def _n(self):
        return self.params["n_out"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        n_out = p["n_out"]
        with tb.loop(stop - start) as jloop:
            for jj in jloop:
                j = start + jj
                acc = tb.li()
                with tb.loop(p["n_in"]) as iloop:
                    for i in iloop:
                        rin = tb.flw(p["input"] + 4 * i)
                        rw = tb.flw(p["w"] + 4 * (i * n_out + j))
                        acc = tb.fmadd(rin, rw, acc)
                # sigmoid: 1 / (1 + e^-x), e^-x by 4-term polynomial
                e = acc
                for _ in range(3):
                    e = tb.fmadd(e, acc, acc)
                one = tb.li()
                den = tb.fadd(e, one)
                sig = tb.fdiv(one, den)
                tb.fsw(sig, p["out"] + 4 * j)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        n_out = p["n_out"]
        rem = stop - start
        j0 = start
        head = tb.pc
        while rem > 0:
            tb.set_pc(head)
            vl = vb.vsetvl(rem, ew=4)
            vacc = vb.vmv_v_x(tb.li())
            with tb.loop(p["n_in"]) as iloop:
                for i in iloop:
                    rin = tb.flw(p["input"] + 4 * i)
                    vw = vb.vle(p["w"] + 4 * (i * n_out + j0), vl=vl)
                    vin = vb.vmv_v_x(rin)
                    vacc = vb.vfmacc(vacc, vin, vw)
            ve = vacc
            for _ in range(3):
                ve = vb.vfmacc(ve, vacc, vacc)
            vone = vb.vmv_v_x(tb.li())
            vden = vb.vfadd(ve, vone)
            vsig = vb.vfdiv(vone, vden)
            vb.vse(vsig, p["out"] + 4 * j0, vl=vl)
            rem -= vl
            j0 += vl
            tb.branch(taken=rem > 0, target=head if rem > 0 else None)


@register
class KMeans(ChunkedDataParallel):
    """K-means clustering: per-point distance to every centroid + argmin.

    Points are stored [point][dim]; the vector version vectorizes over points
    with constant-stride feature loads (stride = ndims*4) and a register
    min/argmin update via compare masks and merges.
    """

    name = "kmeans"
    suite = "rodinia"
    kind = "data-parallel"

    def _params(self, scale):
        n, dims, k, iters = {
            "tiny": (128, 8, 4, 1),
            "small": (512, 12, 5, 2),
            "full": (2048, 16, 8, 3),
        }[scale]
        return {
            "n": n,
            "dims": dims,
            "k": k,
            "iters": iters,
            "pts": self.alloc.array(n * dims),
            "cent": self.alloc.array(k * dims),
            "assign": self.alloc.array(n),
        }

    def _n(self):
        return self.params["n"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        dims, k = p["dims"], p["k"]
        with tb.loop(p["iters"], overhead=False) as outer:
            for _ in outer:
                with tb.loop(stop - start) as ploop:
                    for pp in ploop:
                        pt = start + pp
                        best = tb.li()
                        with tb.loop(k) as cloop:
                            for c in cloop:
                                acc = tb.li()
                                with tb.loop(dims) as dloop:
                                    for d in dloop:
                                        rx = tb.flw(p["pts"] + 4 * (pt * dims + d))
                                        rc = tb.flw(p["cent"] + 4 * (c * dims + d))
                                        diff = tb.fsub(rx, rc)
                                        acc = tb.fmadd(diff, diff, acc)
                                cmp_ = tb.fcmp(acc, best)
                                best = tb.fmin(acc, best)
                                tb.branch(taken=(c % 2 == 0), cond_reg=cmp_)
                        tb.sw(best, p["assign"] + 4 * pt)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        dims, k = p["dims"], p["k"]
        stride = dims * 4
        with tb.loop(p["iters"], overhead=False) as outer:
            for _ in outer:
                rem = stop - start
                p0 = start
                head = tb.pc
                while rem > 0:
                    tb.set_pc(head)
                    vl = vb.vsetvl(rem, ew=4)
                    vbest = vb.vmv_v_x(tb.li())
                    vassign = vb.vmv_v_x(tb.li())
                    with tb.loop(k) as cloop:
                        for c in cloop:
                            vacc = vb.vmv_v_x(tb.li())
                            with tb.loop(dims) as dloop:
                                for d in dloop:
                                    vx = vb.vlse(p["pts"] + 4 * (p0 * dims + d),
                                                 stride=stride, vl=vl)
                                    rc = tb.flw(p["cent"] + 4 * (c * dims + d))
                                    vc = vb.vmv_v_x(rc)
                                    vdiff = vb.vfsub(vx, vc)
                                    vacc = vb.vfmacc(vacc, vdiff, vdiff)
                            m = vb.vmflt(vacc, vbest)
                            vbest = vb.vfmin(vacc, vbest)
                            vid = vb.vid()
                            vassign = vb.vmerge(vid, vassign, mask=m)
                    vb.vse(vassign, p["assign"] + 4 * p0, vl=vl)
                    rem -= vl
                    p0 += vl
                    tb.branch(taken=rem > 0, target=head if rem > 0 else None)


@register
class ParticleFilter(ChunkedDataParallel):
    """Particle filter tracking step: likelihood from indexed image gathers,
    weight normalization (reduction), and resampling gathers."""

    name = "particlefilter"
    suite = "rodinia"
    kind = "data-parallel"
    vop_fraction = 0.9

    def _params(self, scale):
        n, npts = {
            "tiny": (128, 4),
            "small": (512, 8),
            "full": (2048, 12),
        }[scale]
        img_side = 64
        return {
            "n": n,
            "npts": npts,  # measurement points per particle
            "img_side": img_side,
            "img": self.alloc.array(img_side * img_side),
            "xs": self.alloc.array(n),
            "ys": self.alloc.array(n),
            "w": self.alloc.array(n),
            "cdf": self.alloc.array(n),
        }

    def _n(self):
        return self.params["n"]

    def _img_addr(self, rng, p):
        side = p["img_side"]
        return p["img"] + 4 * (rng.randint(0, side - 1) * side + rng.randint(0, side - 1))

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        rng = self.rng()
        with tb.loop(stop - start) as ploop:
            for pp in ploop:
                i = start + pp
                rx = tb.flw(p["xs"] + 4 * i)
                ry = tb.flw(p["ys"] + 4 * i)
                acc = tb.li()
                with tb.loop(p["npts"]) as mloop:
                    for _ in mloop:
                        rpix = tb.flw(self._img_addr(rng, p))  # indexed lookup
                        # likelihood: ((pix-fg)^2 - (pix-bg)^2)/50 + exp-poly
                        d1 = tb.fsub(rpix, rx)
                        d2 = tb.fsub(rpix, ry)
                        sq1 = tb.fmul(d1, d1)
                        lk = tb.fmadd(d2, d2, sq1)
                        e1 = tb.fmadd(lk, lk, sq1)
                        e2 = tb.fmadd(e1, lk, d1)
                        acc = tb.fadd(acc, e2)
                # exp(-acc/2) ~ polynomial
                e = acc
                for _ in range(3):
                    e = tb.fmadd(e, acc, ry)
                tb.fsw(e, p["w"] + 4 * i)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        rng = self.rng()
        rem = stop - start
        i0 = start
        head = tb.pc
        while rem > 0:
            tb.set_pc(head)
            vl = vb.vsetvl(rem, ew=4)
            vx = vb.vle(p["xs"] + 4 * i0, vl=vl)
            vy = vb.vle(p["ys"] + 4 * i0, vl=vl)
            vacc = vb.vmv_v_x(tb.li())
            with tb.loop(p["npts"]) as mloop:
                for _ in mloop:
                    addrs = [self._img_addr(rng, p) for _ in range(vl)]
                    vpix = vb.vluxei(addrs)  # gather
                    vd1 = vb.vfsub(vpix, vx)
                    vd2 = vb.vfsub(vpix, vy)
                    vsq1 = vb.vfmul(vd1, vd1)
                    vlk = vb.vfmacc(vsq1, vd2, vd2)
                    ve1 = vb.vfmacc(vsq1, vlk, vlk)
                    ve2 = vb.vfmacc(vd1, ve1, vlk)
                    vacc = vb.vfadd(vacc, ve2)
            ve = vacc
            for _ in range(3):
                ve = vb.vfmacc(ve, vacc, vy)
            vb.vse(ve, p["w"] + 4 * i0, vl=vl)
            rem -= vl
            i0 += vl
            tb.branch(taken=rem > 0, target=head if rem > 0 else None)

    def _emit_epilogue(self, tb):
        # weight normalization: a serial reduction pass over the weights
        p = self.params
        acc = tb.li()
        with tb.loop(min(p["n"], 256)) as loop:
            for i in loop:
                r = tb.flw(p["w"] + 4 * i)
                acc = tb.fadd(acc, r)


@register
class Pathfinder(ChunkedDataParallel):
    """Dynamic-programming grid walk: dst[j] = min(src[j-1..j+1]) + wall[j].

    Unit-stride and shifted unit-stride loads; memory-bound (paper Fig. 8
    shows it benefits strongly from deeper VMU data queues).
    """

    name = "pathfinder"
    suite = "rodinia"
    kind = "data-parallel"

    def _params(self, scale):
        cols, rows = {
            "tiny": (256, 4),
            "small": (1024, 6),
            "full": (8192, 10),
        }[scale]
        return {
            "cols": cols,
            "rows": rows,
            "wall": self.alloc.array(cols * rows),
            "src": self.alloc.array(cols),
            "dst": self.alloc.array(cols),
        }

    def _n(self):
        return self.params["cols"]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        cols = p["cols"]
        with tb.loop(p["rows"], overhead=False) as rloop:
            for r in rloop:
                with tb.loop(stop - start) as jloop:
                    for jj in jloop:
                        j = start + jj
                        left = tb.lw(p["src"] + 4 * max(j - 1, 0))
                        mid = tb.lw(p["src"] + 4 * j)
                        right = tb.lw(p["src"] + 4 * min(j + 1, cols - 1))
                        m1 = tb.fmin(left, mid)
                        m2 = tb.fmin(m1, right)
                        w = tb.lw(p["wall"] + 4 * (r * cols + j))
                        s = tb.add(m2, w)
                        tb.sw(s, p["dst"] + 4 * j)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        cols = p["cols"]
        with tb.loop(p["rows"], overhead=False) as rloop:
            for r in rloop:
                rem = stop - start
                j0 = start
                head = tb.pc
                while rem > 0:
                    tb.set_pc(head)
                    vl = vb.vsetvl(rem, ew=4)
                    vleft = vb.vle(p["src"] + 4 * max(j0 - 1, 0), vl=vl)
                    vmid = vb.vle(p["src"] + 4 * j0, vl=vl)
                    vright = vb.vle(p["src"] + 4 * min(j0 + 1, cols - 1), vl=vl)
                    vm = vb.vmin(vleft, vmid)
                    vm = vb.vmin(vm, vright)
                    vw = vb.vle(p["wall"] + 4 * (r * cols + j0), vl=vl)
                    vs = vb.vadd(vm, vw)
                    vb.vse(vs, p["dst"] + 4 * j0, vl=vl)
                    rem -= vl
                    j0 += vl
                    tb.branch(taken=rem > 0, target=head if rem > 0 else None)


@register
class LavaMD(ChunkedDataParallel):
    """N-body forces within neighbor boxes: FP-heavy with reciprocal
    square-root sequences; vectorized over the neighbor particles."""

    name = "lavamd"
    suite = "rodinia"
    kind = "data-parallel"

    def _params(self, scale):
        boxes, per_box = {
            "tiny": (4, 16),
            "small": (8, 32),
            "full": (27, 64),
        }[scale]
        n = boxes * per_box
        return {
            "boxes": boxes,
            "per_box": per_box,
            "n": n,
            "pos": self.alloc.array(n * 4),  # x,y,z,q
            "frc": self.alloc.array(n * 4),
        }

    def _n(self):
        return self.params["boxes"]

    def _neighbors(self, b):
        nb = self.params["boxes"]
        return [(b + d) % nb for d in (-1, 0, 1)]

    def _emit_scalar(self, tb, start, stop):
        p = self.params
        per = p["per_box"]
        with tb.loop(stop - start) as bloop:
            for bb in bloop:
                b = start + bb
                with tb.loop(per) as iloop:
                    for i in iloop:
                        pi = (b * per + i) * 4
                        xi = tb.flw(p["pos"] + 4 * pi)
                        acc = tb.li()
                        for nbox in self._neighbors(b):
                            with tb.loop(per) as jloop:
                                for j in jloop:
                                    pj = (nbox * per + j) * 4
                                    xj = tb.flw(p["pos"] + 4 * pj)
                                    d = tb.fsub(xi, xj)
                                    r2 = tb.fmadd(d, d, acc)
                                    inv = tb.fdiv(xi, r2)  # 1/r2 via divide
                                    acc = tb.fmadd(inv, d, acc)
                        tb.fsw(acc, p["frc"] + 4 * pi)

    def _emit_vector(self, tb, vb, start, stop):
        p = self.params
        per = p["per_box"]
        with tb.loop(stop - start) as bloop:
            for bb in bloop:
                b = start + bb
                with tb.loop(per) as iloop:
                    for i in iloop:
                        pi = (b * per + i) * 4
                        xi = tb.flw(p["pos"] + 4 * pi)
                        vxi = vb.vmv_v_x(xi)
                        vacc = vb.vmv_v_x(tb.li())
                        for nbox in self._neighbors(b):
                            rem = per
                            j0 = 0
                            head = tb.pc
                            while rem > 0:
                                tb.set_pc(head)
                                vl = vb.vsetvl(rem, ew=4)
                                vxj = vb.vlse(p["pos"] + 4 * (nbox * per + j0) * 4,
                                              stride=16, vl=vl)
                                vd = vb.vfsub(vxi, vxj)
                                vr2 = vb.vfmacc(vacc, vd, vd)
                                vinv = vb.vfdiv(vxi, vr2)
                                vacc = vb.vfmacc(vacc, vinv, vd)
                                rem -= vl
                                j0 += vl
                                tb.branch(taken=rem > 0, target=head if rem > 0 else None)
                        vsum = vb.vfredsum(vacc)
                        r = vb.vmv_x_s(vsum)
                        tb.fsw(r, p["frc"] + 4 * pi)
