"""Performance/power aggregation and Pareto frontiers (Figs. 10 & 11)."""

from __future__ import annotations


def pareto_frontier(points):
    """Given (time, power, tag) points (lower is better on both axes),
    return the subset on the Pareto-optimal frontier, sorted by power."""
    pts = sorted(points, key=lambda p: (p[1], p[0]))
    out = []
    best_time = float("inf")
    for t, w, tag in pts:
        if t < best_time:
            out.append((t, w, tag))
            best_time = t
    return out


def dominates(a, b):
    """True if point a=(time, power) dominates b (<= on both, < on one)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def energy_j(time_ps, power_w):
    """Energy of a run in joules."""
    return time_ps * 1e-12 * power_w
