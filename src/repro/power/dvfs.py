"""DVFS operating points and average power (paper §VII, Table VII).

The paper takes per-cluster average power at each voltage/frequency level
from Odroid XU+E (Exynos 5410: A15 big + A7 little) measurements [67]. The
big-core column survives in the available text; the little-core column is
garbled, so it is reconstructed from the same platform's published A7-vs-A15
power ratio (~8-12x lower at matched points) with the canonical cubic-ish
growth across V/f points. Figures 9-11 depend only on the big:little power
*ratios* across the grid, which this preserves.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: big-core levels: name -> (GHz, average W per core)
BIG_LEVELS = {
    "b0": (0.8, 0.460),
    "b1": (1.0, 0.591),
    "b2": (1.2, 0.841),
    "b3": (1.4, 1.205),
}

#: little-core levels: name -> (GHz, average W per core); reconstructed.
LITTLE_LEVELS = {
    "l0": (0.6, 0.044),
    "l1": (0.8, 0.062),
    "l2": (1.0, 0.089),
    "l3": (1.2, 0.130),
}

#: Tarantula ratio (paper §VII): the decoupled vector engine draws ~40%
#: more power than its out-of-order control core at the same V/f point.
DVE_POWER_RATIO = 1.4


def big_level(name):
    if name not in BIG_LEVELS:
        raise ConfigError(f"unknown big level {name!r}")
    return BIG_LEVELS[name]


def little_level(name):
    if name not in LITTLE_LEVELS:
        raise ConfigError(f"unknown little level {name!r}")
    return LITTLE_LEVELS[name]


def grid():
    """All 16 (big, little) level combinations of Table VII."""
    return [(b, l) for b in BIG_LEVELS for l in LITTLE_LEVELS]


def power_split(system_name, big="b1", little="l1", n_little=4):
    """``(big-cluster W, engine/little-cluster W)`` at a DVFS point.

    The split powers the energy-over-time timeline columns: the first
    component is the out-of-order big cluster, the second is whatever
    data-parallel engine the system carries (the VLITTLE little cluster,
    the decoupled Tarantula-style engine, or the plain little cluster).
    ``power_split(...)[0] + power_split(...)[1]`` is by construction the
    exact float :func:`system_power_w` returns, so cumulative timeline
    joules always reconcile with end-of-run energy totals.
    """
    fb, pb = big_level(big)
    fl, pl = little_level(little)
    if system_name == "1L":
        return 0.0, pl
    if system_name == "1b":
        return pb, 0.0
    if system_name in ("1bIV",):
        return pb, 0.0  # the IVU reuses existing pipelines
    if system_name == "1bDV":
        return pb, pb * DVE_POWER_RATIO
    if system_name in ("1b-4L", "1bIV-4L", "1b-4VL"):
        return pb, n_little * pl
    raise ConfigError(f"unknown system {system_name!r}")


def system_power_w(system_name, big="b1", little="l1", n_little=4):
    """Average power of one simulated system at a DVFS point.

    Follows the paper's assumptions: ``1bIV-4L`` and ``1b-4VL`` draw the same
    as ``1b-4L`` (the vector-specific components are small FIFOs, power-gated
    in scalar mode and replacing front-end activity in vector mode); ``1bDV``
    adds a vector engine at 1.4x the big core's power.
    """
    big_w, engine_w = power_split(system_name, big, little, n_little)
    return big_w + engine_w


def freqs(big="b1", little="l1"):
    """(big GHz, little GHz) for a pair of level names."""
    return big_level(big)[0], little_level(little)[0]
