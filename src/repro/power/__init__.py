"""Power: DVFS levels (Table VII), system power, Pareto frontiers."""

from repro.power.dvfs import (
    BIG_LEVELS,
    DVE_POWER_RATIO,
    LITTLE_LEVELS,
    big_level,
    freqs,
    grid,
    little_level,
    power_split,
    system_power_w,
)
from repro.power.model import dominates, energy_j, pareto_frontier

__all__ = [
    "BIG_LEVELS",
    "LITTLE_LEVELS",
    "DVE_POWER_RATIO",
    "big_level",
    "little_level",
    "grid",
    "freqs",
    "power_split",
    "system_power_w",
    "pareto_frontier",
    "dominates",
    "energy_j",
]
