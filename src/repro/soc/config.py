"""System configurations (paper Tables II & III).

The seven evaluated systems:

========  ============================================================
``1L``    one little core (the normalization baseline of Fig. 4)
``1b``    one big out-of-order core
``1bIV``  big core + 128-bit integrated vector unit
``1b-4L`` one big + four little cores (conventional big.LITTLE)
``1bIV-4L``  ``1b-4L`` with the IVU in the big core (area-comparable)
``1bDV``  big core + 2048-bit decoupled vector engine (Tarantula-like)
``1b-4VL``  big.VLITTLE: big core + VLITTLE engine of four little cores
========  ============================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.errors import ConfigError


@dataclass
class MemConfig:
    """Cache/DRAM parameters shared by every system (paper Table II)."""

    l1_size: int = 32 * 1024
    l1_assoc: int = 2
    l1_hit_latency: int = 2
    l1i_hit_latency: int = 1
    l1_mshrs: int = 16
    l2_size: int = 1024 * 1024
    l2_assoc: int = 8
    l2_banks: int = 4
    l2_latency: int = 12
    dram_latency: int = 80
    dram_line_interval: int = 2
    line_bytes: int = 64


@dataclass
class SoCConfig:
    name: str
    n_big: int = 1
    n_little: int = 4
    vector: str = "none"  # none | ivu | dve | vlittle
    # VLITTLE engine knobs (paper §III / Fig. 7 / Fig. 8)
    chimes: int = 2
    packed: bool = True
    vmu_loadq: int = 64
    vmu_storeq: int = 64
    switch_penalty: int = 500
    vxu_extra_latency: int = 2  # ring; ~0 models a crossbar VXU
    coalesce_width: int = 4  # indexed elements examined per VMIU cycle
    # integrated unit
    ivu_vlen_bits: int = 128
    # decoupled engine
    dve_vlen_bits: int = 2048
    dve_lanes: int = 16
    # clocks (GHz); paper §IV: all at 1 GHz for §V, scaled in §VII
    freq_big: float = 1.0
    freq_little: float = 1.0
    freq_mem: float = 1.0
    mem: MemConfig = field(default_factory=MemConfig)

    def __post_init__(self):
        if self.vector not in ("none", "ivu", "dve", "vlittle"):
            raise ConfigError(f"unknown vector type {self.vector!r}")
        if self.vector == "ivu" and self.n_big < 1:
            raise ConfigError("an integrated vector unit needs a big core")
        if self.vector == "vlittle" and (self.n_big < 1 or self.n_little < 1):
            raise ConfigError("big.VLITTLE needs a big core and little cores")
        if self.n_big < 0 or self.n_little < 0 or self.n_big + self.n_little == 0:
            raise ConfigError("need at least one core")

    # ------------------------------------------------------------------ clocks

    def period_big(self):
        return max(1, round(1000 / self.freq_big))

    def period_little(self):
        return max(1, round(1000 / self.freq_little))

    def period_mem(self):
        return max(1, round(1000 / self.freq_mem))

    # ------------------------------------------------------------------ vector

    def vlen_bits(self, ew=4):
        """Hardware vector length visible to trace generation."""
        if self.vector == "ivu":
            return self.ivu_vlen_bits
        if self.vector == "dve":
            return self.dve_vlen_bits
        if self.vector == "vlittle":
            pack = max(1, 8 // ew) if self.packed else 1
            return self.chimes * self.n_little * pack * ew * 8
        return 0

    # ------------------------------------------------------------ identity

    def to_dict(self):
        """Plain-dict form of the *complete* configuration (``mem`` nested)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d):
        """Rebuild a config from :meth:`to_dict` output."""
        d = dict(d)
        mem = d.pop("mem", None)
        if isinstance(mem, MemConfig):
            d["mem"] = mem
        elif mem is not None:
            d["mem"] = MemConfig(**mem)
        return cls(**d)

    def canonical_json(self):
        """Deterministic JSON of every field — the cache-key payload.

        Keys are sorted and separators fixed so two equal configs always
        serialize to the same bytes regardless of construction order.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def config_hash(self):
        """Stable content hash of the full configuration."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def with_freqs(self, big=None, little=None):
        """A copy at different cluster frequencies (Figs. 9-11)."""
        return replace(
            self,
            freq_big=big if big is not None else self.freq_big,
            freq_little=little if little is not None else self.freq_little,
        )

    def scaled(self, **kw):
        return replace(self, **kw)


def preset(name, **overrides):
    """Build one of the paper's named systems (Table III)."""
    base = {
        "1L": dict(n_big=0, n_little=1, vector="none"),
        "1b": dict(n_big=1, n_little=0, vector="none"),
        "1bIV": dict(n_big=1, n_little=0, vector="ivu"),
        "1b-4L": dict(n_big=1, n_little=4, vector="none"),
        "1bIV-4L": dict(n_big=1, n_little=4, vector="ivu"),
        "1bDV": dict(n_big=1, n_little=0, vector="dve"),
        "1b-4VL": dict(n_big=1, n_little=4, vector="vlittle"),
    }
    if name not in base:
        raise ConfigError(f"unknown system preset {name!r}; choose from {sorted(base)}")
    kw = dict(base[name])
    kw.update(overrides)
    # memory parameters may be given as a partial dict: preset("1b", mem={...})
    if isinstance(kw.get("mem"), dict):
        kw["mem"] = MemConfig(**kw["mem"])
    return SoCConfig(name=name, **kw)


SYSTEM_NAMES = ["1L", "1b", "1bIV", "1b-4L", "1bIV-4L", "1bDV", "1b-4VL"]
