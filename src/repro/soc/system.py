"""System assembly and the multi-clock-domain simulation loop.

All component timing runs in integer picoseconds; each clock domain (big
cluster, little cluster, memory) ticks its components at its own period, so
independent big/little voltage-frequency scaling (paper §VII) falls out of
the same simulation that produces §V's iso-frequency results.

The loop is a *quiescence-skipping* scheduler: every ticking component
exposes a pure ``next_work_ps(now)`` bound — the earliest future picosecond
at which it could change architectural state — and when all components in
all three domains report no work before some time ``T``, the loop
fast-forwards each domain clock to its first tick at or after ``T`` instead
of grinding through provably idle iterations. Skipped ticks are replayed
into the per-cycle accounting (stall breakdowns, observability categories,
histograms) by each component's ``skip_ticks``, so every stat except the
``sim.ticks_*`` executed/skipped split is bit-identical with skipping
disabled (see docs/performance.md for the contract).
"""

from __future__ import annotations

import time

from repro.cores import BigCore, LittleCore
from repro.errors import ConfigError, WorkloadError
from repro.mem import MemorySystem
from repro.runtime.workstealing import WorkStealingRuntime
from repro.soc.config import SoCConfig
from repro.stats import RunResult
from repro.trace import TaskProgram, Trace, TraceSource, single_trace_program
from repro.vector import DecoupledVectorEngine, VLittleEngine

_INF = 1 << 60


class System:
    """One simulated SoC built from a :class:`SoCConfig`."""

    __slots__ = ("config", "obs", "_pending_obs", "ms", "bigs", "littles",
                 "engine", "runtime", "_pb", "_pl", "_pm", "_name",
                 "_wall_t0", "_ticks_big", "_ticks_little", "_ticks_mem",
                 "_skipped_big", "_skipped_little", "_skipped_mem",
                 "_done_blocker", "_event_unit_ticks", "hostscope",
                 "critpath")

    def __init__(self, config, obs=None):
        if not isinstance(config, SoCConfig):
            raise ConfigError("System expects a SoCConfig")
        self.config = config
        # observability is deliberately *not* part of SoCConfig: attaching an
        # Observation must never change canonical_json(), cache keys, or any
        # pre-existing stat — it only adds obs.* keys to the result
        self.obs = None
        self._pending_obs = obs
        pb, pl, pm = config.period_big(), config.period_little(), config.period_mem()
        m = config.mem
        self.ms = MemorySystem(
            n_big=config.n_big,
            n_little=config.n_little,
            l1_size=m.l1_size,
            l1_assoc=m.l1_assoc,
            l1_hit_latency=m.l1_hit_latency,
            l1i_hit_latency=m.l1i_hit_latency,
            l1_mshrs=m.l1_mshrs,
            l2_size=m.l2_size,
            l2_assoc=m.l2_assoc,
            l2_banks=m.l2_banks,
            l2_latency=m.l2_latency,
            dram_latency=m.dram_latency,
            dram_line_interval=m.dram_line_interval,
            line_bytes=m.line_bytes,
            big_period=pb,
            little_period=pl,
            mem_period=pm,
        )
        self.littles = [
            LittleCore(f"lit{i}", self.ms.little_l1i[i], self.ms.little_l1d[i],
                       period=pl, line_bytes=m.line_bytes)
            for i in range(config.n_little)
        ]
        self.engine = None
        vector_mode = "none"
        if config.vector == "vlittle":
            self.engine = VLittleEngine(
                self.littles,
                chimes=config.chimes,
                packed=config.packed,
                loadq_lines=config.vmu_loadq,
                storeq_lines=config.vmu_storeq,
                switch_penalty=config.switch_penalty,
                vxu_extra_latency=config.vxu_extra_latency,
                coalesce_width=config.coalesce_width,
                line_bytes=m.line_bytes,
                period=pl,
            )
            vector_mode = "decoupled"
        elif config.vector == "dve":
            port = self.ms.make_raw_port("dve0")
            self.engine = DecoupledVectorEngine(
                self.ms.l2, port,
                vlen_bits=config.dve_vlen_bits,
                lanes=config.dve_lanes,
                line_bytes=m.line_bytes,
                period=pb,
            )
            vector_mode = "decoupled"
        elif config.vector == "ivu":
            vector_mode = "integrated"

        self.bigs = [
            BigCore(f"big{i}", self.ms.big_l1i[i], self.ms.big_l1d[i],
                    vector_mode=vector_mode if i == 0 else "none",
                    ivu_vlen_bits=config.ivu_vlen_bits,
                    engine=self.engine if (i == 0 and vector_mode == "decoupled") else None,
                    period=pb, line_bytes=m.line_bytes)
            for i in range(config.n_big)
        ]
        self.runtime = None
        self._pb, self._pl, self._pm = pb, pl, pm
        self._name = ""
        self._ticks_big = self._ticks_little = self._ticks_mem = 0
        self._skipped_big = self._skipped_little = self._skipped_mem = 0
        self._done_blocker = None
        self._event_unit_ticks = None  # per-unit executed ticks (event loop)
        # host-side profiling (repro.obs.host) and sim-time critical-path
        # attribution (repro.obs.critpath) — like obs, never part of
        # SoCConfig or cache keys, and no-ops unless attached via run()
        self.hostscope = None
        self.critpath = None
        self._wall_t0 = time.perf_counter()

    # ------------------------------------------------------------------- run

    def load(self, program):
        """Attach a workload: a Trace or a TaskProgram."""
        if isinstance(program, Trace):
            program = single_trace_program(program)
        if not isinstance(program, TaskProgram):
            raise WorkloadError("load() expects a Trace or TaskProgram")
        self._name = program.name
        if program.total_tasks == 0:
            # pure serial: one trace on the fastest core available
            traces = [p.serial for p in program.phases if p.serial is not None]
            if len(traces) != 1:
                raise WorkloadError("a serial program must have exactly one trace")
            src = TraceSource(traces[0])
            if self.bigs:
                self.bigs[0].set_source(src)
            else:
                self.littles[0].set_source(src)
            return
        # task-parallel: the VLITTLE cluster runs in *scalar mode* — the paper
        # guarantees it behaves exactly like the equivalent big.LITTLE system
        # (§V-A), so the engine is bypassed and the cores re-enabled
        if isinstance(self.engine, VLittleEngine):
            for c in self.littles:
                c.active = True
                c.l1d.set_private_mode()
            if self.bigs:
                self.bigs[0].vector_mode = "none"
                self.bigs[0].engine = None
            self.engine = None
        # work-stealing runtime over every active core
        workers = []
        caps = []
        for b in self.bigs:
            workers.append(b)
            caps.append(self.config.vector == "ivu")
        for l in self.littles:
            if l.active:
                workers.append(l)
                caps.append(False)
        if not workers:
            raise WorkloadError("no active cores to run tasks on")
        self.runtime = WorkStealingRuntime(program, len(workers), vector_capable=caps)
        for w, worker_src in zip(workers, self.runtime.workers):
            w.set_source(worker_src)

    def _attach_obs(self, obs):
        """Fan an Observation out to every component that can report."""
        self.obs = obs
        for c in self.bigs:
            c.attach_obs(obs)
        for c in self.littles:
            c.attach_obs(obs)
        if self.engine is not None:
            self.engine.attach_obs(obs)
        self.ms.attach_obs(obs)
        if obs.sampler is not None:
            obs.sampler.attach(self, obs)

    def run(self, program=None, max_ns=50_000_000, quiet=True, obs=None,
            skip=True, loop="event", hostscope=None, critpath=None):
        """Simulate to completion; returns a :class:`RunResult`.

        ``skip`` toggles idle-time elision entirely; ``loop`` picks the
        scheduler that performs it: ``"event"`` (default) is the per-unit
        event-driven core in :mod:`repro.soc.events`, ``"legacy"`` the
        probe-every-span quiescence-skipping loop. Both are run-time knobs
        only — deliberately *not* part of :class:`SoCConfig` (they must
        never change ``canonical_json()`` or cache keys) and every stat
        except the ``sim.ticks_*`` executed/skipped split is bit-identical
        across all three schedules. ``skip=False`` always runs the dense
        reference loop that grinds through every tick.

        ``hostscope`` attaches a :class:`~repro.obs.host.HostScope` that
        attributes host wall-time to per-unit groups by timing the event
        core's dispatch — also run-time-only and stat-invisible, but it
        requires the event loop (the other loops have no per-unit
        dispatch seam to hook).

        ``critpath`` attaches a :class:`~repro.obs.critpath.CritPath`
        that charges every advance of simulated time to the unit group
        whose armed event gated it, plus a wakeup-graph profile — the
        same contract as ``hostscope``: run-time-only, stat-invisible,
        event loop required (the other loops advance all domains in
        lockstep and have no per-unit gating to attribute).
        """
        if loop not in ("event", "legacy"):
            raise ConfigError(f"unknown run loop {loop!r}")
        if hostscope is not None and (not skip or loop != "event"):
            raise ConfigError("hostscope requires the event loop "
                              "(skip=True, loop='event')")
        if critpath is not None and (not skip or loop != "event"):
            raise ConfigError("critpath requires the event loop "
                              "(skip=True, loop='event')")
        self.hostscope = hostscope
        self.critpath = critpath
        if program is not None:
            self.load(program)
        if obs is None:
            obs = self._pending_obs
        if obs is not None and self.obs is None:
            # attach after load(): task-parallel programs may bypass the
            # engine, and only surviving components should own obs units
            self._attach_obs(obs)
        if skip and loop == "event":
            from repro.soc.events import run_event_loop
            return run_event_loop(self, max_ns)
        pb, pl, pm = self._pb, self._pl, self._pm
        bigs, littles, engine, ms = self.bigs, self.littles, self.engine, self.ms
        # pre-bound engine tick callables: the engine's domain is fixed for
        # the whole run, so resolve the isinstance dispatch once here
        big_engine_tick = engine.tick if isinstance(engine, DecoupledVectorEngine) else None
        little_engine_tick = engine.tick if isinstance(engine, VLittleEngine) else None
        ms_tick = ms.tick
        done = self._done
        t_big = t_little = t_mem = 0
        t = 0
        max_ps = max_ns * 1000
        # interval sampling: with no sampler the loop pays one int compare
        sampler = self.obs.sampler if self.obs is not None else None
        next_sample = sampler.interval_ps if sampler is not None else max_ps + 1
        from repro.soc.events import WATCHDOG_PS as watchdog_ps
        from repro.soc.events import (horizon_deadlock, progress_check,
                                      watchdog_deadlock)
        loop_name = "legacy" if skip else "dense"
        last_progress_check = 0
        last_instrs = -1
        ticks_big = ticks_little = ticks_mem = 0
        skipped_big = skipped_little = skipped_mem = 0
        self._ticks_big = self._ticks_little = self._ticks_mem = 0
        self._skipped_big = self._skipped_little = self._skipped_mem = 0
        self._done_blocker = None
        self._wall_t0 = time.perf_counter()
        # adaptive probe stride: probing every unit costs ~a dozen calls, so
        # back off (doubling up to 64 iterations) while attempts keep
        # failing and reset on success. Probes are pure, so the stride can
        # never change simulated state — only how often we look for a skip.
        stride = 1
        since_probe = 0

        def fast_forward(nb, nl, nm):
            """Charge ``n`` skipped ticks to every unit of each domain and
            advance the domain clocks past them. Compensation happens
            *before* the clocks move so each unit sees the time of the
            first skipped tick."""
            nonlocal t_big, t_little, t_mem
            nonlocal skipped_big, skipped_little, skipped_mem
            if nb:
                for c in bigs:
                    c.skip_ticks(nb)
                if big_engine_tick is not None:
                    engine.skip_ticks(nb, t_big)
                t_big += nb * pb
                skipped_big += nb
            if nl:
                for c in littles:
                    c.skip_ticks(nl, t_little)
                if little_engine_tick is not None:
                    engine.skip_ticks(nl, t_little)
                t_little += nl * pl
                skipped_little += nl
            if nm:
                ms.skip_ticks(nm, t_mem)
                t_mem += nm * pm
                skipped_mem += nm

        while t < max_ps:
            t = min(t_big, t_little, t_mem)
            if t == t_big:
                for c in bigs:
                    c.set_now_hint(t)
                    c.tick(t)
                if big_engine_tick is not None:
                    big_engine_tick(t)
                t_big += pb
                ticks_big += 1
            if t == t_little:
                for c in littles:
                    c.tick(t)
                if little_engine_tick is not None:
                    little_engine_tick(t)
                t_little += pl
                ticks_little += 1
            if t == t_mem:
                ms_tick(t)
                t_mem += pm
                ticks_mem += 1
            if t >= next_sample:
                sampler.sample(t)
                next_sample = t + sampler.interval_ps
            if done():
                self._ticks_big, self._ticks_little, self._ticks_mem = \
                    ticks_big, ticks_little, ticks_mem
                self._skipped_big, self._skipped_little, self._skipped_mem = \
                    skipped_big, skipped_little, skipped_mem
                return self._result(t + max(pb, pl, pm))
            # watchdog (window must exceed any legitimate idle period,
            # e.g. a long mode-switch penalty)
            if t - last_progress_check >= watchdog_ps:  # every ~20k ns
                last_progress_check = t
                stalled, instrs = progress_check(self, t, last_instrs,
                                                 loop_name)
                if stalled:
                    self._ticks_big, self._ticks_little, self._ticks_mem = \
                        ticks_big, ticks_little, ticks_mem
                    self._skipped_big, self._skipped_little, self._skipped_mem = \
                        skipped_big, skipped_little, skipped_mem
                    raise watchdog_deadlock(self, t, loop_name)
                last_instrs = instrs
            if not skip:
                continue
            since_probe += 1
            if since_probe < stride:
                continue
            since_probe = 0
            # probe every unit at its own next tick time; 0 from any unit
            # means its next tick does real work and nothing may be
            # skipped. Cores go first: they veto most often (fetch/issue
            # retry every tick while running) and their probe is cheapest.
            T = _INF
            for c in bigs:
                b = c.next_work_ps(t_big)
                if not b:
                    T = 0
                    break
                if b < T:
                    T = b
            if T and engine is not None:
                b = engine.next_work_ps(t_big if little_engine_tick is None
                                        else t_little)
                if not b:
                    T = 0
                elif b < T:
                    T = b
            if T:
                for c in littles:
                    b = c.next_work_ps(t_little)
                    if not b:
                        T = 0
                        break
                    if b < T:
                        T = b
            if T:
                b = ms.next_work_ps(t_mem)
                if not b:
                    T = 0
                elif b < T:
                    T = b
            nb = nl = nm = 0
            if T:
                # clamp to the events the loop itself must observe at their
                # original times: the watchdog window and the max_ns
                # horizon (both independent of obs/sampler attachment, so
                # the executed/skipped split never changes when they are)
                wd = last_progress_check + watchdog_ps
                if wd < T:
                    T = wd
                if max_ps < T:
                    T = max_ps
                if T > t_big:
                    nb = (T - t_big + pb - 1) // pb
                if T > t_little:
                    nl = (T - t_little + pl - 1) // pl
                if T > t_mem:
                    nm = (T - t_mem + pm - 1) // pm
                if nb + nl + nm < 16:
                    # too short to pay for the compensation calls: skipping
                    # is always optional, so let these ticks execute
                    nb = nl = nm = 0
            if nb or nl or nm:
                # sampler boundaries that fall inside the span fire at
                # their exact original grid points: compensate every tick
                # up to and *including* the boundary (the original loop
                # samples after ticking it), sample, and keep going —
                # never forcing an executed tick, so attaching a sampler
                # cannot perturb the skip schedule either
                while next_sample < T:
                    g = t_big if next_sample <= t_big else \
                        t_big + (next_sample - t_big + pb - 1) // pb * pb
                    gl = t_little if next_sample <= t_little else \
                        t_little + (next_sample - t_little + pl - 1) // pl * pl
                    if gl < g:
                        g = gl
                    gm = t_mem if next_sample <= t_mem else \
                        t_mem + (next_sample - t_mem + pm - 1) // pm * pm
                    if gm < g:
                        g = gm
                    if g >= T:
                        break
                    fast_forward(
                        (g - t_big) // pb + 1 if g >= t_big else 0,
                        (g - t_little) // pl + 1 if g >= t_little else 0,
                        (g - t_mem) // pm + 1 if g >= t_mem else 0,
                    )
                    sampler.sample(g)
                    next_sample = g + sampler.interval_ps
                nb = (T - t_big + pb - 1) // pb if T > t_big else 0
                nl = (T - t_little + pl - 1) // pl if T > t_little else 0
                nm = (T - t_mem + pm - 1) // pm if T > t_mem else 0
                fast_forward(nb, nl, nm)
                stride = 1
            elif stride < 64:
                stride += stride
        self._ticks_big, self._ticks_little, self._ticks_mem = \
            ticks_big, ticks_little, ticks_mem
        self._skipped_big, self._skipped_little, self._skipped_mem = \
            skipped_big, skipped_little, skipped_mem
        raise horizon_deadlock(self, t, max_ns, loop_name)

    def _progress_signature(self):
        """Monotonic global progress count for the deadlock watchdog:
        retired instructions on every core, memory-side DRAM traffic, and
        engine instruction/uop issue."""
        instrs = sum(c.instrs for c in self.bigs) + sum(c.instrs for c in self.littles)
        instrs += self.ms.dram.reads + self.ms.dram.writes  # memory-side progress
        engine = self.engine
        if engine is not None:
            instrs += getattr(engine, "instrs", 0)
            if isinstance(engine, VLittleEngine):
                instrs += sum(l.uops_issued for l in engine.lanes)
        return instrs

    def _done(self):
        # O(1) fast path on quiet iterations: re-check only the unit that
        # blocked completion last time — a unit can only *become* done, so
        # while the cached blocker is still busy nothing else needs a look
        blk = self._done_blocker
        if blk is not None and not blk():
            return False
        for c in self.bigs:
            if not c.done():
                self._done_blocker = c.done
                return False
        for c in self.littles:
            if c.active and not c.done():
                self._done_blocker = c.done
                return False
        engine = self.engine
        if engine is not None and not engine.idle():
            self._done_blocker = engine.idle
            return False
        runtime = self.runtime
        if runtime is not None and not runtime.finished:
            self._done_blocker = lambda: runtime.finished
            return False
        return True

    # ----------------------------------------------------------------- stats

    def _result(self, t_ps):
        stats = {}
        stats["time_ps"] = t_ps
        stats["cycles_1ghz"] = t_ps // 1000
        # simulated clock ticks per domain: deterministic work counters that
        # let the harness report sim throughput (ticks / wall second).
        # ticks_* counts only *executed* loop ticks; ticks_skipped_* counts
        # ticks the quiescence scheduler fast-forwarded past, so
        # ticks_X + ticks_skipped_X is invariant under the skip toggle
        stats["sim.ticks_big"] = self._ticks_big
        stats["sim.ticks_little"] = self._ticks_little
        stats["sim.ticks_mem"] = self._ticks_mem
        stats["sim.ticks_skipped_big"] = self._skipped_big
        stats["sim.ticks_skipped_little"] = self._skipped_little
        stats["sim.ticks_skipped_mem"] = self._skipped_mem
        stats["fetch_requests"] = self.ms.fetch_requests()
        data_reqs = self.ms.data_requests()
        if isinstance(self.engine, DecoupledVectorEngine):
            data_reqs += self.engine.line_reqs
        stats["data_requests"] = data_reqs
        for c in self.bigs + self.littles:
            stats.update(c.stats())
        if self.engine is not None:
            stats.update(self.engine.stats())
        if self.runtime is not None:
            stats.update(self.runtime.stats())
        stats.update(self.ms.stats())
        if self.obs is not None:
            if self.obs.sampler is not None:
                # close the final (partial) interval so short runs still
                # produce at least one sample
                self.obs.sampler.sample(t_ps)
            # per-unit cycle attribution covers executed *and* compensated
            # (skipped) ticks, so validation totals include both
            self.obs.validate({
                "big": self._ticks_big + self._skipped_big,
                "little": self._ticks_little + self._skipped_little,
                "mem": self._ticks_mem + self._skipped_mem,
            })
            stats.update(self.obs.stats_dict())
        wall = time.perf_counter() - self._wall_t0
        timing = {
            "wall_s": wall,
            # sim_wall_s is the time actually spent simulating; a later
            # disk-cache load of this result keeps it and records its own
            # load_wall_s, so hit and miss costs stay distinguishable
            "sim_wall_s": wall,
            "from_cache": False,
        }
        return RunResult(self._name, self.config.name, t_ps // 1000, stats, timing)


def build_system(config):
    return System(config)
