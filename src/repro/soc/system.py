"""System assembly and the multi-clock-domain simulation loop.

All component timing runs in integer picoseconds; each clock domain (big
cluster, little cluster, memory) ticks its components at its own period, so
independent big/little voltage-frequency scaling (paper §VII) falls out of
the same simulation that produces §V's iso-frequency results.
"""

from __future__ import annotations

import time

from repro.cores import BigCore, LittleCore
from repro.errors import ConfigError, DeadlockError, WorkloadError
from repro.mem import MemorySystem
from repro.runtime.workstealing import WorkStealingRuntime
from repro.soc.config import SoCConfig
from repro.stats import RunResult
from repro.trace import TaskProgram, Trace, TraceSource, single_trace_program
from repro.vector import DecoupledVectorEngine, VLittleEngine


class System:
    """One simulated SoC built from a :class:`SoCConfig`."""

    def __init__(self, config, obs=None):
        if not isinstance(config, SoCConfig):
            raise ConfigError("System expects a SoCConfig")
        self.config = config
        # observability is deliberately *not* part of SoCConfig: attaching an
        # Observation must never change canonical_json(), cache keys, or any
        # pre-existing stat — it only adds obs.* keys to the result
        self.obs = None
        self._pending_obs = obs
        pb, pl, pm = config.period_big(), config.period_little(), config.period_mem()
        m = config.mem
        self.ms = MemorySystem(
            n_big=config.n_big,
            n_little=config.n_little,
            l1_size=m.l1_size,
            l1_assoc=m.l1_assoc,
            l1_hit_latency=m.l1_hit_latency,
            l1i_hit_latency=m.l1i_hit_latency,
            l1_mshrs=m.l1_mshrs,
            l2_size=m.l2_size,
            l2_assoc=m.l2_assoc,
            l2_banks=m.l2_banks,
            l2_latency=m.l2_latency,
            dram_latency=m.dram_latency,
            dram_line_interval=m.dram_line_interval,
            line_bytes=m.line_bytes,
            big_period=pb,
            little_period=pl,
            mem_period=pm,
        )
        self.littles = [
            LittleCore(f"lit{i}", self.ms.little_l1i[i], self.ms.little_l1d[i],
                       period=pl, line_bytes=m.line_bytes)
            for i in range(config.n_little)
        ]
        self.engine = None
        vector_mode = "none"
        if config.vector == "vlittle":
            self.engine = VLittleEngine(
                self.littles,
                chimes=config.chimes,
                packed=config.packed,
                loadq_lines=config.vmu_loadq,
                storeq_lines=config.vmu_storeq,
                switch_penalty=config.switch_penalty,
                vxu_extra_latency=config.vxu_extra_latency,
                coalesce_width=config.coalesce_width,
                line_bytes=m.line_bytes,
                period=pl,
            )
            vector_mode = "decoupled"
        elif config.vector == "dve":
            port = self.ms.make_raw_port("dve0")
            self.engine = DecoupledVectorEngine(
                self.ms.l2, port,
                vlen_bits=config.dve_vlen_bits,
                lanes=config.dve_lanes,
                line_bytes=m.line_bytes,
                period=pb,
            )
            vector_mode = "decoupled"
        elif config.vector == "ivu":
            vector_mode = "integrated"

        self.bigs = [
            BigCore(f"big{i}", self.ms.big_l1i[i], self.ms.big_l1d[i],
                    vector_mode=vector_mode if i == 0 else "none",
                    ivu_vlen_bits=config.ivu_vlen_bits,
                    engine=self.engine if (i == 0 and vector_mode == "decoupled") else None,
                    period=pb, line_bytes=m.line_bytes)
            for i in range(config.n_big)
        ]
        self.runtime = None
        self._pb, self._pl, self._pm = pb, pl, pm
        self._name = ""
        self._ticks_big = self._ticks_little = self._ticks_mem = 0
        self._wall_t0 = time.perf_counter()

    # ------------------------------------------------------------------- run

    def load(self, program):
        """Attach a workload: a Trace or a TaskProgram."""
        if isinstance(program, Trace):
            program = single_trace_program(program)
        if not isinstance(program, TaskProgram):
            raise WorkloadError("load() expects a Trace or TaskProgram")
        self._name = program.name
        if program.total_tasks == 0:
            # pure serial: one trace on the fastest core available
            traces = [p.serial for p in program.phases if p.serial is not None]
            if len(traces) != 1:
                raise WorkloadError("a serial program must have exactly one trace")
            src = TraceSource(traces[0])
            if self.bigs:
                self.bigs[0].set_source(src)
            else:
                self.littles[0].set_source(src)
            return
        # task-parallel: the VLITTLE cluster runs in *scalar mode* — the paper
        # guarantees it behaves exactly like the equivalent big.LITTLE system
        # (§V-A), so the engine is bypassed and the cores re-enabled
        if isinstance(self.engine, VLittleEngine):
            for c in self.littles:
                c.active = True
                c.l1d.set_private_mode()
            if self.bigs:
                self.bigs[0].vector_mode = "none"
                self.bigs[0].engine = None
            self.engine = None
        # work-stealing runtime over every active core
        workers = []
        caps = []
        for b in self.bigs:
            workers.append(b)
            caps.append(self.config.vector == "ivu")
        for l in self.littles:
            if l.active:
                workers.append(l)
                caps.append(False)
        if not workers:
            raise WorkloadError("no active cores to run tasks on")
        self.runtime = WorkStealingRuntime(program, len(workers), vector_capable=caps)
        for w, worker_src in zip(workers, self.runtime.workers):
            w.set_source(worker_src)

    def _attach_obs(self, obs):
        """Fan an Observation out to every component that can report."""
        self.obs = obs
        for c in self.bigs:
            c.attach_obs(obs)
        for c in self.littles:
            c.attach_obs(obs)
        if self.engine is not None:
            self.engine.attach_obs(obs)
        self.ms.attach_obs(obs)
        if obs.sampler is not None:
            obs.sampler.attach(self, obs)

    def run(self, program=None, max_ns=50_000_000, quiet=True, obs=None):
        """Simulate to completion; returns a :class:`RunResult`."""
        if program is not None:
            self.load(program)
        if obs is None:
            obs = self._pending_obs
        if obs is not None and self.obs is None:
            # attach after load(): task-parallel programs may bypass the
            # engine, and only surviving components should own obs units
            self._attach_obs(obs)
        pb, pl, pm = self._pb, self._pl, self._pm
        bigs, littles, engine, ms = self.bigs, self.littles, self.engine, self.ms
        t_big = t_little = t_mem = 0
        t = 0
        max_ps = max_ns * 1000
        # interval sampling: with no sampler the loop pays one int compare
        sampler = self.obs.sampler if self.obs is not None else None
        next_sample = sampler.interval_ps if sampler is not None else max_ps + 1
        last_progress_check = 0
        last_instrs = -1
        self._ticks_big = self._ticks_little = self._ticks_mem = 0
        self._wall_t0 = time.perf_counter()

        while t < max_ps:
            t = min(t_big, t_little, t_mem)
            if t == t_big:
                for c in bigs:
                    c.set_now_hint(t)
                    c.tick(t)
                if engine is not None and isinstance(engine, DecoupledVectorEngine):
                    engine.tick(t)
                t_big += pb
                self._ticks_big += 1
            if t == t_little:
                for c in littles:
                    c.tick(t)
                if engine is not None and isinstance(engine, VLittleEngine):
                    engine.tick(t)
                t_little += pl
                self._ticks_little += 1
            if t == t_mem:
                ms.tick(t)
                t_mem += pm
                self._ticks_mem += 1
            if t >= next_sample:
                sampler.sample(t)
                next_sample = t + sampler.interval_ps
            if self._done():
                return self._result(t + max(pb, pl, pm))
            # watchdog (window must exceed any legitimate idle period,
            # e.g. a long mode-switch penalty)
            if t - last_progress_check >= 20_000_000:  # every ~20k ns
                last_progress_check = t
                instrs = sum(c.instrs for c in bigs) + sum(c.instrs for c in littles)
                instrs += ms.dram.reads + ms.dram.writes  # memory-side progress
                if engine is not None:
                    instrs += getattr(engine, "instrs", 0)
                    if isinstance(engine, VLittleEngine):
                        instrs += sum(l.uops_issued for l in engine.lanes)
                if instrs == last_instrs:
                    raise DeadlockError(t, f"no instruction progress in system {self.config.name}")
                last_instrs = instrs
        raise DeadlockError(t, f"exceeded max_ns={max_ns}")

    def _done(self):
        for c in self.bigs:
            if not c.done():
                return False
        for c in self.littles:
            if c.active and not c.done():
                return False
        if self.engine is not None and not self.engine.idle():
            return False
        if self.runtime is not None and not self.runtime.finished:
            return False
        return True

    # ----------------------------------------------------------------- stats

    def _result(self, t_ps):
        stats = {}
        stats["time_ps"] = t_ps
        stats["cycles_1ghz"] = t_ps // 1000
        # simulated clock ticks per domain: deterministic work counters that
        # let the harness report sim throughput (ticks / wall second)
        stats["sim.ticks_big"] = self._ticks_big
        stats["sim.ticks_little"] = self._ticks_little
        stats["sim.ticks_mem"] = self._ticks_mem
        stats["fetch_requests"] = self.ms.fetch_requests()
        data_reqs = self.ms.data_requests()
        if isinstance(self.engine, DecoupledVectorEngine):
            data_reqs += self.engine.line_reqs
        stats["data_requests"] = data_reqs
        for c in self.bigs + self.littles:
            stats.update(c.stats())
        if self.engine is not None:
            stats.update(self.engine.stats())
        if self.runtime is not None:
            stats.update(self.runtime.stats())
        stats.update(self.ms.stats())
        if self.obs is not None:
            if self.obs.sampler is not None:
                # close the final (partial) interval so short runs still
                # produce at least one sample
                self.obs.sampler.sample(t_ps)
            self.obs.validate({
                "big": self._ticks_big,
                "little": self._ticks_little,
                "mem": self._ticks_mem,
            })
            stats.update(self.obs.stats_dict())
        timing = {
            "wall_s": time.perf_counter() - self._wall_t0,
            "from_cache": False,
        }
        return RunResult(self._name, self.config.name, t_ps // 1000, stats, timing)


def build_system(config):
    return System(config)
