"""SoC assembly: configurations, system builder, simulation loops."""

from repro.soc.config import MemConfig, SoCConfig, SYSTEM_NAMES, preset
from repro.soc.events import EventQueue
from repro.soc.system import System, build_system

__all__ = ["MemConfig", "SoCConfig", "SYSTEM_NAMES", "preset", "System",
           "build_system", "EventQueue"]
