"""OS-level vector-mode scheduling policies (paper §III-B extension).

The paper defers the OS decision of *how* a vector region acquires the
little-core cluster when those cores are busy: "the OS can decide to either
wait, pre-empt processes running on those little cores, or simply allocate a
light-weight integrated vector unit in the big core". This module implements
those three policies as timeline composition over real simulations:

* ``wait`` — the vector region starts once the little cores drain their
  currently running tasks (remaining task work is estimated from the
  task-parallel simulation's critical path).
* ``preempt`` — the little cores are interrupted after a context-save
  penalty; the displaced task work resumes on the cluster after the vector
  region completes.
* ``fallback`` — the vector region runs immediately on the big core's
  integrated 128-bit unit while the little cores keep running tasks
  untouched.

Every policy's ingredients come from cycle-level simulation of the pieces
(tasks on the multicore, vector region on the VLITTLE engine or the IVU);
the policies differ only in how the timelines compose, which is exactly the
scheduling decision the paper leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.soc.config import preset
from repro.soc.system import System
from repro.workloads import get_workload

POLICIES = ("wait", "preempt", "fallback")


@dataclass
class ScheduleOutcome:
    policy: str
    vector_start_ps: int  # when the vector region begins executing
    vector_done_ps: int  # when the vector region's results are available
    total_ps: int  # makespan: vector region + all task work complete
    detail: dict


class VectorModeScheduler:
    """Evaluate arrival of a vector region while tasks occupy the cluster."""

    def __init__(self, task_workload, vector_workload, scale="tiny",
                 arrival_fraction=0.5, preempt_penalty=500, resume_penalty=500):
        """``arrival_fraction``: how far through the task program the vector
        request arrives (0 = immediately, 1 = after tasks finish)."""
        if not 0.0 <= arrival_fraction <= 1.0:
            raise ConfigError("arrival_fraction must be in [0, 1]")
        self.task_workload = task_workload
        self.vector_workload = vector_workload
        self.scale = scale
        self.arrival_fraction = arrival_fraction
        self.preempt_penalty = preempt_penalty
        self.resume_penalty = resume_penalty
        self._measurements = None

    # ------------------------------------------------------------ simulation

    def _measure(self):
        if self._measurements is not None:
            return self._measurements
        # tasks on the little cluster (big core is busy issuing the vector
        # region, so tasks run on the four littles via 1b-4L minus the big:
        # approximate with the full multicore — the big core's share is
        # small for the graph apps)
        tw = get_workload(self.task_workload, self.scale)
        t_tasks = System(preset("1b-4L")).run(tw.task_program()).stats["time_ps"]

        vw = get_workload(self.vector_workload, self.scale)
        cfg_vl = preset("1b-4VL")
        t_vl = System(cfg_vl).run(vw.vector_trace(cfg_vl.vlen_bits(4))).stats["time_ps"]
        vw2 = get_workload(self.vector_workload, self.scale)
        cfg_iv = preset("1bIV")
        t_iv = System(cfg_iv).run(vw2.vector_trace(cfg_iv.vlen_bits(4))).stats["time_ps"]

        self._measurements = {
            "task_total_ps": t_tasks,
            "vector_vlittle_ps": t_vl,
            "vector_ivu_ps": t_iv,
        }
        return self._measurements

    # -------------------------------------------------------------- policies

    def evaluate(self, policy):
        if policy not in POLICIES:
            raise ConfigError(f"unknown policy {policy!r}; choose from {POLICIES}")
        m = self._measure()
        arrive = int(m["task_total_ps"] * self.arrival_fraction)
        remaining = m["task_total_ps"] - arrive
        ps = 1000  # 1 GHz cycles -> ps

        if policy == "wait":
            start = arrive + remaining  # drain everything first
            done = start + m["vector_vlittle_ps"]
            total = done
            detail = {"waited_ps": remaining}
        elif policy == "preempt":
            start = arrive + self.preempt_penalty * ps
            done = start + m["vector_vlittle_ps"]
            # displaced task work resumes afterwards
            total = done + self.resume_penalty * ps + remaining
            detail = {"displaced_ps": remaining}
        else:  # fallback to the IVU
            start = arrive
            done = start + m["vector_ivu_ps"]
            # tasks keep running concurrently on the littles
            total = max(done, arrive + remaining)
            detail = {"ivu_slowdown": m["vector_ivu_ps"] / m["vector_vlittle_ps"]}

        return ScheduleOutcome(policy, start, done, total, detail)

    def best(self, objective="vector_done_ps"):
        """Pick the policy minimizing an objective ('vector_done_ps' for
        vector-region latency, 'total_ps' for system makespan)."""
        outcomes = [self.evaluate(p) for p in POLICIES]
        return min(outcomes, key=lambda o: getattr(o, objective))

    def compare(self):
        return {p: self.evaluate(p) for p in POLICIES}
