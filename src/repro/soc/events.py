"""Event-driven simulation core: per-unit pending-event scheduling.

The quiescence-skipping loop (``System.run(..., loop="legacy")``) probes
every unit each span and still executes *every* unit on every active
cycle, so one busy unit (a DRAM burst, a vector chime) forces the whole
SoC to tick densely. This module replaces that loop with a per-unit
event core: each ticking component owns a pending-event entry keyed on
picoseconds — the first domain-grid tick at or after its own
``next_work_ps()`` bound — and only units whose entry is due at the
current iteration time execute. Idle units cost *nothing* per
iteration: their per-cycle obs/breakdown charges are deferred and
settled in bulk the moment their state is about to change.

Correctness contract (same as docs/performance.md, carried over from
the skipping scheduler):

* every stat except the ``sim.ticks_*`` executed/skipped split is
  bit-identical to ``run(skip=False)``;
* ``sim.ticks_X + sim.ticks_skipped_X`` equals the dense arm's
  executed tick count per domain;
* IntervalSampler boundaries, the deadlock watchdog, and the ``max_ns``
  horizon are serviced at exactly the union-grid instants the dense
  loop would visit, so sample series and ``DeadlockError`` timestamps
  never move;
* loop selection is a run-time knob only — never part of ``SoCConfig``
  or cache keys.

Determinism rules (docs/performance.md has the full wakeup graph):

1. **Ground order.** Within one iteration at time ``T`` units are
   serviced in the dense loop's order — big cores, big-domain engine,
   little cores, little-domain engine, memory — so every executed tick
   sees exactly the state the dense loop's tick at ``T`` would have.
2. **Settle before mutate.** An idle unit's per-cycle charges are
   deferred; every path that can change state a unit's attribution or
   bound reads first *settles* the deferred window (``skip_ticks`` in
   one chunk, against the still-unchanged state) and only then mutates.
   Asynchronous inputs do this through ``_ev_notify`` hooks planted at
   the component seams: ``L2Cache.request`` (the single entry point
   into the memory side), the L1 fill waiters of both core types and
   the VMU, and ``dispatch``/``end_region`` on both engines.
3. **Re-arm on wakeup.** The same hooks invalidate the sleeping unit's
   cached bound, so it re-probes before it is next scheduled. The one
   dependency with no push seam — a big core armed on the engine's
   ``next_accept_ps`` — keeps a static wakeup edge, fired after an
   executed engine tick only when the accept bound actually moved
   (engine-drain wakeups for the mode-switch retire ride the engine's
   own probe going ``_INF`` in the re-arm pass, which always fires the
   edge). Probes are pure, so a spurious wakeup can never change state.
4. **Ties break by unit id.** Equal-time events are serviced by
   ascending unit id, which is ground order by construction.

**Dense bursts.** When consecutive iterations land on (near-)adjacent
grid instants the per-event machinery — bound selection, heap
maintenance, the re-arm pass — is pure overhead over the dense loop it
emulates, so after a short streak the loop drops into a burst: every
awake unit ticks at every slot of its domain, in ground order, with no
re-arm probes at all. Correctness rests on the probe contract alone
(ticking an awake unit before its bound only performs per-cycle
constants — exactly what ``skip_ticks`` replays), so over-executing
the awake set is stat-invisible; only the ``sim.ticks_*`` META split
moves, and its per-domain sums are preserved. Sleepers are woken by
the same hooks as ever and join the burst in ground order at their
next domain slot; the engine's push-less accept/idle edges are
re-checked after each executed engine tick when a sleeping dependent
exists. One sentinel member is probed per slot; when it goes quiet a
single sweep either promotes the next busy member to sentinel or ends
the burst, handing the gap back to the event machinery. On exit every
member — and every woken-but-not-joined sleeper — re-enters the ready
set, because the bound selection knows nothing of in-flight wakeups.

Work-stealing programs (``pure_peek=False`` sources) couple every core
through the shared task queues. Their safety comes from the probes, not
from a special mode: a core whose worker source is not done vetoes
skipping whenever its front end could peek (and thereby claim a task or
arrive at a barrier) on the next tick, so every claim happens at
exactly the dense loop's instant; a worker blocked on its *own* timers
(a full ROB behind a miss, a fetch gap, a drained source) sleeps like
any other unit.
"""

from __future__ import annotations

import heapq
import time

from repro.errors import DeadlockError
from repro.log import get_logger
from repro.vector import DecoupledVectorEngine, VLittleEngine

_INF = 1 << 60

#: Deadlock-watchdog window in ps (must exceed any legitimate idle
#: period, e.g. a long mode-switch penalty). Shared with the legacy
#: loop so DeadlockError timestamps are identical across loops.
WATCHDOG_PS = 20_000_000

_BIG, _LITTLE, _MEM = 0, 1, 2

#: consecutive near-adjacent productive iterations before the event
#: loop drops into the dense-burst regime (tick every awake unit, skip
#: the ready-set machinery), and the instant gap (in min-period slots)
#: two productive iterations may be apart and still count toward that
#: streak
_BURST_AFTER = 12
_BURST_GAP_SLOTS = 1

#: watchdog / horizon diagnostics go through the structured logger —
#: shared by both run loops so the text channel matches the shared
#: DeadlockError construction below
_wdlog = get_logger("repro.soc.watchdog")


def _grab_forensics(system, t_ps, reason):
    """Best-effort scheduling snapshot for a DeadlockError: the probes
    are pure, but an error-path diagnostic must never mask the deadlock
    it is describing, so any snapshot failure degrades to None."""
    try:
        from repro.obs.forensics import snapshot
        return snapshot(system, t_ps, reason=reason)
    except Exception:
        return None


def progress_check(system, t_ps, last_instrs, loop):
    """One watchdog window's progress check, shared by both run loops:
    returns ``(stalled, signature)`` and routes the diagnostic through
    :mod:`repro.log` (debug level — silent by default)."""
    instrs = system._progress_signature()
    stalled = instrs == last_instrs
    if _wdlog.enabled_for("debug"):
        _wdlog.debug("watchdog progress check", loop=loop, t_ps=t_ps,
                     signature=instrs, window_ps=WATCHDOG_PS,
                     stalled=stalled)
    return stalled, instrs


def watchdog_deadlock(system, t_ps, loop):
    """The watchdog's DeadlockError — one constructor for both run loops
    keeps the message and timestamp bit-identical across them — with the
    forensics snapshot attached and the failure logged (error level: a
    stalled simulation is always a bug in the workload or the model)."""
    detail = f"no instruction progress in system {system.config.name}"
    rep = _grab_forensics(system, t_ps, reason="watchdog")
    _wdlog.error(detail, loop=loop, t_ps=t_ps, window_ps=WATCHDOG_PS,
                 frontier=",".join(rep["blocking_frontier"]) if rep else "")
    return DeadlockError(t_ps, detail, forensics=rep)


def horizon_deadlock(system, t_ps, max_ns, loop):
    """The ``max_ns``-horizon DeadlockError, forensics attached. Logged
    at debug only: hitting the horizon is often deliberate (bounded
    runs, ``bigvlittle inspect --at-ns``)."""
    if _wdlog.enabled_for("debug"):
        _wdlog.debug(f"exceeded max_ns={max_ns}", loop=loop, t_ps=t_ps)
    return DeadlockError(t_ps, f"exceeded max_ns={max_ns}",
                         forensics=_grab_forensics(system, t_ps,
                                                   reason="horizon"))


class EventQueue:
    """Min-heap of per-unit pending events with lazy cancellation.

    Each unit owns at most one *armed* event — ``schedule`` re-arms it
    (cancelling any previous time) and ``cancel`` disarms it. Stale heap
    entries are dropped lazily on ``peek``/``pop``. Ties on the event
    time are broken deterministically by ascending unit id, which the
    event core assigns in ground (dense-loop) service order.
    """

    __slots__ = ("_heap", "_armed")

    def __init__(self, n_units):
        self._heap = []
        self._armed = [None] * n_units  # armed time per unit, None = idle

    def schedule(self, unit_id, t_ps):
        """Arm (or re-arm) ``unit_id``'s pending event at ``t_ps``."""
        if self._armed[unit_id] == t_ps:
            return  # already armed at this time: the entry stays valid
        self._armed[unit_id] = t_ps
        heapq.heappush(self._heap, (t_ps, unit_id))

    def cancel(self, unit_id):
        """Disarm ``unit_id``; its heap entry (if any) goes stale."""
        self._armed[unit_id] = None

    def armed_time(self, unit_id):
        """Currently armed time for ``unit_id``, or None."""
        return self._armed[unit_id]

    def peek(self):
        """``(t_ps, unit_id)`` of the earliest armed event, else None."""
        heap = self._heap
        while heap:
            t, uid = heap[0]
            if self._armed[uid] == t:
                return heap[0]
            heapq.heappop(heap)  # stale: cancelled or re-armed elsewhere
        return None

    def pop(self):
        """Pop and disarm the earliest armed event; None when empty."""
        ent = self.peek()
        if ent is None:
            return None
        heapq.heappop(self._heap)
        self._armed[ent[1]] = None
        return ent

    def __len__(self):
        """Number of armed units (stale heap entries don't count)."""
        return sum(1 for t in self._armed if t is not None)

    def __bool__(self):
        return self.peek() is not None


class _Unit:
    """Event-core bookkeeping for one ticking component.

    A unit is in exactly one scheduling state: *ready* (``exec_at == 0``
    — due at every tick of its domain until re-armed), *timed*
    (``exec_at`` holds the armed grid instant, mirrored in its domain's
    event heap) or *asleep* (``exec_at == _INF`` — waiting on a wakeup).
    ``charged`` is the first domain-grid slot whose per-cycle charge is
    still deferred; the settle discipline (module docstring, rule 2)
    guarantees the unit's attribution inputs are untouched over the
    whole deferred window, so one chunked ``skip_ticks`` replays it.
    """

    __slots__ = ("uid", "name", "domain", "owner", "tick", "probe", "skip",
                 "exec_at", "charged", "dirty", "pending", "wakes",
                 "streak", "no_probe", "executed", "burst")

    def __init__(self, uid, name, domain, owner, tick, probe, skip):
        self.uid = uid
        self.name = name
        self.domain = domain
        self.owner = owner  # object carrying the ``_ev_notify`` hook slot
        self.tick = tick
        self.probe = probe  # pure next_work_ps(now)
        self.skip = skip  # skip_ticks(n, now) compensation
        self.exec_at = 0  # everything is due at t=0, like the dense loop
        self.charged = 0  # first slot with a still-deferred cycle charge
        self.dirty = False  # cached bound invalidated by a wakeup
        self.pending = False  # queued for the end-of-iteration re-arm pass
        self.wakes = ()  # static wakeup edges (engine -> its big cores)
        self.streak = 0  # consecutive due-next-tick probe results
        self.no_probe = 0  # remaining assume-due re-arms (probe backoff)
        self.executed = 0  # executed-tick count (META, for diagnostics)
        self.burst = False  # member of the current dense burst


def _build_units(system):
    """Assemble the per-unit table in ground (dense-loop) order; wire the
    static wakeup edge (engine accept-time -> big cores) — every other
    dependency re-arms through an ``_ev_notify`` push hook.

    Returns ``(units, statics)``. Static units are little cores
    reconfigured as vector lanes (``active`` cleared at engine
    construction, before any run, and never set again): they hold no
    runtime state, receive no inputs and never do work, so the service
    loops skip them entirely and only the bulk settle passes charge
    their constant per-cycle attribution.
    """
    units = []
    statics = []

    def add(name, domain, owner, tick, probe, skip, static=False):
        u = _Unit(len(units) + len(statics), name, domain, owner, tick,
                  probe, skip)
        if static:
            u.exec_at = _INF  # permanently quiescent: settle-only
            statics.append(u)
        else:
            units.append(u)
        return u

    engine = system.engine
    big_units = [
        add(c.core_id, _BIG, c, c.tick, c.next_work_ps, c.skip_ticks)
        for c in system.bigs
    ]
    engine_unit = None
    if isinstance(engine, DecoupledVectorEngine):
        engine_unit = add("dve", _BIG, engine, engine.tick,
                          engine.next_work_ps, engine.skip_ticks)
    for c in system.littles:
        add(c.core_id, _LITTLE, c, c.tick, c.next_work_ps, c.skip_ticks,
            static=not c.active)
    if isinstance(engine, VLittleEngine):
        engine_unit = add("vcu", _LITTLE, engine, engine.tick,
                          engine.next_work_ps, engine.skip_ticks)
    ms = system.ms
    # the L2 is the single request-side entry point into the memory
    # subsystem, so it carries the memory unit's push hook
    add("mem", _MEM, ms.l2, ms.tick, ms.next_work_ps, ms.skip_ticks)

    # a big core can sleep on the engine's next_accept_ps, which the
    # engine's own execution may pull earlier — no push seam exists for
    # that, so it stays a static wakeup edge
    if engine_unit is not None:
        engine_unit.wakes = tuple(big_units)
    return units, statics



def _settle_all(units, tb, tl, tm, periods):
    """Charge every still-deferred idle slot (needed before anything
    reads obs state: sampler boundaries, run results, deadlock exits).
    Valid at any time — the settle-before-mutate discipline guarantees
    each deferred window saw no input since it began."""
    for u in units:
        d = u.domain
        target = tb if d == 0 else (tl if d == 1 else tm)
        c = u.charged
        if c < target:
            p = periods[d]
            u.skip((target - c) // p, c)
            u.charged = target


def run_event_loop(system, max_ns):
    """Drive ``system`` to completion with the per-unit event core.

    Mirrors ``System.run``'s dense semantics exactly (see module
    docstring); returns the same :class:`RunResult` and raises the same
    :class:`DeadlockError` timestamps.
    """
    pb, pl, pm = periods = (system._pb, system._pl, system._pm)
    units, statics = _build_units(system)
    allunits = units + statics
    # host-side profiling (repro.obs.host): wrap every unit's dispatch
    # callable with monotonic-clock accounting and patch the nested
    # sub-unit seams. Wrapping happens here, once, so the hot loop is
    # untouched when no hostscope is attached; probes and skip_ticks stay
    # unwrapped (they are scheduler overhead, charged to the residual).
    hs = system.hostscope
    if hs is not None:
        from repro.obs.host import unit_group
        for u in units:
            u.tick = hs.wrap(u.tick, unit_group(u.name, u.domain), arity=1)
        hs.install(system)
    # critical-path attribution (repro.obs.critpath): wrap every unit's
    # dispatch so the first execution at each new union-grid instant
    # charges the advance to its group. Wrapped *outside* any hostscope
    # wrapper so critpath bookkeeping lands in hostprof's scheduler
    # residual, not in the group walls it is measuring.
    cp = system.critpath
    wk_edges = None
    if cp is not None:
        from repro.obs.host import unit_group
        cp.attach([(u.uid, u.name, unit_group(u.name, u.domain))
                   for u in units])
        for u in units:
            u.tick = cp.wrap(u.tick, unit_group(u.name, u.domain))
        wk_edges = cp.edges
    bunits = [u for u in units if u.domain == _BIG]
    lunits = [u for u in units if u.domain == _LITTLE]
    munits = [u for u in units if u.domain == _MEM]
    bigs = system.bigs
    big1 = bigs[0] if len(bigs) == 1 else None
    # single-unit domains (always mem; big/little in most presets) keep
    # their cached minimum exact — the unit's own armed instant — and
    # bypass the heap, the armed[] table and the stale re-peek entirely
    b1 = bunits[0] if len(bunits) == 1 else None
    l1u = lunits[0] if len(lunits) == 1 else None
    m1 = munits[0] if len(munits) == 1 else None
    # small multi-unit domains (every preset: ≤ 5 littles, ≤ 2 big-domain
    # units) skip the heap and the armed[] table too: re-arms just lower
    # the cached domain minimum, and the hm == T re-peek recomputes it
    # with a linear scan — cheaper than heappush churn for a handful of
    # units, and a stale minimum still costs at most one closed-as-skipped
    # iteration (the cached minima are lower bounds by contract)
    scan0 = b1 is None and len(bunits) <= 6
    scan1 = l1u is None and len(lunits) <= 6
    scan2 = m1 is None and len(munits) <= 6
    # one heap per domain so an idle domain's whole service block can be
    # skipped with a handful of integer checks; armed times per unit
    heap0, heap1, heap2 = [], [], []
    armed = [None] * len(allunits)
    # every serviced unit starts ready: the dense loop ticks them at t=0
    rn0, rn1, rn2 = len(bunits), len(lunits), len(munits)
    dirty_n = [0, 0, 0]

    tb = tm = 0  # per-domain clocks: next unserviced grid tick
    # a little domain with no *dynamic* units never executes: park its
    # clock at infinity so every per-iteration check falls through, and
    # derive its slot count from the exit time. With static units
    # (cores reconfigured as vector lanes) this is only sound when the
    # little grid adds no union-grid instants of its own — boundary
    # timestamps (sampler, watchdog) must not move — so it is gated on
    # the little period being a multiple of another domain's.
    has_l_static = any(u.domain == _LITTLE for u in statics)
    if lunits or (has_l_static and pl % pb != 0 and pl % pm != 0):
        tl = 0
    else:
        tl = _INF
    # cached per-domain heap minima: lower bounds on the true minima,
    # re-peeked lazily after an iteration consumes (or disproves) them
    hm0 = hm1 = hm2 = _INF
    # last engine accept bound seen by the static wakeup edge; the
    # sentinel forces the first executed engine tick to fire it
    last_na = -1
    last_idle = None  # engine idle() state, tracked only inside a burst
    # dense-burst detector: count consecutive iterations landing at
    # most a micro-gap apart (a chime cadence is dense for this
    # purpose: its gaps are cheaper to tick through than to schedule)
    minp = pb if pb <= pl and pb <= pm else (pl if pl <= pm else pm)
    gapw = _BURST_GAP_SLOTS * minp
    run_ct = 0
    prevT = -1
    executed = [0, 0, 0]
    max_ps = max_ns * 1000
    sampler = system.obs.sampler if system.obs is not None else None
    next_sample = sampler.interval_ps if sampler is not None else max_ps + 1
    wd_target = WATCHDOG_PS
    # fused lower bound on the next boundary instant: one compare per
    # iteration covers sampler, watchdog and horizon together
    bmin = min(next_sample, wd_target, max_ps)
    last_instrs = -1
    done = system._done
    heappop = heapq.heappop
    heappush = heapq.heappush
    system._done_blocker = None
    system._ticks_big = system._ticks_little = system._ticks_mem = 0
    system._skipped_big = system._skipped_little = system._skipped_mem = 0
    system._wall_t0 = time.perf_counter()

    # hook context shared with the _ev_notify closures:
    # [T, ticking unit id, big clock, little clock, mem clock]
    hctx = [0, -1, 0, 0, 0]
    pend = []  # units awaiting the end-of-iteration re-arm pass

    def make_hook(u, edges=None):
        d = u.domain
        p = periods[d]
        skip = u.skip

        def hook():
            # an input is about to mutate this unit's state: settle the
            # deferred charge window first, against the pre-input state —
            # up to and including the slot at T once the unit's ground-
            # order turn this iteration has passed, else up to T
            upto = hctx[2 + d]
            if upto == hctx[0] and u.uid < hctx[1]:
                upto += p
            c = u.charged
            if c < upto:
                skip((upto - c) // p, c)
                u.charged = upto
            if not u.dirty:
                u.dirty = True
                dirty_n[d] += 1
                if not u.pending:
                    u.pending = True
                    pend.append(u)

        if edges is None:
            return hook

        # critpath wakeup-graph profiling: a separate closure so the
        # no-critpath hook pays nothing. hctx[1] is the currently
        # ticking unit (-1 outside service blocks = scheduler/external).
        wid = u.uid

        def counting_hook():
            hook()
            k = (hctx[1], wid)
            edges[k] = edges.get(k, 0) + 1

        return counting_hook

    for u in units:
        u.owner._ev_notify = make_hook(u, wk_edges)

    def settle_meta(t_exit):
        # every domain-grid slot in [0, t_exit] is serviced exactly once
        # (bulk-skipped, closed idle, or executed), and the dense loop
        # executes all of them — so the skipped count is just the slot
        # count minus the executed count, with no per-iteration
        # bookkeeping in the hot loop
        system._ticks_big, system._ticks_little, system._ticks_mem = executed
        system._skipped_big = t_exit // pb + 1 - executed[0]
        system._skipped_little = t_exit // pl + 1 - executed[1]
        system._skipped_mem = t_exit // pm + 1 - executed[2]
        system._event_unit_ticks = {u.name: u.executed for u in allunits}

    try:
        while True:
            # ---- select T: earliest pending event across ready units
            # (due at their domain's next tick) and the per-domain heaps
            T = _INF
            if rn0:
                T = tb
            if rn1 and tl < T:
                T = tl
            if rn2 and tm < T:
                T = tm
            if hm0 < T:
                T = hm0
            if hm1 < T:
                T = hm1
            if hm2 < T:
                T = hm2
            # clamp to the instants the dense loop must observe at their
            # original times. The fast path is one int compare against
            # the fused boundary bound; the grid math runs only when a
            # boundary is actually in reach. (All are obs-independent
            # except the sampler, whose boundary iterations only ever
            # close slots as skipped — they can never force an
            # execution, so attaching a sampler cannot perturb the
            # executed/skipped split.)
            if T >= bmin:
                for x in (next_sample, wd_target, max_ps):
                    if T >= x:
                        # first still-unserviced union-grid instant >= x
                        # — exactly where the dense loop would service it
                        g = tb if tb >= x else tb + (x - tb + pb - 1) // pb * pb
                        g2 = tl if tl >= x else tl + (x - tl + pl - 1) // pl * pl
                        if g2 < g:
                            g = g2
                        g2 = tm if tm >= x else tm + (x - tm + pm - 1) // pm * pm
                        if g2 < g:
                            g = g2
                        if g < T:
                            T = g

            # ---- 1. advance domain clocks over the certified-idle span
            # strictly below T (every unit's bound covers it — T is the
            # earliest pending event). Per-unit charges stay deferred;
            # the skipped-slot counts fall out of the closed-form split
            # in ``settle_meta``, so nothing is tallied here.
            if tb < T:
                tb += (T - tb + pb - 1) // pb * pb
            if tl < T:
                tl += (T - tl + pl - 1) // pl * pl
            if tm < T:
                tm += (T - tm + pm - 1) // pm * pm

            # ---- 2. service every matched domain's slot at T in ground
            # order (bigs, big-domain engine, littles, little-domain
            # engine, mem); a matched domain with nothing ready, due or
            # woken is closed as one skipped cycle without touching its
            # units. Async callbacks (fills, engine responses) clamp
            # against the owning big core's now-hint; the dense loop
            # refreshes it at every big tick, so mirror that even for
            # sleeping cores.
            if big1 is not None:  # single big core: skip the loop setup
                big1._now_hint = T if tb == T else tb - pb
            elif bigs:
                nh = T if tb == T else tb - pb
                for c in bigs:
                    c._now_hint = nh  # inlined set_now_hint (hot path)
            hctx[0] = T
            hctx[2] = tb
            hctx[3] = tl
            hctx[4] = tm
            any_exec = False
            if tb == T:
                if rn0 or dirty_n[0] or hm0 == T:
                    ex = False
                    for u in bunits:
                        ea = u.exec_at
                        if u.dirty and ea > T:
                            # woken earlier this iteration: re-probe now,
                            # exactly like dense order would see it
                            if not u.probe(T):
                                ea = u.exec_at = T
                        if ea <= T:
                            c = u.charged
                            if c < T:
                                u.skip((T - c) // pb, c)
                            u.charged = T + pb
                            hctx[1] = u.uid
                            u.tick(T)
                            u.executed += 1
                            ex = True
                            if not u.pending:
                                u.pending = True
                                pend.append(u)
                            if u.wakes:
                                # the engine's only push-less effect on a
                                # big core's probe is the accept bound
                                # (idle-drain wakeups ride the INF
                                # transition in the re-arm pass), so the
                                # static edge fires only when that bound
                                # actually moved — not on every tick
                                na = u.owner.next_accept_ps(T)
                                if na != last_na:
                                    last_na = na
                                    for w in u.wakes:
                                        # ready dependents re-arm through
                                        # their own pend entry every tick
                                        # — only sleeping/timed ones need
                                        # waking
                                        if w.exec_at:
                                            if not w.dirty:
                                                w.dirty = True
                                                dirty_n[0] += 1
                                            if not w.pending:
                                                w.pending = True
                                                pend.append(w)
                    if ex:
                        executed[0] += 1
                        any_exec = True
                # advance only after the block: hooks firing during these
                # ticks must still see the slot at T as unserviced for
                # units whose ground-order turn hasn't come yet
                tb += pb
                hctx[2] = tb
            if tl == T:
                if rn1 or dirty_n[1] or hm1 == T:
                    ex = False
                    for u in lunits:
                        ea = u.exec_at
                        if u.dirty and ea > T:
                            if not u.probe(T):
                                ea = u.exec_at = T
                        if ea <= T:
                            c = u.charged
                            if c < T:
                                u.skip((T - c) // pl, c)
                            u.charged = T + pl
                            hctx[1] = u.uid
                            u.tick(T)
                            u.executed += 1
                            ex = True
                            if not u.pending:
                                u.pending = True
                                pend.append(u)
                            if u.wakes:  # see the big-domain note
                                na = u.owner.next_accept_ps(T)
                                if na != last_na:
                                    last_na = na
                                    for w in u.wakes:
                                        if w.exec_at:
                                            if not w.dirty:
                                                w.dirty = True
                                                dirty_n[0] += 1
                                            if not w.pending:
                                                w.pending = True
                                                pend.append(w)
                    if ex:
                        executed[1] += 1
                        any_exec = True
                tl += pl
                hctx[3] = tl
            if tm == T:
                if rn2 or dirty_n[2] or hm2 == T:
                    ex = False
                    for u in munits:
                        ea = u.exec_at
                        if u.dirty and ea > T:
                            if not u.probe(T):
                                ea = u.exec_at = T
                        if ea <= T:
                            c = u.charged
                            if c < T:
                                u.skip((T - c) // pm, c)
                            u.charged = T + pm
                            hctx[1] = u.uid
                            u.tick(T)
                            u.executed += 1
                            ex = True
                            if not u.pending:
                                u.pending = True
                                pend.append(u)
                    if ex:
                        executed[2] += 1
                        any_exec = True
                tm += pm
                hctx[4] = tm
            hctx[1] = -1  # ticks are over: hooks settle only below T now

            # ---- 3. re-arm everything that executed or was woken (a
            # pure wakeup re-probe can only tighten a schedule, never
            # skip work). Inlined _rearm, hot path first: a unit on a
            # long always-due streak skips the probe entirely — the
            # legacy scheduler's adaptive stride, per unit. The ramp is
            # slow (streak/4) and the cap small (8) so a unit that goes
            # quiescent over-executes at most 8 ticks — executing is
            # always safe, only skipping needs the probe's proof — while
            # sustained busy runs amortize their probe cost away.
            if pend:
                for u in pend:
                    u.pending = False
                    u.dirty = False
                    if u.no_probe:
                        u.no_probe -= 1
                        continue  # stays ready (exec_at == 0 holds)
                    d = u.domain
                    uid = u.uid
                    was_ready = u.exec_at == 0
                    now = tb if d == 0 else (tl if d == 1 else tm)
                    b = u.probe(now)
                    if b <= now:
                        # due next tick (0, or a stale-past bound)
                        s = u.streak + 1
                        u.streak = s
                        if s >= 4:
                            n = s >> 2
                            u.no_probe = n if n < 8 else 8
                        ready = True
                    else:
                        u.streak = 0
                        ready = False
                        if b >= _INF:
                            u.exec_at = _INF  # asleep until woken
                            if u is b1:
                                hm0 = _INF
                            elif u is l1u:
                                hm1 = _INF
                            elif u is m1:
                                hm2 = _INF
                            elif armed[uid] is not None:
                                armed[uid] = None
                            # a unit with static wake edges going
                            # quiescent is itself a wakeup: the input
                            # that re-armed it (e.g. the last VMU
                            # fill, delivered by a mem tick) may have
                            # established the very condition — engine
                            # idle, accept space — its dependents
                            # sleep on, without any engine tick ever
                            # firing the execution-time edge
                            for w in u.wakes:
                                if w.exec_at:
                                    if not w.dirty:
                                        w.dirty = True
                                        dirty_n[w.domain] += 1
                                    if not w.pending:
                                        w.pending = True
                                        pend.append(w)
                        else:
                            p = periods[d]
                            t = now + (b - now + p - 1) // p * p
                            u.exec_at = t
                            if u is b1:
                                hm0 = t  # exact: the only big unit
                            elif u is l1u:
                                hm1 = t
                            elif u is m1:
                                hm2 = t
                            elif d == 0:
                                if scan0:
                                    if t < hm0:
                                        hm0 = t
                                elif armed[uid] != t:
                                    armed[uid] = t
                                    heappush(heap0, (t, uid))
                                    if t < hm0:
                                        hm0 = t
                            elif d == 1:
                                if scan1:
                                    if t < hm1:
                                        hm1 = t
                                elif armed[uid] != t:
                                    armed[uid] = t
                                    heappush(heap1, (t, uid))
                                    if t < hm1:
                                        hm1 = t
                            else:
                                if scan2:
                                    if t < hm2:
                                        hm2 = t
                                elif armed[uid] != t:
                                    armed[uid] = t
                                    heappush(heap2, (t, uid))
                                    if t < hm2:
                                        hm2 = t
                    if ready:
                        u.exec_at = 0
                        if u is b1:
                            hm0 = _INF
                        elif u is l1u:
                            hm1 = _INF
                        elif u is m1:
                            hm2 = _INF
                        elif armed[uid] is not None:
                            armed[uid] = None
                        if not was_ready:
                            if d == 0:
                                rn0 += 1
                            elif d == 1:
                                rn1 += 1
                            else:
                                rn2 += 1
                    elif was_ready:
                        if d == 0:
                            rn0 -= 1
                        elif d == 1:
                            rn1 -= 1
                        else:
                            rn2 -= 1
                del pend[:]
                dirty_n[0] = dirty_n[1] = dirty_n[2] = 0
            # a cached heap minimum equal to T is spent: either its
            # events were just serviced and re-armed later, or a cancel
            # left it stale (it is only ever a lower bound) — re-peek,
            # dropping entries whose armed time moved
            if hm0 == T:
                if b1 is not None:
                    ea = b1.exec_at
                    hm0 = ea if 0 < ea < _INF else _INF
                elif scan0:
                    hm0 = _INF
                    for u in bunits:
                        ea = u.exec_at
                        if 0 < ea < hm0:
                            hm0 = ea
                else:
                    while heap0:
                        t0, uid0 = heap0[0]
                        if armed[uid0] == t0:
                            break
                        heappop(heap0)
                    hm0 = heap0[0][0] if heap0 else _INF
            if hm1 == T:
                if l1u is not None:
                    ea = l1u.exec_at
                    hm1 = ea if 0 < ea < _INF else _INF
                elif scan1:
                    hm1 = _INF
                    for u in lunits:
                        ea = u.exec_at
                        if 0 < ea < hm1:
                            hm1 = ea
                else:
                    while heap1:
                        t0, uid0 = heap1[0]
                        if armed[uid0] == t0:
                            break
                        heappop(heap1)
                    hm1 = heap1[0][0] if heap1 else _INF
            if hm2 == T:
                if m1 is not None:
                    ea = m1.exec_at
                    hm2 = ea if 0 < ea < _INF else _INF
                elif scan2:
                    hm2 = _INF
                    for u in munits:
                        ea = u.exec_at
                        if 0 < ea < hm2:
                            hm2 = ea
                else:
                    while heap2:
                        t0, uid0 = heap2[0]
                        if armed[uid0] == t0:
                            break
                        heappop(heap2)
                    hm2 = heap2[0][0] if heap2 else _INF

            # ---- 4. boundaries, in the dense loop's order: sample,
            # done, watchdog, horizon. The fused ``bmin`` bound keeps
            # the common iteration at one compare; a parked little clock
            # resolves to the first unserviced little-grid slot whenever
            # static units' deferred charges are settled.
            if T < bmin:
                if any_exec and done():
                    tlx = tl if tl != _INF else (T // pl + 1) * pl
                    _settle_all(allunits, tb, tlx, tm, periods)
                    settle_meta(T)
                    if cp is not None:
                        cp.finalize(T + max(pb, pl, pm))
                    return system._result(T + max(pb, pl, pm))
            else:
                tlx = tl if tl != _INF else (T // pl + 1) * pl
                if T >= next_sample:
                    _settle_all(allunits, tb, tlx, tm, periods)
                    sampler.sample(T)
                    next_sample = T + sampler.interval_ps
                if any_exec and done():
                    _settle_all(allunits, tb, tlx, tm, periods)
                    settle_meta(T)
                    if cp is not None:
                        cp.finalize(T + max(pb, pl, pm))
                    return system._result(T + max(pb, pl, pm))
                if T >= wd_target:
                    wd_target = T + WATCHDOG_PS
                    stalled, instrs = progress_check(system, T, last_instrs,
                                                     "event")
                    if stalled:
                        _settle_all(allunits, tb, tlx, tm, periods)
                        settle_meta(T)
                        if cp is not None:
                            cp.finalize(T, stalled=True)
                        raise watchdog_deadlock(system, T, "event")
                    last_instrs = instrs
                if T >= max_ps:
                    _settle_all(allunits, tb, tlx, tm, periods)
                    settle_meta(T)
                    if cp is not None:
                        cp.finalize(T)
                    raise horizon_deadlock(system, T, max_ns, "event")
                bmin = next_sample if next_sample < wd_target else wd_target
                if max_ps < bmin:
                    bmin = max_ps

            # ---- 5. dense-burst detector. A long run of iterations on
            # adjacent union-grid instants means the ready-set machinery
            # above is pure overhead: nothing is being skipped, so every
            # T-select, re-arm probe and re-peek is paid for a slot the
            # dense loop would have reached with three adds. Drop into a
            # dense inner loop over just the *awake* units — sleeping
            # (_INF) units stay parked on their deferred-charge windows,
            # so a drained big core is still never ticked through a
            # vector region — until a probe sweep proves a skippable gap
            # or a boundary/done intervenes.
            if not any_exec or T - prevT > gapw:
                run_ct = 0
                prevT = T
                continue
            prevT = T
            run_ct += 1
            if run_ct < _BURST_AFTER:
                continue

            # ---------------- dense burst ----------------
            # Correctness rests on the probe contract alone: ticking an
            # awake unit before its bound does nothing but the per-cycle
            # constants (exactly what skip_ticks replays), so densely
            # over-executing the awake set is stat-invisible. Sleepers
            # are woken by the same hooks as ever and join the burst in
            # ground order at their next domain slot; the engine's
            # push-less edges (accept bound, idle-drain) are re-checked
            # after each executed engine tick since no re-arm probe runs
            # to fire the _INF transition here.
            run_ct = 0
            prevT = -1
            last_idle = None
            nb_b = nl_b = nm_b = 0
            for u in units:
                if u.exec_at < _INF:
                    u.burst = True
                    d = u.domain
                    if d == 0:
                        nb_b += 1
                    elif d == 1:
                        nl_b += 1
                    else:
                        nm_b += 1
            sent = None  # sentinel: the leading busy member, probed per slot
            for u in units:
                if u.burst:
                    sent = u
                    break
            while sent is not None:
                T = _INF
                if nb_b or dirty_n[0]:
                    T = tb
                if (nl_b or dirty_n[1]) and tl < T:
                    T = tl
                if (nm_b or dirty_n[2]) and tm < T:
                    T = tm
                if T >= bmin:
                    break  # boundary (or empty burst): hand back
                if tb < T:
                    tb += (T - tb + pb - 1) // pb * pb
                if tl < T:
                    tl += (T - tl + pl - 1) // pl * pl
                if tm < T:
                    tm += (T - tm + pm - 1) // pm * pm
                if big1 is not None:
                    big1._now_hint = T if tb == T else tb - pb
                elif bigs:
                    nh = T if tb == T else tb - pb
                    for c in bigs:
                        c._now_hint = nh
                hctx[0] = T
                hctx[2] = tb
                hctx[3] = tl
                hctx[4] = tm
                ex_any = False
                if tb == T:
                    ex = False
                    for u in bunits:
                        if not u.burst:
                            if u.dirty:
                                # woken mid-burst: join (in ground
                                # order, at this very slot) unless the
                                # probe says stay asleep
                                u.dirty = False
                                dirty_n[0] -= 1
                                if u.probe(T) < _INF:
                                    u.burst = True
                                    nb_b += 1
                                else:
                                    continue
                            else:
                                continue
                        c = u.charged
                        if c < T:
                            u.skip((T - c) // pb, c)
                        u.charged = T + pb
                        hctx[1] = u.uid
                        u.tick(T)
                        u.executed += 1
                        ex = True
                        if u.wakes:
                            # the edge only matters to a sleeping
                            # dependent; with every one awake (or
                            # already woken) skip the accept/idle
                            # probes and invalidate the cached edge
                            need = False
                            for w in u.wakes:
                                if not w.burst and not w.dirty:
                                    need = True
                                    break
                            if not need:
                                last_na = -2
                            else:
                                na = u.owner.next_accept_ps(T)
                                idl = u.owner.idle()
                                if na != last_na or idl is not last_idle:
                                    last_na = na
                                    last_idle = idl
                                    for w in u.wakes:
                                        if not w.burst and not w.dirty:
                                            w.dirty = True
                                            dirty_n[0] += 1
                                            if not w.pending:
                                                w.pending = True
                                                pend.append(w)
                    if ex:
                        executed[0] += 1
                        ex_any = True
                    tb += pb
                    hctx[2] = tb
                if tl == T:
                    ex = False
                    for u in lunits:
                        if not u.burst:
                            if u.dirty:
                                u.dirty = False
                                dirty_n[1] -= 1
                                if u.probe(T) < _INF:
                                    u.burst = True
                                    nl_b += 1
                                else:
                                    continue
                            else:
                                continue
                        c = u.charged
                        if c < T:
                            u.skip((T - c) // pl, c)
                        u.charged = T + pl
                        hctx[1] = u.uid
                        u.tick(T)
                        u.executed += 1
                        ex = True
                        if u.wakes:
                            # the edge only matters to a sleeping
                            # dependent; with every one awake (or
                            # already woken) skip the accept/idle
                            # probes and invalidate the cached edge
                            need = False
                            for w in u.wakes:
                                if not w.burst and not w.dirty:
                                    need = True
                                    break
                            if not need:
                                last_na = -2
                            else:
                                na = u.owner.next_accept_ps(T)
                                idl = u.owner.idle()
                                if na != last_na or idl is not last_idle:
                                    last_na = na
                                    last_idle = idl
                                    for w in u.wakes:
                                        if not w.burst and not w.dirty:
                                            w.dirty = True
                                            dirty_n[0] += 1
                                            if not w.pending:
                                                w.pending = True
                                                pend.append(w)
                    if ex:
                        executed[1] += 1
                        ex_any = True
                    tl += pl
                    hctx[3] = tl
                if tm == T:
                    ex = False
                    for u in munits:
                        if not u.burst:
                            if u.dirty:
                                u.dirty = False
                                dirty_n[2] -= 1
                                if u.probe(T) < _INF:
                                    u.burst = True
                                    nm_b += 1
                                else:
                                    continue
                            else:
                                continue
                        c = u.charged
                        if c < T:
                            u.skip((T - c) // pm, c)
                        u.charged = T + pm
                        hctx[1] = u.uid
                        u.tick(T)
                        u.executed += 1
                        ex = True
                    if ex:
                        executed[2] += 1
                        ex_any = True
                    tm += pm
                    hctx[4] = tm
                hctx[1] = -1
                if ex_any and done():
                    tlx = tl if tl != _INF else (T // pl + 1) * pl
                    _settle_all(allunits, tb, tlx, tm, periods)
                    settle_meta(T)
                    if cp is not None:
                        cp.finalize(T + max(pb, pl, pm))
                    return system._result(T + max(pb, pl, pm))
                # sentinel exit test: while the sentinel is due next
                # slot the burst is provably productive and no other
                # probe runs. The moment it goes quiet, one sweep over
                # the members promotes the next busy one to sentinel;
                # if none is due the burst ends and the event machinery
                # takes over — re-arming everyone, skipping the gap.
                nw = tb if sent.domain == 0 else (
                    tl if sent.domain == 1 else tm)
                if sent.probe(nw) > nw:
                    busy = None
                    for u in units:
                        if not u.burst:
                            continue
                        nw = tb if u.domain == 0 else (
                            tl if u.domain == 1 else tm)
                        if u.probe(nw) <= nw:
                            busy = u
                            break
                    if busy is None:
                        break
                    sent = busy

            # burst exit: every member — and every sleeper woken but
            # not yet joined — rejoins the ready set; the next
            # iteration's re-arm pass rebuilds the real bounds from
            # fresh probes.
            rn0 = rn1 = rn2 = 0
            for u in units:
                if u.burst or u.dirty:
                    # dirty sleepers re-ready too: the T-selection knows
                    # nothing of dirty marks, so leaving one asleep here
                    # would defer its wakeup to the next boundary instant
                    u.burst = False
                    u.exec_at = 0
                    u.dirty = False
                    if not u.pending:
                        u.pending = True
                        pend.append(u)
                    d = u.domain
                    if d == 0:
                        rn0 += 1
                    elif d == 1:
                        rn1 += 1
                    else:
                        rn2 += 1
            dirty_n[0] = dirty_n[1] = dirty_n[2] = 0
            hm0 = hm1 = hm2 = _INF
    finally:
        for u in units:
            u.owner._ev_notify = None
        if hs is not None:
            hs.uninstall()
            hs.finalize(time.perf_counter() - system._wall_t0,
                        loop_events=executed[0] + executed[1] + executed[2])
