"""big.VLITTLE reproduction: cycle-level simulator and experiment harness.

Public entry points (see README for the full tour):

* :mod:`repro.soc` — system presets (``1L`` .. ``1b-4VL``) and the simulator.
* :mod:`repro.workloads` — kernel / application trace generators.
* :mod:`repro.experiments` — regenerate every paper table and figure.
"""

__version__ = "1.1.0"
