"""Exception hierarchy for the big.VLITTLE reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A system or component configuration is invalid or inconsistent."""


class TraceError(ReproError):
    """A trace is malformed (bad operands, unknown register, bad loop nesting)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (a modeling bug)."""


class DeadlockError(SimulationError):
    """No component made progress for a full watchdog window.

    ``forensics``, when present, is the structured
    ``bigvlittle-forensics-v1`` scheduling snapshot taken at the raise
    (see :mod:`repro.obs.forensics`): every unit's state, a wait-for
    graph with cycle detection, and the blocking frontier. It never
    changes the exception message — timestamps and text stay
    bit-identical across run loops."""

    def __init__(self, cycle, detail="", forensics=None):
        self.cycle = cycle
        self.detail = detail
        self.forensics = forensics
        msg = f"simulation deadlocked at cycle {cycle}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class WorkloadError(ReproError):
    """A workload generator was given unusable parameters."""
