"""Area: Table VI component model and the Ara-based 1bDV estimate."""

from repro.area.model import (
    AREA_KUM2,
    ClusterArea,
    dve_area_estimate_kge,
    little_cluster_area,
    system_overhead_estimate,
    table6,
    vlittle_cluster_area_kge,
)

__all__ = [
    "AREA_KUM2",
    "ClusterArea",
    "little_cluster_area",
    "table6",
    "dve_area_estimate_kge",
    "vlittle_cluster_area_kge",
    "system_overhead_estimate",
]
