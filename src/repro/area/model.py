"""Post-synthesis-style component area model (paper §VI, Table VI).

The paper implements the VLITTLE engine's added components in RTL and
synthesizes them in a 12 nm node; Table VI reports per-component areas. We
reproduce the *composition*: per-component constants (seeded from the paper's
published numbers) combined according to a cluster configuration, so the
headline claims — 4VL adds ~2% over 4L with simple cores, ~2.1% with Ariane
cores, <5% overall — fall out of the same arithmetic the paper uses. The
constants scale with queue depths so design-space variants (e.g. Fig. 8's
deeper VMU queues, which the paper avoids paying for by reusing L1I SRAM)
can be costed too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Table VI component areas, kilo-square-microns at 12 nm.
AREA_KUM2 = {
    "simple_core": 26.1,
    "ariane_core": 41.8,
    "l1_32k_64b": 40.3,  # 32KB 2-way cache with 64-bit data path
    "l1_32k_512b": 41.6,  # same cache with the vector-mode 512-bit data path
    "vxu_ring": 0.3,  # 64-bit uni-directional ring network
    "vmu_queues": 1.7,  # micro-op & command queues
    "vmu_store_cam": 0.8,
    "vmu_line_buffers": 0.4,
    "vcu_uop_queue": 1.0,
    "vcu_data_queue": 1.0,
}

#: Ara reference data (paper §VI): kGE counts used for the 1bDV estimate.
ARA_KGE_PER_LANE = 738
ARA_LANES = 8  # 8x64-bit lanes == 16x32-bit lanes in the simulated 1bDV
ARIANE_KGE = 524


@dataclass
class ClusterArea:
    """Area breakdown of one little-core cluster (4L or 4VL)."""

    components: dict = field(default_factory=dict)

    @property
    def total(self):
        return sum(self.components.values())

    def overhead_vs(self, baseline):
        """Fractional extra area relative to a baseline cluster."""
        return self.total / baseline.total - 1.0


def little_cluster_area(n_cores=4, core="simple", vector=False,
                        uopq_scale=1.0, dataq_scale=1.0):
    """Area of a cluster of little cores with private L1I + L1D caches.

    ``vector=True`` adds the VLITTLE engine components and upgrades the L1D
    data path to 512 bits (Table VI's 4VL column).
    """
    if core not in ("simple", "ariane"):
        raise ConfigError(f"unknown little-core RTL model {core!r}")
    core_key = "simple_core" if core == "simple" else "ariane_core"
    l1d_key = "l1_32k_512b" if vector else "l1_32k_64b"
    comp = {
        f"{core} cores x{n_cores}": AREA_KUM2[core_key] * n_cores,
        f"L1I x{n_cores}": AREA_KUM2["l1_32k_64b"] * n_cores,
        f"L1D x{n_cores}": AREA_KUM2[l1d_key] * n_cores,
    }
    if vector:
        comp["VXU ring"] = AREA_KUM2["vxu_ring"]
        comp["VMU uop+cmd queues"] = AREA_KUM2["vmu_queues"] * uopq_scale
        comp["VMU store CAM"] = AREA_KUM2["vmu_store_cam"]
        comp["VMU line buffers"] = AREA_KUM2["vmu_line_buffers"]
        comp["VCU uop queue"] = AREA_KUM2["vcu_uop_queue"] * uopq_scale
        comp["VCU data queue"] = AREA_KUM2["vcu_data_queue"] * dataq_scale
    return ClusterArea(comp)


def table6(core="simple"):
    """Regenerate one half of Table VI: (4L, 4VL, overhead fraction)."""
    base = little_cluster_area(core=core, vector=False)
    vl = little_cluster_area(core=core, vector=True)
    return base, vl, vl.overhead_vs(base)


def dve_area_estimate_kge():
    """First-order 1bDV vector-engine area (paper §VI, via Ara):
    ~6,000 kGE for an 8x64-bit-lane engine."""
    return ARA_KGE_PER_LANE * ARA_LANES


def vlittle_cluster_area_kge(core="ariane"):
    """The same comparison the paper makes: a 4-Ariane cluster with L1s is
    roughly one Ariane-core-area per cache, i.e. ~12 Ariane-equivalents
    ~= 6,000 kGE — comparable to the Ara-style decoupled engine."""
    # one 32KB L1's area ~= one Ariane core's area (Table VI observation)
    units = 4 * (1 + 2)  # 4 cores, each with L1I + L1D
    return units * ARIANE_KGE


def system_overhead_estimate(core="simple"):
    """<1% of a full big.LITTLE SoC (paper §VI): the cluster-level overhead
    diluted by the big core, its caches, L2, and the interconnect (modeled as
    ~2.5x the little-cluster area, a conservative mobile-SoC floorplan)."""
    base, vl, ovh = table6(core)
    soc_area = base.total * 3.5
    return (vl.total - base.total) / soc_area
