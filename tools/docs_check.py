#!/usr/bin/env python
"""Docs <-> CLI drift lint.

Walks every ``bigvlittle ...`` command the documentation shows (inline
code spans and fenced code blocks in README.md, EXPERIMENTS.md, and
docs/*.md) and cross-checks it against the live argparse tree
(:func:`repro.experiments.cli.cli_registry`):

* every verb a doc invokes must exist (a named verb, an experiment
  name, or ``all``);
* every ``--flag`` a doc shows must be accepted by that verb's parser;
* conversely, every named verb must be demonstrated somewhere in the
  docs — a shipped-but-undocumented verb fails the build;
* ``docs/service.md`` must mention every ``bigvlittle serve`` flag and
  every API endpoint in :data:`repro.service.schemas.ENDPOINTS`.

Tokens containing shell placeholders (``<PATH>``, ``{stats,clear}``,
``$VAR``, globs) are skipped; pipelines are cut at the first shell
operator.  Exit status 0 = docs and CLI agree; 1 = drift, one line per
finding.

Run from the repo root: ``python tools/docs_check.py`` (CI does).
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.cli import NAMED_VERBS, cli_registry  # noqa: E402
from repro.service.schemas import ENDPOINTS  # noqa: E402

DOC_FILES = ("README.md", "EXPERIMENTS.md")
DOC_GLOB_DIR = "docs"
SHELL_OPERATORS = {"|", "||", "&&", ";", ">", ">>", "2>", "<"}
PLACEHOLDER_CHARS = set("<>{}*$")


def doc_paths(root):
    paths = [os.path.join(root, f) for f in DOC_FILES]
    docs_dir = os.path.join(root, DOC_GLOB_DIR)
    if os.path.isdir(docs_dir):
        paths.extend(os.path.join(docs_dir, f)
                     for f in sorted(os.listdir(docs_dir))
                     if f.endswith(".md"))
    return [p for p in paths if os.path.exists(p)]


def code_lines(text):
    """Yield (line_number, code_text) for inline spans and fenced blocks."""
    fence = False
    for i, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            fence = not fence
            continue
        if fence:
            yield i, line
        else:
            for span in re.findall(r"`([^`]+)`", line):
                yield i, span


def commands_in(text):
    """Yield (line_number, [token, ...]) for every bigvlittle invocation."""
    lines = list(code_lines(text))
    for idx, (lineno, code) in enumerate(lines):
        # join backslash continuations within fenced blocks
        while code.rstrip().endswith("\\") and idx + 1 < len(lines):
            idx += 1
            code = code.rstrip()[:-1] + " " + lines[idx][1]
        for m in re.finditer(r"\bbigvlittle\s+(.*)", code):
            tokens = []
            for tok in m.group(1).split():
                if tok in SHELL_OPERATORS:
                    break
                tokens.append(tok.strip("[](),'\""))
            if tokens:
                yield lineno, tokens


def parser_flags(parser):
    return {opt for action in parser._actions
            for opt in action.option_strings if opt.startswith("--")}


def experiment_names(registry):
    for action in registry[""]._actions:
        if action.choices:
            return set(action.choices)
    return set()


def check_docs(root):
    registry = cli_registry()
    experiments = experiment_names(registry)
    problems = []
    verbs_seen = set()

    for path in doc_paths(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for lineno, tokens in commands_in(text):
            verb = tokens[0]
            if PLACEHOLDER_CHARS & set(verb):
                continue
            if verb in registry and verb:
                parser = registry[verb]
                verbs_seen.add(verb)
            elif verb in experiments:
                parser = registry[""]
            elif verb.startswith("--"):
                parser = registry[""]
                tokens = [None] + tokens  # flags straight after `bigvlittle`
            else:
                problems.append(f"{rel}:{lineno}: unknown bigvlittle verb "
                                f"{verb!r}")
                continue
            allowed = parser_flags(parser)
            for tok in tokens[1:]:
                if tok is None or not tok.startswith("--"):
                    continue
                flag = tok.split("=", 1)[0]
                if PLACEHOLDER_CHARS & set(flag):
                    continue
                if flag not in allowed:
                    problems.append(
                        f"{rel}:{lineno}: 'bigvlittle {verb}' does not "
                        f"accept {flag!r}")

    for verb in NAMED_VERBS:
        if verb not in verbs_seen:
            problems.append(f"verb {verb!r} is implemented but never "
                            f"demonstrated in the docs")

    service_md = os.path.join(root, "docs", "service.md")
    if not os.path.exists(service_md):
        problems.append("docs/service.md is missing")
    else:
        with open(service_md, encoding="utf-8") as f:
            service_text = f.read()
        for flag in sorted(parser_flags(registry["serve"]) - {"--help"}):
            if flag not in service_text:
                problems.append(f"docs/service.md: 'bigvlittle serve' flag "
                                f"{flag!r} is undocumented")
        for method, endpoint, _ in ENDPOINTS:
            if endpoint not in service_text:
                problems.append(f"docs/service.md: endpoint '{method} "
                                f"{endpoint}' is undocumented")
    return problems


def main():
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    problems = check_docs(root)
    for p in problems:
        print(f"docs_check: {p}")
    if problems:
        print(f"docs_check: {len(problems)} problem(s)")
        return 1
    print("docs_check: docs and CLI agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
