#!/usr/bin/env python
"""End-to-end smoke test of ``bigvlittle serve`` over a real socket.

What CI runs (and what an operator can run locally to vet a deploy):

1. start the service as a subprocess on a free port, with telemetry on;
2. wait for ``GET /v1/healthz``;
3. ``POST /v1/runs`` one saxpy run and poll ``GET /v1/jobs/<id>`` to done;
4. fetch the ``stats`` artifact twice — first ``generated``, then
   ``artifact`` — and byte-compare it against a direct in-process
   ``run_pair`` dump (the no-simulation-drift guarantee);
5. re-submit the same body and require dedup/instant completion;
6. check ``GET /v1/stats`` counters reconcile with the telemetry JSONL;
7. SIGTERM the server and require a clean drain + exit 0.

Usage: ``python tools/service_smoke.py [--keep DIR]`` — ``--keep``
copies the server's telemetry log and fetched artifacts into DIR (CI
uploads it).  Exit 0 on success; any failure prints a diagnosis and the
server's output, and exits 1.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, os.path.join(ROOT, "src"))


def http(method, url, body=None):
    req = urllib.request.Request(
        url, method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


def free_port():
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def fail(msg, proc=None):
    print(f"service_smoke: FAIL: {msg}")
    if proc is not None:
        proc.terminate()
        try:
            out, _ = proc.communicate(timeout=10)
            print("---- server output ----")
            print(out)
        except subprocess.TimeoutExpired:
            proc.kill()
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--keep", metavar="DIR", default=None,
                    help="copy the telemetry log + fetched artifacts here")
    args = ap.parse_args()

    root = tempfile.mkdtemp(prefix="bigvlittle-smoke-")
    tele = os.path.join(root, "service_telemetry.jsonl")
    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", "serve",
         "--port", str(port), "--workers", "1",
         "--cache-root", os.path.join(root, "results"),
         "--telemetry", tele],
        env=env, cwd=ROOT, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    base = f"http://127.0.0.1:{port}"

    try:
        for _ in range(100):
            if proc.poll() is not None:
                return fail("server exited during startup", proc)
            try:
                status, _, _ = http("GET", f"{base}/v1/healthz")
                if status == 200:
                    break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        else:
            return fail("server never answered /v1/healthz", proc)
        print(f"service_smoke: server healthy on port {port}")

        body = {"system": "1b-4VL", "workload": "saxpy", "scale": "tiny"}
        status, _, raw = http("POST", f"{base}/v1/runs", body)
        if status != 202:
            return fail(f"submit returned {status}: {raw!r}", proc)
        job = json.loads(raw)
        key = job["keys"][0]
        print(f"service_smoke: submitted {job['id']} key={key[:12]}…")

        for _ in range(300):
            status, _, raw = http("GET", f"{base}/v1/jobs/{job['id']}")
            state = json.loads(raw)["state"]
            if state in ("done", "failed"):
                break
            time.sleep(0.1)
        if state != "done":
            return fail(f"job ended as {state}: {raw!r}", proc)
        print(f"service_smoke: job done, levels="
              f"{json.loads(raw)['levels']}")

        status, h1, served = http("GET", f"{base}/v1/results/{key}/stats")
        status2, h2, served2 = http("GET", f"{base}/v1/results/{key}/stats")
        if status != 200 or status2 != 200:
            return fail(f"stats artifact GET failed ({status}/{status2})",
                        proc)
        lvl1 = h1.get("X-BigVLittle-Cache")
        lvl2 = h2.get("X-BigVLittle-Cache")
        if (lvl1, lvl2) != ("generated", "artifact") or served != served2:
            return fail(f"artifact levels {lvl1}/{lvl2} or bytes changed "
                        "between fetches", proc)

        from repro.experiments.runner import run_pair
        from repro.obs.diff import dump_result

        direct = (json.dumps(dump_result(
            run_pair("1b-4VL", "saxpy", "tiny", use_cache=False)),
            indent=1, sort_keys=True) + "\n").encode()
        if served != direct:
            return fail("served stats artifact differs from a direct "
                        "run_pair dump", proc)
        print(f"service_smoke: stats artifact byte-identical to direct run "
              f"({len(served)} bytes)")

        status, _, raw = http("POST", f"{base}/v1/runs", body)
        if status != 200 and json.loads(raw)["state"] != "done":
            # not deduplicated (job already finished) — must at least be
            # a warm job; poll it to done and require a cache-level hit
            job2 = json.loads(raw)
            for _ in range(100):
                status, _, raw = http("GET", f"{base}/v1/jobs/{job2['id']}")
                if json.loads(raw)["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            levels = json.loads(raw).get("levels") or {}
            if levels.get(key) not in ("memory", "disk"):
                return fail(f"warm resubmit did not hit the cache: {levels}",
                            proc)
        print("service_smoke: warm resubmit served from cache")

        status, _, raw = http("GET", f"{base}/v1/stats")
        stats = json.loads(raw)
        counters = stats["queue"]["counters"]
        if counters["done"] < 1 or counters["enqueued"] < 1:
            return fail(f"queue counters look wrong: {counters}", proc)

        from repro.experiments.telemetry import load_jsonl

        events = load_jsonl(tele)
        by_ev = {}
        for ev in events:
            by_ev[ev["ev"]] = by_ev.get(ev["ev"], 0) + 1
        if by_ev.get("job_done", 0) != counters["done"] + counters["failed"]:
            return fail(f"telemetry does not reconcile: job_done="
                        f"{by_ev.get('job_done')} vs counters {counters}",
                        proc)
        print(f"service_smoke: telemetry reconciles "
              f"({by_ev.get('job_enqueued', 0)} enqueued, "
              f"{by_ev.get('job_done', 0)} done events)")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        if proc.returncode != 0:
            print(out)
            return fail(f"server exited {proc.returncode} on SIGTERM")
        print("service_smoke: clean drain on SIGTERM")

        if args.keep:
            os.makedirs(args.keep, exist_ok=True)
            shutil.copy(tele, os.path.join(args.keep,
                                           "service_telemetry.jsonl"))
            with open(os.path.join(args.keep, "stats_artifact.json"),
                      "wb") as f:
                f.write(served)
            print(f"service_smoke: kept telemetry + artifact in {args.keep}")
        print("service_smoke: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
