"""Shim so environments without the `wheel` package can still install
editable/legacy builds (`pip install -e .` falls back to setup.py develop)."""
from setuptools import setup

setup()
