"""API-contract tests: the error behaviour a downstream user relies on."""

import pytest

from repro.errors import (
    ConfigError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)


def test_exception_hierarchy():
    assert issubclass(ConfigError, ReproError)
    assert issubclass(TraceError, ReproError)
    assert issubclass(WorkloadError, ReproError)
    assert issubclass(DeadlockError, SimulationError)
    assert issubclass(SimulationError, ReproError)


def test_deadlock_error_carries_cycle():
    e = DeadlockError(1234, "stuck")
    assert e.cycle == 1234
    assert "1234" in str(e) and "stuck" in str(e)


def test_alloc_alignment_and_disjointness():
    from repro.workloads import Alloc

    a = Alloc()
    xs = [a.array(n) for n in (1, 63, 64, 65, 1000)]
    for base in xs:
        assert base % 64 == 0
    # regions never overlap
    spans = []
    a2 = Alloc()
    for n in (10, 100, 5):
        b = a2.array(n)
        spans.append((b, b + n * 4))
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_registry_rejects_duplicates():
    from repro.workloads import Workload, register

    class Dup(Workload):
        name = "vvadd"  # already taken

    with pytest.raises(WorkloadError):
        register(Dup)

    class NoName(Workload):
        name = ""

    with pytest.raises(WorkloadError):
        register(NoName)


def test_system_rejects_bad_program():
    from repro.soc import System, preset

    s = System(preset("1b"))
    with pytest.raises(WorkloadError):
        s.load(42)
    with pytest.raises(ConfigError):
        System("1b")  # must be a SoCConfig


def test_public_package_surface():
    import repro
    import repro.experiments as E
    import repro.soc as S
    import repro.workloads as W

    assert repro.__version__
    assert callable(E.run_pair)
    assert callable(S.preset)
    assert callable(W.get_workload)
    assert len(S.SYSTEM_NAMES) == 7


def test_run_result_is_stable_snapshot():
    from repro.experiments import run_pair

    r = run_pair("1L", "vvadd", "tiny")
    before = dict(r.stats)
    _ = run_pair("1b", "vvadd", "tiny")
    assert r.stats == before  # results never mutate after the run


def test_config_copies_are_independent():
    from repro.soc import preset

    a = preset("1b-4VL")
    b = a.with_freqs(big=1.4)
    assert a.freq_big == 1.0 and b.freq_big == 1.4
    c = a.scaled(chimes=1)
    assert a.chimes == 2 and c.chimes == 1


def test_trace_builder_is_single_use():
    from repro.errors import TraceError
    from repro.trace import TraceBuilder

    tb = TraceBuilder()
    tb.addi(None)
    tb.finish()
    with pytest.raises(TraceError):
        tb.addi(None)


def test_vector_builder_checks_vlen():
    from repro.errors import TraceError
    from repro.trace import TraceBuilder, VectorBuilder

    with pytest.raises(TraceError):
        VectorBuilder(TraceBuilder(), vlen_bits=96)
