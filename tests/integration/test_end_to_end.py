"""End-to-end integration tests: real workloads through complete systems,
checking the cross-cutting invariants the paper's argument rests on."""

import pytest

from repro.experiments import run_pair
from repro.workloads import DATA_PARALLEL, KERNELS, TASK_PARALLEL


@pytest.mark.parametrize("workload", KERNELS + DATA_PARALLEL)
def test_every_vectorizable_workload_runs_on_every_system(workload):
    for system in ("1L", "1bIV", "1bIV-4L", "1bDV", "1b-4VL"):
        r = run_pair(system, workload, "tiny")
        assert r.cycles > 0, (system, workload)


@pytest.mark.parametrize("workload", TASK_PARALLEL)
def test_every_graph_app_runs_on_every_system(workload):
    for system in ("1L", "1b", "1b-4L", "1b-4VL", "1bDV"):
        r = run_pair(system, workload, "tiny")
        assert r.cycles > 0, (system, workload)


@pytest.mark.parametrize("workload", KERNELS)
def test_vectorization_always_beats_scalar_single_core(workload):
    scalar = run_pair("1b", workload, "tiny")
    for system in ("1bIV", "1bDV", "1b-4VL"):
        vec = run_pair(system, workload, "tiny")
        assert vec.cycles < scalar.cycles, (system, workload)


@pytest.mark.parametrize("workload", TASK_PARALLEL)
def test_scalar_mode_equivalence(workload):
    """Paper §V-A: 1b-4VL and 1bIV-4L (and 1b-4L) are cycle-identical on
    task-parallel code — the vector hardware is fully bypassed."""
    a = run_pair("1b-4L", workload, "tiny")
    b = run_pair("1b-4VL", workload, "tiny")
    c = run_pair("1bIV-4L", workload, "tiny")
    assert a.cycles == b.cycles == c.cycles


@pytest.mark.parametrize("workload", KERNELS + DATA_PARALLEL)
def test_vector_engines_fetch_less(workload):
    """Fig. 5's mechanism: one fetch stream for the whole engine."""
    vl = run_pair("1b-4VL", workload, "tiny")
    iv = run_pair("1bIV-4L", workload, "tiny")
    assert vl.stats["fetch_requests"] < iv.stats["fetch_requests"]


@pytest.mark.parametrize("workload", KERNELS)
def test_wide_requests_reduce_data_traffic(workload):
    """Fig. 6's mechanism: line-granularity vector requests."""
    vl = run_pair("1b-4VL", workload, "tiny")
    scalar = run_pair("1L", workload, "tiny")
    assert vl.stats["data_requests"] < scalar.stats["data_requests"] / 2


def test_longer_vlen_fewer_dynamic_instructions():
    from repro.workloads import get_workload

    w = get_workload("saxpy", "tiny")
    counts = {v: len(w.vector_trace(v)) for v in (128, 512, 2048)}
    assert counts[2048] < counts[512] < counts[128]


def test_breakdown_accounts_all_lane_cycles():
    r = run_pair("1b-4VL", "saxpy", "tiny", use_cache=False)
    cats = ("busy", "simd", "raw_mem", "raw_llfu", "struct", "xelem", "misc")
    total = sum(r.stats[f"vlittle.lane_stall.{c}"] for c in cats)
    # 4 lanes, one category per lane-cycle while the engine exists
    assert total == pytest.approx(4 * r.cycles, rel=0.02)


def test_determinism_across_runs():
    a = run_pair("1b-4VL", "kmeans", "tiny", use_cache=False)
    b = run_pair("1b-4VL", "kmeans", "tiny", use_cache=False)
    assert a.cycles == b.cycles
    assert a.stats == b.stats
