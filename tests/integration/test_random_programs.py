"""Property-based fuzzing: random RVV programs through both vector engines.

Hypothesis generates arbitrary (but well-formed) vector programs; the
invariants are *systemic*: every program terminates, the engines drain, the
stall accounting is exact, and a longer-VLEN engine never needs more
dynamic instructions.
"""

from hypothesis import given, settings, strategies as st

from repro.soc import System, preset
from repro.trace import TraceBuilder, VectorBuilder

# op kinds the generator can pick per step
OPS = ("vle", "vlse", "vluxei", "arith", "fp", "fdiv", "mask", "red",
       "gather", "store", "scalar")


def build_program(vlen_bits, steps, seed_addrs):
    """Translate a step list into a valid vector trace."""
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=vlen_bits)
    vl = vb.vsetvl(16, ew=4)
    live = [vb.vle(0x100000)]  # always at least one live value
    store_slot = 0x800000
    for i, (op, a) in enumerate(steps):
        base = 0x100000 + (a % 64) * 0x100
        if op == "vle":
            live.append(vb.vle(base))
        elif op == "vlse":
            live.append(vb.vlse(base, stride=8 + 8 * (a % 4)))
        elif op == "vluxei":
            addrs = [0x300000 + ((a * 7 + k * 13) % 256) * 64 for k in range(vl)]
            live.append(vb.vluxei(addrs))
        elif op == "arith":
            live.append(vb.vadd(live[a % len(live)], live[-1]))
        elif op == "fp":
            live.append(vb.vfmul(live[a % len(live)], live[-1]))
        elif op == "fdiv":
            live.append(vb.vfdiv(live[a % len(live)], live[-1]))
        elif op == "mask":
            m = vb.vmflt(live[a % len(live)], live[-1])
            live.append(vb.vmerge(live[-1], live[a % len(live)], mask=m))
        elif op == "red":
            live.append(vb.vredsum(live[a % len(live)]))
        elif op == "gather":
            idx = vb.vid()
            live.append(vb.vrgather(live[a % len(live)], idx))
        elif op == "store":
            vb.vse(live[a % len(live)], store_slot)
            store_slot += 0x100
        elif op == "scalar":
            r = tb.lw(0x600000 + (a % 32) * 8)
            tb.addi(r)
        if len(live) > 8:
            live = live[-8:]
    vb.vse(live[-1], store_slot)
    return tb.finish("fuzz")


step = st.tuples(st.sampled_from(OPS), st.integers(0, 1 << 16))


@given(st.lists(step, min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_vlittle_terminates_and_drains(steps):
    cfg = preset("1b-4VL", switch_penalty=0)
    sysm = System(cfg)
    trace = build_program(cfg.vlen_bits(4), steps, 0)
    res = sysm.run(trace, max_ns=2_000_000)
    e = sysm.engine
    assert e.idle()
    assert not e._uopq
    assert all(l.latch is None for l in e.lanes)
    assert e.vmu.idle() and not e.vxu.busy()
    # exact stall accounting: one category per lane-cycle
    assert e.breakdown().total() == 4 * res.cycles


@given(st.lists(step, min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_dve_terminates_and_drains(steps):
    cfg = preset("1bDV")
    sysm = System(cfg)
    trace = build_program(cfg.vlen_bits(4), steps, 0)
    sysm.run(trace, max_ns=2_000_000)
    e = sysm.engine
    assert e.idle()
    assert e._inflight == 0
    assert e._loadq_used == 0


@given(st.lists(step, min_size=1, max_size=20))
@settings(max_examples=15, deadline=None)
def test_longer_vlen_never_more_instructions(steps):
    t128 = build_program(128, steps, 0)
    t2048 = build_program(2048, steps, 0)
    assert len(t2048) <= len(t128)
