"""Paper-quote-driven assertions: each test cites the sentence it checks.

These run at tiny scale so the whole file stays fast; the benchmark harness
re-checks the quantitative versions at larger inputs.
"""

from repro.experiments import run_pair
from repro.soc import System, preset
from repro.utils import geomean
from repro.workloads import get_workload


def test_claim_no_overhead_in_scalar_mode():
    """§III-A: 'in the scalar mode, big.VLITTLE performs exactly the same as
    an equivalent big.LITTLE system.'"""
    for app in ("bfs", "pagerank"):
        assert run_pair("1b-4VL", app, "tiny").cycles == \
            run_pair("1b-4L", app, "tiny").cycles


def test_claim_vlittle_halves_the_gap_to_dv():
    """§V-A: 1b-4VL achieves 'roughly half of 1bDV's performance' on
    data-parallel applications."""
    ratios = []
    for app in ("vvadd", "saxpy", "pathfinder", "backprop"):
        dv = run_pair("1bDV", app, "tiny").stats["time_ps"]
        vl = run_pair("1b-4VL", app, "tiny").stats["time_ps"]
        ratios.append(vl / dv)
    assert 1.2 < geomean(ratios) < 3.5


def test_claim_fewer_fetches_with_longer_vectors():
    """§V-A / Fig. 5: 'across all vectorized kernels and applications, 1bDV
    and 1b-4VL perform significantly fewer instruction fetch requests than
    the 1bIV-4L system does.'"""
    for app in ("vvadd", "saxpy", "blackscholes"):
        f_iv = run_pair("1bIV-4L", app, "tiny").stats["fetch_requests"]
        f_vl = run_pair("1b-4VL", app, "tiny").stats["fetch_requests"]
        f_dv = run_pair("1bDV", app, "tiny").stats["fetch_requests"]
        assert f_dv < f_iv and f_vl < f_iv


def test_claim_wide_requests_for_regular_patterns():
    """§V-A / Fig. 6: 'for workloads with regular memory access patterns ...
    1b-4VL and 1bDV can efficiently fetch multiple per-element pieces of
    data using a single wide memory request.'"""
    for app in ("vvadd", "saxpy", "pathfinder"):
        d_iv = run_pair("1bIV-4L", app, "tiny").stats["data_requests"]
        d_vl = run_pair("1b-4VL", app, "tiny").stats["data_requests"]
        assert d_vl < d_iv / 2, app


def test_claim_512bit_hardware_vector_length():
    """§III-C / Fig. 2: 'the example VLITTLE engine ... can support a 512-bit
    hardware vector length by effectively using all physical registers in
    four little cores.'"""
    assert preset("1b-4VL").vlen_bits(4) == 512


def test_claim_packed_elements_double_vlen():
    """§V-B: 'enabling packed-vector-element support effectively doubles the
    1b-4VL's hardware vector length.'"""
    assert preset("1b-4VL", packed=True).vlen_bits(4) == \
        2 * preset("1b-4VL", packed=False).vlen_bits(4)


def test_claim_mode_switch_costs_hundreds_of_cycles():
    """§III-B: 'the overhead of saving a thread context into memory and
    flushing an in-order short pipeline is relatively small (e.g., 500+
    cycles).' The engine charges it exactly once per region."""
    w = get_workload("vvadd", "tiny")
    cfg0 = preset("1b-4VL", switch_penalty=0)
    cfg500 = preset("1b-4VL", switch_penalty=500)
    t0 = System(cfg0).run(w.vector_trace(cfg0.vlen_bits(4))).stats["time_ps"]
    w2 = get_workload("vvadd", "tiny")
    t500 = System(cfg500).run(w2.vector_trace(cfg500.vlen_bits(4))).stats["time_ps"]
    delta_cycles = (t500 - t0) / 1000
    assert 400 <= delta_cycles <= 700


def test_claim_decoupled_engine_useless_for_graphs():
    """§V-A: 'the 1bDV system is able to use only its big core to execute
    scalar code' — its engine contributes nothing to Ligra apps."""
    r = run_pair("1bDV", "pagerank", "tiny")
    assert r.stats.get("dve.instrs", 0) == 0
    assert r.cycles == run_pair("1b", "pagerank", "tiny").cycles


def test_claim_little_cores_lockstep():
    """§III-B: the VCU broadcasts µops to all little cores in lockstep; all
    four lanes therefore issue the same number of broadcast µops."""
    from repro.workloads import get_workload as gw

    cfg = preset("1b-4VL", switch_penalty=0)
    sysm = System(cfg)
    w = gw("vvadd", "tiny")
    sysm.run(w.vector_trace(cfg.vlen_bits(4)))
    counts = [l.uops_issued for l in sysm.engine.lanes]
    assert len(set(counts)) == 1
