"""Unit + property tests for shared helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    Xorshift64,
    align_down,
    align_up,
    ceil_div,
    geomean,
    is_pow2,
    line_addr,
    lines_spanned,
    log2i,
)


def test_is_pow2():
    assert is_pow2(1) and is_pow2(64) and is_pow2(4096)
    assert not is_pow2(0) and not is_pow2(3) and not is_pow2(-4)


def test_log2i():
    assert log2i(1) == 0
    assert log2i(64) == 6
    with pytest.raises(ValueError):
        log2i(3)


@given(st.integers(min_value=0, max_value=2**40), st.sampled_from([1, 2, 4, 8, 64, 4096]))
def test_align_roundtrip(addr, g):
    d, u = align_down(addr, g), align_up(addr, g)
    assert d <= addr <= u
    assert d % g == 0 and u % g == 0
    assert u - d in (0, g)


@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1, max_value=300))
def test_lines_spanned_cover_range(addr, nbytes):
    lines = list(lines_spanned(addr, nbytes, 64))
    assert lines[0] == line_addr(addr, 64)
    assert lines[-1] == line_addr(addr + nbytes - 1, 64)
    assert all(b - a == 64 for a, b in zip(lines, lines[1:]))


def test_lines_spanned_empty():
    assert list(lines_spanned(0x100, 0)) == []


def test_geomean():
    assert geomean([]) == 0.0
    assert math.isclose(geomean([2, 8]), 4.0)
    with pytest.raises(ValueError):
        geomean([1, 0])


def test_ceil_div():
    assert ceil_div(10, 4) == 3
    assert ceil_div(8, 4) == 2
    assert ceil_div(1, 4) == 1


def test_xorshift_deterministic():
    a, b = Xorshift64(42), Xorshift64(42)
    assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]


def test_xorshift_zero_seed_ok():
    r = Xorshift64(0)
    assert r.next() != 0


@given(st.integers(min_value=1, max_value=2**63), st.integers(0, 100), st.integers(0, 100))
def test_xorshift_randint_in_range(seed, lo, span):
    r = Xorshift64(seed)
    for _ in range(20):
        v = r.randint(lo, lo + span)
        assert lo <= v <= lo + span


def test_xorshift_random_unit_interval():
    r = Xorshift64(7)
    for _ in range(100):
        assert 0.0 <= r.random() < 1.0
