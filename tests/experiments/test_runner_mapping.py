"""Exhaustive matrix test of the runner's system-to-program mapping.

Paper §IV maps every (system, workload-kind) combination to one of three
program shapes: a scalar trace, a strip-mined vector trace, or a
work-stealing task program (with or without per-task vector variants).
``_program_for`` encodes that table; this test walks every cell.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import DATA_PARALLEL_CHUNKS, _program_for
from repro.soc import SYSTEM_NAMES, SoCConfig, preset
from repro.trace import Trace, TaskProgram
from repro.workloads import (
    DATA_PARALLEL,
    KERNELS,
    TASK_PARALLEL,
    get_workload,
)

#: one representative per kind keeps the matrix fast at tiny scale
REPRESENTATIVE = {
    "kernel": KERNELS[0],
    "data-parallel": DATA_PARALLEL[0],
    "task-parallel": TASK_PARALLEL[0],
}

#: paper §IV expectations for vectorizable work (kernels & data-parallel)
VECTORIZABLE_SHAPE = {
    "1L": "scalar",
    "1b": "scalar",
    "1bIV": "vector",
    "1bDV": "vector",
    "1b-4VL": "vector",
    "1bIV-4L": "tasks+vector",
    "1b-4L": "tasks",
}

#: paper §IV expectations for irregular (Ligra) work
TASK_PARALLEL_SHAPE = {
    "1L": "scalar",
    "1b": "scalar",
    "1bIV": "scalar",
    "1bDV": "scalar",
    "1b-4L": "tasks",
    "1bIV-4L": "tasks",
    "1b-4VL": "tasks",
}


def _shape_of(program):
    if isinstance(program, TaskProgram):
        tasks = list(program.all_tasks())
        assert tasks, "task programs must carry tasks"
        if all("vector" in t.traces for t in tasks):
            return "tasks+vector"
        assert all(set(t.traces) == {"scalar"} for t in tasks)
        return "tasks"
    assert isinstance(program, Trace)
    nscalar, nvector = program.counts()
    return "vector" if nvector else "scalar"


@pytest.mark.parametrize("system", SYSTEM_NAMES)
@pytest.mark.parametrize("kind", ["kernel", "data-parallel"])
def test_vectorizable_mapping(system, kind):
    w = get_workload(REPRESENTATIVE[kind], "tiny")
    program = _program_for(preset(system), w)
    assert _shape_of(program) == VECTORIZABLE_SHAPE[system], (system, kind)


@pytest.mark.parametrize("system", SYSTEM_NAMES)
def test_task_parallel_mapping(system):
    w = get_workload(REPRESENTATIVE["task-parallel"], "tiny")
    program = _program_for(preset(system), w)
    assert _shape_of(program) == TASK_PARALLEL_SHAPE[system], system


@pytest.mark.parametrize("kind", ["kernel", "data-parallel"])
def test_unmapped_system_raises_config_error(kind):
    w = get_workload(REPRESENTATIVE[kind], "tiny")
    cfg = SoCConfig(name="8b-超", n_big=1, n_little=0)
    with pytest.raises(ConfigError, match="no mapping"):
        _program_for(cfg, w)


def test_data_parallel_task_grain():
    """The 1bIV-4L decomposition uses the documented Cilk-style grain."""
    w = get_workload(REPRESENTATIVE["data-parallel"], "tiny")
    program = _program_for(preset("1bIV-4L"), w)
    assert program.total_tasks <= DATA_PARALLEL_CHUNKS
    assert program.total_tasks >= 1


def test_vector_trace_vlen_follows_system():
    """1bIV strip-mines for 128-bit vectors, 1bDV for 2048-bit: the decoupled
    engine's trace needs fewer, longer vector instructions."""
    w_iv = get_workload(REPRESENTATIVE["kernel"], "tiny")
    w_dv = get_workload(REPRESENTATIVE["kernel"], "tiny")
    t_iv = _program_for(preset("1bIV"), w_iv)
    t_dv = _program_for(preset("1bDV"), w_dv)
    assert t_iv.counts()[1] > t_dv.counts()[1]
