"""Determinism/regression suite for the experiment harness.

The simulator must be a pure function of its configuration: the same
(system, workload, scale, knobs) key must produce bit-identical ``stats``
whether it is simulated serially, simulated again in a fresh ``System``,
simulated in a worker process, or read back from the on-disk cache.
"""

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ParallelRunner, RunRequest
from repro.experiments.runner import run_pair
from repro.soc import preset

PAIRS = [("1b", "vvadd"), ("1b-4VL", "saxpy"), ("1b-4L", "bfs")]


def test_rerun_is_bit_identical(fresh_cache):
    for system, workload in PAIRS:
        a = run_pair(system, workload, "tiny", use_cache=False)
        b = run_pair(system, workload, "tiny", use_cache=False)
        assert a is not b
        assert a.stats == b.stats, (system, workload)
        assert a.cycles == b.cycles


def test_cache_hit_matches_simulation(fresh_cache):
    a = run_pair("1b-4VL", "vvadd", "tiny")
    hit = run_pair("1b-4VL", "vvadd", "tiny")
    assert hit is a  # memory level returns the very same object
    fresh = run_pair("1b-4VL", "vvadd", "tiny", use_cache=False)
    assert fresh.stats == a.stats


def test_disk_roundtrip_is_lossless(fresh_cache):
    a = run_pair("1bDV", "saxpy", "tiny")
    # a second cache instance on the same directory models a fresh process
    reloaded = ResultCache(cache_dir=fresh_cache.cache_dir)
    key = reloaded.key_for(preset("1bDV"), "saxpy", "tiny")
    b = reloaded.get(key)
    assert b is not None and b is not a
    assert b.timing["from_cache"] is True
    assert b.stats == a.stats
    assert b.cycles == a.cycles and b.name == a.name and b.system == a.system
    # JSON must not coerce numeric types (int stays int, float stays float)
    for k, v in a.stats.items():
        assert type(b.stats[k]) is type(v), k


def test_parallel_workers_match_serial(fresh_cache):
    serial = [run_pair(s, w, "tiny", use_cache=False) for s, w in PAIRS]
    fresh_cache.clear()
    requests = [RunRequest(s, w, "tiny") for s, w in PAIRS]
    par = ParallelRunner(jobs=2).run(requests)
    for s_res, p_res in zip(serial, par):
        assert p_res.stats == s_res.stats
        assert p_res.cycles == s_res.cycles


def test_serial_runner_path_matches_parallel_path(fresh_cache):
    requests = [RunRequest(s, w, "tiny") for s, w in PAIRS]
    a = ParallelRunner(jobs=1).run(requests)
    fresh_cache.clear()
    b = ParallelRunner(jobs=2).run(requests)
    for x, y in zip(a, b):
        assert x.stats == y.stats


def test_stats_carry_no_host_measurements(fresh_cache):
    """Wall-clock lives in ``timing``, never in ``stats`` — that is what
    makes the bit-identical comparisons above possible."""
    r = run_pair("1b", "vvadd", "tiny", use_cache=False)
    assert not any("wall" in k for k in r.stats)
    assert r.timing["wall_s"] > 0
    assert r.stats["sim.ticks_big"] > 0
    assert r.stats["sim.ticks_mem"] > 0


def test_observed_run_does_not_disturb_cache(fresh_cache):
    """Cache keys and cached contents are a function of (config, workload,
    scale) only: an observed run of the same pair must not change what the
    harness caches or how it hits."""
    from repro.experiments.runner import _program_for
    from repro.obs import Observation
    from repro.soc import System
    from repro.workloads import get_workload

    a = run_pair("1b-4VL", "saxpy", "tiny")
    key = fresh_cache.key_for(preset("1b-4VL"), "saxpy", "tiny")

    cfg = preset("1b-4VL")
    observed = System(cfg).run(
        _program_for(cfg, get_workload("saxpy", "tiny")), obs=Observation())

    assert fresh_cache.key_for(preset("1b-4VL"), "saxpy", "tiny") == key
    hit = run_pair("1b-4VL", "saxpy", "tiny")
    assert hit is a  # still the cached object, untouched by the obs run
    assert not any(k.startswith("obs.") for k in hit.stats)
    shared = {k: v for k, v in observed.stats.items()
              if not k.startswith("obs.")}
    assert shared == a.stats
