"""Tests for the experiment runner's system-to-program mapping."""

import pytest

from repro.errors import WorkloadError
from repro.experiments import clear_cache, run_pair, speedups_over_1l
from repro.soc import preset


def test_run_pair_basic():
    r = run_pair("1L", "vvadd", "tiny")
    assert r.system == "1L"
    assert r.cycles > 0


def test_cache_returns_same_object():
    clear_cache()
    a = run_pair("1b", "vvadd", "tiny")
    b = run_pair("1b", "vvadd", "tiny")
    assert a is b
    c = run_pair("1b", "vvadd", "tiny", use_cache=False)
    assert c is not a
    assert c.cycles == a.cycles  # deterministic simulation


def test_cache_key_includes_frequencies():
    clear_cache()
    a = run_pair("1b", "vvadd", "tiny")
    cfg = preset("1b").with_freqs(big=1.4)
    b = run_pair("1b", "vvadd", "tiny", cfg=cfg)
    assert a is not b
    assert b.stats["time_ps"] < a.stats["time_ps"]


def test_vector_systems_get_vector_traces():
    r = run_pair("1bDV", "saxpy", "tiny")
    assert r["dve.instrs"] > 0
    r2 = run_pair("1b-4VL", "saxpy", "tiny")
    assert r2["vlittle.instrs"] > 0


def test_task_parallel_on_single_core_systems_is_scalar():
    r = run_pair("1bDV", "bfs", "tiny")
    assert r["dve.instrs"] == 0  # engine unused for irregular code
    assert r["big0.instrs"] > 0


def test_task_parallel_on_multicore_uses_runtime():
    r = run_pair("1b-4L", "pagerank", "tiny")
    assert r["runtime.tasks"] > 0


def test_vlittle_scalar_mode_equivalence_through_runner():
    a = run_pair("1b-4L", "bfs", "tiny")
    b = run_pair("1b-4VL", "bfs", "tiny")
    assert a.cycles == b.cycles


def test_speedups_over_1l():
    sp = speedups_over_1l("vvadd", ["1L", "1b"], "tiny")
    assert sp["1L"] == 1.0
    assert sp["1b"] > 1.0


def test_unknown_workload_raises():
    with pytest.raises(WorkloadError):
        run_pair("1b", "nonexistent", "tiny")
