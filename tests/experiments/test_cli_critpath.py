"""``bigvlittle critpath`` and ``bigvlittle inspect`` end to end.

Contract: both verbs simulate fresh (never touch the result cache);
``critpath`` prints the per-group breakdown or writes a valid
``bigvlittle-critpath-v1`` report that tiles the total simulated time
exactly; ``inspect`` renders / writes the same
``bigvlittle-forensics-v1`` snapshot a DeadlockError would carry.
"""

import json

from repro.experiments.cli import main

CP_ARGS = ["critpath", "saxpy", "--scale", "tiny"]
IN_ARGS = ["inspect", "saxpy", "--scale", "tiny"]


def _cache_untouched(cache):
    assert cache.hits == 0 and cache.misses == 0
    assert cache.stats()["disk_entries"] == 0


def test_critpath_table(fresh_cache, run_spy, capsys):
    assert main(CP_ARGS) == 0
    assert run_spy["n"] == 1
    out = capsys.readouterr().out
    assert "tiles exactly" in out
    assert "big" in out and "wakeups" in out
    _cache_untouched(fresh_cache)


def test_critpath_json_stdout_tiles(fresh_cache, capsys):
    assert main([*CP_ARGS, "--json"]) == 0
    text = capsys.readouterr().out
    doc = json.loads(text[text.index("{"):])
    assert doc["schema"] == "bigvlittle-critpath-v1"
    assert doc["tiles"] is True
    assert doc["attributed_ps"] == doc["total_ps"] > 0
    assert doc["meta"]["workload"] == "saxpy"
    assert doc["meta"]["loop"] == "event"
    _cache_untouched(fresh_cache)


def test_critpath_json_file(tmp_path, fresh_cache, capsys):
    out = tmp_path / "critpath.json"
    assert main([*CP_ARGS, "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["tiles"] is True and doc["wakeup_edges"] > 0
    assert "wrote critpath report" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_inspect_completed_run(fresh_cache, run_spy, capsys):
    assert main(IN_ARGS) == 0
    assert run_spy["n"] == 1
    out = capsys.readouterr().out
    assert "(completed)" in out
    assert "blocking frontier: none" in out
    _cache_untouched(fresh_cache)


def test_inspect_at_ns_snapshots_midrun(fresh_cache, capsys):
    assert main([*IN_ARGS, "--at-ns", "2"]) == 0
    out = capsys.readouterr().out
    assert "forensics @ 2000 ps (horizon)" in out
    assert "blocking frontier:" in out
    _cache_untouched(fresh_cache)


def test_inspect_json_file(tmp_path, fresh_cache, capsys):
    out = tmp_path / "forensics.json"
    assert main([*IN_ARGS, "--at-ns", "2", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "bigvlittle-forensics-v1"
    assert doc["t_ns"] == 2 and doc["reason"] == "horizon"
    assert doc["units"] and doc["workload"] == "saxpy"
    assert "wrote forensics snapshot" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_inspect_json_stdout(fresh_cache, capsys):
    assert main([*IN_ARGS, "--json"]) == 0
    text = capsys.readouterr().out
    doc = json.loads(text[text.index("{"):])
    assert doc["reason"] == "completed"
    assert doc["blocking_frontier"] == []
    _cache_untouched(fresh_cache)
