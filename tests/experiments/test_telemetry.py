"""Sweep-telemetry tests: JSONL schema, cache-count reconciliation,
worker traces, and the runner's extended summary.

Contract: the JSONL log's cache_hit/cache_miss counts match
``cache.stats()`` *exactly* (events are emitted on the same branches
that bump the counters), the Chrome trace has one track per worker, and
everything is silent when telemetry is disabled.
"""

import json

import pytest

from repro.experiments import telemetry
from repro.experiments.parallel import (
    ParallelRunner,
    RunRequest,
    format_summary,
)
from repro.experiments.runner import run_pair


@pytest.fixture
def tel(tmp_path):
    """An enabled process-wide telemetry sink backed by a tmp JSONL file."""
    t = telemetry.enable(path=str(tmp_path / "telemetry.jsonl"))
    yield t
    telemetry.disable()


def test_disabled_by_default():
    assert telemetry.current() is None


def test_run_pair_emits_run_events(fresh_cache, tel):
    run_pair("1b", "vvadd", "tiny")
    assert tel.counts["cache_miss"] == 1
    assert tel.counts["run_start"] == 1
    assert tel.counts["run_end"] == 1
    assert tel.counts["worker_busy"] == 1
    run_pair("1b", "vvadd", "tiny")  # memory hit: no new run
    assert tel.counts["cache_hit"] == 1
    assert tel.counts["run_start"] == 1
    starts = [e for e in tel.events if e["ev"] == "run_start"]
    ends = [e for e in tel.events if e["ev"] == "run_end"]
    assert starts[0]["system"] == "1b" and starts[0]["workload"] == "vvadd"
    assert starts[0]["key"] == ends[0]["key"]
    assert ends[0]["cycles"] > 0 and ends[0]["wall_s"] > 0


def test_run_end_carries_timing_split(fresh_cache, tel):
    run_pair("1b", "vvadd", "tiny")
    (end,) = [e for e in tel.events if e["ev"] == "run_end"]
    assert end["level"] == "fresh"
    assert end["sim_wall_s"] > 0
    assert end["load_wall_s"] == 0.0  # fresh run: nothing loaded from disk
    # the split tiles the total within JSONL rounding
    assert end["sim_wall_s"] + end["load_wall_s"] == pytest.approx(
        end["wall_s"], abs=2e-6)


def test_jsonl_matches_cache_stats_exactly(fresh_cache, tel):
    reqs = [RunRequest("1b", w, "tiny") for w in ("vvadd", "saxpy", "vvadd")]
    runner = ParallelRunner(jobs=1, cache=fresh_cache)
    runner.run(reqs)
    runner.run(reqs)  # warm pass: all hits
    events = telemetry.load_jsonl(tel.path)
    st = fresh_cache.stats()
    assert sum(e["ev"] == "cache_hit" for e in events) == st["hits"]
    assert sum(e["ev"] == "cache_miss" for e in events) == st["misses"]
    assert sum(e["ev"] == "cache_corrupt" for e in events) == st["corrupt"]
    # and the in-memory counts agree with the file
    assert tel.counts["cache_hit"] == st["hits"]
    assert tel.counts["cache_miss"] == st["misses"]


def test_sweep_events_bracket_the_run(fresh_cache, tel):
    runner = ParallelRunner(jobs=1, cache=fresh_cache)
    runner.run([RunRequest("1b", "vvadd", "tiny")])
    evs = [e["ev"] for e in tel.events]
    assert evs[0] == "sweep_start" and evs[-1] == "sweep_end"
    start = tel.events[0]
    assert start["requests"] == 1 and start["jobs"] == 1
    end = tel.events[-1]
    assert end["simulated"] == 1 and end["cache_hits"] == 0


def test_corrupt_cache_file_emits_event(fresh_cache, tel, tmp_path):
    import os

    from repro.experiments.cache import ResultCache

    run_pair("1b", "vvadd", "tiny")
    from repro.soc import preset

    key = fresh_cache.key_for(preset("1b"), "vvadd", "tiny")
    path = os.path.join(fresh_cache.cache_dir, f"{key}.json")
    with open(path, "w") as f:
        f.write("{not json")
    stale = ResultCache(cache_dir=fresh_cache.cache_dir)
    with pytest.warns(RuntimeWarning):
        assert stale.get(key) is None
    assert tel.counts["cache_corrupt"] == 1
    assert stale.stats()["corrupt"] == 1


def test_chrome_trace_one_track_per_worker(tel):
    tel.span("101", "a", 10.0, 10.5)
    tel.span("102", "b", 10.2, 10.9)
    tel.span("101", "c", 10.6, 11.0)
    doc = tel.chrome_trace()
    evs = doc["traceEvents"]
    meta = [e for e in evs if e["ph"] == "M"]
    spans = [e for e in evs if e["ph"] == "X"]
    names = {e["args"]["name"] for e in meta}
    assert names == {"sweep", "worker 101", "worker 102"}
    assert len(spans) == 3
    assert {e["tid"] for e in spans} == {1, 2}
    a = next(e for e in spans if e["name"] == "a")
    assert a["ts"] == 0.0 and a["dur"] == pytest.approx(0.5e6)
    assert tel.busy_s() == pytest.approx(1.6)


def test_write_chrome_trace_is_loadable_json(tel, tmp_path):
    tel.span("7", "run", 1.0, 2.0)
    out = tmp_path / "sweep_trace.json"
    n = tel.write_chrome_trace(str(out))
    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) == n


def test_summary_extensions_and_format(fresh_cache):
    reqs = [RunRequest("1b", "vvadd", "tiny"), RunRequest("1b", "vvadd", "tiny")]
    runner = ParallelRunner(jobs=1, cache=fresh_cache)
    runner.run(reqs)
    s = runner.summary()
    assert s["workers"] == 1
    assert s["hit_ratio"] == 0.0
    assert 0.0 < s["worker_util"] <= 1.0
    runner2 = ParallelRunner(jobs=1, cache=fresh_cache)
    runner2.run(reqs)
    s2 = runner2.summary()
    assert s2["hit_ratio"] == 1.0 and s2["workers"] == 0
    text = format_summary(s2)
    assert "cache hits" in text and "hit ratio 100%" in text


def test_load_wall_s_counts_fresh_disk_loads_once(fresh_cache):
    """Only a fresh disk load costs load time; memory re-hits are free."""
    from repro.experiments.cache import ResultCache

    reqs = [RunRequest("1b", "vvadd", "tiny")] * 3
    ParallelRunner(jobs=1, cache=fresh_cache).run(reqs)
    cold = ResultCache(cache_dir=fresh_cache.cache_dir)  # fresh memory level
    runner = ParallelRunner(jobs=1, cache=cold)
    runner.run(reqs)
    s = runner.summary()
    assert cold.disk_hits == 1  # one disk load, two memory re-hits
    hit = cold.get(cold.key_for(reqs[0].config(), "vvadd", "tiny"))
    assert s["load_wall_s"] == pytest.approx(hit.timing["load_wall_s"])


def test_worker_disables_inherited_telemetry(fresh_cache, tel, monkeypatch):
    """The worker body must never double-log into an inherited sink."""
    from repro.experiments.parallel import _simulate

    req = RunRequest("1b", "vvadd", "tiny")
    payload = _simulate(req, fresh_cache.cache_dir, True, True)
    assert telemetry.current() is None  # worker-side disable ran
    assert payload["pid"] > 0
    assert payload["t_end"] >= payload["t_start"]
    assert payload["result"]["stats"]["time_ps"] > 0
