"""Parallel-runner tests: warm-cache short-circuit, dedup, summaries."""

import pytest

from repro.experiments import figures
from repro.experiments.parallel import (
    ParallelRunner,
    RunRequest,
    format_summary,
    warm_cache,
)

WLS = ["vvadd", "saxpy"]
SYSTEMS = ["1L", "1b", "1b-4VL"]


def test_warm_cache_fig4_needs_zero_system_runs(fresh_cache, run_spy):
    """Acceptance criterion: with a warm cache, regenerating Fig. 4 data
    performs zero ``System.run`` calls."""
    cold = figures.fig4(scale="tiny", systems=SYSTEMS, workloads=WLS)
    assert run_spy["n"] == len(SYSTEMS) * len(WLS)
    before = run_spy["n"]
    warm = figures.fig4(scale="tiny", systems=SYSTEMS, workloads=WLS)
    assert run_spy["n"] == before  # zero new simulations
    assert warm == cold


def test_warm_disk_cache_survives_process_boundary(fresh_cache, run_spy):
    """Same criterion across a 'restart': only the memory level is dropped,
    the disk level must still satisfy every lookup."""
    cold = figures.fig4(scale="tiny", systems=SYSTEMS, workloads=WLS)
    before = run_spy["n"]
    fresh_cache._mem.clear()  # simulate a fresh process on the same disk
    warm = figures.fig4(scale="tiny", systems=SYSTEMS, workloads=WLS)
    assert run_spy["n"] == before
    assert warm == cold


def test_parallel_cold_then_warm(fresh_cache):
    reqs = [RunRequest(s, w, "tiny") for s in SYSTEMS for w in WLS]
    runner = ParallelRunner(jobs=2)
    runner.run(reqs)
    s1 = runner.summary()
    assert s1["simulated"] == len(reqs) and s1["cache_hits"] == 0
    runner2 = ParallelRunner(jobs=2)
    runner2.run(reqs)
    s2 = runner2.summary()
    assert s2["simulated"] == 0 and s2["cache_hits"] == len(reqs)
    assert "cache hits" in format_summary(s2)


def test_duplicate_requests_simulate_once(fresh_cache):
    reqs = [RunRequest("1b", "vvadd", "tiny")] * 3
    runner = ParallelRunner(jobs=1)
    results = runner.run(reqs)
    assert runner.summary()["simulated"] == 1
    assert results[0] is results[1] is results[2]


def test_no_cache_runner_simulates_every_request(fresh_cache, run_spy):
    reqs = [RunRequest("1b", "vvadd", "tiny")] * 2
    runner = ParallelRunner(jobs=1, use_cache=False)
    runner.run(reqs)
    assert run_spy["n"] == 2
    assert fresh_cache.stats()["disk_entries"] == 0


def test_results_align_with_requests(fresh_cache):
    reqs = [RunRequest("1b", "vvadd", "tiny"),
            RunRequest("1b-4VL", "saxpy", "tiny",
                       dict(vmu_loadq=8, vmu_storeq=8)),
            RunRequest("1b", "vvadd", "tiny")]
    results = ParallelRunner(jobs=2).run(reqs)
    assert results[0].system == "1b" and results[0].name == "vvadd"
    assert results[1].system == "1b-4VL"
    assert results[0] is results[2]


def test_overrides_reach_worker_processes(fresh_cache):
    slow = RunRequest("1b-4VL", "saxpy", "tiny", dict(switch_penalty=8000))
    fast = RunRequest("1b-4VL", "saxpy", "tiny", dict(switch_penalty=0))
    r_slow, r_fast = ParallelRunner(jobs=2).run([slow, fast])
    assert r_slow.stats["time_ps"] > r_fast.stats["time_ps"]


def test_warm_cache_noop_when_serial(fresh_cache, run_spy):
    assert warm_cache([RunRequest("1b", "vvadd", "tiny")], jobs=None) is None
    assert warm_cache([RunRequest("1b", "vvadd", "tiny")], jobs=1) is None
    assert run_spy["n"] == 0


def test_disabled_cache_keeps_workers_cacheless(fresh_cache):
    """CLI --no-cache must reach the worker processes too: nothing may be
    written to disk even though workers build their own cache handles."""
    fresh_cache.enabled = False
    ParallelRunner(jobs=2).run([RunRequest("1b", "vvadd", "tiny")])
    assert fresh_cache.stats()["disk_entries"] == 0
    assert fresh_cache.stats()["memory_entries"] == 0


def test_progress_lines_emitted(fresh_cache, capsys):
    ParallelRunner(jobs=1).run([RunRequest("1b", "vvadd", "tiny")],
                               progress=True)
    err = capsys.readouterr().err
    assert "[1/1] 1b/vvadd@tiny simulated" in err
