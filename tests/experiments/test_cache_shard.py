"""Sharded-cache behavior: layout, legacy fallback, pruning, and the
concurrency contract (atomic writes — readers never see torn files)."""

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments import cli
from repro.experiments.cache import ResultCache
from repro.stats import RunResult


def _result(i=0):
    return RunResult(f"wl{i}", "1b", 100 + i,
                     {"time_ps": 1000 + i, "big0.instrs": 10 * i},
                     {"wall_s": 0.0, "sim_wall_s": 0.0, "from_cache": False})


def _keys(cache, n):
    """n distinct real config-hash keys (vary a mem knob per run spec)."""
    from repro.soc import preset

    return [cache.key_for(preset("1b", mem={"dram_latency": 100 + 10 * i}),
                          "vvadd", "tiny") for i in range(n)]


# ------------------------------------------------------------------ layout

def test_sharded_put_lands_in_prefix_dir(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), shards=2)
    [key] = _keys(cache, 1)
    cache.put(key, _result())
    expect = tmp_path / key[:2] / f"{key}.json"
    assert expect.exists()
    assert cache.path_for(key) == str(expect)
    # flat root holds only shard dirs, no entry files
    assert not list(tmp_path.glob("*.json"))


def test_sharded_cache_reads_flat_legacy_entries(tmp_path):
    flat = ResultCache(cache_dir=str(tmp_path), shards=0)
    [key] = _keys(flat, 1)
    flat.put(key, _result())
    sharded = ResultCache(cache_dir=str(tmp_path), shards=2)
    hit = sharded.get(key)
    assert hit is not None and hit.cycles == _result().cycles
    assert sharded.stats()["disk_entries"] == 1


def test_stats_reports_shards_and_shard_dirs(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), shards=2)
    for i, key in enumerate(_keys(cache, 3)):
        cache.put(key, _result(i))
    st = cache.stats()
    assert st["shards"] == 2
    assert st["disk_entries"] == 3
    assert 1 <= st["shard_dirs"] <= 3
    assert st["pruned"] == 0


def test_clear_empties_shard_dirs_too(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), shards=2)
    for i, key in enumerate(_keys(cache, 3)):
        cache.put(key, _result(i))
    cache.clear()
    assert cache.stats()["disk_entries"] == 0


# ------------------------------------------------------------------- prune

def test_prune_evicts_lru_by_mtime(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), shards=2)
    keys = _keys(cache, 3)
    for i, key in enumerate(keys):
        cache.put(key, _result(i))
    # age the first two files; the third is the most recently used
    now = time.time()
    for age, key in zip((300, 200), keys[:2]):
        os.utime(cache.path_for(key), (now - age, now - age))
    newest_size = os.path.getsize(cache.path_for(keys[2]))
    out = cache.prune(max_bytes=newest_size)
    assert out["removed"] == 2
    assert out["disk_bytes"] <= newest_size
    assert cache.stats()["pruned"] == 2
    # oldest two gone (from disk AND the memory level), newest survives
    assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
    assert cache.get(keys[2]) is not None


def test_prune_is_noop_under_limit(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), shards=2)
    [key] = _keys(cache, 1)
    cache.put(key, _result())
    out = cache.prune(max_bytes=10 * 1024 * 1024)
    assert out["removed"] == 0 and cache.stats()["pruned"] == 0
    assert cache.get(key) is not None


def test_cli_cache_prune(fresh_cache, capsys):
    from repro.experiments.runner import run_pair

    run_pair("1b", "vvadd", "tiny")
    run_pair("1b", "vvadd", "tiny", mem={"dram_latency": 400})
    assert fresh_cache.stats()["disk_entries"] == 2
    assert cli.main(["cache", "prune", "--max-bytes", "1"]) == 0
    out = capsys.readouterr().out
    assert "pruned 2 cached results" in out
    assert fresh_cache.stats()["disk_entries"] == 0
    assert fresh_cache.stats()["pruned"] == 2


def test_cli_cache_prune_requires_max_bytes(fresh_cache, capsys):
    assert cli.main(["cache", "prune"]) == 2


# ------------------------------------------------------------- corruption

def test_corrupt_shard_entry_is_one_counted_miss(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), shards=2)
    [key] = _keys(cache, 1)
    cache.put(key, _result())
    with open(cache.path_for(key), "w") as f:
        f.write("{torn")
    fresh = ResultCache(cache_dir=str(tmp_path), shards=2)
    with pytest.warns(RuntimeWarning, match="corrupted result-cache file"):
        assert fresh.get(key) is None
    st = fresh.stats()
    assert st["corrupt"] == 1 and st["misses"] == 1 and st["hits"] == 0


# ------------------------------------------------------------ concurrency

def _hammer_writer(cache_dir, shards, key, result_dict, n_iters):
    cache = ResultCache(cache_dir=cache_dir, shards=shards)
    result = RunResult.from_dict(result_dict)
    for _ in range(n_iters):
        cache.put(key, result)


def test_two_processes_racing_same_key_never_torn(tmp_path):
    """Two writers re-put one key while the parent re-reads it from disk:
    every read must see a complete entry (atomic temp+rename), never a
    partial file, and never a corruption warning."""
    cache_dir = str(tmp_path)
    cache = ResultCache(cache_dir=cache_dir, shards=2)
    [key] = _keys(cache, 1)
    result = _result()
    cache.put(key, result)

    writers = [multiprocessing.Process(
        target=_hammer_writer, args=(cache_dir, 2, key, result.to_dict(), 200))
        for _ in range(2)]
    for w in writers:
        w.start()
    try:
        reads = 0
        while any(w.is_alive() for w in writers):
            # a fresh instance per read: no memory level, disk every time
            reader = ResultCache(cache_dir=cache_dir, shards=2)
            hit = reader.get(key)  # corrupt would raise RuntimeWarning
            assert hit is not None and hit.stats == result.stats
            assert reader.stats()["corrupt"] == 0
            reads += 1
    finally:
        for w in writers:
            w.join()
    assert all(w.exitcode == 0 for w in writers)
    assert reads > 0
    # and no stray temp files survive the stampede
    leftovers = [p for p in (tmp_path / key[:2]).iterdir()
                 if p.name.endswith(".tmp")]
    assert leftovers == []


def test_concurrent_distinct_keys_all_land(tmp_path):
    cache_dir = str(tmp_path)
    cache = ResultCache(cache_dir=cache_dir, shards=1)
    keys = _keys(cache, 4)
    result = _result()
    procs = [multiprocessing.Process(
        target=_hammer_writer, args=(cache_dir, 1, key, result.to_dict(), 50))
        for key in keys]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)
    st = ResultCache(cache_dir=cache_dir, shards=1).stats()
    assert st["disk_entries"] == len(keys)
