"""Bench-history tests: ledger round-trip, merge determinism, regression
deltas, and the sparkline dashboard."""

import json

import pytest

from repro.experiments.benchhistory import (
    SCHEMA,
    append_entry,
    deltas,
    find_bench_files,
    format_report,
    load_bench_results,
    load_history,
    main,
    merged_entries,
    metric_direction,
    render_html,
    trajectory,
)


def _bench_file(path, results):
    doc = {"schema": "bigvlittle-bench-v1",
           "results": [{"name": n, "metrics": m} for n, m in results.items()]}
    path.write_text(json.dumps(doc))
    return str(path)


@pytest.fixture
def snapshots(tmp_path):
    a = _bench_file(tmp_path / "BENCH_alpha.json",
                    {"alpha:saxpy": {"wall_s": 1.0, "speedup": 2.0}})
    b = _bench_file(tmp_path / "BENCH_beta.json",
                    {"beta:bfs": {"overhead_ratio": 1.04}})
    return tmp_path, [a, b]


def test_find_and_load_bench_files(snapshots):
    root, paths = snapshots
    assert find_bench_files(str(root)) == sorted(paths)
    merged = load_bench_results(paths)
    assert merged == {"alpha:saxpy": {"wall_s": 1.0, "speedup": 2.0},
                      "beta:bfs": {"overhead_ratio": 1.04}}


def test_append_and_load_roundtrip(snapshots):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    e1 = append_entry(str(ledger), paths, note="first", ts=100.0,
                      source="test")
    e2 = append_entry(str(ledger), paths, note="second", ts=200.0,
                      source="test")
    history = load_history(str(ledger))
    assert history == [e1, e2]
    assert history[0]["schema"] == SCHEMA
    assert history[0]["ts"] == 100.0 and history[1]["note"] == "second"


def test_append_dedup_skips_identical_tail(snapshots):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    assert append_entry(str(ledger), paths, ts=1.0, source="ci",
                        dedup=True) is not None
    # same snapshots, same source: a dedup append is a no-op
    assert append_entry(str(ledger), paths, ts=2.0, source="ci",
                        dedup=True) is None
    assert len(load_history(str(ledger))) == 1
    # a different source still appends even with identical results
    assert append_entry(str(ledger), paths, ts=3.0, source="local",
                        dedup=True) is not None
    # changed numbers append again
    _bench_file(root / "BENCH_alpha.json",
                {"alpha:saxpy": {"wall_s": 0.5, "speedup": 4.0}})
    assert append_entry(str(ledger), paths, ts=4.0, source="local",
                        dedup=True) is not None
    assert len(load_history(str(ledger))) == 3


def test_cli_append_dedups_and_reports_skip(snapshots, capsys):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    assert main(["--ledger", str(ledger), "--bench", *paths,
                 "--append"]) == 0
    assert main(["--ledger", str(ledger), "--bench", *paths,
                 "--append"]) == 0
    stdout = capsys.readouterr().out
    assert "appended entry" in stdout and "skipped append" in stdout
    assert len(load_history(str(ledger))) == 1


def test_merge_is_deterministic(snapshots):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    append_entry(str(ledger), paths, ts=1.0)
    append_entry(str(ledger), paths, ts=2.0)
    a = trajectory(merged_entries(str(ledger), paths, ts=3.0))
    b = trajectory(merged_entries(str(ledger), paths, ts=3.0))
    assert a == b
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    # every series spans every entry (2 ledger lines + working tree)
    assert all(len(series) == 3
               for bench in a.values() for series in bench.values())


def test_corrupt_ledger_lines_are_skipped(snapshots):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    append_entry(str(ledger), paths, ts=1.0)
    with open(ledger, "a") as f:
        f.write("{truncated\n")
    append_entry(str(ledger), paths, ts=2.0)
    with pytest.warns(RuntimeWarning, match="corrupt ledger line"):
        history = load_history(str(ledger))
    assert [e["ts"] for e in history] == [1.0, 2.0]


def test_metric_direction_heuristic():
    assert metric_direction("event_speedup") == 1
    assert metric_direction("geomean_improvement") == 1
    assert metric_direction("sim_wall_s") == -1
    assert metric_direction("overhead_ratio") == -1
    assert metric_direction("event_skipped_frac") == 0  # unknown: no flag


def test_deltas_flag_directional_moves_only():
    entries = [
        {"results": {"b": {"wall_s": 1.0, "speedup": 2.0, "frac": 0.5}}},
        {"results": {"b": {"wall_s": 1.5, "speedup": 2.4, "frac": 0.9}}},
    ]
    rows = {(r["name"], r["metric"]): r for r in deltas(entries)}
    assert rows[("b", "wall_s")]["regressed"]      # slower = bad
    assert rows[("b", "speedup")]["improved"]      # faster = good
    frac = rows[("b", "frac")]
    assert not frac["regressed"] and not frac["improved"]  # directionless
    assert rows[("b", "wall_s")]["rel"] == pytest.approx(0.5)


def test_deltas_compare_against_last_entry_with_the_metric():
    entries = [
        {"results": {"b": {"wall_s": 1.0}}},
        {"results": {"b": {}}},  # metric absent in the middle entry
        {"results": {"b": {"wall_s": 2.0}}},
    ]
    (row,) = deltas(entries)
    assert row["old"] == 1.0 and row["new"] == 2.0 and row["regressed"]


def test_format_report_lists_regressions():
    entries = [
        {"ts": 1.0, "source": "a", "note": "", "results":
            {"b": {"wall_s": 1.0}}},
        {"ts": 2.0, "source": "b", "note": "", "results":
            {"b": {"wall_s": 2.0}}},
    ]
    text = format_report(entries)
    assert "REGRESSED" in text and "1 regression(s)" in text
    assert "2 entries" in text


def test_render_html_dashboard(tmp_path):
    entries = [
        {"ts": 1.0, "source": "a", "note": "", "results":
            {"bench:x": {"wall_s": 1.0, "speedup": 2.0}}},
        {"ts": 2.0, "source": "b", "note": "", "results":
            {"bench:x": {"wall_s": 0.8, "speedup": 2.5}}},
    ]
    out = tmp_path / "dash.html"
    n = render_html(entries, str(out))
    html = out.read_text()
    assert n == 2
    assert "<svg" in html and "bench:x" in html and "speedup" in html
    assert 'class="imp"' in html  # both metrics improved


def test_cli_append_report_and_html(snapshots, capsys):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    out = root / "dash.html"
    assert main(["--ledger", str(ledger), "--bench", *paths,
                 "--append", "--note", "n1"]) == 0
    assert main(["--ledger", str(ledger), "--bench", *paths,
                 "--html", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "appended entry" in stdout and "dashboard" in stdout
    assert "<svg" in out.read_text()
    assert len(load_history(str(ledger))) == 1


def test_cli_json_dump(snapshots, capsys):
    root, paths = snapshots
    ledger = root / "BENCH_history.jsonl"
    append_entry(str(ledger), paths, ts=1.0)
    assert main(["--ledger", str(ledger), "--bench", *paths, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == SCHEMA
    assert "alpha:saxpy" in doc["trajectory"]
