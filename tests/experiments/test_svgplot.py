"""Tests for the dependency-free SVG chart renderer."""

import xml.dom.minidom

import pytest

from repro.experiments import svgplot


def valid(svg_text):
    xml.dom.minidom.parseString(svg_text)
    return True


def test_grouped_bars_valid_svg():
    data = {"a": {"s1": 1.0, "s2": 2.5}, "b": {"s1": 0.5, "s2": 4.0}}
    svg = svgplot.grouped_bars(data, ["s1", "s2"], title="t", ylabel="y")
    out = svg.render()
    assert valid(out)
    assert out.count("<rect") >= 5  # 4 bars + background + legend
    assert "t</text>" in out


def test_grouped_bars_log_scale():
    data = {"a": {"s": 1.0}, "b": {"s": 100.0}}
    out = svgplot.grouped_bars(data, ["s"], log=True).render()
    assert valid(out)


def test_stacked_bars():
    data = {
        "w1": {"1c": {"busy": 10, "misc": 5}, "2c": {"busy": 8, "misc": 3}},
    }
    out = svgplot.stacked_bars(data, ["busy", "misc"]).render()
    assert valid(out)
    assert out.count("<rect") >= 5


def test_line_chart():
    data = {"a": {1: 0.5, 2: 0.8, 4: 1.0}, "b": {1: 1.0, 2: 1.0, 4: 1.0}}
    out = svgplot.line_chart(data, title="lines").render()
    assert valid(out)
    assert out.count("<polyline") == 2


def test_heatmap():
    grid = {(r, c): (i + j) for i, r in enumerate("ab") for j, c in enumerate("xyz")}
    out = svgplot.heatmap(grid, ["a", "b"], ["x", "y", "z"]).render()
    assert valid(out)
    assert out.count("<rect") >= 6


def test_scatter_with_pareto():
    pts = [(1.0, 2.0, "p1"), (2.0, 1.0, "p2"), (3.0, 3.0, "p3")]
    out = svgplot.scatter(pts, pareto=[(1.0, 2.0, "p1"), (2.0, 1.0, "p2")]).render()
    assert valid(out)
    assert out.count("<circle") >= 3 + 1  # points + legend
    assert "<polyline" in out


def test_escaping():
    data = {"<evil>&": {"s": 1.0}}
    out = svgplot.grouped_bars(data, ["s"]).render()
    assert valid(out)
    assert "<evil>" not in out.replace("&lt;evil&gt;", "")


def test_nice_max():
    assert svgplot._nice_max(0) == 1.0
    assert svgplot._nice_max(3) == 5
    assert svgplot._nice_max(99) == 100
    assert svgplot._nice_max(101) == 200


def test_save(tmp_path):
    data = {"a": {"s": 1.0}}
    p = svgplot.grouped_bars(data, ["s"]).save(tmp_path / "x.svg")
    assert (tmp_path / "x.svg").exists()


def test_render_module_all_figures(tmp_path):
    from repro.experiments.render import render

    fig4 = {"speedups": {"w": {"1L": 1.0, "1b": 2.0}}, "summary": {}}
    assert render("fig4", fig4, str(tmp_path))
    fig5 = {"w": {"1bIV-4L": 3.0, "1bDV": 1.0, "1b-4VL": 1.5}}
    assert render("fig5", fig5, str(tmp_path))
    assert render("fig6", fig5, str(tmp_path))
    fig7 = {"w": {"1c": {c: 1 for c in
                         ("busy", "simd", "raw_mem", "raw_llfu", "struct",
                          "xelem", "misc")}}}
    assert render("fig7", fig7, str(tmp_path))
    fig8 = {"w": {4: 0.5, 64: 1.0}}
    assert render("fig8", fig8, str(tmp_path))
    from repro.power import BIG_LEVELS, LITTLE_LEVELS
    fig9 = {"w": {"1b-4VL": {(b, l): 1.0 for b in BIG_LEVELS for l in LITTLE_LEVELS}}}
    assert render("fig9", fig9, str(tmp_path))
    pts = [(1.0, 0.5, ("b0", "l0")), (0.5, 1.0, ("b1", "l3"))]
    fig10 = {"w": {"points": pts, "pareto": pts}}
    assert render("fig10", fig10, str(tmp_path))
    pts11 = [(1.0, 0.5, ("1b-4VL", "b0", "l0"))]
    fig11 = {"w": {"points": {"1b-4VL": pts11}, "pareto": pts11}}
    assert render("fig11", fig11, str(tmp_path))
    assert render("not-a-fig", {}, str(tmp_path)) is None
