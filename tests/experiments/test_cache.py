"""Cache-behavior tests: bypass, clearing, key fidelity, corruption."""

import json
import os

import pytest

from repro.experiments import cli
from repro.experiments.cache import ResultCache
from repro.experiments.runner import clear_cache, run_pair
from repro.soc import preset


def test_use_cache_false_bypasses(fresh_cache, run_spy):
    run_pair("1b", "vvadd", "tiny")
    assert run_spy["n"] == 1
    run_pair("1b", "vvadd", "tiny")
    assert run_spy["n"] == 1  # cache hit
    run_pair("1b", "vvadd", "tiny", use_cache=False)
    assert run_spy["n"] == 2  # bypass simulates again
    # bypass also does not overwrite/populate the cache's memory identity
    a = run_pair("1b", "vvadd", "tiny")
    assert run_spy["n"] == 2


def test_clear_cache_empties_disk_and_memory(fresh_cache, run_spy):
    run_pair("1b", "vvadd", "tiny")
    st = fresh_cache.stats()
    assert st["memory_entries"] == 1 and st["disk_entries"] == 1
    clear_cache()
    st = fresh_cache.stats()
    assert st["memory_entries"] == 0 and st["disk_entries"] == 0
    run_pair("1b", "vvadd", "tiny")
    assert run_spy["n"] == 2  # really re-simulated


def test_cli_cache_clear_and_stats(fresh_cache, capsys):
    run_pair("1b", "vvadd", "tiny")
    assert cli.main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    stats = dict(line.split(None, 1) for line in out.strip().splitlines())
    assert stats["disk_entries"] == "1"
    assert stats["memory_entries"] == "1"
    assert cli.main(["cache", "clear"]) == 0
    assert "cleared 1 cached results" in capsys.readouterr().out
    assert fresh_cache.stats()["disk_entries"] == 0
    assert fresh_cache.stats()["memory_entries"] == 0


def test_distinct_overrides_never_collide(fresh_cache):
    """The old hand-picked key tuple omitted most ``cfg.mem`` fields (and
    several engine knobs), silently aliasing distinct configs.  The
    full-config content hash must separate every one of them."""
    variants = [
        {},
        {"mem": {"l2_latency": 40}},          # omitted by the old key
        {"mem": {"l2_banks": 1}},             # omitted by the old key
        {"mem": {"l1_size": 16 * 1024}},      # omitted by the old key
        {"mem": {"dram_latency": 200}},       # omitted by the old key
        {"mem": {"dram_line_interval": 8}},
        {"dve_lanes": 4},                     # omitted by the old key
        {"ivu_vlen_bits": 256},               # omitted by the old key
        {"freq_mem": 2.0},                    # omitted by the old key
        {"chimes": 1},
    ]
    keys = {fresh_cache.key_for(preset("1b-4VL", **ov), "vvadd", "tiny")
            for ov in variants}
    assert len(keys) == len(variants)


def test_omitted_mem_field_no_longer_aliases(fresh_cache, run_spy):
    """Regression for the run_pair cache-key bug: two runs differing only in
    a mem field the old key ignored must both simulate."""
    a = run_pair("1b", "vvadd", "tiny")
    b = run_pair("1b", "vvadd", "tiny", mem={"dram_latency": 400})
    assert run_spy["n"] == 2
    assert a is not b
    assert a.stats["time_ps"] != b.stats["time_ps"]


def test_corrupted_cache_file_degrades_to_resimulation(fresh_cache, run_spy):
    a = run_pair("1b", "vvadd", "tiny")
    key = fresh_cache.key_for(preset("1b"), "vvadd", "tiny")
    path = os.path.join(fresh_cache.cache_dir, f"{key}.json")
    assert os.path.exists(path)
    with open(path, "w") as f:
        f.write("{not json")
    # fresh process = fresh memory level; the disk record is garbage
    stale = ResultCache(cache_dir=fresh_cache.cache_dir)
    with pytest.warns(RuntimeWarning, match="corrupted result-cache file"):
        b = run_pair("1b", "vvadd", "tiny", cache=stale)
    assert run_spy["n"] == 2
    assert b.stats == a.stats
    # the re-simulation healed the disk record
    with open(path) as f:
        assert json.load(f)["result"]["stats"] == a.stats


def test_missing_result_field_is_also_corruption(fresh_cache, run_spy):
    run_pair("1b", "vvadd", "tiny")
    key = fresh_cache.key_for(preset("1b"), "vvadd", "tiny")
    path = os.path.join(fresh_cache.cache_dir, f"{key}.json")
    with open(path, "w") as f:
        json.dump({"sim_version": "1.0.0"}, f)  # valid JSON, wrong shape
    stale = ResultCache(cache_dir=fresh_cache.cache_dir)
    with pytest.warns(RuntimeWarning):
        run_pair("1b", "vvadd", "tiny", cache=stale)
    assert run_spy["n"] == 2


def test_corruption_is_counted_in_stats(fresh_cache, run_spy, capsys):
    run_pair("1b", "vvadd", "tiny")
    key = fresh_cache.key_for(preset("1b"), "vvadd", "tiny")
    path = os.path.join(fresh_cache.cache_dir, f"{key}.json")
    with open(path, "w") as f:
        f.write("{not json")
    stale = ResultCache(cache_dir=fresh_cache.cache_dir)
    with pytest.warns(RuntimeWarning):
        stale.get(key)
    with pytest.warns(RuntimeWarning):
        stale.get(key)
    st = stale.stats()
    assert st["corrupt"] == 2
    assert st["misses"] == 2
    assert fresh_cache.stats()["corrupt"] == 0
    # and the CLI surfaces the counter
    assert cli.main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    stats = dict(line.split(None, 1) for line in out.strip().splitlines())
    assert stats["corrupt"] == "0"


def test_timing_split_sim_vs_load(fresh_cache, run_spy):
    """Cold runs record sim_wall_s; disk hits add a distinct load_wall_s."""
    a = run_pair("1b", "vvadd", "tiny")
    assert a.timing["from_cache"] is False
    assert a.timing["sim_wall_s"] == pytest.approx(a.timing["wall_s"])
    assert "load_wall_s" not in a.timing
    key = fresh_cache.key_for(preset("1b"), "vvadd", "tiny")
    cold = ResultCache(cache_dir=fresh_cache.cache_dir)
    b = cold.get(key)
    assert run_spy["n"] == 1
    assert b.timing["from_cache"] is True
    assert b.timing["load_wall_s"] >= 0.0
    # the original simulation cost survives the round-trip alongside it
    assert b.timing["sim_wall_s"] == pytest.approx(a.timing["sim_wall_s"])


def test_disabled_cache_never_reads_or_writes(fresh_cache, run_spy):
    fresh_cache.enabled = False
    run_pair("1b", "vvadd", "tiny")
    run_pair("1b", "vvadd", "tiny")
    assert run_spy["n"] == 2
    st = fresh_cache.stats()
    assert st["memory_entries"] == 0 and st["disk_entries"] == 0
