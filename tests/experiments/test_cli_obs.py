"""CLI observability verbs end to end: trace, profile, pipeview, timeline,
phases, diff.

Contract: every obs verb simulates fresh, writes exactly the files it
announces, exits 0 on success — and never reads or writes the result
cache (attaching an Observation must not leak ``obs.*`` keys into cached
results). ``diff --gate`` exits nonzero only on a gated regression.
"""

import json

import pytest

from repro.experiments.cli import main
from repro.obs.pipeview import KANATA_HEADER


def _cache_untouched(cache):
    assert cache.hits == 0 and cache.misses == 0
    assert cache.stats()["disk_entries"] == 0


ARGS = ["vvadd", "--scale", "tiny"]


def test_trace_verb(tmp_path, fresh_cache, run_spy, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", *ARGS, "--out", str(out)]) == 0
    assert run_spy["n"] == 1
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    assert doc["otherData"]["dropped_events"] == 0
    assert "perfetto" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_profile_verb(fresh_cache, run_spy, capsys):
    assert main(["profile", *ARGS]) == 0
    assert run_spy["n"] == 1
    out = capsys.readouterr().out
    assert "unit" in out and "vcu" in out
    _cache_untouched(fresh_cache)


def test_profile_json_file(tmp_path, fresh_cache, run_spy):
    out = tmp_path / "run.json"
    assert main(["profile", *ARGS, "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "bigvlittle-run-v1"
    assert doc["workload"] == "vvadd"
    assert doc["stats"]["cycles_1ghz"] == doc["cycles"]
    assert any(k.startswith("obs.cycles.") for k in doc["stats"])
    # the dump folds in a phase report alongside the flat stats
    assert doc["phases"]["schema"] == "bigvlittle-phases-v1"
    assert doc["phases"]["n_phases"] >= 1
    _cache_untouched(fresh_cache)


def test_profile_json_stdout(fresh_cache, capsys):
    assert main(["profile", *ARGS, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "bigvlittle-run-v1"
    _cache_untouched(fresh_cache)


def test_pipeview_verb_kanata(tmp_path, fresh_cache, run_spy, capsys):
    out = tmp_path / "pipe.kanata"
    assert main(["pipeview", *ARGS, "--out", str(out)]) == 0
    assert run_spy["n"] == 1
    lines = out.read_text().splitlines()
    assert lines[0] == KANATA_HEADER
    assert any(ln.startswith("I\t") for ln in lines)
    assert any(ln.startswith("R\t") for ln in lines)
    assert "instruction records" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_pipeview_verb_o3_format(tmp_path, fresh_cache):
    out = tmp_path / "pipe.txt"
    assert main(["pipeview", *ARGS, "--out", str(out), "--format", "o3"]) == 0
    lines = out.read_text().splitlines()
    assert lines and all(ln.startswith("O3PipeView:") for ln in lines)
    assert lines[0].startswith("O3PipeView:fetch:")
    _cache_untouched(fresh_cache)


def test_pipeview_window_drops_are_reported(tmp_path, fresh_cache, capsys):
    out = tmp_path / "pipe.kanata"
    assert main(["pipeview", *ARGS, "--out", str(out), "--window", "8"]) == 0
    assert "dropped" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_timeline_verb_csv(tmp_path, fresh_cache, run_spy, capsys):
    out = tmp_path / "tl.csv"
    assert main(["timeline", *ARGS, "--out", str(out),
                 "--interval", "200"]) == 0
    assert run_spy["n"] == 1
    header, *rows = out.read_text().splitlines()
    assert header.split(",")[0] == "cycle" and rows
    assert "samples" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_timeline_verb_json_and_trace(tmp_path, fresh_cache):
    out = tmp_path / "tl.json"
    trace = tmp_path / "counters.json"
    assert main(["timeline", *ARGS, "--out", str(out),
                 "--trace", str(trace)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "bigvlittle-timeline-v1"
    assert doc["samples"] >= 1
    cdoc = json.loads(trace.read_text())
    assert any(e.get("ph") == "C" for e in cdoc["traceEvents"])
    _cache_untouched(fresh_cache)


def test_timeline_energy_columns(tmp_path, fresh_cache, capsys):
    out = tmp_path / "tl.csv"
    assert main(["timeline", *ARGS, "--out", str(out), "--energy",
                 "--big", "b2", "--little", "l0"]) == 0
    header = out.read_text().splitlines()[0].split(",")
    for col in ("big_w", "engine_w", "power_w", "energy_j", "cum_energy_j"):
        assert col in header
    assert "energy columns (b2/l0)" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_phases_verb_table(fresh_cache, run_spy, capsys):
    assert main(["phases", "switch_thrash", "--scale", "tiny"]) == 0
    assert run_spy["n"] == 1
    out = capsys.readouterr().out
    assert "phases:" in out
    for phase in ("scalar", "mode_switch", "vector_burst"):
        assert phase in out
    _cache_untouched(fresh_cache)


def test_phases_verb_json(tmp_path, fresh_cache):
    out = tmp_path / "phases.json"
    assert main(["phases", "switch_thrash", "--scale", "tiny", "--energy",
                 "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "bigvlittle-phases-v1"
    assert doc["counts"]["vector_burst"] >= 1
    assert doc["total_energy_j"] > 0
    _cache_untouched(fresh_cache)


# ----------------------------------------------------------------- diffing


@pytest.fixture
def two_dumps(tmp_path, fresh_cache):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["profile", *ARGS, "--json", str(a)]) == 0
    assert main(["profile", *ARGS, "--json", str(b)]) == 0
    return str(a), str(b)


def test_diff_identical_runs(two_dumps, fresh_cache, capsys):
    a, b = two_dumps
    assert main(["diff", a, b]) == 0
    assert "identical: 0 deltas" in capsys.readouterr().out
    assert main(["diff", a, b, "--gate"]) == 0
    _cache_untouched(fresh_cache)


def test_diff_gate_fails_across_configs(two_dumps, tmp_path, fresh_cache,
                                        capsys):
    a, _ = two_dumps
    c = tmp_path / "c.json"
    assert main(["profile", *ARGS, "--system", "1bDV", "--json", str(c)]) == 0
    assert main(["diff", a, str(c)]) == 0  # report-only never gates
    assert main(["diff", a, str(c), "--gate"]) == 1
    assert "GATE FAILED" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_diff_gate_tolerance(two_dumps, tmp_path, capsys):
    a, _ = two_dumps
    doc = json.loads(open(a).read())
    doc["stats"]["cycles_1ghz"] = int(doc["stats"]["cycles_1ghz"] * 1.01)
    doc["stats"]["time_ps"] = doc["stats"]["cycles_1ghz"] * 1000
    b = tmp_path / "drift.json"
    b.write_text(json.dumps(doc))
    assert main(["diff", a, str(b), "--gate"]) == 1
    assert main(["diff", a, str(b), "--gate", "--rel-tol", "0.05"]) == 0
    capsys.readouterr()


def test_diff_gate_tolerance_schema(two_dumps, tmp_path, capsys):
    a, _ = two_dumps
    doc = json.loads(open(a).read())
    key = next(k for k in doc["stats"] if ".stall." in k
               and doc["stats"][k] > 100)
    doc["stats"][key] = int(doc["stats"][key] * 1.002)
    b = tmp_path / "drift.json"
    b.write_text(json.dumps(doc))
    # the checked-in policy lets 0.2% stall-attribution drift through
    # while the flat default gate catches it
    assert main(["diff", a, str(b), "--gate"]) == 1
    assert main(["diff", a, str(b), "--gate", "--tolerances",
                 "benchmarks/diff_tolerances.json"]) == 0
    capsys.readouterr()


@pytest.fixture
def two_timelines(tmp_path, fresh_cache):
    a = tmp_path / "tla.json"
    b = tmp_path / "tlb.json"
    for path in (a, b):
        assert main(["timeline", *ARGS, "--out", str(path),
                     "--interval", "100"]) == 0
    return str(a), str(b)


def test_diff_timeline_identical(two_timelines, capsys):
    a, b = two_timelines
    assert main(["diff", "--timeline", a, b, "--gate"]) == 0
    assert "within tolerance" in capsys.readouterr().out


def test_diff_timeline_localizes_divergence(two_timelines, tmp_path, capsys):
    a, b = two_timelines
    doc = json.loads(open(b).read())
    k = len(doc["series"]["cycle"]) // 2
    cyc = doc["series"]["cycle"][k]
    doc["series"]["ipc_big"][k] += 1.0
    mutated = tmp_path / "mut.json"
    mutated.write_text(json.dumps(doc))
    assert main(["diff", "--timeline", a, str(mutated)]) == 0  # report-only
    assert main(["diff", "--timeline", a, str(mutated), "--gate",
                 "--tolerances", "benchmarks/diff_tolerances.json"]) == 1
    out = capsys.readouterr().out
    assert f"FIRST DIVERGENCE at cycle {cyc} (column ipc_big)" in out
    assert "GATE FAILED" in out
