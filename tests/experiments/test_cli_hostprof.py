"""``bigvlittle hostprof`` end to end.

Contract: the verb simulates fresh (never touches the result cache),
prints the per-group table or writes a valid ``bigvlittle-hostprof-v1``
report, and the report attributes at least 95% of the measured run wall
time (the PR's acceptance bar).
"""

import json

from repro.experiments.cli import main

ARGS = ["hostprof", "saxpy", "--scale", "tiny"]


def _cache_untouched(cache):
    assert cache.hits == 0 and cache.misses == 0
    assert cache.stats()["disk_entries"] == 0


def test_hostprof_table(fresh_cache, run_spy, capsys):
    assert main(ARGS) == 0
    assert run_spy["n"] == 1
    out = capsys.readouterr().out
    assert "group" in out and "scheduler" in out and "total" in out
    assert "attributed" in out
    _cache_untouched(fresh_cache)


def test_hostprof_json_stdout_meets_coverage_bar(fresh_cache, capsys):
    assert main([*ARGS, "--json"]) == 0
    text = capsys.readouterr().out
    doc = json.loads(text[text.index("{"):])
    assert doc["schema"] == "bigvlittle-hostprof-v1"
    assert doc["coverage"] >= 0.95
    assert doc["meta"]["workload"] == "saxpy"
    assert doc["meta"]["loop"] == "event"
    assert doc["meta"]["cycles"] > 0
    _cache_untouched(fresh_cache)


def test_hostprof_json_file_and_stride(tmp_path, fresh_cache, capsys):
    out = tmp_path / "hostprof.json"
    assert main([*ARGS, "--stride", "8", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["stride"] == 8
    assert doc["coverage"] >= 0.95
    assert "wrote hostprof report" in capsys.readouterr().out
    _cache_untouched(fresh_cache)


def test_hostprof_top_limits_rows(fresh_cache, capsys):
    assert main([*ARGS, "--top", "2"]) == 0
    out = capsys.readouterr().out
    body = [ln for ln in out.splitlines()
            if ln and not ln.startswith(("==", "group", "-", "total"))]
    assert len(body) == 2
