"""Smoke tests for the figure/table generators on reduced inputs."""

from repro.experiments import figures, tables
from repro.power import BIG_LEVELS, LITTLE_LEVELS

WLS = ["vvadd", "saxpy"]


def test_fig4_structure():
    d = figures.fig4(scale="tiny", systems=["1L", "1b", "1b-4VL"], workloads=WLS)
    assert set(d["speedups"]) == set(WLS)
    assert all(v > 0 for row in d["speedups"].values() for v in row.values())
    assert "1b-4VL.data_parallel_geomean" not in d["summary"]  # kernels only


def test_fig5_fig6_normalized_to_dv():
    d5 = figures.fig5(scale="tiny", workloads=WLS)
    d6 = figures.fig6(scale="tiny", workloads=WLS)
    for d in (d5, d6):
        for w, row in d.items():
            assert set(row) == {"1bIV-4L", "1bDV", "1b-4VL"}
            assert abs(row["1bDV"] - 1.0) < 1e-9


def test_fig7_configs_present():
    d = figures.fig7(scale="tiny", workloads=["vvadd"])
    assert set(d["vvadd"]) == {"1c", "1c+sw", "2c+sw"}
    for bd in d["vvadd"].values():
        assert bd["cycles"] > 0
        assert "busy" in bd


def test_fig8_normalized():
    d = figures.fig8(scale="tiny", workloads=["vvadd"], depths=(4, 64))
    assert d["vvadd"][64] == 1.0


def test_fig9_grid_complete():
    d = figures.fig9(scale="tiny", workloads=["vvadd"], systems=("1b-4VL",))
    pts = d["vvadd"]["1b-4VL"]
    assert len(pts) == len(BIG_LEVELS) * len(LITTLE_LEVELS)
    assert all(v > 0 for v in pts.values())


def test_fig10_pareto_nonempty():
    d = figures.fig10(scale="tiny", workloads=["vvadd"])
    assert d["vvadd"]["pareto"]
    # pareto must be a subset of the points
    assert set(d["vvadd"]["pareto"]) <= set(d["vvadd"]["points"])


def test_fig11_systems_and_frontier():
    d = figures.fig11(scale="tiny", workloads=["vvadd"], systems=("1b-4L", "1b-4VL"))
    assert set(d["vvadd"]["points"]) == {"1b-4L", "1b-4VL"}
    assert d["vvadd"]["pareto"]


def test_tables_smoke():
    assert "L2" in tables.table2()
    t3 = tables.table3()
    assert t3["1b-4VL"]["vlen_bits"] == 512
    t4 = tables.table4()
    assert len(t4["ligra"]) == 8
    t5 = tables.table5()
    assert t5["sw"]["vop"] == 0.69
    t6 = tables.table6_data()
    assert t6["simple"]["overhead"] < 0.05
    t7 = tables.table7()
    assert len(t7["big"]) == 4 and len(t7["little"]) == 4


def test_cli_runs_tables(capsys):
    from repro.experiments.cli import main

    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "1b-4VL" in out
