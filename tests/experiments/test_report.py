"""Tests for the EXPERIMENTS.md report generator."""

import json

from repro.experiments import report


def tiny_data():
    cats = {c: 10 for c in ("busy", "simd", "raw_mem", "raw_llfu", "struct",
                            "xelem", "misc")}
    bd = dict(cats, cycles=100)
    grid = {(b, l): 1.0 + i for i, (b, l) in enumerate(
        (b, l) for b in ("b0", "b1", "b2", "b3") for l in ("l0", "l1", "l2", "l3"))}
    pts = [(100.0, 0.8, ("1b-4VL", "b0", "l3")), (50.0, 2.0, ("1bDV", "b1", "l1"))]
    return {
        "fig4": {"speedups": {
            "bfs": {"1L": 1.0, "1bIV-4L": 3.0, "1bDV": 2.0, "1b-4VL": 3.0},
            "vvadd": {"1L": 1.0, "1bIV-4L": 9.0, "1bDV": 28.0, "1b-4VL": 14.0},
        }, "summary": {}},
        "fig5": {"vvadd": {"1bIV-4L": 30.0, "1b-4VL": 4.0, "1bDV": 1.0}},
        "fig6": {"vvadd": {"1bIV-4L": 9.0, "1b-4VL": 1.0, "1bDV": 1.0}},
        "fig7": {"blackscholes": {"1c": dict(bd, cycles=200),
                                  "1c+sw": bd, "2c+sw": dict(bd, cycles=70)}},
        "fig8": {"vvadd": {4: 0.7, 64: 1.0}},
        "fig9": {"sw": {"1b-4VL": grid}, "vvadd": {"1b-4VL": grid}},
        "fig10": {"vvadd": {"points": pts, "pareto": pts}},
        "fig11": {"vvadd": {"points": {"1b-4VL": pts}, "pareto": pts}},
        "table6": {
            "simple": {"4L_kum2": 426.8, "4VL_kum2": 437.2, "overhead": 0.024,
                       "components": {}},
            "ariane": {"4L_kum2": 600.0, "4VL_kum2": 612.0, "overhead": 0.021,
                       "components": {}},
            "1bDV_estimate": {"ara_engine_kge": 5904, "4xariane_cluster_kge": 6288},
        },
    }


def test_render_produces_markdown():
    md = report.render(tiny_data(), "tiny")
    assert md.startswith("# EXPERIMENTS")
    for heading in ("Figure 4", "Figure 5", "Figure 6", "Figure 7",
                    "Figure 8", "Figure 9", "Figures 10 & 11", "Table VI"):
        assert heading in md
    assert "1.6x" in md  # paper claims are cited
    assert "identical" in md


def test_unjson_recovers_tuple_keys():
    raw = {"('b0', 'l1')": 1.5, "4": 2.0, "plain": 3.0}
    out = report._unjson(raw)
    assert out[("b0", "l1")] == 1.5
    assert out[4] == 2.0
    assert out["plain"] == 3.0


def test_json_roundtrip_render(tmp_path):
    data = tiny_data()
    # simulate the CLI's JSON dump/load path
    def jsonable(o):
        if isinstance(o, dict):
            return {str(k): jsonable(v) for k, v in o.items()}
        if isinstance(o, (list, tuple)):
            return [jsonable(x) for x in o]
        return o

    p = tmp_path / "d.json"
    p.write_text(json.dumps(jsonable(data)))
    loaded = report._unjson(json.loads(p.read_text()))
    md = report.render(loaded, "tiny")
    assert "Figure 9" in md


def test_main_writes_file(tmp_path):
    data = tiny_data()
    import json as _json

    def jsonable(o):
        if isinstance(o, dict):
            return {str(k): jsonable(v) for k, v in o.items()}
        if isinstance(o, (list, tuple)):
            return [jsonable(x) for x in o]
        return o

    src = tmp_path / "in.json"
    src.write_text(_json.dumps(jsonable(data)))
    out = tmp_path / "EXP.md"
    assert report.main(["--from-json", str(src), "--out", str(out)]) == 0
    assert out.read_text().startswith("# EXPERIMENTS")
