"""Fixtures for cache/parallel-runner tests."""

import pytest

from repro.experiments.cache import ResultCache, get_cache, set_cache


@pytest.fixture
def fresh_cache(tmp_path):
    """A brand-new global result cache on a private tmp directory."""
    old = get_cache()
    cache = set_cache(ResultCache(cache_dir=str(tmp_path / "cache")))
    yield cache
    set_cache(old)


@pytest.fixture
def run_spy(monkeypatch):
    """Count every ``System.run`` invocation (any import site)."""
    from repro.soc.system import System

    calls = {"n": 0}
    real_run = System.run

    def counting_run(self, *a, **kw):
        calls["n"] += 1
        return real_run(self, *a, **kw)

    monkeypatch.setattr(System, "run", counting_run)
    return calls
