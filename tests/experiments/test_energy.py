"""Tests for the quantitative energy extension (§VII-A)."""

from repro.experiments.energy import energy_summary, energy_table


def test_energy_table_shape():
    t = energy_table(scale="tiny", workloads=["vvadd", "saxpy"])
    for w, row in t.items():
        for s, cell in row.items():
            assert cell["energy_j"] > 0
            assert cell["edp"] > 0
            expected = cell["power_w"] * cell["time_ps"] * 1e-12
            assert abs(cell["energy_j"] - expected) < 1e-12


def test_vlittle_more_energy_efficient_than_baseline():
    """The paper's §VII-A claim, quantified: same power as 1bIV-4L but
    faster => less energy per run (on the vector-friendly kernels)."""
    t = energy_table(scale="tiny", workloads=["vvadd", "saxpy", "pathfinder"])
    s = energy_summary(t)
    assert s["energy_1bIV-4L_over_4VL"] > 1.0
    assert s["edp_1bIV-4L_over_4VL"] > 1.0


def test_dve_pays_energy_for_its_speed():
    """1bDV finishes faster but its engine draws 2.4x the big core's power;
    on EDP it can win, on plain energy the gap narrows or reverses."""
    t = energy_table(scale="tiny", workloads=["vvadd", "saxpy", "blackscholes"])
    s = energy_summary(t)
    # energy ratio is much smaller than the raw ~2x performance gap
    for w, row in t.items():
        perf_gap = row["1b-4VL"]["time_ps"] / row["1bDV"]["time_ps"]
        energy_gap = row["1b-4VL"]["energy_j"] / row["1bDV"]["energy_j"]
        assert energy_gap < perf_gap, w
