"""Tests for the OS-level vector-mode scheduling policies (§III-B extension)."""

import pytest

from repro.errors import ConfigError
from repro.soc.scheduler import POLICIES, VectorModeScheduler


@pytest.fixture(scope="module")
def sched():
    # 'small' scale: the vector region must be large enough to amortize the
    # 500-cycle mode switch, or the IVU fallback wins outright (which is the
    # paper's own argument for switching only at coarse granularity)
    return VectorModeScheduler("pagerank", "saxpy", scale="small",
                               arrival_fraction=0.5)


def test_all_policies_evaluate(sched):
    out = sched.compare()
    assert set(out) == set(POLICIES)
    for o in out.values():
        assert o.vector_start_ps <= o.vector_done_ps <= o.total_ps


def test_wait_starts_latest(sched):
    out = sched.compare()
    assert out["wait"].vector_start_ps >= out["preempt"].vector_start_ps
    assert out["wait"].vector_start_ps >= out["fallback"].vector_start_ps


def test_fallback_starts_immediately_but_runs_slower(sched):
    out = sched.compare()
    fb = out["fallback"]
    assert fb.vector_start_ps <= out["preempt"].vector_start_ps
    # IVU is slower than the VLITTLE engine for this kernel
    assert fb.detail["ivu_slowdown"] > 1.0


def test_preempt_pays_for_displaced_work(sched):
    out = sched.compare()
    assert out["preempt"].detail["displaced_ps"] > 0
    # makespan includes resumed tasks
    assert out["preempt"].total_ps > out["preempt"].vector_done_ps


def test_small_region_favors_ivu_fallback():
    # the flip side of coarse-grained switching (§III-B): a tiny vector
    # region cannot amortize the 500-cycle switch, so the scheduler should
    # prefer the integrated unit
    s = VectorModeScheduler("pagerank", "saxpy", scale="tiny", arrival_fraction=0.1)
    assert s.best("vector_done_ps").policy == "fallback"


def test_best_objective_switches_policy():
    # vector latency favors preempt/fallback; late arrival favors wait less
    s = VectorModeScheduler("pagerank", "saxpy", scale="small", arrival_fraction=0.1)
    by_latency = s.best("vector_done_ps")
    assert by_latency.policy in ("preempt", "fallback")


def test_arrival_at_end_makes_wait_free():
    s = VectorModeScheduler("pagerank", "saxpy", scale="tiny", arrival_fraction=1.0)
    out = s.compare()
    assert out["wait"].detail["waited_ps"] == 0


def test_bad_inputs_rejected():
    with pytest.raises(ConfigError):
        VectorModeScheduler("pagerank", "saxpy", arrival_fraction=1.5)
    s = VectorModeScheduler("pagerank", "saxpy", scale="tiny")
    with pytest.raises(ConfigError):
        s.evaluate("yolo")
