"""Differential-equivalence harness: legacy vs event run loops.

The event core (``repro.soc.events``) must be *stat-invisible*: for any
config and program, ``run(loop="event")`` and ``run(loop="legacy")``
produce bit-identical :class:`RunResult` stats apart from the
``sim.ticks_*`` executed/skipped META split, whose per-domain sums must
agree (both equal the dense tick total). This module generates seeded
randomized cases — config knobs (little-core count, vector length,
chime count, L2 banks, DVFS point) crossed with workload kinds (dense
kernel, the ``switch_thrash``/``dram_chain`` synthetics, work-stealing
task-parallel) — and checks each pair through :mod:`repro.obs.diff`.

Used two ways:

* ``tests/soc/test_skip_equivalence.py`` parametrizes its randomized
  matrix over :func:`make_case`/:func:`check_case`;
* CI runs it standalone as the dedicated differential-equivalence step,
  once per reference arm:

      PYTHONPATH=src python -m tests.soc.equivalence --cases 30
      PYTHONPATH=src python -m tests.soc.equivalence --cases 30 \\
          --loop-arm batched-off

The ``batched-off`` arm pins the VLITTLE engine's batched lane executor
against the same event loop with per-lane scalar execution forced
(``VLittleEngine.batched = False``) — the tentpole contract of the
chime-batched executor.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.experiments.runner import _program_for
from repro.obs.diff import diff_stats, dump_result
from repro.soc import System, preset
from repro.soc.config import MemConfig
from repro.vector.vlittle import VLittleEngine
from repro.workloads import get_workload

from tests.soc.test_system import (alu_trace, task_program, vec_trace)

DOMAINS = ("big", "little", "mem")
TICK_KEYS = tuple(f"sim.ticks_{d}" for d in DOMAINS) + \
    tuple(f"sim.ticks_skipped_{d}" for d in DOMAINS)

#: workload kinds; seeds rotate through these so any contiguous seed
#: range covers all of them
KINDS = ("dense", "switch_thrash", "dram_chain", "task")

#: synthetic workload parameters, sized so one case runs in tens of ms
_SYNTH = {
    "switch_thrash": dict(regions=6, scalar=8, nvec=8),
    "dram_chain": dict(n=80, stride=8192),
}


class Case:
    """One randomized (config, program) equivalence case."""

    __slots__ = ("ident", "kind", "cfg", "program")

    def __init__(self, ident, kind, cfg, program):
        self.ident = ident
        self.kind = kind
        self.cfg = cfg
        self.program = program


def make_case(seed):
    """Deterministically derive a randomized case from ``seed``."""
    rng = random.Random(0xB16_B1E55 + seed)
    kind = KINDS[seed % len(KINDS)]
    if kind == "task":
        # work-stealing needs real little cores running the runtime
        base = rng.choice(("1b-4L", "1bIV-4L"))
    else:
        base = rng.choice(("1b-4L", "1bIV-4L", "1bDV", "1b-4VL"))
    over = {"mem": MemConfig(l2_banks=rng.choice((1, 2, 4, 8)))}
    if base != "1bDV":
        over["n_little"] = rng.choice((1, 2, 3, 4))
    if base == "1b-4VL":
        over["chimes"] = rng.choice((1, 2, 4))
        over["switch_penalty"] = rng.choice((50, 200, 500))
    elif base in ("1bIV", "1bIV-4L"):
        over["ivu_vlen_bits"] = rng.choice((64, 128, 256))
    elif base == "1bDV":
        over["dve_vlen_bits"] = rng.choice((512, 1024, 2048))
    cfg = preset(base, **over)
    # DVFS point: roughly half the cases skew the three clock domains
    if rng.random() < 0.5:
        cfg = cfg.with_freqs(big=rng.choice((1.0, 1.6, 2.5)),
                             little=rng.choice((0.6, 1.0, 1.3)))
    if kind == "dense":
        vlen = cfg.vlen_bits(4)
        program = (vec_trace(vlen, n=rng.choice((32, 64)))
                   if vlen else alu_trace(250))
    elif kind == "task":
        program = task_program(n_tasks=rng.choice((3, 5)), body=30)
    else:
        workload = get_workload(kind, "small", **_SYNTH[kind])
        program = _program_for(cfg, workload)
    ident = f"s{seed:02d}-{kind}-{base}"
    return Case(ident, kind, cfg, program)


def split_meta(result):
    """``(meta, rest)`` from a result's canonical dump: the META tick
    split versus everything that must match bit-identically."""
    stats = dict(dump_result(result)["stats"])
    meta = {k: stats.pop(k) for k in TICK_KEYS}
    return meta, stats


def _run_forced_scalar(case):
    """Event-loop run with the VLITTLE engine's batched lane executor
    forced off (the per-lane scalar path for every tick). ``batched`` is
    a run-time knob like ``loop``/``skip``: never in SoCConfig or cache
    keys, and by contract stat-invisible."""
    sys_ = System(case.cfg)
    if isinstance(sys_.engine, VLittleEngine):
        sys_.engine.batched = False
    return sys_.run(case.program, loop="event")


def check_case(case, arm="legacy"):
    """Run both arms of ``case``; raise AssertionError on any
    divergence. Returns the two results.

    ``arm="legacy"`` compares the legacy scheduler against the event
    core; ``arm="batched-off"`` compares the event core's batched lane
    executor against the same loop with per-lane scalar execution
    forced (``VLittleEngine.batched = False``).
    """
    if arm == "batched-off":
        legacy = _run_forced_scalar(case)
        names = ("scalar", "batched")
    else:
        legacy = System(case.cfg).run(case.program, loop="legacy")
        names = ("legacy", "event")
    event = System(case.cfg).run(case.program, loop="event")
    meta_l, rest_l = split_meta(legacy)
    meta_e, rest_e = split_meta(event)
    report = diff_stats(rest_l, rest_e, *names)
    assert report.identical, (
        f"{case.ident}: stat divergence\n" + report.format_table())
    assert legacy.cycles == event.cycles, (
        f"{case.ident}: cycles {legacy.cycles} != {event.cycles}")
    for d in DOMAINS:
        sl = meta_l[f"sim.ticks_{d}"] + meta_l[f"sim.ticks_skipped_{d}"]
        se = meta_e[f"sim.ticks_{d}"] + meta_e[f"sim.ticks_skipped_{d}"]
        assert sl == se, (
            f"{case.ident}: {d} tick total {sl} (legacy) != {se} (event)")
    # (Work-stealing programs may skip too: a worker whose impure source
    # could claim work on the next tick vetoes its own skip, so every
    # task-steal race resolves at exactly the dense loop's instant —
    # the bit-identical diff above is the proof. Only the META split
    # differs between the arms.)
    return legacy, event


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cases", type=int, default=30)
    ap.add_argument("--seed", type=int, default=0,
                    help="first seed of the contiguous seed range")
    ap.add_argument("--loop-arm", choices=("legacy", "batched-off"),
                    default="legacy",
                    help="reference arm: the legacy scheduler, or the "
                         "event core with batched lane execution forced "
                         "off (scalar per-lane path)")
    args = ap.parse_args(argv)
    failures = 0
    for seed in range(args.seed, args.seed + args.cases):
        case = make_case(seed)
        try:
            legacy, event = check_case(case, arm=args.loop_arm)
        except AssertionError as exc:
            failures += 1
            print(f"FAIL {case.ident}: {exc}")
            continue
        print(f"ok   {case.ident:24s} cycles={event.cycles}")
    print(f"{args.cases - failures}/{args.cases} equivalent")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
