"""Watchdog and horizon parity across run loops, plus the forensics
payload every DeadlockError now carries.

Contract: a wedged workload (an instruction source that never produces
but never reports done) deadlocks with the *same* timestamp and the
*same* message in the event loop, the legacy skipping loop, and the
dense reference loop — the watchdog is part of the simulation contract,
not a loop implementation detail. The attached ``err.forensics`` report
is diagnostic-only and must name the stuck unit.
"""

import pytest

from repro.errors import DeadlockError
from repro.obs.forensics import SCHEMA
from repro.soc import System, preset
from repro.trace.source import InstrSource

COMBOS = [(True, "event"), (True, "legacy"), (False, "event"),
          (False, "legacy")]


class WedgedSource(InstrSource):
    """Never produces, never finishes: the classic hung workload."""

    __slots__ = ()

    pure_peek = True

    def peek(self):
        return None

    def pop(self):  # pragma: no cover - a wedged core must never pop
        raise AssertionError("pop() on a wedged source")

    def done(self):
        return False


def _wedged_system():
    sys_ = System(preset("1b"))
    sys_.bigs[0].set_source(WedgedSource())
    return sys_


def _deadlock(skip, loop, **kwargs):
    with pytest.raises(DeadlockError) as ei:
        _wedged_system().run(skip=skip, loop=loop, **kwargs)
    return ei.value


def test_watchdog_fires_identically_across_loops():
    errs = {combo: _deadlock(*combo) for combo in COMBOS}
    cycles = {e.cycle for e in errs.values()}
    messages = {str(e) for e in errs.values()}
    assert len(cycles) == 1 and len(messages) == 1
    (msg,) = messages
    assert msg == (f"simulation deadlocked at cycle {cycles.pop()}: "
                   f"no instruction progress in system 1b")


def test_horizon_fires_identically_across_loops():
    errs = {combo: _deadlock(*combo, max_ns=10) for combo in COMBOS}
    assert {e.cycle for e in errs.values()} == {10_000}
    assert {str(e) for e in errs.values()} == {
        "simulation deadlocked at cycle 10000: exceeded max_ns=10"}


@pytest.mark.parametrize("skip,loop", COMBOS)
def test_forensics_names_the_wedged_unit(skip, loop):
    rep = _deadlock(skip, loop).forensics
    assert rep is not None and rep["schema"] == SCHEMA
    assert rep["reason"] == "watchdog"
    assert rep["system"] == "1b"
    assert rep["blocking_frontier"] == ["big0"]
    assert any(e["waiter"] == "big0" and e["on"] == "source"
               for e in rep["wait_for"])
    big0 = next(u for u in rep["units"] if u["unit"] == "big0")
    assert not big0["done"] and big0["state"] == "asleep"


def test_horizon_forensics_reason_and_timestamp():
    rep = _deadlock(True, "event", max_ns=10).forensics
    assert rep["reason"] == "horizon"
    assert rep["t_ps"] == 10_000 and rep["t_ns"] == 10


def test_forensics_never_touches_the_message():
    e = _deadlock(True, "event")
    bare = DeadlockError(e.cycle, e.detail)
    assert str(bare) == str(e)
    assert bare.forensics is None
