"""The quiescence-skipping scheduler must be invisible in the stats.

``System.run(..., skip=False)`` grinds through every tick of every clock
domain; ``skip=True`` (the default) fast-forwards over spans where every
unit's ``next_work_ps`` proves it cannot change state. The contract
(docs/performance.md) is that the two runs produce **bit-identical**
``RunResult.stats`` apart from the ``sim.ticks_*`` executed/skipped
split, and that per domain

    on.ticks_X + on.ticks_skipped_X == off.ticks_X + off.ticks_skipped_X

(the forced-off arm reports zero skipped ticks, so its executed count is
the full tick total). The parametrization sweeps the Section IV system
matrix — serial scalar, task-parallel, VLITTLE, DVE, IVU — plus a
DVFS-skewed clock grid where the three domains tick at unrelated
periods.
"""

import pytest

from repro.obs import IntervalSampler, Observation
from repro.soc import System, preset

from tests.soc.test_system import (alu_trace, stream_trace, task_program,
                                   vec_trace)

DOMAINS = ("big", "little", "mem")
TICK_KEYS = tuple(f"sim.ticks_{d}" for d in DOMAINS) + \
    tuple(f"sim.ticks_skipped_{d}" for d in DOMAINS)


def _cases():
    yield "serial-big", preset("1b"), alu_trace(120)
    yield "serial-little", preset("1L"), stream_trace(64)
    yield "task-parallel", preset("1b-4L"), task_program(n_tasks=6, body=40)
    cfg = preset("1b-4VL", switch_penalty=50)
    yield "vlittle", cfg, vec_trace(cfg.vlen_bits(4), n=96)
    cfg = preset("1bDV")
    yield "dve", cfg, vec_trace(cfg.vlen_bits(4), n=96)
    cfg = preset("1bIV")
    yield "ivu", cfg, vec_trace(cfg.vlen_bits(4), n=96)
    # DVFS-skewed: big at 2.5 GHz, little at 0.6 GHz -> periods 400/1667/1000
    cfg = preset("1b-4VL", switch_penalty=50).with_freqs(big=2.5, little=0.6)
    yield "dvfs-skew", cfg, vec_trace(cfg.vlen_bits(4), n=96)


CASES = list(_cases())


def _split_stats(stats):
    ticks = {k: stats[k] for k in TICK_KEYS}
    rest = {k: v for k, v in stats.items() if k not in ticks}
    return ticks, rest


@pytest.mark.parametrize("cfg,program", [c[1:] for c in CASES],
                         ids=[c[0] for c in CASES])
def test_skip_on_off_stats_bit_identical(cfg, program):
    on = System(cfg).run(program, skip=True)
    off = System(cfg).run(program, skip=False)
    on_ticks, on_rest = _split_stats(on.stats)
    off_ticks, off_rest = _split_stats(off.stats)
    assert on_rest == off_rest
    # the forced-off arm executes every tick itself
    for d in DOMAINS:
        assert off_ticks[f"sim.ticks_skipped_{d}"] == 0
        assert (on_ticks[f"sim.ticks_{d}"] +
                on_ticks[f"sim.ticks_skipped_{d}"] ==
                off_ticks[f"sim.ticks_{d}"])


@pytest.mark.parametrize("cfg,program", [c[1:] for c in CASES],
                         ids=[c[0] for c in CASES])
def test_skip_equivalence_holds_under_observation(cfg, program):
    """Attaching obs + a sampler must not perturb either arm's stats.

    The sampler interval is chosen coprime-ish to the clock periods so
    sample boundaries routinely land *inside* skipped spans; the
    scheduler must stop at each boundary, snapshot, and resume without
    changing the executed/skipped split or any sampled series.
    """
    runs = {}
    for skip in (True, False):
        obs = Observation(sampler=IntervalSampler(interval=777))
        res = System(cfg, obs=obs).run(program, skip=skip)
        runs[skip] = res.stats
    on_ticks, on_rest = _split_stats(runs[True])
    off_ticks, off_rest = _split_stats(runs[False])
    assert on_rest == off_rest  # includes every obs.sample.* series point
    for d in DOMAINS:
        assert (on_ticks[f"sim.ticks_{d}"] +
                on_ticks[f"sim.ticks_skipped_{d}"] ==
                off_ticks[f"sim.ticks_{d}"])


def test_skipping_actually_happens_on_idle_heavy_case():
    """Guard against the trivial way to pass the tests above: a scheduler
    that never skips. The VLITTLE mode-switch case has long fully-idle
    penalty spans, so a healthy scheduler must skip a nonzero number of
    ticks there."""
    cfg = preset("1b-4VL")  # full 500-cycle switch penalty
    res = System(cfg).run(vec_trace(cfg.vlen_bits(4), n=64))
    skipped = sum(res.stats[f"sim.ticks_skipped_{d}"] for d in DOMAINS)
    assert skipped > 0


# ---- seeded randomized differential matrix: event vs legacy ----------
#
# The cases rotate through the workload kinds (dense kernel, the
# switch_thrash/dram_chain synthetics, work-stealing task-parallel)
# while randomizing little-core count, vector length, chime count, L2
# banks and the DVFS point; tests/soc/equivalence.py holds the
# generator and the bit-identity check (CI also runs it standalone).

from tests.soc.equivalence import check_case, make_case  # noqa: E402

N_RANDOM_CASES = 30
_MATRIX = [make_case(seed) for seed in range(N_RANDOM_CASES)]


@pytest.mark.parametrize("case", _MATRIX, ids=[c.ident for c in _MATRIX])
def test_event_matches_legacy_randomized(case):
    check_case(case)
