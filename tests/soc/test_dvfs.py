"""Clock-domain / DVFS correctness tests (the machinery behind Figs. 9-11)."""

import pytest

from repro.experiments import run_pair
from repro.soc import System, preset
from repro.trace import TraceBuilder


def alu_trace(n=300):
    tb = TraceBuilder()
    with tb.loop(n, overhead=False) as loop:
        for _ in loop:
            tb.addi(None)
            tb.addi(None)
    return tb.finish("alu")


def test_periods_round_to_picoseconds():
    cfg = preset("1b-4VL").with_freqs(big=1.4, little=0.6)
    assert cfg.period_big() == 714
    assert cfg.period_little() == 1667
    assert cfg.period_mem() == 1000


def test_compute_bound_scales_linearly_with_frequency():
    t = {}
    for f in (0.6, 1.2):
        cfg = preset("1L").with_freqs(little=f)
        t[f] = System(cfg).run(alu_trace()).stats["time_ps"]
    ratio = t[0.6] / t[1.2]
    assert ratio == pytest.approx(2.0, rel=0.08)


def test_memory_stays_at_1ghz_under_core_scaling():
    # DRAM-bound work: core frequency hardly matters
    def mk():
        tb = TraceBuilder()
        for i in range(200):
            tb.lw(0x5000000 + 64 * i)
        return tb.finish()

    slow = System(preset("1b").with_freqs(big=0.8)).run(mk()).stats["time_ps"]
    fast = System(preset("1b").with_freqs(big=1.4)).run(mk()).stats["time_ps"]
    assert slow / fast < 1.3


def test_vlittle_tracks_little_cluster_frequency():
    # fully-vectorized kernel: little frequency dominates, big is irrelevant
    t_b = {}
    for fb in (0.8, 1.4):
        cfg = preset("1b-4VL").with_freqs(big=fb, little=1.0)
        t_b[fb] = run_pair("1b-4VL", "vvadd", "tiny", cfg=cfg).stats["time_ps"]
    assert t_b[0.8] / t_b[1.4] < 1.10  # paper Fig. 9's flat rows

    t_l = {}
    for fl in (0.6, 1.2):
        cfg = preset("1b-4VL").with_freqs(big=1.0, little=fl)
        t_l[fl] = run_pair("1b-4VL", "vvadd", "tiny", cfg=cfg).stats["time_ps"]
    assert t_l[0.6] / t_l[1.2] > 1.4  # strong little-cluster sensitivity


def test_sw_responds_to_big_core_boost():
    # sw is only ~69% vectorized: its scalar traceback runs on the big core
    def gain(w):
        slow = run_pair("1b-4VL", w, "tiny",
                        cfg=preset("1b-4VL").with_freqs(big=0.8)).stats["time_ps"]
        fast = run_pair("1b-4VL", w, "tiny",
                        cfg=preset("1b-4VL").with_freqs(big=1.4)).stats["time_ps"]
        return slow / fast

    assert gain("sw") > gain("vvadd") + 0.05


def test_ivu_system_responds_to_big_boost():
    # compute-bound work: the IVU lives in the big-core clock domain
    # (streaming kernels would be DRAM-bound and insensitive — the memory
    # system stays at 1 GHz under cluster scaling)
    slow = run_pair("1bIV", "blackscholes", "tiny",
                    cfg=preset("1bIV").with_freqs(big=0.8)).stats["time_ps"]
    fast = run_pair("1bIV", "blackscholes", "tiny",
                    cfg=preset("1bIV").with_freqs(big=1.4)).stats["time_ps"]
    assert slow / fast > 1.2


def test_dve_clocked_with_big_cluster():
    slow = run_pair("1bDV", "blackscholes", "tiny",
                    cfg=preset("1bDV").with_freqs(big=0.8)).stats["time_ps"]
    fast = run_pair("1bDV", "blackscholes", "tiny",
                    cfg=preset("1bDV").with_freqs(big=1.4)).stats["time_ps"]
    assert slow / fast > 1.15  # the engine speeds up with its control core
