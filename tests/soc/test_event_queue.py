"""Event-core scheduling structure: the EventQueue contract and the
per-unit must-actually-idle guarantee.

The loop in ``repro.soc.events`` inlines its per-domain heaps for
speed, but the :class:`EventQueue` class captures the contract those
inlined heaps follow — one armed event per unit, lazy stale-entry
cancellation, deterministic uid tie-breaks — so it is tested directly
here. The second half checks the core's defining property end-to-end:
units the dense loop would tick thousands of times while quiescent
execute (almost) nothing under the event core, visible through
``system._event_unit_ticks``.
"""

import pytest

from repro.obs import Observation
from repro.soc import System, preset
from repro.soc.events import EventQueue

from tests.soc.test_system import alu_trace, vec_trace

DOMAINS = ("big", "little", "mem")


# ------------------------------------------------------------ EventQueue

def test_ties_break_by_unit_id():
    q = EventQueue(4)
    # schedule out of uid order at the same instant
    q.schedule(3, 100)
    q.schedule(0, 100)
    q.schedule(2, 100)
    assert q.pop() == (100, 0)
    assert q.pop() == (100, 2)
    assert q.pop() == (100, 3)
    assert q.pop() is None


def test_rearm_moves_the_event():
    q = EventQueue(2)
    q.schedule(0, 500)
    q.schedule(0, 200)  # re-arm earlier: the 500 entry goes stale
    assert q.peek() == (200, 0)
    assert q.pop() == (200, 0)
    assert q.pop() is None  # the stale 500 entry must not resurface


def test_rearm_later_drops_the_earlier_entry():
    q = EventQueue(2)
    q.schedule(1, 200)
    q.schedule(1, 900)  # re-arm later
    assert q.pop() == (900, 1)
    assert q.pop() is None


def test_rearm_same_time_is_idempotent():
    q = EventQueue(1)
    q.schedule(0, 300)
    q.schedule(0, 300)
    assert q.pop() == (300, 0)
    assert q.pop() is None


def test_cancel_goes_stale_lazily():
    q = EventQueue(3)
    q.schedule(0, 100)
    q.schedule(1, 150)
    q.cancel(0)
    assert q.armed_time(0) is None
    assert q.armed_time(1) == 150
    assert len(q) == 1
    assert q.peek() == (150, 1)  # the cancelled entry is skipped
    assert q.pop() == (150, 1)
    assert not q


# ------------------------------------------- must-actually-idle guard

def _unit_ticks(cfg, program):
    system = System(cfg)
    result = system.run(program, loop="event")
    return system._event_unit_ticks, result


def test_quiescent_littles_are_never_ticked():
    """A scalar program on the big core leaves the four littles with no
    work at all: each may execute only its initial t=0 probe tick, no
    matter how long the big core runs."""
    ticks, result = _unit_ticks(preset("1b-4L"), alu_trace(300))
    for name, n in ticks.items():
        if name.startswith("lit"):
            assert n <= 1, f"{name} executed {n} ticks while quiescent"
    assert ticks["big0"] > 100  # the busy unit really ran


def test_unit_ticks_match_domain_meta_for_single_unit_domains():
    """With one unit per domain, the per-unit executed counts are the
    per-domain executed cycle counts."""
    cfg = preset("1bDV")
    ticks, result = _unit_ticks(cfg, vec_trace(cfg.vlen_bits(4), n=48))
    assert ticks["mem"] == result.stats["sim.ticks_mem"]
    # big domain has two units (core + engine): each executes at most
    # the domain's executed-cycle count
    for name in ("big0", "dve"):
        assert ticks[name] <= result.stats["sim.ticks_big"]


def test_mode_switch_drain_does_not_spin_the_big_core():
    """During a §III-B mode-switch drain the big core is blocked purely
    on the engine; the event core must put it to sleep rather than
    re-probing it every cycle, so its executed ticks stay well below
    the dense big-domain cycle count."""
    cfg = preset("1b-4VL")  # full 500-cycle switch penalty
    program = vec_trace(cfg.vlen_bits(4), n=64)
    ticks, result = _unit_ticks(cfg, program)
    dense = System(cfg).run(program, skip=False)
    assert ticks["big0"] < dense.stats["sim.ticks_big"] // 2, (
        "big core executed {} of {} dense cycles while the engine "
        "drained".format(ticks["big0"], dense.stats["sim.ticks_big"]))


def test_rearm_on_wakeup_resumes_the_sleeper():
    """The vcu sleeps between vector regions and is re-armed by the big
    core's dispatch hook; if the wakeup path were broken the run would
    deadlock instead of completing with the dense arm's stats."""
    cfg = preset("1b-4VL", switch_penalty=50)
    program = vec_trace(cfg.vlen_bits(4), n=96)
    ticks, result = _unit_ticks(cfg, program)
    dense = System(cfg).run(program, skip=False)
    assert result.cycles == dense.cycles
    assert ticks["vcu"] > 0
    # the engine slept at least part of the run
    assert ticks["vcu"] < dense.stats["sim.ticks_little"]


def test_unit_ticks_cover_every_unit():
    cfg = preset("1b-4VL")
    ticks, _ = _unit_ticks(cfg, vec_trace(cfg.vlen_bits(4), n=32))
    names = set(ticks)
    assert "big0" in names and "vcu" in names and "mem" in names
    assert sum(1 for n in names if n.startswith("lit")) == 4
