"""Unit tests for SoC configuration presets (paper Table III)."""

import pytest

from repro.errors import ConfigError
from repro.soc import SYSTEM_NAMES, SoCConfig, preset


def test_all_presets_build():
    for name in SYSTEM_NAMES:
        cfg = preset(name)
        assert cfg.name == name


def test_unknown_preset_rejected():
    with pytest.raises(ConfigError):
        preset("2b-8L")


def test_preset_shapes_match_paper():
    assert preset("1L").n_big == 0 and preset("1L").n_little == 1
    assert preset("1b").n_big == 1 and preset("1b").n_little == 0
    assert preset("1b-4L").n_little == 4
    assert preset("1bIV-4L").vector == "ivu"
    assert preset("1bDV").vector == "dve"
    assert preset("1b-4VL").vector == "vlittle"


def test_vlen_bits_per_system():
    assert preset("1bIV").vlen_bits(4) == 128
    assert preset("1bDV").vlen_bits(4) == 2048
    assert preset("1b-4VL").vlen_bits(4) == 512  # 4 cores x 2 chimes x 2 packed x 32b
    assert preset("1b-4VL", packed=False).vlen_bits(4) == 256
    assert preset("1b-4VL", chimes=1, packed=False).vlen_bits(4) == 128
    assert preset("1b-4L").vlen_bits(4) == 0


def test_periods_from_frequencies():
    cfg = preset("1b-4VL", freq_big=1.0, freq_little=1.0)
    assert cfg.period_big() == 1000
    assert cfg.period_little() == 1000
    cfg2 = cfg.with_freqs(big=1.4, little=0.6)
    assert cfg2.period_big() == 714
    assert cfg2.period_little() == 1667
    assert cfg2.name == cfg.name


def test_invalid_configs_rejected():
    with pytest.raises(ConfigError):
        SoCConfig(name="x", n_big=0, n_little=0)
    with pytest.raises(ConfigError):
        SoCConfig(name="x", n_big=0, n_little=1, vector="ivu")
    with pytest.raises(ConfigError):
        SoCConfig(name="x", n_big=1, n_little=0, vector="vlittle")
    with pytest.raises(ConfigError):
        SoCConfig(name="x", vector="gpu")
