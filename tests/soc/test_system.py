"""Integration tests: full systems running synthetic programs."""

import pytest

from repro.soc import System, preset
from repro.trace import Phase, Task, TaskProgram, TraceBuilder, VectorBuilder


def alu_trace(n=200, name="alu"):
    tb = TraceBuilder()
    with tb.loop(n, overhead=False) as loop:
        for _ in loop:
            tb.addi(None)
            tb.addi(None)
    return tb.finish(name)


def stream_trace(n=256, name="stream"):
    tb = TraceBuilder()
    with tb.loop(n, overhead=False) as loop:
        for i in loop:
            r = tb.lw(0x100000 + 4 * i)
            tb.sw(r, 0x200000 + 4 * i)
    return tb.finish(name)


def vec_trace(vlen_bits, n=256, name="vec"):
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=vlen_bits)
    for base, vl in vb.strip_mine(0x300000, n=n, ew=4):
        v = vb.vle(base, vl=vl)
        v2 = vb.vfadd(v, v)
        vb.vse(v2, base + 0x100000, vl=vl)
    return tb.finish(name)


def task_program(n_tasks=8, body=60):
    tasks = []
    for t in range(n_tasks):
        tb = TraceBuilder()
        base = 0x400000 + t * 0x1000
        with tb.loop(body, overhead=False) as loop:
            for i in loop:
                r = tb.lw(base + 4 * i)
                tb.addi(r)
        tasks.append(Task(t, {"scalar": tb.finish(f"t{t}")}))
    return TaskProgram([Phase(tasks, serial=alu_trace(10, "prologue"))], name="tp")


def test_1l_runs_serial_trace():
    res = System(preset("1L")).run(alu_trace())
    assert res.system == "1L"
    assert res.cycles > 0
    assert res["lit0.instrs"] == 600  # 200 iterations x (2 addi + branch)


def test_1b_faster_than_1l_on_ilp():
    r_l = System(preset("1L")).run(alu_trace())
    r_b = System(preset("1b")).run(alu_trace())
    assert r_b.cycles < r_l.cycles


def test_vector_systems_run_their_vlen_traces():
    for name in ("1bIV", "1bDV", "1b-4VL"):
        cfg = preset(name, switch_penalty=50) if name == "1b-4VL" else preset(name)
        res = System(cfg).run(vec_trace(cfg.vlen_bits(4)))
        assert res.cycles > 0, name


def test_task_program_uses_all_cores():
    res = System(preset("1b-4L")).run(task_program())
    assert res["runtime.tasks"] == 8
    for i in range(4):
        assert res[f"lit{i}.instrs"] > 0


def test_multicore_beats_single_core_on_tasks():
    r1 = System(preset("1b")).run(task_program(n_tasks=12, body=100))
    r5 = System(preset("1b-4L")).run(task_program(n_tasks=12, body=100))
    assert r5.cycles < r1.cycles


def test_vlittle_scalar_mode_equals_big_little():
    """Paper §V-A: on task-parallel code 1b-4VL == 1bIV-4L == 1b-4L."""
    r_bl = System(preset("1b-4L")).run(task_program())
    r_vl = System(preset("1b-4VL")).run(task_program())
    assert r_vl.cycles == r_bl.cycles


def test_dvfs_little_boost_speeds_up_little_bound_work():
    cfg = preset("1L")
    slow = System(cfg.with_freqs(little=0.6)).run(alu_trace(400))
    fast = System(cfg.with_freqs(little=1.2)).run(alu_trace(400))
    assert fast.stats["time_ps"] < slow.stats["time_ps"]
    ratio = slow.stats["time_ps"] / fast.stats["time_ps"]
    assert 1.5 < ratio < 2.1  # compute-bound: ~frequency ratio


def test_dvfs_big_frequency_irrelevant_to_little_core_run():
    cfg = preset("1b-4L")
    a = System(cfg.with_freqs(big=0.8)).run(alu_trace(400))
    # serial trace runs on the big core here, so DO expect a difference
    b = System(cfg.with_freqs(big=1.4)).run(alu_trace(400))
    assert b.stats["time_ps"] < a.stats["time_ps"]


def test_memory_bound_work_insensitive_to_core_frequency():
    # long strided cold misses: DRAM-bound
    def mk():
        tb = TraceBuilder()
        r_prev = None
        for i in range(300):
            r = tb.lw(0x800000 + 64 * i)
            r_prev = r
        return tb.finish("cold")

    cfg = preset("1b")
    slow = System(cfg.with_freqs(big=0.8)).run(mk())
    fast = System(cfg.with_freqs(big=1.4)).run(mk())
    ratio = slow.stats["time_ps"] / fast.stats["time_ps"]
    assert ratio < 1.4  # far less than the 1.75x frequency ratio


def test_result_contains_request_counters():
    res = System(preset("1b")).run(stream_trace())
    assert res["fetch_requests"] > 0
    assert res["data_requests"] > 0


def test_deadlock_watchdog_fires_on_impossible_program():
    # a task program on a system with one worker whose task trace is empty is
    # fine; instead simulate a hang by max_ns too small
    from repro.errors import DeadlockError

    sys_ = System(preset("1L"))
    with pytest.raises(DeadlockError):
        sys_.run(stream_trace(4096), max_ns=10)
