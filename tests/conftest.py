"""Shared test fixtures.

The experiment harness memoizes runs into a persistent on-disk cache
(``results/cache/`` by default).  Tests must never read results produced by
an earlier run of *different* code, so the whole session is pointed at a
fresh temporary cache directory; in-process memoization still works exactly
as before.
"""

import pytest

from repro.experiments.cache import ResultCache, set_cache


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    cache = set_cache(ResultCache(
        cache_dir=str(tmp_path_factory.mktemp("result-cache"))))
    yield cache
