"""Unit tests for the L1 cache model (driven against the real L2 + DRAM)."""

import pytest

from repro.errors import ConfigError
from repro.mem import BLOCKED, HIT, MISS, DRAM, L1Cache, L2Cache, STATE_M, STATE_S


def make_l1(**kw):
    dram = DRAM()
    l2 = L2Cache(dram)
    l1 = L1Cache("c0.l1d", l2=l2, **kw)
    l2.register_client("c0.l1d", l1, coherent=True)
    return l1, l2, dram


def drain_until_fill(l1, line, start=0, max_cycles=2000):
    """Tick until the line is resident; returns the cycle it appeared."""
    for now in range(start, start + max_cycles):
        l1.tick(now)
        if l1.probe(line) is not None:
            return now
    raise AssertionError(f"line {line:#x} never filled")


def test_bad_geometry_rejected():
    dram = DRAM()
    l2 = L2Cache(dram)
    with pytest.raises(ConfigError):
        L1Cache("x", l2=l2, size_bytes=1000)


def test_cold_miss_then_hit():
    l1, _, _ = make_l1()
    res, _ = l1.access(0x1000, False, 0)
    assert res == MISS
    drain_until_fill(l1, 0x1000)
    res, ready = l1.access(0x1004, False, 200)  # same line
    assert res == HIT
    assert ready == 200 + l1.hit_latency


def test_waiter_called_on_fill():
    l1, _, _ = make_l1()
    calls = []
    l1.access(0x2000, False, 0, waiter=lambda line, t: calls.append((line, t)))
    drain_until_fill(l1, 0x2000)
    assert len(calls) == 1
    assert calls[0][0] == 0x2000
    assert calls[0][1] > 0


def test_miss_merge_shares_mshr():
    l1, _, _ = make_l1()
    calls = []
    l1.access(0x3000, False, 0, waiter=lambda l, t: calls.append(1))
    res, _ = l1.access(0x3008, False, 1, waiter=lambda l, t: calls.append(2))
    assert res == MISS
    assert l1.misses == 1  # merged, single real miss
    drain_until_fill(l1, 0x3000)
    assert sorted(calls) == [1, 2]


def test_mshr_exhaustion_blocks():
    l1, _, _ = make_l1(n_mshrs=2)
    assert l1.access(0x1000, False, 0)[0] == MISS
    assert l1.access(0x2000, False, 0)[0] == MISS
    assert l1.access(0x3000, False, 0)[0] == BLOCKED
    assert l1.mshr_blocked == 1


def test_write_hit_on_exclusive_line():
    l1, _, _ = make_l1()
    l1.access(0x1000, False, 0)
    drain_until_fill(l1, 0x1000)
    # exclusive grant (sole reader) => write hits without upgrade
    assert l1.probe(0x1000) == STATE_M
    res, _ = l1.access(0x1000, True, 300)
    assert res == HIT
    assert l1.upgrades == 0


def test_write_to_shared_line_upgrades():
    dram = DRAM()
    l2 = L2Cache(dram)
    a = L1Cache("a", l2=l2)
    b = L1Cache("b", l2=l2)
    l2.register_client("a", a, coherent=True)
    l2.register_client("b", b, coherent=True)
    a.access(0x1000, False, 0)
    drain_until_fill(a, 0x1000)
    b.access(0x1000, False, 300)
    drain_until_fill(b, 0x1000)
    assert a.probe(0x1000) == STATE_S or a.probe(0x1000) is None
    assert b.probe(0x1000) == STATE_S
    res, _ = b.access(0x1000, True, 600)
    assert res == MISS  # ownership upgrade round-trip
    assert b.upgrades == 1
    for now in range(600, 1000):
        b.tick(now)
        if b.probe(0x1000) == STATE_M:
            break
    assert b.probe(0x1000) == STATE_M
    assert a.probe(0x1000) is None  # invalidated


def test_write_joining_read_miss_blocks():
    l1, _, _ = make_l1()
    l1.access(0x1000, False, 0)
    res, _ = l1.access(0x1000, True, 1)
    assert res == BLOCKED


def test_lru_eviction_and_writeback():
    # 2-way, tiny cache: 2 sets of 2 ways, 64B lines => 256B
    l1, l2, dram = make_l1(size_bytes=256, assoc=2)
    lines = [0x0000, 0x0100, 0x0200]  # all map to set 0
    for i, ln in enumerate(lines[:2]):
        l1.access(ln, True, i * 400)
        drain_until_fill(l1, ln, start=i * 400)
    assert l1.resident_lines == 2
    l1.access(lines[2], False, 1000)
    drain_until_fill(l1, lines[2], start=1000)
    assert l1.probe(lines[0]) is None  # LRU victim
    assert l1.writebacks == 1  # was dirty
    assert l2.writebacks_in == 1


def test_invalidate_reports_dirty():
    l1, _, _ = make_l1()
    l1.access(0x1000, True, 0)
    drain_until_fill(l1, 0x1000)
    assert l1.invalidate(0x1000) is True
    assert l1.probe(0x1000) is None
    assert l1.invalidate(0x1000) is False


def test_banked_mode_changes_set_index_only():
    l1, _, _ = make_l1()
    l1.access(0x1000, False, 0)
    drain_until_fill(l1, 0x1000)
    l1.set_banked_mode(4)
    # full tags: the line is still resident and hits after the mode switch
    res, _ = l1.access(0x1000, False, 500)
    assert res == HIT
    l1.set_private_mode()
    res, _ = l1.access(0x1000, False, 501)
    assert res == HIT


def test_counters_consistent():
    l1, _, _ = make_l1()
    l1.access(0x1000, False, 0)
    drain_until_fill(l1, 0x1000)
    l1.access(0x1000, False, 300)
    s = l1.stats()
    assert s["accesses"] == 2
    assert s["hits"] == 1
    assert s["misses"] == 1
