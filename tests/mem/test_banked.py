"""Unit + property tests for the bank-interleaved addressing scheme."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import BankMap


def test_consecutive_lines_hit_different_banks():
    bm = BankMap(4, 64)
    banks = [bm.bank_of(i * 64) for i in range(8)]
    assert banks == [0, 1, 2, 3, 0, 1, 2, 3]


def test_same_line_same_bank():
    bm = BankMap(4, 64)
    assert bm.bank_of(0x1000) == bm.bank_of(0x103F)


def test_non_pow2_rejected():
    with pytest.raises(ValueError):
        BankMap(3)
    with pytest.raises(ValueError):
        BankMap(4, 48)


@given(st.integers(min_value=0, max_value=2**40))
def test_bank_in_range(addr):
    bm = BankMap(4, 64)
    assert 0 <= bm.bank_of(addr) < 4


@given(st.integers(min_value=0, max_value=2**40))
def test_index_bits_drop_bank_and_offset(addr):
    bm = BankMap(4, 64)
    # addresses differing only in offset+bank bits share index bits
    assert bm.index_bits_of(addr) == addr >> 8


def test_unit_stride_stream_balances_banks():
    # The paper places bank bits just above the offset precisely so that
    # unit-stride streams spread evenly across banks.
    bm = BankMap(4, 64)
    lines = [0x10000 + i * 64 for i in range(64)]
    parts = bm.partition_lines(lines)
    assert [len(p) for p in parts] == [16, 16, 16, 16]


def test_large_stride_can_conflict():
    # stride == nbanks*line hits a single bank — the known pathological case
    bm = BankMap(4, 64)
    lines = [i * 256 for i in range(16)]
    parts = bm.partition_lines(lines)
    assert [len(p) for p in parts] == [16, 0, 0, 0]


@given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=50))
def test_partition_preserves_all_lines(lines):
    bm = BankMap(8, 64)
    parts = bm.partition_lines(lines)
    flat = [x for p in parts for x in p]
    assert sorted(flat) == sorted(lines)
