"""Unit tests for L2 + directory + DRAM timing."""

import pytest

from repro.mem import DRAM, DelayQueue, L1Cache, L2Cache, MemorySystem, STATE_M, STATE_S


def build_pair():
    dram = DRAM(latency=80, line_interval=4)
    l2 = L2Cache(dram, latency=12)
    a = L1Cache("a", l2=l2)
    b = L1Cache("b", l2=l2)
    l2.register_client("a", a, coherent=True)
    l2.register_client("b", b, coherent=True)
    return dram, l2, a, b


def fill(l1, line, start=0, is_write=False, limit=600):
    want = STATE_M if is_write else STATE_S
    l1.access(line, is_write, start)
    for now in range(start, start + limit):
        l1.tick(now)
        if l1.probe(line) is not None and l1.probe(line) >= want:
            return now
    raise AssertionError("never filled")


def test_dram_latency_and_bandwidth():
    d = DRAM(latency=80, line_interval=4)
    t0 = d.request(0)
    t1 = d.request(0)
    t2 = d.request(0)
    assert t0 == 80
    assert t1 == 84  # serialized by line interval
    assert t2 == 88
    # after the queue drains, latency applies from 'now'
    t3 = d.request(1000)
    assert t3 == 1080


def test_dram_write_counted():
    d = DRAM()
    d.request(0, is_write=True)
    assert d.writes == 1 and d.reads == 0


def test_dram_validation():
    with pytest.raises(ValueError):
        DRAM(latency=0)


def test_l2_miss_goes_to_dram_then_hits():
    dram, l2, a, b = build_pair()
    fill(a, 0x1000)
    assert l2.misses == 1
    assert dram.reads == 1
    # second requester hits in L2
    fill(b, 0x1000, start=300)
    assert l2.hits >= 1
    assert dram.reads == 1


def test_exclusive_then_shared_grants():
    dram, l2, a, b = build_pair()
    fill(a, 0x1000)
    assert a.probe(0x1000) == STATE_M  # sole reader gets exclusive
    fill(b, 0x1000, start=300)
    assert b.probe(0x1000) == STATE_S
    assert a.probe(0x1000) == STATE_S  # downgraded


def test_dirty_forward_migrates_data():
    dram, l2, a, b = build_pair()
    fill(a, 0x1000, is_write=True)
    assert a.probe(0x1000) == STATE_M
    fill(b, 0x1000, start=300)
    assert l2.dirty_forwards == 1
    assert a.probe(0x1000) == STATE_S


def test_write_invalidates_all_sharers():
    dram, l2, a, b = build_pair()
    fill(a, 0x1000)
    fill(b, 0x1000, start=300)
    fill(b, 0x1000, start=700, is_write=True)
    assert a.probe(0x1000) is None
    assert l2.invalidations_sent >= 1
    assert b.probe(0x1000) == STATE_M


def test_bank_serialization():
    dram = DRAM()
    l2 = L2Cache(dram, nbanks=1, latency=12)
    a = L1Cache("a", l2=l2, n_mshrs=16)
    l2.register_client("a", a, coherent=True)
    # two same-cycle misses to the same bank serialize by one cycle
    r0 = l2.request("a", 0x0000, False, 0)
    r1 = l2.request("a", 0x1000, False, 0)
    assert r1 > r0


def test_different_banks_not_serialized():
    dram = DRAM(line_interval=1)
    l2 = L2Cache(dram, nbanks=4, latency=12)
    a = L1Cache("a", l2=l2, n_mshrs=16)
    l2.register_client("a", a, coherent=True)
    r0 = l2.request("a", 0x0000, False, 0)  # bank 0
    r1 = l2.request("a", 0x0040, False, 0)  # bank 1
    # bank start times equal; only DRAM bandwidth separates them
    assert abs(r1 - r0) <= dram.line_interval


def test_writeback_absorbed_and_directory_cleaned():
    dram, l2, a, b = build_pair()
    fill(a, 0x1000, is_write=True)
    a.invalidate(0x1000)  # simulate eviction data loss path guard
    l2.writeback("a", 0x1000, 100)
    assert l2.probe(0x1000)
    # after writeback, b's read shouldn't probe a
    fill(b, 0x1000, start=400)
    assert l2.dirty_forwards == 0


def test_raw_port_read_and_write():
    ms = MemorySystem(n_big=1, n_little=0)
    port = ms.make_raw_port("dve0")
    ready = ms.l2.request("dve0", 0x5000, False, 0, token=7)
    got = None
    for now in range(ready + 5):
        got = port.pop_ready(now)
        if got:
            break
    line, granted, token = got
    assert line == 0x5000 and token == 7
    # raw write lands in L2 and invalidates cached copies
    big_l1d = ms.big_l1d[0]
    big_l1d.access(0x6000, False, 0)
    for now in range(400):
        big_l1d.tick(now)
        if big_l1d.probe(0x6000) is not None:
            break
    ms.l2.request("dve0", 0x6000, True, 500, token=8)
    assert big_l1d.probe(0x6000) is None


def test_memory_system_stats_shape():
    ms = MemorySystem()
    s = ms.stats()
    assert "l2_reads" in s and "dram_reads" in s
    assert any(k.startswith("lit0.l1d") for k in s)
    assert ms.fetch_requests() == 0
    assert ms.data_requests() == 0


def test_delay_queue_fifo_and_delay():
    q = DelayQueue(delay=3)
    q.push("a", 0)
    q.push("b", 0)
    assert q.pop_ready(2) is None
    assert q.pop_ready(3) == "a"
    assert q.pop_ready(3) == "b"
    assert q.pop_ready(3) is None
