"""Property-based tests: the cache hierarchy against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.mem import DRAM, L1Cache, L2Cache, STATE_M


def build(n_l1=2, **l1kw):
    dram = DRAM()
    l2 = L2Cache(dram)
    l1s = []
    for i in range(n_l1):
        c = L1Cache(f"c{i}", l2=l2, **l1kw)
        l2.register_client(f"c{i}", c, coherent=True)
        l1s.append(c)
    return l1s, l2, dram


def drive(l1s, ops):
    """Apply (core, line_idx, is_write) ops with full drains in between;
    returns per-op outcome trail."""
    now = 0
    for core, idx, is_write in ops:
        c = l1s[core]
        addr = 0x10000 + idx * 64
        c.access(addr, is_write, now)
        # drain the hierarchy
        for _ in range(400):
            now += 1
            for x in l1s:
                x.tick(now)
            st_ = c.probe(addr & ~63)
            if st_ is not None and (not is_write or st_ == STATE_M):
                break
        now += 1
    return now


acc = st.tuples(st.integers(0, 1), st.integers(0, 30), st.booleans())


@given(st.lists(acc, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_single_writer_invariant(ops):
    """At any quiescent point, a dirty (M) line exists in at most one L1."""
    l1s, l2, dram = build()
    drive(l1s, ops)
    lines = set()
    for c in l1s:
        lines |= set(c._state)
    for line in lines:
        owners = [c for c in l1s if c.probe(line) == STATE_M]
        assert len(owners) <= 1, hex(line)


@given(st.lists(acc, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_directory_consistent_with_l1_contents(ops):
    """The L2 directory's sharer sets never miss a real L1 resident."""
    l1s, l2, dram = build()
    drive(l1s, ops)
    for i, c in enumerate(l1s):
        for line in c._state:
            entry = l2._dir.get(line)
            assert entry is not None
            assert entry[0] == f"c{i}" or f"c{i}" in entry[1], hex(line)


@given(st.lists(acc, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_counters_balance(ops):
    """accesses == hits + misses + upgrades + blocked + merged (sanity)."""
    l1s, l2, dram = build()
    drive(l1s, ops)
    for c in l1s:
        s = c.stats()
        classified = s["hits"] + s["misses"] + s["upgrades"] + s["mshr_blocked"]
        # MSHR merges are the only unclassified access kind
        assert classified <= s["accesses"]


@given(st.lists(st.integers(0, 200), min_size=1, max_size=120))
@settings(max_examples=30, deadline=None)
def test_capacity_never_exceeded(idxs):
    """Resident lines never exceed the configured capacity."""
    l1s, _, _ = build(n_l1=1, size_bytes=1024, assoc=2)  # 16 lines
    c = l1s[0]
    now = 0
    for idx in idxs:
        c.access(0x40000 + idx * 64, False, now)
        for _ in range(200):
            now += 1
            c.tick(now)
        assert c.resident_lines <= 16


@given(st.lists(st.tuples(st.integers(0, 40), st.booleans()), min_size=1, max_size=80))
@settings(max_examples=30, deadline=None)
def test_dram_never_sees_more_reads_than_l2_misses(seq):
    l1s, l2, dram = build(n_l1=1)
    now = 0
    for idx, w in seq:
        l1s[0].access(0x80000 + idx * 64, w, now)
        for _ in range(250):
            now += 1
            l1s[0].tick(now)
    assert dram.reads == l2.misses
