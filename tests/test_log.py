"""Structured-logger tests: levels, text shape, JSONL sink, registry."""

import io
import json

import pytest

from repro.log import LEVELS, StructuredLogger, configure, get_logger


def test_text_line_keeps_message_intact():
    buf = io.StringIO()
    log = StructuredLogger("t", stream=buf)
    line = log.info("[3/8] 1b/saxpy@tiny simulated", wall_s=1.25)
    assert "[3/8] 1b/saxpy@tiny simulated" in line
    assert "INFO" in line and " t: " in line and "wall_s=1.25" in line
    assert buf.getvalue().strip() == line


def test_level_filtering():
    buf = io.StringIO()
    log = StructuredLogger("t", level="warning", stream=buf)
    assert log.info("quiet") is None
    assert log.debug("quieter") is None
    assert log.warning("loud") is not None
    assert log.error("louder") is not None
    assert buf.getvalue().count("\n") == 2
    assert not log.enabled_for("info") and log.enabled_for("error")


def test_unknown_level_rejected():
    with pytest.raises(ValueError, match="unknown log level"):
        StructuredLogger("t", level="verbose")
    with pytest.raises(ValueError):
        StructuredLogger("t").log("loud", "msg")


def test_jsonl_sink(tmp_path):
    path = tmp_path / "log.jsonl"
    log = StructuredLogger("t", stream=io.StringIO(), jsonl_path=str(path))
    log.info("hello", n=3)
    log.warning("uh oh")
    log.close()
    recs = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["msg"] for r in recs] == ["hello", "uh oh"]
    assert recs[0]["level"] == "info" and recs[0]["n"] == 3
    assert recs[1]["level"] == "warning"
    assert all("ts" in r and r["logger"] == "t" for r in recs)


def test_registry_and_configure():
    a = get_logger("repro.test.a")
    assert get_logger("repro.test.a") is a
    buf = io.StringIO()
    names = configure(level="error", stream=buf)
    assert "repro.test.a" in names
    assert a.level == "error"
    assert a.info("dropped") is None
    assert get_logger("repro.test.b").level == "error"  # default for new ones
    configure(level="info")  # restore for other tests


def test_levels_are_ordered():
    assert (LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"]
            < LEVELS["error"])
