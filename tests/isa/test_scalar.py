"""Unit tests for scalar opcode metadata."""

from repro.isa.scalar import Op, FUClass, OP_FU, OP_IS_BRANCH, OP_IS_LOAD, OP_IS_STORE, mem_size


def test_every_op_has_fu_class():
    for op in Op:
        assert isinstance(OP_FU[op], FUClass)


def test_loads_and_stores_are_mem_class():
    for op in Op:
        if OP_IS_LOAD[op] or OP_IS_STORE[op]:
            assert OP_FU[op] == FUClass.MEM, op


def test_branch_classification():
    assert OP_IS_BRANCH[Op.BR]
    assert OP_IS_BRANCH[Op.JAL]
    assert OP_IS_BRANCH[Op.JALR]
    assert not OP_IS_BRANCH[Op.ADD]
    assert not OP_IS_BRANCH[Op.LW]


def test_amo_is_both_load_and_store():
    assert OP_IS_LOAD[Op.AMOADD]
    assert OP_IS_STORE[Op.AMOADD]


def test_fp_ops_use_fp_units():
    assert OP_FU[Op.FADD] == FUClass.FPU
    assert OP_FU[Op.FMADD] == FUClass.FPU
    assert OP_FU[Op.FDIV] == FUClass.FDIV
    assert OP_FU[Op.FSQRT] == FUClass.FDIV


def test_int_mul_div_split():
    assert OP_FU[Op.MUL] == FUClass.MUL
    assert OP_FU[Op.DIV] == FUClass.DIV
    assert OP_FU[Op.REM] == FUClass.DIV


def test_mem_sizes():
    assert mem_size(Op.LW) == 4
    assert mem_size(Op.LD) == 8
    assert mem_size(Op.FLW) == 4
    assert mem_size(Op.SB) == 1
    assert mem_size(Op.FSD) == 8


def test_nop_and_fence_use_no_fu():
    assert OP_FU[Op.NOP] == FUClass.NONE
    assert OP_FU[Op.FENCE] == FUClass.NONE
