"""Unit tests for vector opcode metadata."""

from repro.isa.vector import (
    VOp,
    VClass,
    VOP_CLASS,
    VOP_IS_LOAD,
    VOP_IS_STORE,
    VOP_IS_MEM,
    VOP_IS_CROSS,
    VOP_HAS_SCALAR_DEST,
    PACK_SERIALIZED,
)


def test_every_vop_classified():
    for op in VOp:
        assert isinstance(VOP_CLASS[op], VClass)


def test_memory_flags_consistent():
    for op in VOp:
        if VOP_IS_LOAD[op] or VOP_IS_STORE[op]:
            assert VOP_IS_MEM[op], op
    assert VOP_IS_LOAD[VOp.VLE]
    assert VOP_IS_LOAD[VOp.VLSE]
    assert VOP_IS_LOAD[VOp.VLUXEI]
    assert VOP_IS_STORE[VOp.VSE]
    assert VOP_IS_STORE[VOp.VSSE]
    assert VOP_IS_STORE[VOp.VSUXEI]


def test_cross_element_ops():
    for op in (VOp.VREDSUM, VOp.VFREDSUM, VOp.VPOPC, VOp.VRGATHER, VOp.VSLIDEUP):
        assert VOP_IS_CROSS[op], op
    assert not VOP_IS_CROSS[VOp.VADD]
    assert not VOP_IS_CROSS[VOp.VLE]


def test_scalar_dest_ops():
    assert VOP_HAS_SCALAR_DEST[VOp.VPOPC]
    assert VOP_HAS_SCALAR_DEST[VOp.VMV_XS]
    assert VOP_HAS_SCALAR_DEST[VOp.VSETVL]
    assert not VOP_HAS_SCALAR_DEST[VOp.VREDSUM]


def test_packing_serialization_policy():
    # Paper §III-C / §V-A: simple int arith and multiply are packable;
    # divides and all FP serialize over packed sub-elements.
    assert VOP_CLASS[VOp.VADD] == VClass.INT_SIMPLE
    assert VOP_CLASS[VOp.VMUL] == VClass.INT_SIMPLE
    assert VOP_CLASS[VOp.VDIV] in PACK_SERIALIZED
    assert VOP_CLASS[VOp.VFADD] in PACK_SERIALIZED
    assert VOP_CLASS[VOp.VFDIV] in PACK_SERIALIZED
    assert VOP_CLASS[VOp.VADD] not in PACK_SERIALIZED


def test_vmfence_is_fence_class():
    assert VOP_CLASS[VOp.VMFENCE] == VClass.FENCE
