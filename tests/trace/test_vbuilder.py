"""Unit tests for the vector (RVV-style) trace builder."""

import pytest

from repro.errors import TraceError
from repro.isa.vector import VOp
from repro.trace import TraceBuilder, VectorBuilder


def make(vlen=512):
    tb = TraceBuilder()
    return tb, VectorBuilder(tb, vlen_bits=vlen)


def test_vlmax_by_element_width():
    _, vb = make(512)
    assert vb.vlmax(4) == 16
    assert vb.vlmax(8) == 8
    _, vb128 = make(128)
    assert vb128.vlmax(4) == 4


def test_bad_vlen_rejected():
    tb = TraceBuilder()
    with pytest.raises(TraceError):
        VectorBuilder(tb, vlen_bits=100)
    with pytest.raises(TraceError):
        VectorBuilder(tb, vlen_bits=0)


def test_vsetvl_grants_min_of_avl_and_vlmax():
    tb, vb = make(512)
    assert vb.vsetvl(100, ew=4) == 16
    assert vb.vsetvl(7, ew=4) == 7
    tr = tb.finish()
    assert tr[0].op == VOp.VSETVL and tr[0].vl == 16
    assert tr[1].vl == 7


def test_vsetvl_requires_positive_avl():
    _, vb = make()
    with pytest.raises(TraceError):
        vb.vsetvl(0)


def test_arith_inherits_current_vl_and_ew():
    tb, vb = make(512)
    vb.vsetvl(10, ew=4)
    v1 = vb.vle(0x1000)
    v2 = vb.vadd(v1, v1)
    tr = tb.finish()
    add = tr[-1]
    assert add.vl == 10 and add.ew == 4
    assert add.dep_ids == (v1[1], v1[1])


def test_strip_mine_covers_exactly_n_elements():
    tb, vb = make(512)
    chunks = list(vb.strip_mine(0x1000, n=40, ew=4))
    assert sum(vl for _, vl in chunks) == 40
    assert chunks[0] == (0x1000, 16)
    assert chunks[1] == (0x1000 + 64, 16)
    assert chunks[2] == (0x1000 + 128, 8)


def test_strip_mine_vlen_agnostic_property():
    # The same generator covers n elements for any VLEN (paper §II-C: VLA).
    for vlen in (128, 256, 512, 1024, 2048):
        tb, vb = make(vlen)
        total = sum(vl for _, vl in vb.strip_mine(0, n=1000, ew=4))
        assert total == 1000, vlen


def test_strip_mine_loop_pcs_stable():
    tb, vb = make(128)
    for base, vl in vb.strip_mine(0, n=12, ew=4):
        v = vb.vle(base, vl=vl)
        vb.vse(v, base, vl=vl)
    tr = tb.finish()
    vles = [i for i in tr if getattr(i, "op", None) == VOp.VLE]
    assert len(vles) == 3
    assert len({i.pc for i in vles}) == 1


def test_unit_stride_element_addrs():
    tb, vb = make(512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x1000)
    tr = tb.finish()
    assert tr[-1].element_addrs() == [0x1000 + 4 * i for i in range(16)]


def test_strided_element_addrs():
    tb, vb = make(512)
    vb.vsetvl(4, ew=4)
    vb.vlse(0x1000, stride=128)
    tr = tb.finish()
    assert tr[-1].element_addrs() == [0x1000, 0x1080, 0x1100, 0x1180]


def test_indexed_load_keeps_explicit_addrs():
    tb, vb = make(512)
    vb.vsetvl(4, ew=4)
    addrs = [0x10, 0x200, 0x30, 0x4000]
    vb.vluxei(addrs)
    tr = tb.finish()
    assert tr[-1].op == VOp.VLUXEI
    assert tr[-1].element_addrs() == addrs
    assert tr[-1].vl == 4


def test_mask_adds_dependency_and_flag():
    tb, vb = make(512)
    vb.vsetvl(8)
    a = vb.vle(0)
    b = vb.vle(64)
    m = vb.vmflt(a, b)
    c = vb.vfadd(a, b, mask=m)
    tr = tb.finish()
    masked = tr[-1]
    assert masked.masked
    assert m[1] in masked.dep_ids


def test_vmacc_writes_accumulator_in_place():
    tb, vb = make(512)
    vb.vsetvl(8)
    acc = vb.vmv_v_x(tb.newreg())
    a = vb.vle(0)
    b = vb.vle(64)
    acc2 = vb.vmacc(acc, a, b)
    assert acc2[0] == acc[0]  # same architectural register
    assert acc2[1] != acc[1]  # new producer


def test_scalar_result_ops_return_scalar_reg():
    tb, vb = make(512)
    vb.vsetvl(8)
    a = vb.vle(0)
    red = vb.vredsum(a)
    rd = vb.vmv_x_s(red)
    assert isinstance(rd, int)
    tr = tb.finish()
    assert tr[-1].op == VOp.VMV_XS and tr[-1].rd == rd


def test_vpopc_returns_scalar_reg():
    tb, vb = make(512)
    vb.vsetvl(8)
    a = vb.vle(0)
    m = vb.vmseq(a, a)
    rd = vb.vpopc(m)
    assert isinstance(rd, int)


def test_vreg_rotation_skips_v0():
    tb, vb = make(512)
    vb.vsetvl(4)
    regs = [vb.vle(0)[0] for _ in range(64)]
    assert 0 not in regs
    assert max(regs) <= 31


def test_sequence_ids_monotonic():
    tb, vb = make(512)
    vb.vsetvl(4)
    seqs = []
    for _ in range(5):
        seqs.append(vb.vle(0)[1])
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5


def test_vmfence_emitted():
    tb, vb = make(512)
    vb.vsetvl(4)
    vb.vmfence()
    tr = tb.finish()
    assert tr[-1].op == VOp.VMFENCE


def test_scalar_operand_travels_with_instr():
    tb, vb = make(512)
    vb.vsetvl(4)
    rs = tb.newreg()
    v = vb.vmv_v_x(rs)
    tr = tb.finish()
    assert tr[-1].rs == (rs,)
