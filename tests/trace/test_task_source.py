"""Unit tests for tasks, programs and instruction sources."""

import pytest

from repro.errors import WorkloadError
from repro.trace import (
    ChainSource,
    EmptySource,
    Phase,
    Task,
    TaskProgram,
    Trace,
    TraceBuilder,
    TraceSource,
    single_trace_program,
)


def small_trace(n=3, name="t"):
    tb = TraceBuilder()
    for _ in range(n):
        tb.addi(None)
    return tb.finish(name)


def test_task_requires_scalar_variant():
    with pytest.raises(WorkloadError):
        Task(0, {"vector": small_trace()})


def test_task_variant_selection():
    s, v = small_trace(name="s"), small_trace(name="v")
    t = Task(1, {"scalar": s, "vector": v})
    assert t.trace_for(vector_capable=True) is v
    assert t.trace_for(vector_capable=False) is s
    t2 = Task(2, {"scalar": s})
    assert t2.trace_for(vector_capable=True) is s


def test_task_program_counts():
    tasks = [Task(i, {"scalar": small_trace()}) for i in range(5)]
    prog = TaskProgram([Phase(tasks[:2]), Phase(tasks[2:], serial=small_trace())], name="p")
    assert prog.total_tasks == 5
    assert len(list(prog.all_tasks())) == 5


def test_single_trace_program():
    tr = small_trace(name="solo")
    prog = single_trace_program(tr)
    assert prog.name == "solo"
    assert prog.total_tasks == 0
    assert prog.phases[0].serial is tr


def test_single_trace_program_type_check():
    with pytest.raises(WorkloadError):
        single_trace_program([1, 2, 3])


def test_trace_source_order_and_done():
    tr = small_trace(4)
    src = TraceSource(tr)
    seen = []
    while not src.done():
        assert src.peek() is tr.instrs[len(seen)]
        seen.append(src.pop())
    assert seen == tr.instrs
    assert src.peek() is None


def test_chain_source_concatenates():
    a, b = small_trace(2), small_trace(3)
    chain = ChainSource([TraceSource(a), TraceSource(b)])
    out = []
    while not chain.done():
        out.append(chain.pop())
    assert out == a.instrs + b.instrs


def test_chain_source_append_while_draining():
    a = small_trace(1)
    chain = ChainSource([TraceSource(a)])
    chain.pop()
    assert chain.done()
    b = small_trace(2)
    chain.append(TraceSource(b))
    assert not chain.done()
    assert chain.pop() is b.instrs[0]


def test_empty_source():
    e = EmptySource()
    assert e.done() and e.peek() is None
    with pytest.raises(IndexError):
        e.pop()


def test_trace_counts():
    tr = small_trace(3)
    ns, nv = tr.counts()
    assert (ns, nv) == (3, 0)
    assert tr.vector_element_ops() == 0
