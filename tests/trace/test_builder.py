"""Unit tests for the scalar trace builder DSL."""

import pytest

from repro.errors import TraceError
from repro.isa.scalar import Op
from repro.trace import TraceBuilder


def test_simple_emission_and_pcs_advance():
    tb = TraceBuilder(start_pc=0x1000)
    a = tb.li()
    b = tb.li()
    c = tb.add(a, b)
    tr = tb.finish("t")
    assert len(tr) == 3
    assert [i.pc for i in tr] == [0x1000, 0x1004, 0x1008]
    assert tr[2].op == Op.ADD
    assert tr[2].srcs == (a, b)
    assert tr[2].dst == c


def test_fresh_registers_are_unique():
    tb = TraceBuilder()
    regs = [tb.newreg() for _ in range(100)]
    assert len(set(regs)) == 100


def test_load_store_carry_addr_and_size():
    tb = TraceBuilder()
    r = tb.lw(0x2000)
    tb.sw(r, 0x2004)
    d = tb.fld(0x3000)
    tb.fsd(d, 0x3008)
    tr = tb.finish()
    assert tr[0].addr == 0x2000 and tr[0].size == 4
    assert tr[1].addr == 0x2004 and tr[1].size == 4
    assert tr[1].srcs == (r,)
    assert tr[2].size == 8
    assert tr[3].size == 8


def test_loop_pcs_stable_across_iterations():
    tb = TraceBuilder(start_pc=0)
    with tb.loop(3, overhead=False) as loop:
        for _ in loop:
            tb.addi(None)
            tb.addi(None)
    tr = tb.finish()
    # 3 iterations x (2 addi + 1 branch)
    assert len(tr) == 9
    body_pcs = [i.pc for i in tr]
    assert body_pcs[0:3] == body_pcs[3:6] == body_pcs[6:9]


def test_loop_branch_directions():
    tb = TraceBuilder()
    with tb.loop(4, overhead=False) as loop:
        for _ in loop:
            tb.addi(None)
    tr = tb.finish()
    branches = [i for i in tr if i.op == Op.BR]
    assert [b.taken for b in branches] == [True, True, True, False]
    # taken branches point back at the loop head
    head = tr[0].pc
    assert all(b.target == head for b in branches if b.taken)


def test_loop_overhead_adds_induction_update():
    tb = TraceBuilder()
    with tb.loop(2, overhead=True) as loop:
        for _ in loop:
            tb.nop()
    tr = tb.finish()
    # per iteration: nop + addi + branch
    assert len(tr) == 6
    assert tr[1].op == Op.ADDI
    assert tr[2].op == Op.BR


def test_pc_continues_after_loop():
    tb = TraceBuilder(start_pc=0)
    with tb.loop(2, overhead=False) as loop:
        for _ in loop:
            tb.nop()
    after = tb.addi(None)
    tr = tb.finish()
    nop_pcs = {i.pc for i in tr if i.op == Op.NOP}
    addi = [i for i in tr if i.dst == after][0]
    assert addi.pc not in nop_pcs
    assert addi.pc > max(nop_pcs)


def test_nested_loops_have_distinct_pcs():
    tb = TraceBuilder()
    with tb.loop(2, overhead=False) as outer:
        for _ in outer:
            tb.addi(None)
            with tb.loop(2, overhead=False) as inner:
                for _ in inner:
                    tb.nop()
    tr = tb.finish()
    outer_pcs = {i.pc for i in tr if i.op == Op.ADDI}
    inner_pcs = {i.pc for i in tr if i.op == Op.NOP}
    assert len(outer_pcs) == 1
    assert len(inner_pcs) == 1
    assert outer_pcs.isdisjoint(inner_pcs)


def test_zero_iteration_loop_emits_nothing():
    tb = TraceBuilder()
    with tb.loop(0) as loop:
        for _ in loop:
            tb.nop()
    assert len(tb.finish()) == 0


def test_negative_loop_count_rejected():
    tb = TraceBuilder()
    with pytest.raises(TraceError):
        tb.loop(-1)


def test_emit_after_finish_rejected():
    tb = TraceBuilder()
    tb.finish()
    with pytest.raises(TraceError):
        tb.nop()


def test_branch_helper():
    tb = TraceBuilder()
    c = tb.slt(tb.li(), tb.li())
    tb.branch(taken=True, cond_reg=c, target=0x40)
    tr = tb.finish()
    br = tr[-1]
    assert br.op == Op.BR and br.taken and br.target == 0x40 and br.srcs == (c,)


def test_fmadd_three_sources():
    tb = TraceBuilder()
    a, b, c = tb.li(), tb.li(), tb.li()
    d = tb.fmadd(a, b, c)
    tr = tb.finish()
    assert tr[-1].srcs == (a, b, c)
    assert tr[-1].dst == d


def test_amoadd_has_dst_and_addr():
    tb = TraceBuilder()
    s = tb.li()
    d = tb.amoadd(0x8000, s)
    tr = tb.finish()
    assert tr[-1].op == Op.AMOADD
    assert tr[-1].dst == d
    assert tr[-1].addr == 0x8000
