"""Tests for trace instruction records."""

import pytest

from repro.isa.scalar import Op
from repro.isa.vector import VOp
from repro.trace import SInstr, Trace, VInstr


def test_sinstr_repr():
    i = SInstr(0x100, Op.LW, dst=5, srcs=(1,), addr=0x2000, size=4)
    r = repr(i)
    assert "LW" in r and "0x2000" in r
    b = SInstr(0x104, Op.BR, taken=True, target=0x100)
    assert "T" in repr(b)


def test_sinstr_not_vector():
    assert not SInstr(0, Op.NOP).is_vector


def test_vinstr_is_vector_and_repr():
    v = VInstr(0, VOp.VLE, vd=1, vl=8, ew=4, base=0x1000)
    assert v.is_vector
    assert "VLE" in repr(v)


def test_element_addrs_unit_stride():
    v = VInstr(0, VOp.VLE, vd=1, vl=4, ew=4, base=0x100)
    assert v.element_addrs() == [0x100, 0x104, 0x108, 0x10C]


def test_element_addrs_strided():
    v = VInstr(0, VOp.VLSE, vd=1, vl=3, ew=4, base=0x100, stride=64)
    assert v.element_addrs() == [0x100, 0x140, 0x180]


def test_element_addrs_indexed_priority():
    v = VInstr(0, VOp.VLUXEI, vd=1, vl=2, ew=4, base=None, addrs=[7, 99])
    assert v.element_addrs() == [7, 99]


def test_element_addrs_non_memory_raises():
    v = VInstr(0, VOp.VADD, vd=1, vl=4, ew=4)
    with pytest.raises(ValueError):
        v.element_addrs()


def test_trace_counts_and_element_ops():
    instrs = [
        SInstr(0, Op.ADD, dst=1),
        VInstr(4, VOp.VLE, vd=1, vl=8, ew=4, base=0),
        VInstr(8, VOp.VADD, vd=2, vl=8, ew=4),
    ]
    t = Trace(instrs, name="t")
    assert t.counts() == (1, 2)
    assert t.vector_element_ops() == 16
    assert len(t) == 3
    assert t[0].op == Op.ADD
    assert list(iter(t)) == instrs
