"""Tests for the Table VII DVFS/power model and Pareto helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.power import (
    BIG_LEVELS,
    DVE_POWER_RATIO,
    LITTLE_LEVELS,
    dominates,
    energy_j,
    freqs,
    grid,
    pareto_frontier,
    system_power_w,
)


def test_levels_match_paper_frequencies():
    assert [v[0] for v in BIG_LEVELS.values()] == [0.8, 1.0, 1.2, 1.4]
    assert [v[0] for v in LITTLE_LEVELS.values()] == [0.6, 0.8, 1.0, 1.2]


def test_big_power_column_is_papers():
    assert BIG_LEVELS["b1"][1] == 0.591
    assert BIG_LEVELS["b2"][1] == 0.841
    assert BIG_LEVELS["b3"][1] == 1.205


def test_power_grows_superlinearly_with_frequency():
    for levels in (BIG_LEVELS, LITTLE_LEVELS):
        vals = list(levels.values())
        for (f1, p1), (f2, p2) in zip(vals, vals[1:]):
            assert p2 / p1 > f2 / f1  # voltage scaling makes it superlinear


def test_little_cores_are_an_order_of_magnitude_cheaper():
    ratio = BIG_LEVELS["b1"][1] / LITTLE_LEVELS["l2"][1]  # both at 1 GHz
    assert 5 < ratio < 12


def test_grid_has_16_points():
    assert len(grid()) == 16


def test_system_power_composition():
    p_b = system_power_w("1b")
    p_bl = system_power_w("1b-4L")
    p_dv = system_power_w("1bDV")
    p_vl = system_power_w("1b-4VL")
    assert p_bl == pytest.approx(p_b + 4 * LITTLE_LEVELS["l1"][1])
    assert p_dv == pytest.approx(p_b * (1 + DVE_POWER_RATIO))
    # paper: 1bIV-4L and 1b-4VL assumed equal to 1b-4L
    assert p_vl == system_power_w("1bIV-4L") == p_bl
    # the decoupled engine is the power hog
    assert p_dv > p_bl


def test_unknown_inputs_rejected():
    with pytest.raises(ConfigError):
        system_power_w("gpu")
    with pytest.raises(ConfigError):
        freqs(big="b9")


def test_freqs():
    assert freqs("b0", "l3") == (0.8, 1.2)


def test_pareto_frontier_basic():
    pts = [(10, 1.0, "a"), (5, 2.0, "b"), (7, 1.5, "c"), (20, 0.5, "d"), (4, 3.0, "e")]
    front = pareto_frontier(pts)
    tags = [t for _, _, t in front]
    assert tags == ["d", "a", "c", "b", "e"]


def test_pareto_dominated_points_excluded():
    pts = [(10, 1.0, "good"), (11, 1.1, "dominated")]
    front = pareto_frontier(pts)
    assert [t for _, _, t in front] == ["good"]


@given(st.lists(st.tuples(st.integers(1, 100), st.integers(1, 100)), min_size=1, max_size=30))
def test_pareto_frontier_property(raw):
    pts = [(t, w, i) for i, (t, w) in enumerate(raw)]
    front = pareto_frontier(pts)
    # no frontier point dominates another frontier point
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b) or (a[0], a[1]) == (b[0], b[1])
    # every non-frontier point is dominated by some frontier point
    front_ids = {t for _, _, t in front}
    for p in pts:
        if p[2] not in front_ids:
            assert any(
                dominates((f[0], f[1]), (p[0], p[1])) or (f[0], f[1]) == (p[0], p[1])
                for f in front
            )


def test_energy():
    assert energy_j(1e12, 2.0) == pytest.approx(2.0)
