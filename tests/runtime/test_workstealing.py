"""Unit tests for the work-stealing runtime model (no cores: drive sources)."""

import pytest

from repro.errors import WorkloadError
from repro.runtime import WorkStealingRuntime
from repro.trace import Phase, Task, TaskProgram, TraceBuilder


def mk_trace(n=5, name="t"):
    tb = TraceBuilder()
    for _ in range(n):
        tb.addi(None)
    return tb.finish(name)


def mk_program(n_tasks=8, phases=1, serial=True):
    phs = []
    tid = 0
    for _ in range(phases):
        tasks = []
        for _ in range(n_tasks):
            tasks.append(Task(tid, {"scalar": mk_trace(5, f"task{tid}")}))
            tid += 1
        phs.append(Phase(tasks, serial=mk_trace(3, "serial") if serial else None))
    return TaskProgram(phs, name="prog")


def drain(rt, rounds=100_000):
    """Round-robin drain every worker until the runtime finishes."""
    popped = [0] * len(rt.workers)
    for _ in range(rounds):
        progress = False
        for i, w in enumerate(rt.workers):
            if w.peek() is not None:
                w.pop()
                popped[i] += 1
                progress = True
        if rt.finished and all(w.done() for w in rt.workers):
            return popped
        if not progress and rt.finished:
            return popped
    raise AssertionError("runtime never finished")


def test_all_tasks_execute_exactly_once():
    prog = mk_program(n_tasks=16)
    rt = WorkStealingRuntime(prog, n_workers=4)
    drain(rt)
    assert rt.tasks_executed == 16
    assert sorted(rt._executed_ids) == list(range(16))


def test_serial_runs_only_on_worker_zero():
    prog = mk_program(n_tasks=0, serial=True)
    rt = WorkStealingRuntime(prog, n_workers=3)
    assert rt.workers[1].peek() is None
    assert rt.workers[2].peek() is None
    assert rt.workers[0].peek() is not None
    drain(rt)


def test_tasks_gated_behind_serial_prologue():
    prog = mk_program(n_tasks=4, serial=True)
    rt = WorkStealingRuntime(prog, n_workers=2)
    # worker 1 sees nothing until worker 0 drains the serial trace
    assert rt.workers[1].peek() is None
    while rt._stage == 0 and rt.workers[0].peek() is not None:
        rt.workers[0].pop()
    assert rt.workers[1].peek() is not None


def test_work_distributes_across_workers():
    prog = mk_program(n_tasks=32, serial=False)
    rt = WorkStealingRuntime(prog, n_workers=4)
    popped = drain(rt)
    assert all(p > 0 for p in popped)
    assert rt.steals > 0


def test_multiphase_barrier_ordering():
    prog = mk_program(n_tasks=4, phases=3)
    rt = WorkStealingRuntime(prog, n_workers=2)
    drain(rt)
    assert rt.tasks_executed == 12
    assert rt.finished


def test_vector_capable_worker_gets_vector_variant():
    s, v = mk_trace(5, "s"), mk_trace(2, "v")
    tasks = [Task(i, {"scalar": s, "vector": v}) for i in range(4)]
    prog = TaskProgram([Phase(tasks)], name="p")
    rt = WorkStealingRuntime(prog, n_workers=1, vector_capable=[True])
    seen = []
    while not (rt.finished and rt.workers[0].done()):
        ins = rt.workers[0].peek()
        if ins is None:
            break
        seen.append(ins)
        rt.workers[0].pop()
    # vector variant bodies are 2 instrs; with overhead the total is well
    # below what 4 scalar 5-instr bodies would produce
    assert rt.tasks_executed == 4


def test_deterministic_given_seed():
    a = WorkStealingRuntime(mk_program(16), n_workers=4, seed=7)
    b = WorkStealingRuntime(mk_program(16), n_workers=4, seed=7)
    drain(a)
    drain(b)
    assert a._executed_ids == b._executed_ids


def test_zero_workers_rejected():
    with pytest.raises(WorkloadError):
        WorkStealingRuntime(mk_program(1), n_workers=0)


def test_empty_program_finishes_immediately():
    prog = TaskProgram([], name="empty")
    rt = WorkStealingRuntime(prog, n_workers=2)
    assert rt.finished
    assert all(w.done() for w in rt.workers)
