"""Fixtures for sweep-service tests."""

import pytest


@pytest.fixture
def run_spy(monkeypatch):
    """Count every ``System.run`` invocation (any import site)."""
    from repro.soc.system import System

    calls = {"n": 0}
    real_run = System.run

    def counting_run(self, *a, **kw):
        calls["n"] += 1
        return real_run(self, *a, **kw)

    monkeypatch.setattr(System, "run", counting_run)
    return calls


@pytest.fixture
def service_app(tmp_path):
    """A live ServiceApp (1 worker, ephemeral port) that always stops."""
    from repro.service import ServiceApp

    app = ServiceApp(cache_root=str(tmp_path / "svc"), port=0, workers=1,
                     backoff_s=0.01).start()
    yield app
    app.stop(drain=True)
