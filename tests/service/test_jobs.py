"""Job queue + worker pool: lifecycle, dedup, retries, recovery, and the
counter <-> telemetry reconciliation contract."""

import json
import os

import pytest

from repro.experiments import telemetry
from repro.experiments.cache import ResultCache
from repro.service.jobs import JobQueue
from repro.service.schemas import ValidationError, validate_submit
from repro.service.workers import WorkerPool

RUN = {"system": "1b", "workload": "vvadd", "scale": "tiny",
       "overrides": {}}


def make_queue(tmp_path, journal=False):
    cache = ResultCache(cache_dir=str(tmp_path / "cache"), shards=2)
    path = str(tmp_path / "jobs.jsonl") if journal else None
    return JobQueue(cache, journal_path=path)


# -------------------------------------------------------------- lifecycle

def test_submit_claim_complete(tmp_path):
    q = make_queue(tmp_path)
    job, deduped = q.submit([dict(RUN)])
    assert not deduped
    assert job.state == "queued" and len(job.keys) == 1
    claimed = q.claim(timeout=0)
    assert claimed is job and job.state == "running"
    q.complete(job, levels={job.keys[0]: "fresh"})
    assert job.state == "done"
    assert q.counters["enqueued"] == q.counters["started"] == 1
    assert q.counters["done"] == 1 and q.pending() == 0


def test_inflight_dedup_coalesces_identical_submits(tmp_path):
    q = make_queue(tmp_path)
    a, dedup_a = q.submit([dict(RUN)])
    b, dedup_b = q.submit([dict(RUN)])
    assert a is b and not dedup_a and dedup_b
    assert a.deduped == 1 and q.counters["deduped"] == 1
    assert q.pending() == 1
    # a different artifact request is NOT the same job
    c, dedup_c = q.submit([dict(RUN)], artifacts=("timeline",))
    assert c is not a and not dedup_c
    # completion closes the dedup window
    job = q.claim(timeout=0)
    q.complete(job)
    d, dedup_d = q.submit([dict(RUN)])
    assert d is not a and not dedup_d


def test_claim_batch_takes_fifo_prefix(tmp_path):
    q = make_queue(tmp_path)
    ids = []
    for lat in (100, 200, 300):
        job, _ = q.submit([dict(RUN, overrides={"mem": {"dram_latency": lat}})])
        ids.append(job.id)
    batch = q.claim_batch(2, timeout=0)
    assert [j.id for j in batch] == ids[:2]
    assert q.pending() == 1


def test_requeue_and_fail(tmp_path):
    q = make_queue(tmp_path)
    job, _ = q.submit([dict(RUN)])
    q.claim(timeout=0)
    q.requeue(job, RuntimeError("boom"), backoff_s=0.1)
    assert job.state == "queued" and job.retries == 1
    assert q.counters["retried"] == 1
    assert q.claim(timeout=0) is job
    q.fail(job, RuntimeError("boom again"))
    assert job.state == "failed" and "boom again" in job.error
    assert q.counters["failed"] == 1
    # a failed job no longer blocks dedup
    again, deduped = q.submit([dict(RUN)])
    assert again is not job and not deduped


def test_closed_queue_rejects_submissions(tmp_path):
    q = make_queue(tmp_path)
    q.submit([dict(RUN)])
    q.close()
    with pytest.raises(RuntimeError, match="draining"):
        q.submit([dict(RUN)])
    # queued work stays claimable during the drain
    assert q.claim(timeout=0) is not None
    assert q.claim(timeout=0) is None  # then empty -> None, no block


# ----------------------------------------------------------- reconciliation

def test_counters_reconcile_with_telemetry_events(tmp_path):
    tel = telemetry.enable()
    try:
        q = make_queue(tmp_path)
        q.submit([dict(RUN)])
        q.submit([dict(RUN)])                      # deduped
        job = q.claim(timeout=0)
        q.requeue(job, "x", backoff_s=0)
        job = q.claim(timeout=0)
        q.complete(job)
        other, _ = q.submit(
            [dict(RUN, overrides={"mem": {"dram_latency": 777}})])
        q.claim(timeout=0)
        q.fail(other, "y")
        c = q.counters
        assert (tel.counts.get("job_enqueued", 0)
                == c["enqueued"] + c["deduped"] == 3)
        assert tel.counts.get("job_start", 0) == c["started"] == 3
        assert tel.counts.get("job_done", 0) == c["done"] + c["failed"] == 2
        assert tel.counts.get("job_retry", 0) == c["retried"] == 1
    finally:
        telemetry.disable()


# ----------------------------------------------------------------- journal

def test_journal_replay_requeues_interrupted_jobs(tmp_path):
    q = make_queue(tmp_path, journal=True)
    done_job, _ = q.submit([dict(RUN)])
    q.claim(timeout=0)
    q.complete(done_job, levels={done_job.keys[0]: "fresh"})
    q.submit([dict(RUN, overrides={"mem": {"dram_latency": 200}})])
    running, _ = q.submit([dict(RUN, overrides={"mem": {"dram_latency": 300}})])
    # claim one more, then "crash" without completing it
    q.claim_batch(2, timeout=0)
    q.close()

    q2 = JobQueue.load(q.cache, q.journal_path)
    assert q2.counters["recovered"] == 2
    assert q2.pending() == 2
    kept = q2.get(done_job.id)
    assert kept.state == "done" and kept.levels == done_job.levels
    assert q2.get(running.id).state == "queued"
    # new ids continue after the replayed sequence
    new, _ = q2.submit([dict(RUN, overrides={"mem": {"dram_latency": 400}})])
    assert int(new.id.split("-")[-1]) == 4


def test_journal_tolerates_torn_tail_line(tmp_path):
    q = make_queue(tmp_path, journal=True)
    q.submit([dict(RUN)])
    q.close()
    with open(q.journal_path, "a") as f:
        f.write('{"ts": 1, "ev": "job_enq')  # crash mid-write
    q2 = JobQueue.load(q.cache, q.journal_path)
    assert q2.pending() == 1 and q2.counters["recovered"] == 1


def test_journal_lines_carry_schema(tmp_path):
    q = make_queue(tmp_path, journal=True)
    q.submit([dict(RUN)])
    q.close()
    with open(q.journal_path) as f:
        recs = [json.loads(line) for line in f if line.strip()]
    assert recs and all(r["job"]["schema"] == "bigvlittle-service-v1"
                        for r in recs)


# -------------------------------------------------------------- validation

def test_validate_submit_shapes():
    runs, arts = validate_submit(
        {"system": "1b", "workload": "vvadd", "artifacts": ["phases"]})
    assert runs == [{"system": "1b", "workload": "vvadd", "scale": "small",
                     "overrides": {}}]
    assert arts == ("phases", "timeline")  # phases implies timeline
    runs, arts = validate_submit(
        {"runs": [{"system": "1b", "workload": "vvadd", "scale": "tiny"}]})
    assert len(runs) == 1 and arts == ()
    for bad in (
        [],                                           # not an object
        {"workload": "vvadd"},                        # missing system
        {"system": "1b", "workload": "vvadd", "scale": "huge"},
        {"system": "1b", "workload": "vvadd", "overrides": 3},
        {"system": "1b", "workload": "vvadd", "artifacts": ["stats"]},
        {"runs": []},
        {"runs": [{"system": "1b", "workload": "v"}], "extra": 1},
    ):
        with pytest.raises(ValidationError):
            validate_submit(bad)


# ------------------------------------------------------------- worker pool

def test_worker_pool_executes_and_records_levels(tmp_path, run_spy):
    q = make_queue(tmp_path)
    pool = WorkerPool(q, workers=1, batch=4, backoff_s=0.001).start()
    job, _ = q.submit([dict(RUN)])
    warm, _ = q.submit([dict(RUN, overrides={})])  # same key, after dedup gap?
    pool.stop(drain=True)
    assert job.state == "done"
    assert job.levels == {job.keys[0]: "fresh"}
    # the in-flight dedup coalesced the second submit onto the first job
    assert warm is job and run_spy["n"] == 1


def test_worker_pool_warm_jobs_hit_cache(tmp_path, run_spy):
    q = make_queue(tmp_path)
    pool = WorkerPool(q, workers=1, backoff_s=0.001).start()
    first, _ = q.submit([dict(RUN)])
    pool.stop(drain=True)
    assert first.state == "done" and run_spy["n"] == 1

    pool2 = WorkerPool(q, workers=1, backoff_s=0.001)
    # fresh queue state, same cache: a repeat submit is a pure cache job
    q2 = JobQueue(q.cache)
    pool2.queue = q2
    pool2.start()
    again, _ = q2.submit([dict(RUN)])
    pool2.stop(drain=True)
    assert again.state == "done"
    assert again.levels[again.keys[0]] == "memory"
    assert run_spy["n"] == 1  # zero additional simulations


def test_worker_pool_retries_then_fails_poisoned_job(tmp_path):
    tel = telemetry.enable()
    try:
        q = make_queue(tmp_path)
        sleeps = []
        pool = WorkerPool(q, workers=1, max_retries=2, backoff_s=0.05,
                          backoff_cap_s=0.08, sleep=sleeps.append).start()
        job, _ = q.submit([{"system": "1b", "workload": "no-such-workload",
                            "scale": "tiny", "overrides": {}}])
        pool.stop(drain=True)
        assert job.state == "failed" and job.retries == 2
        assert "no-such-workload" in job.error
        # capped exponential backoff: 0.05, then min(0.1, cap=0.08)
        assert sleeps == [pytest.approx(0.05), pytest.approx(0.08)]
        c = q.counters
        assert c["retried"] == 2 and c["failed"] == 1 and c["done"] == 0
        assert tel.counts.get("job_retry", 0) == 2
        assert tel.counts.get("job_start", 0) == c["started"] == 3
    finally:
        telemetry.disable()


def test_worker_pool_isolates_poisoned_job_in_batch(tmp_path):
    q = make_queue(tmp_path)
    good, _ = q.submit([dict(RUN)])
    bad, _ = q.submit([{"system": "1b", "workload": "no-such-workload",
                        "scale": "tiny", "overrides": {}}])
    # start AFTER both are queued so one claim_batch takes them together
    pool = WorkerPool(q, workers=1, batch=4, max_retries=0,
                      backoff_s=0.001).start()
    pool.stop(drain=True)
    assert good.state == "done"
    assert bad.state == "failed"


def test_worker_pool_drain_finishes_queued_work(tmp_path, run_spy):
    q = make_queue(tmp_path)
    jobs = [q.submit([dict(RUN, overrides={"mem": {"dram_latency": lat}})])[0]
            for lat in (100, 140, 180)]
    pool = WorkerPool(q, workers=2, backoff_s=0.001).start()
    pool.stop(drain=True)  # closes the queue, then joins
    assert all(j.state == "done" for j in jobs)
    assert pool.alive == 0
    with pytest.raises(RuntimeError):
        q.submit([dict(RUN)])


def test_artifact_generation_rides_on_worker(tmp_path, run_spy):
    from repro.service.artifacts import ArtifactStore

    q = make_queue(tmp_path)
    store = ArtifactStore(str(tmp_path / "artifacts"), shards=2)
    pool = WorkerPool(q, workers=1, artifact_store=store,
                      backoff_s=0.001).start()
    job, _ = q.submit([dict(RUN)], artifacts=("timeline", "phases"))
    pool.stop(drain=True)
    assert job.state == "done"
    key = job.keys[0]
    assert sorted(store.available(key)) == ["phases", "timeline"]
    # one plain simulation + one instrumented timeline run, no third run
    # for phases (they derive from the timeline dump)
    assert run_spy["n"] == 2
    assert os.path.getsize(store.path_for(key, "timeline")) > 0
