"""HTTP API tests over a real socket: contract headers, artifact serving
(warm GETs never simulate), dedup, validation, and graceful drain."""

import json
import time
import urllib.error
import urllib.request

from repro.service.schemas import ENDPOINTS, SERVICE_SCHEMA

RUN = {"system": "1b", "workload": "vvadd", "scale": "tiny"}


def req(app, method, path, body=None):
    r = urllib.request.Request(
        f"http://127.0.0.1:{app.port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(r, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


def submit_and_wait(app, body, timeout=20.0):
    status, _, raw = req(app, "POST", "/v1/runs", body)
    assert status in (200, 202)
    job = json.loads(raw)
    deadline = time.time() + timeout
    while time.time() < deadline:
        _, _, raw = req(app, "GET", f"/v1/jobs/{job['id']}")
        doc = json.loads(raw)
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job never finished: {doc}")


# ---------------------------------------------------------------- contract

def test_healthz_and_schema_headers(service_app):
    status, headers, raw = req(service_app, "GET", "/v1/healthz")
    assert status == 200
    assert headers["X-BigVLittle-Schema"] == SERVICE_SCHEMA
    assert headers["X-BigVLittle-Cache"] == "memory"
    doc = json.loads(raw)
    assert doc["ok"] is True and doc["schema"] == SERVICE_SCHEMA


def test_every_documented_endpoint_answers(service_app):
    """Each row of the schema's ENDPOINTS table resolves (no 500s, no
    unrouted 404): the table is the API, not decoration."""
    job = submit_and_wait(service_app, dict(RUN))
    key = job["keys"][0]
    fill = {"<id>": job["id"], "<config_hash>": key, "<artifact>": "stats"}
    for method, template, _ in ENDPOINTS:
        path = template
        for token, value in fill.items():
            path = path.replace(token, value)
        status, headers, _ = req(service_app, method, path,
                                 dict(RUN) if method == "POST" else None)
        assert status in (200, 202), (method, path, status)
        assert headers["X-BigVLittle-Schema"] == SERVICE_SCHEMA


def test_unknown_routes_get_hints(service_app):
    status, headers, raw = req(service_app, "GET", "/v2/nope")
    assert status == 404 and headers["X-BigVLittle-Cache"] == "miss"
    assert "hint" in json.loads(raw)
    status, _, _ = req(service_app, "POST", "/v1/jobs", {})
    assert status == 404


# ----------------------------------------------------------------- submit

def test_submit_runs_job_to_done_with_levels(service_app):
    job = submit_and_wait(service_app, dict(RUN))
    assert job["state"] == "done" and job["schema"] == SERVICE_SCHEMA
    assert list(job["levels"].values()) == ["fresh"]
    # a second, identical submission completes from cache (warm job)
    job2 = submit_and_wait(service_app, dict(RUN))
    assert job2["levels"][job["keys"][0]] in ("memory", "disk")


def test_submit_validation_errors_are_400(service_app):
    for bad in ({"workload": "vvadd"},
                {"system": "1b", "workload": "vvadd", "scale": "huge"},
                {"system": "1b", "workload": "vvadd",
                 "artifacts": ["stats"]}):
        status, _, raw = req(service_app, "POST", "/v1/runs", bad)
        assert status == 400
        assert json.loads(raw)["schema"] == SERVICE_SCHEMA
    status, _, raw = req(service_app, "POST", "/v1/runs", None)
    assert status == 400


def test_concurrent_identical_submits_dedup(service_app):
    # stall the single worker with a first job so the next two coexist
    # in the queue and coalesce
    service_app.queue.submit([{"system": "1b", "workload": "vvadd",
                               "scale": "tiny",
                               "overrides": {"mem": {"dram_latency": 555}}}])
    s1, _, r1 = req(service_app, "POST", "/v1/runs", dict(RUN))
    s2, _, r2 = req(service_app, "POST", "/v1/runs", dict(RUN))
    a, b = json.loads(r1), json.loads(r2)
    if b["deduplicated"]:  # worker may drain a before b arrives
        assert (s1, s2) == (202, 200)
        assert a["id"] == b["id"]
        assert service_app.queue.counters["deduped"] >= 1


# ---------------------------------------------------------------- results

def test_results_index_reports_levels_and_artifacts(service_app):
    job = submit_and_wait(service_app, dict(RUN))
    key = job["keys"][0]
    status, headers, raw = req(service_app, "GET", f"/v1/results/{key}")
    assert status == 200
    doc = json.loads(raw)
    assert doc["cached"] is True
    assert headers["X-BigVLittle-Cache"] in ("memory", "disk")
    assert doc["artifacts"]["derived"] == ["stats", "result", "summary",
                                           "stall.svg"]
    status, headers, raw = req(service_app, "GET", "/v1/results/" + "0" * 64)
    assert status == 404 and headers["X-BigVLittle-Cache"] == "miss"
    assert "POST /v1/runs" in json.loads(raw)["hint"]


def test_warm_artifact_get_never_simulates(service_app, run_spy):
    """The acceptance bar: once a run is cached, GET /v1/results serves
    bytes with ZERO System.run calls — and those bytes are identical to
    the canonical dump of the directly generated result."""
    job = submit_and_wait(service_app, dict(RUN))
    key = job["keys"][0]
    assert run_spy["n"] == 1  # the one worker simulation

    baseline = run_spy["n"]
    status, h1, first = req(service_app, "GET", f"/v1/results/{key}/stats")
    status2, h2, second = req(service_app, "GET", f"/v1/results/{key}/stats")
    assert (status, status2) == (200, 200)
    assert h1["X-BigVLittle-Cache"] == "generated"
    assert h2["X-BigVLittle-Cache"] == "artifact"
    assert first == second
    for name in ("result", "summary", "stall.svg"):
        status, _, _ = req(service_app, "GET", f"/v1/results/{key}/{name}")
        assert status == 200
    assert run_spy["n"] == baseline  # zero System.run across every GET

    # byte-identical to the canonical dump of the cached result (which
    # round-tripped the simulation run_pair performed)
    from repro.obs.diff import dump_result

    direct = (json.dumps(dump_result(service_app.cache.get(key)),
                         indent=1, sort_keys=True) + "\n").encode()
    assert first == direct
    assert run_spy["n"] == baseline


def test_simulated_artifacts_404_with_hint_not_a_run(service_app, run_spy):
    job = submit_and_wait(service_app, dict(RUN))
    key = job["keys"][0]
    baseline = run_spy["n"]
    status, headers, raw = req(service_app, "GET",
                               f"/v1/results/{key}/timeline")
    assert status == 404
    assert "GET never simulates" in json.loads(raw)["hint"]
    assert run_spy["n"] == baseline
    status, _, raw = req(service_app, "GET", f"/v1/results/{key}/bogus")
    assert status == 404 and "stall.svg" in json.loads(raw)["hint"]


def test_requested_artifacts_serve_after_job(service_app):
    job = submit_and_wait(service_app,
                          dict(RUN, artifacts=["timeline", "phases"]))
    key = job["keys"][0]
    for name, ctype in (("timeline", "application/json"),
                        ("phases", "application/json")):
        status, headers, raw = req(service_app, "GET",
                                   f"/v1/results/{key}/{name}")
        assert status == 200
        assert headers["X-BigVLittle-Cache"] == "artifact"
        assert headers["Content-Type"] == ctype
        assert json.loads(raw)  # well-formed
    status, headers, _ = req(service_app, "GET",
                             f"/v1/results/{key}/stall.svg")
    assert headers["Content-Type"] == "image/svg+xml"


# ------------------------------------------------------------ stats, drain

def test_stats_counters_reconcile(service_app):
    submit_and_wait(service_app, dict(RUN))
    status, _, raw = req(service_app, "GET", "/v1/stats")
    doc = json.loads(raw)
    assert doc["cache"]["shards"] == 2
    c = doc["queue"]["counters"]
    assert c["enqueued"] >= 1 and c["done"] >= 1
    assert doc["pool"]["alive"] == doc["pool"]["workers"] == 1


def test_draining_service_returns_503(service_app):
    submit_and_wait(service_app, dict(RUN))
    service_app.queue.close()  # what stop(drain=True) does first
    status, _, raw = req(service_app, "POST", "/v1/runs", dict(RUN))
    assert status == 503
    assert "draining" in json.loads(raw)["error"]
    # reads keep working during the drain window
    status, _, _ = req(service_app, "GET", "/v1/jobs")
    assert status == 200


def test_jobs_listing_newest_first(service_app):
    first = submit_and_wait(service_app, dict(RUN))
    second = submit_and_wait(
        service_app, dict(RUN, overrides={"mem": {"dram_latency": 200}}))
    status, _, raw = req(service_app, "GET", "/v1/jobs?limit=10")
    jobs = json.loads(raw)["jobs"]
    assert [j["id"] for j in jobs[:2]] == [second["id"], first["id"]]


def test_journal_survives_restart(tmp_path):
    """Stop a service with queued work; a new instance on the same root
    recovers and runs it."""
    from repro.service import ServiceApp

    root = str(tmp_path / "svc")
    app = ServiceApp(cache_root=root, port=0, workers=1)
    # enqueue without workers running, then shut down without draining
    job, _ = app.queue.submit([{"system": "1b", "workload": "vvadd",
                                "scale": "tiny", "overrides": {}}])
    app.queue.close()
    app.httpd.server_close()

    app2 = ServiceApp(cache_root=root, port=0, workers=1).start()
    try:
        assert app2.queue.counters["recovered"] == 1
        deadline = time.time() + 20
        while time.time() < deadline:
            j = app2.queue.get(job.id)
            if j.state == "done":
                break
            time.sleep(0.02)
        assert app2.queue.get(job.id).state == "done"
    finally:
        app2.stop(drain=True)
