"""Tests for the Table VI area model."""

import pytest

from repro.area import (
    dve_area_estimate_kge,
    little_cluster_area,
    system_overhead_estimate,
    table6,
    vlittle_cluster_area_kge,
)
from repro.errors import ConfigError


def test_simple_core_overhead_matches_paper():
    base, vl, ovh = table6("simple")
    # paper: 2.4% with simple cores
    assert 0.015 < ovh < 0.035
    assert vl.total > base.total


def test_ariane_core_overhead_matches_paper():
    base, vl, ovh = table6("ariane")
    # paper: 2.1% with Ariane cores (bigger cores dilute the fixed overhead)
    assert 0.015 < ovh < 0.03
    simple_ovh = table6("simple")[2]
    assert ovh < simple_ovh


def test_paper_headline_under_five_percent():
    for core in ("simple", "ariane"):
        assert table6(core)[2] < 0.05


def test_baseline_totals_match_table6():
    base, vl, _ = table6("simple")
    # Table VI: 4L with simple cores = 427.0 k um^2
    assert abs(base.total - 427.0) < 1.0
    # 4VL column: 437.4 k um^2
    assert abs(vl.total - 437.4) < 2.0


def test_vector_components_present_only_in_4vl():
    base = little_cluster_area(vector=False)
    vl = little_cluster_area(vector=True)
    assert not any("VXU" in k for k in base.components)
    assert any("VXU" in k for k in vl.components)
    assert any("VCU" in k for k in vl.components)


def test_deeper_queues_cost_area():
    shallow = little_cluster_area(vector=True, uopq_scale=1.0)
    deep = little_cluster_area(vector=True, uopq_scale=4.0)
    assert deep.total > shallow.total


def test_unknown_core_model_rejected():
    with pytest.raises(ConfigError):
        little_cluster_area(core="cortex")


def test_dve_area_comparable_to_cluster():
    # paper §VI: the 8-lane Ara engine (~6000 kGE) is about the size of a
    # four-Ariane cluster with its L1 caches
    dve = dve_area_estimate_kge()
    cluster = vlittle_cluster_area_kge()
    assert 0.8 < dve / cluster < 1.25


def test_system_level_overhead_below_one_percent():
    assert system_overhead_estimate("simple") < 0.01
    assert system_overhead_estimate("ariane") < 0.01
