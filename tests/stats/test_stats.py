"""Tests for the statistics infrastructure."""

from repro.stats import Breakdown, Counters, RunResult, STALL_NAMES, Stall


def test_stall_categories_match_fig7():
    assert STALL_NAMES == ["busy", "simd", "raw_mem", "raw_llfu",
                           "struct", "xelem", "misc"]


def test_breakdown_accounting():
    b = Breakdown()
    b.add(Stall.BUSY, 3)
    b.add(Stall.RAW_MEM)
    assert b.total() == 4
    assert b.fraction(Stall.BUSY) == 0.75
    assert b.as_dict()["raw_mem"] == 1


def test_breakdown_empty_fraction():
    assert Breakdown().fraction(Stall.BUSY) == 0.0


def test_breakdown_fractions_zero_total():
    fr = Breakdown().fractions()
    assert set(fr) == set(STALL_NAMES)
    assert all(v == 0.0 for v in fr.values())


def test_breakdown_fractions_sum_to_one():
    b = Breakdown()
    b.add(Stall.BUSY, 3)
    b.add(Stall.RAW_MEM, 1)
    fr = b.fractions()
    assert fr["busy"] == 0.75 and fr["raw_mem"] == 0.25
    assert sum(fr.values()) == 1.0


def test_breakdown_merge():
    a, b = Breakdown(), Breakdown()
    a.add(Stall.BUSY, 2)
    b.add(Stall.BUSY, 3)
    b.add(Stall.SIMD, 1)
    m = a.merged_with(b)
    assert m.counts[Stall.BUSY] == 5
    assert m.counts[Stall.SIMD] == 1
    assert a.counts[Stall.BUSY] == 2  # originals untouched


def test_counters():
    c = Counters()
    c.add("x")
    c.add("x", 4)
    assert c["x"] == 5
    assert c.get("missing") == 0
    d = Counters()
    d.add("x", 1)
    d.add("y", 2)
    c.merge(d)
    assert c["x"] == 6 and c["y"] == 2
    assert c.as_dict() == {"x": 6, "y": 2}


def test_counters_mapping_protocol():
    c = Counters()
    c.add("x", 5)
    c.add("y", 2)
    assert "x" in c and "missing" not in c
    assert sorted(c.items()) == [("x", 5), ("y", 2)]
    assert len(c) == 2
    assert sorted(c) == ["x", "y"]
    # __getitem__ mirrors get(): missing keys read as 0, never KeyError
    assert c["missing"] == 0 == c.get("missing")


def test_run_result_access():
    r = RunResult("w", "1b", 123, {"a": 1})
    assert r["a"] == 1
    assert r["missing"] == 0
    assert "1b" in repr(r)


def test_run_result_delegates_to_stats():
    r = RunResult("w", "1b", 123, {"a": 1, "b": 2})
    assert "a" in r and "missing" not in r
    assert r.get("a") == 1
    assert r.get("missing") == 0
    assert r.get("missing", None) is None
    assert sorted(r.items()) == [("a", 1), ("b", 2)]
