"""Tests for the statistics infrastructure."""

from repro.stats import Breakdown, Counters, RunResult, STALL_NAMES, Stall


def test_stall_categories_match_fig7():
    assert STALL_NAMES == ["busy", "simd", "raw_mem", "raw_llfu",
                           "struct", "xelem", "misc"]


def test_breakdown_accounting():
    b = Breakdown()
    b.add(Stall.BUSY, 3)
    b.add(Stall.RAW_MEM)
    assert b.total() == 4
    assert b.fraction(Stall.BUSY) == 0.75
    assert b.as_dict()["raw_mem"] == 1


def test_breakdown_empty_fraction():
    assert Breakdown().fraction(Stall.BUSY) == 0.0


def test_breakdown_merge():
    a, b = Breakdown(), Breakdown()
    a.add(Stall.BUSY, 2)
    b.add(Stall.BUSY, 3)
    b.add(Stall.SIMD, 1)
    m = a.merged_with(b)
    assert m.counts[Stall.BUSY] == 5
    assert m.counts[Stall.SIMD] == 1
    assert a.counts[Stall.BUSY] == 2  # originals untouched


def test_counters():
    c = Counters()
    c.add("x")
    c.add("x", 4)
    assert c["x"] == 5
    assert c.get("missing") == 0
    d = Counters()
    d.add("x", 1)
    d.add("y", 2)
    c.merge(d)
    assert c["x"] == 6 and c["y"] == 2
    assert c.as_dict() == {"x": 6, "y": 2}


def test_run_result_access():
    r = RunResult("w", "1b", 123, {"a": 1})
    assert r["a"] == 1
    assert r["missing"] == 0
    assert "1b" in repr(r)
