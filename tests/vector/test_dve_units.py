"""Additional decoupled-engine unit tests (1bDV internals)."""

import pytest

from repro.errors import ConfigError
from repro.trace import TraceBuilder, VectorBuilder
from repro.vector import DecoupledVectorEngine

from tests.vector.harness import build_dve, run, vec_builder


def test_bad_vlen_rejected():
    with pytest.raises(ConfigError):
        DecoupledVectorEngine(None, None, vlen_bits=100)


def test_vsetvl_answered_at_dispatch_not_queue_head():
    # a full pipeline of slow ops ahead must not delay the vsetvl response
    ms, big, e = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    v = vb.vle(0x100000)
    chain = v
    for _ in range(10):
        chain = vb.vfdiv(chain, chain)  # slow serial chain in the engine
    vl2 = vb.vsetvl(32, ew=4)  # strip-mine bookkeeping must not stall
    tb.addi(None)
    cycles = run(ms, big, e, tb.finish())
    # chain of 10 serial packed fdivs on 64 elems dominates; the point is
    # that the run completes with the big core well ahead (no deadlock and
    # no per-strip round trip)
    assert big.done()


def test_store_counts_tracked():
    ms, big, e = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    v = vb.vle(0x200000)
    vb.vse(v, 0x210000)
    run(ms, big, e, tb.finish())
    assert e.store_line_reqs == 4  # 64 x 4B = 256B = 4 lines
    assert e.line_reqs == 8


def test_loadq_limits_prefetch():
    def trace():
        tb, vb = vec_builder(2048)
        for base, vl in vb.strip_mine(0x300000, 2048, ew=4):
            v = vb.vle(base, vl=vl)
            vb.vse(v, base + 0x100000, vl=vl)
        return tb.finish()

    ms1, b1, deep = build_dve(loadq_lines=64)
    c_deep = run(ms1, b1, deep, trace())
    ms2, b2, shallow = build_dve(loadq_lines=4)
    c_shallow = run(ms2, b2, shallow, trace())
    assert c_shallow > c_deep


def test_masked_ops_execute():
    ms, big, e = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    a = vb.vle(0x400000)
    b = vb.vle(0x410000)
    m = vb.vmflt(a, b)
    c = vb.vfadd(a, b, mask=m)
    vb.vse(c, 0x420000)
    cycles = run(ms, big, e, tb.finish())
    assert cycles < 2000


def test_int_divide_serializes_chimes():
    ms, big, e = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    a = vb.vle(0x500000)
    vb.vdiv(a, a)
    c_div = run(ms, big, e, tb.finish())

    ms2, big2, e2 = build_dve()
    tb2, vb2 = vec_builder(2048)
    vb2.vsetvl(64, ew=4)
    a2 = vb2.vle(0x500000)
    vb2.vadd(a2, a2)
    c_add = run(ms2, big2, e2, tb2.finish())
    assert c_div > c_add + 20  # unpipelined divide occupancy


def test_engine_idle_after_completion():
    ms, big, e = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    v = vb.vle(0x600000)
    vb.vse(v, 0x610000)
    run(ms, big, e, tb.finish())
    assert e.idle()
    assert e._loadq_used == 0
    assert e._inflight == 0
