"""Tests for the decoupled vector engine (1bDV baseline)."""

from repro.trace import TraceBuilder, VectorBuilder

from tests.vector.harness import build_dve, run, saxpy_trace, vec_builder


def test_vlmax():
    _, _, engine = build_dve()
    assert engine.vlmax(4) == 64
    assert engine.vlmax(8) == 32


def test_simple_vector_add_completes():
    ms, big, engine = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    v1 = vb.vle(0x100000)
    v2 = vb.vle(0x110000)
    v3 = vb.vadd(v1, v2)
    vb.vse(v3, 0x120000)
    cycles = run(ms, big, engine, tb.finish())
    assert engine.instrs == 5
    assert cycles < 2000


def test_saxpy_runs_and_uses_line_requests():
    ms, big, engine = build_dve()
    n = 1024
    cycles = run(ms, big, engine, saxpy_trace(2048, n))
    # 2 loads + 1 store per 64-element strip, 4 lines each
    strips = n // 64
    assert engine.line_reqs >= strips * 3 * 4
    assert cycles < 60_000


def test_engine_decouples_loads_from_compute():
    # Deep dependent FP chain after each load: loads for later strips should
    # be fetched while earlier strips compute. Compare against an engine with
    # no run-ahead (max_inflight=1, lines_per_cycle=1, loadq 4).
    tb, vb = vec_builder(2048)
    for base, vl in vb.strip_mine(0x300000, n=512, ew=4):
        v = vb.vle(base, vl=vl)
        acc = v
        for _ in range(4):
            acc = vb.vfmul(acc, acc)
        vb.vse(acc, base + 0x100000, vl=vl)
    trace = tb.finish()

    ms1, big1, fast = build_dve()
    fast_cycles = run(ms1, big1, fast, trace)

    tb2, vb2 = vec_builder(2048)
    for base, vl in vb2.strip_mine(0x300000, n=512, ew=4):
        v = vb2.vle(base, vl=vl)
        acc = v
        for _ in range(4):
            acc = vb2.vfmul(acc, acc)
        vb2.vse(acc, base + 0x100000, vl=vl)
    trace2 = tb2.finish()
    ms2, big2, slow = build_dve(max_inflight=1, lines_per_cycle=1, loadq_lines=4)
    slow_cycles = run(ms2, big2, slow, trace2)
    assert fast_cycles < slow_cycles


def test_reduction_returns_scalar_to_big_core():
    ms, big, engine = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    v = vb.vle(0x400000)
    r = vb.vfredsum(v)
    rd = vb.vmv_x_s(r)
    tb.addi(rd)  # scalar consumer
    cycles = run(ms, big, engine, tb.finish())
    assert big.instrs >= 1
    assert cycles < 2000


def test_vmfence_waits_for_outstanding_memory():
    ms, big, engine = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    v = vb.vle(0x500000)
    vb.vse(v, 0x510000)
    vb.vmfence()
    scalar = tb.lw(0x510000)
    tb.addi(scalar)
    cycles = run(ms, big, engine, tb.finish())
    assert cycles < 3000
    assert engine.idle()


def test_wider_engine_fewer_instructions_same_elements():
    n = 2048
    traces = {}
    for vlen in (512, 2048):
        tb, vb = vec_builder(vlen)
        for base, vl in vb.strip_mine(0x600000, n=n, ew=4):
            v = vb.vle(base, vl=vl)
            v2 = vb.vadd(v, v)
            vb.vse(v2, base + 0x100000, vl=vl)
        traces[vlen] = tb.finish()
    assert len(traces[2048]) < len(traces[512])


def test_chime_occupancy_scales_with_vl():
    # 64 elements on 16 lanes = 4 chimes; 16 elements = 1 chime
    ms, big, engine = build_dve()
    tb, vb = vec_builder(2048)
    vb.vsetvl(64, ew=4)
    vs = [vb.vle(0x700000 + i * 0x1000) for i in range(2)]
    long_chain = vb.vadd(vs[0], vs[1])
    for _ in range(30):
        long_chain = vb.vadd(long_chain, long_chain)
    c_long = run(ms, big, engine, tb.finish())

    ms2, big2, engine2 = build_dve()
    tb2, vb2 = vec_builder(2048)
    vb2.vsetvl(16, ew=4)
    vs = [vb2.vle(0x700000 + i * 0x1000) for i in range(2)]
    chain = vb2.vadd(vs[0], vs[1])
    for _ in range(30):
        chain = vb2.vadd(chain, chain)
    c_short = run(ms2, big2, engine2, tb2.finish())
    assert c_long > c_short
