"""Shared helpers for vector-engine tests: build a big core + engine + memory
and run a trace to completion."""

from repro.cores import BigCore, LittleCore
from repro.mem import MemorySystem
from repro.trace import TraceBuilder, TraceSource, VectorBuilder
from repro.vector import DecoupledVectorEngine, VLittleEngine

from tests.cores.harness import prewarm, warm_icache_for


def build_vlittle(n_little=4, **engine_kw):
    ms = MemorySystem(n_big=1, n_little=n_little)
    littles = [
        LittleCore(f"lit{i}", ms.little_l1i[i], ms.little_l1d[i])
        for i in range(n_little)
    ]
    engine = VLittleEngine(littles, **engine_kw)
    big = BigCore("big0", ms.big_l1i[0], ms.big_l1d[0],
                  vector_mode="decoupled", engine=engine)
    return ms, big, engine


def build_dve(**engine_kw):
    ms = MemorySystem(n_big=1, n_little=0)
    port = ms.make_raw_port("dve0")
    engine = DecoupledVectorEngine(ms.l2, port, **engine_kw)
    big = BigCore("big0", ms.big_l1i[0], ms.big_l1d[0],
                  vector_mode="decoupled", engine=engine)
    return ms, big, engine


def run(ms, big, engine, trace, warm_i=True, max_cycles=500_000):
    if warm_i:
        warm_icache_for(ms, trace, "big")
    big.set_source(TraceSource(trace))
    for now in range(max_cycles):
        big.set_now_hint(now)
        big.tick(now)
        engine.tick(now)
        ms.tick(now)
        if big.done() and engine.idle():
            return now + 1
    raise AssertionError("vector run did not finish")


def vec_builder(vlen_bits):
    tb = TraceBuilder()
    return tb, VectorBuilder(tb, vlen_bits=vlen_bits)


def saxpy_trace(vlen_bits, n, x=0x100000, y=0x200000):
    """Streaming a*X+Y: the canonical memory+FP kernel."""
    tb, vb = vec_builder(vlen_bits)
    a = tb.li()
    remaining, off = n, 0
    head = tb.pc
    while remaining > 0:
        tb.set_pc(head)
        vl = vb.vsetvl(remaining, ew=4)
        vx = vb.vle(x + off, ew=4)
        vy = vb.vle(y + off, ew=4)
        vm = vb.vfmul_vf(vx, a)
        vs = vb.vfadd(vm, vy)
        vb.vse(vs, y + off, ew=4)
        remaining -= vl
        off += vl * 4
        tb.addi(None)
        tb.branch(taken=remaining > 0, target=head if remaining > 0 else None)
    return tb.finish("saxpy")
