"""Direct unit tests for the VMU's sub-units (VMIU / VMSU / VLU / VSU)."""

import pytest

from repro.isa.vector import VOp
from repro.trace import TraceBuilder, VectorBuilder

from tests.vector.harness import build_vlittle, run, vec_builder


def engine_after(trace_fn, **kw):
    ms, big, e = build_vlittle(switch_penalty=0, **kw)
    tb, vb = vec_builder(e.vlen_bits(4))
    trace_fn(tb, vb)
    cycles = run(ms, big, e, tb.finish())
    return e, cycles


def test_unit_stride_one_line_request_per_line():
    def prog(tb, vb):
        vb.vsetvl(16, ew=4)
        v = vb.vle(0x100000)  # 64B = exactly one line
        vb.vse(v, 0x110000)

    e, _ = engine_after(prog)
    assert e.vmu.line_reqs == 2  # one load line + one store line


def test_strided_load_generates_per_line_requests():
    def prog(tb, vb):
        vb.vsetvl(8, ew=4)
        vb.vlse(0x200000, stride=256)  # every element its own line

    e, _ = engine_after(prog)
    assert e.vmu.line_reqs == 8


def test_small_stride_coalesces_within_lines():
    def prog(tb, vb):
        vb.vsetvl(16, ew=4)
        vb.vlse(0x300000, stride=8)  # 2 elements per 16B -> 8 per line

    e, _ = engine_after(prog)
    assert e.vmu.line_reqs == 2  # 16 elems x 8B stride = 128B = 2 lines


def test_line_requests_route_by_bank():
    def prog(tb, vb):
        for base, vl in vb.strip_mine(0x400000, 64, ew=4):
            v = vb.vle(base, vl=vl)
            vb.vse(v, base + 0x10000, vl=vl)

    e, _ = engine_after(prog)
    per_bank = [c.l1d.accesses for c in e.cores]
    assert sum(per_bank) == e.vmu.line_reqs
    assert max(per_bank) - min(per_bank) <= 1  # perfectly interleaved stream


def test_vlu_delivers_in_request_order():
    # stride hits one bank (slow), then unit-stride spreads over all banks
    # (fast) — in-order delivery means the fast load's writeback still waits
    def prog_inorder(tb, vb):
        vb.vsetvl(8, ew=4)
        va = vb.vlse(0x500000, stride=256)  # bank-conflicted, slow
        vbb = vb.vle(0x600000, vl=8)  # fast
        vc = vb.vadd(vbb, vbb)  # depends only on the fast load
        vb.vse(vc, 0x700000)

    e, cycles = engine_after(prog_inorder)

    def prog_fast_only(tb, vb):
        vb.vsetvl(8, ew=4)
        vbb = vb.vle(0x600000, vl=8)
        vc = vb.vadd(vbb, vbb)
        vb.vse(vc, 0x700000)

    e2, cycles2 = engine_after(prog_fast_only)
    assert cycles > cycles2 + 5  # head-of-line blocking is real


def test_ldq_capacity_limits_runahead():
    def prog(tb, vb):
        for base, vl in vb.strip_mine(0x800000, 512, ew=4):
            v = vb.vle(base, vl=vl)
            vb.vse(v, base + 0x100000, vl=vl)

    e_deep, c_deep = engine_after(prog, loadq_lines=64)
    e_shallow, c_shallow = engine_after(prog, loadq_lines=2)
    assert c_shallow > c_deep
    assert e_shallow.vmu.stats()["vmu.ldq_full_stalls"] > 0


def test_store_data_assembled_before_l1d_write():
    def prog(tb, vb):
        vb.vsetvl(16, ew=4)
        v = vb.vle(0x900000)
        v2 = vb.vfmul(v, v)  # data arrives late (FP latency)
        vb.vse(v2, 0x910000)

    e, _ = engine_after(prog)
    # store completed; no CAM residue, queues drained
    assert e.vmu.idle()
    for vmsu in e.vmu.vmsus:
        assert not vmsu.cam
        assert not vmsu.sdq


def test_indexed_store_scatter_completes():
    def prog(tb, vb):
        vb.vsetvl(8, ew=4)
        v = vb.vle(0xA00000)
        addrs = [0xB00000 + 128 * i for i in range(8)]
        vb.vsuxei(v, addrs)

    e, cycles = engine_after(prog)
    assert e.vmu.store_line_reqs == 8
    assert cycles < 5000


def test_fence_drains_before_subsequent_memory_ops():
    def prog(tb, vb):
        vb.vsetvl(16, ew=4)
        v = vb.vle(0xC00000)
        vb.vse(v, 0xC10000)
        vb.vmfence()
        v2 = vb.vle(0xC20000)
        vb.vse(v2, 0xC30000)

    e, cycles = engine_after(prog)
    assert e.idle()
    assert e.vmu.line_reqs == 4


def test_misaligned_unit_stride_spans_two_lines():
    def prog(tb, vb):
        vb.vsetvl(16, ew=4)
        vb.vle(0xD00020)  # 64B starting mid-line

    e, _ = engine_after(prog)
    assert e.vmu.line_reqs == 2


def test_mode_switch_counted_once_across_regions():
    def prog(tb, vb):
        for _ in range(3):
            vb.vsetvl(16, ew=4)
            v = vb.vle(0xE00000)
            vb.vse(v, 0xE10000)

    ms, big, e = build_vlittle(switch_penalty=100)
    tb, vb = vec_builder(e.vlen_bits(4))
    prog(tb, vb)
    run(ms, big, e, tb.finish())
    assert e.mode_switches == 1
