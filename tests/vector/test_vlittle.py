"""Tests for the VLITTLE engine (the paper's contribution)."""

import pytest

from repro.errors import ConfigError
from repro.stats import Stall
from repro.trace import TraceBuilder, VectorBuilder

from tests.vector.harness import build_vlittle, run, saxpy_trace, vec_builder


def test_vlmax_matches_paper_configurations():
    # paper §III-C / Fig 2: 4 little cores, 2 chimes, packed 32-bit elements
    # => 512-bit hardware vector length
    _, _, e = build_vlittle(chimes=2, packed=True)
    assert e.vlmax(4) == 16
    assert e.vlen_bits(4) == 512
    # Fig 7 ablations
    _, _, e1 = build_vlittle(chimes=1, packed=False)
    assert e1.vlmax(4) == 4
    _, _, e2 = build_vlittle(chimes=1, packed=True)
    assert e2.vlmax(4) == 8


def test_reconfiguration_disables_cores_and_banks_l1ds():
    ms, big, e = build_vlittle()
    for c in e.cores:
        assert not c.active
        assert c.l1d._bank_shift == 2  # 4 banks


def test_chimes_validation():
    with pytest.raises(ConfigError):
        build_vlittle(chimes=3)


def test_simple_vadd_completes():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    v1 = vb.vle(0x100000)
    v2 = vb.vle(0x110000)
    v3 = vb.vadd(v1, v2)
    vb.vse(v3, 0x120000)
    cycles = run(ms, big, e, tb.finish())
    assert e.instrs == 5
    assert cycles < 2000
    assert e.vmu.line_reqs >= 3  # 64B per op at 16x4B


def test_switch_penalty_applied_once():
    def go(pen):
        ms, big, e = build_vlittle(switch_penalty=pen)
        tb, vb = vec_builder(512)
        for base, vl in vb.strip_mine(0x100000, n=64, ew=4):
            v = vb.vle(base, vl=vl)
            vb.vse(v, base + 0x10000, vl=vl)
        return run(ms, big, e, tb.finish()), e

    c0, e0 = go(0)
    c500, e500 = go(500)
    assert e500.mode_switches == 1
    assert 400 <= c500 - c0 <= 700


def test_saxpy_completes_and_breakdown_accounts_all_cycles():
    ms, big, e = build_vlittle(switch_penalty=0)
    cycles = run(ms, big, e, saxpy_trace(512, 256))
    bd = e.breakdown()
    # every lane is charged exactly one category per cycle
    assert bd.total() == 4 * cycles
    assert bd.counts[Stall.BUSY] > 0


def test_unit_stride_spreads_across_banks():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    for base, vl in vb.strip_mine(0x200000, n=256, ew=4):
        v = vb.vle(base, vl=vl)
        vb.vse(v, base + 0x10000, vl=vl)
    run(ms, big, e, tb.finish())
    accesses = [c.l1d.accesses for c in e.cores]
    assert all(a > 0 for a in accesses)
    assert max(accesses) <= 2 * min(accesses)  # roughly balanced


def test_packed_halves_uop_count():
    def uops(packed):
        ms, big, e = build_vlittle(switch_penalty=0, packed=packed, chimes=1)
        tb, vb = vec_builder(e.vlen_bits(4))
        for base, vl in vb.strip_mine(0x300000, n=64, ew=4):
            v = vb.vle(base, vl=vl)
            v2 = vb.vadd(v, v)
            vb.vse(v2, base + 0x10000, vl=vl)
        run(ms, big, e, tb.finish())
        return sum(l.uops_issued for l in e.lanes)

    assert uops(False) > 1.7 * uops(True)


def test_two_chimes_hide_fp_latency():
    # dependent-free FP stream: with 2 chimes the second group overlaps the
    # first group's latency
    def cycles(chimes):
        ms, big, e = build_vlittle(switch_penalty=0, chimes=chimes, packed=True)
        tb, vb = vec_builder(e.vlen_bits(4))
        for base, vl in vb.strip_mine(0x400000, n=256, ew=4):
            va = vb.vle(base, vl=vl)
            m = vb.vfmul(va, va)
            m2 = vb.vfmul(m, m)
            vb.vse(m2, base + 0x20000, vl=vl)
        return run(ms, big, e, tb.finish())

    c1 = cycles(1)
    c2 = cycles(2)
    # 2 chimes move twice the elements per instruction; well under 2x time
    assert c2 < 1.6 * c1


def test_reduction_via_ring_and_scalar_response():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x500000)
    r = vb.vfredsum(v)
    rd = vb.vmv_x_s(r)
    tb.addi(rd)
    cycles = run(ms, big, e, tb.finish())
    assert e.vxu.ops_completed >= 1
    assert cycles < 2000


def test_vrgather_roundtrip():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x600000)
    idx = vb.vid()
    g = vb.vrgather(v, idx)
    vb.vse(g, 0x610000)
    cycles = run(ms, big, e, tb.finish())
    assert e.vxu.ops_completed == 1
    assert cycles < 2000


def test_xelem_stalls_recorded_during_cross_ops():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x700000)
    r = vb.vredsum(v)
    r2 = vb.vredsum(r)
    vb.vse(r2, 0x710000)
    run(ms, big, e, tb.finish())
    bd = e.breakdown()
    assert bd.counts[Stall.XELEM] > 0


def test_indexed_gather_completes():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    idx = vb.vid()
    addrs = [0x800000 + 256 * i for i in range(16)]
    g = vb.vluxei(addrs, vindex=idx)
    vb.vse(g, 0x810000)
    cycles = run(ms, big, e, tb.finish())
    assert cycles < 5000
    # 16 elements, 256B apart: no coalescing possible => 16 line requests
    assert e.vmu.line_reqs >= 16


def test_store_to_load_same_line_orders_through_cam():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x900000)
    vb.vse(v, 0x910000)
    v2 = vb.vle(0x910000)  # reads the line the store writes
    vb.vse(v2, 0x920000)
    cycles = run(ms, big, e, tb.finish())
    assert cycles < 5000
    assert sum(s.cam_stalls for s in e.vmu.vmsus) > 0


def test_vmfence_orders_vector_store_before_scalar_load():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0xA00000)
    vb.vse(v, 0xA10000)
    vb.vmfence()
    r = tb.lw(0xA10000)
    tb.addi(r)
    cycles = run(ms, big, e, tb.finish())
    assert cycles < 5000
    assert e.idle()


def test_masked_op_depends_on_mask_producer():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    vb.vsetvl(16, ew=4)
    a = vb.vle(0xB00000)
    b = vb.vle(0xB10000)
    m = vb.vmflt(a, b)
    c = vb.vfadd(a, b, mask=m)
    vb.vse(c, 0xB20000)
    cycles = run(ms, big, e, tb.finish())
    assert cycles < 3000


def test_trace_vlen_mismatch_rejected():
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(2048)  # wrong VLEN for a 512-bit engine
    vb.vsetvl(64, ew=4)
    vb.vle(0xC00000)
    with pytest.raises(ConfigError):
        run(ms, big, e, tb.finish())


def test_simd_lockstep_stalls_appear_when_lanes_desync():
    # strided loads hit a single bank: lanes receive data at different times,
    # desynchronizing the lockstep broadcast
    ms, big, e = build_vlittle(switch_penalty=0)
    tb, vb = vec_builder(512)
    for i in range(12):
        vb.vsetvl(16, ew=4)
        v = vb.vlse(0xD00000 + i * 0x4000, stride=256)  # one bank only
        v2 = vb.vadd(v, v)
        vb.vse(v2, 0xE00000 + i * 64)
    run(ms, big, e, tb.finish())
    bd = e.breakdown()
    assert bd.counts[Stall.SIMD] > 0
