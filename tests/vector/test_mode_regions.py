"""Multi-region vector execution: CSR-triggered mode exits (§III-B)."""

from repro.soc import System, preset
from repro.trace import TraceBuilder, VectorBuilder


def region_trace(vlen_bits, n_regions, exit_between, elems=64):
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=vlen_bits)
    for r in range(n_regions):
        base = 0x100000 + r * 0x10000
        for chunk, vl in vb.strip_mine(base, elems, ew=4):
            v = vb.vle(chunk, vl=vl)
            v2 = vb.vadd(v, v)
            vb.vse(v2, chunk + 0x8000, vl=vl)
        if exit_between and r != n_regions - 1:
            vb.mode_exit()
            # some scalar-phase work between regions
            for _ in range(20):
                tb.addi(None)
    return tb.finish("regions")


def run_cfg(cfg, trace):
    s = System(cfg)
    res = s.run(trace)
    return res, s


def test_single_region_pays_switch_once():
    cfg = preset("1b-4VL", switch_penalty=300)
    res, s = run_cfg(cfg, region_trace(cfg.vlen_bits(4), 3, exit_between=False))
    assert s.engine.mode_switches == 1


def test_exits_repay_the_switch_penalty():
    cfg = preset("1b-4VL", switch_penalty=300)
    res, s = run_cfg(cfg, region_trace(cfg.vlen_bits(4), 3, exit_between=True))
    assert s.engine.mode_switches == 3

    cfg2 = preset("1b-4VL", switch_penalty=300)
    res_single, _ = run_cfg(cfg2, region_trace(cfg2.vlen_bits(4), 3, exit_between=False))
    extra = res.cycles - res_single.cycles
    # two extra switches plus drain/serialization overhead
    assert extra >= 2 * 300


def test_exit_waits_for_engine_drain():
    # the CSR write cannot retire while vector stores are still in flight
    cfg = preset("1b-4VL", switch_penalty=0)
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=cfg.vlen_bits(4))
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x200000)
    vb.vse(v, 0x210000)
    vb.mode_exit()
    tb.addi(None)
    res, s = run_cfg(cfg, tb.finish())
    assert s.engine.idle()
    assert res.cycles > 0


def test_zero_penalty_regions_cost_little():
    cfg = preset("1b-4VL", switch_penalty=0)
    r_multi, _ = run_cfg(cfg, region_trace(cfg.vlen_bits(4), 3, exit_between=True))
    cfg2 = preset("1b-4VL", switch_penalty=0)
    r_single, _ = run_cfg(cfg2, region_trace(cfg2.vlen_bits(4), 3, exit_between=False))
    # with free switching, exits cost only the drain serialization
    assert r_multi.cycles < r_single.cycles * 1.6
