"""Property tests for the VCU's per-(chime, lane) element geometry.

The chime-batched lane executor trusts ``VLittleEngine.elem_count`` to
tell every lane how many elements of a memory instruction it owns in a
given chime: the LDWB µop waits for exactly that many writebacks and the
STDATA µop emits exactly that many store elements, in batch and scalar
mode alike. The map is derived in ``VectorMemoryUnit.register`` from the
instruction's element list, so its defining invariant is conservation:
summed over every (chime, lane) pair it must reproduce the
instruction's element total, for any lane count, chime count, packing
mode and — especially — non-power-of-two ``vl`` remainders whose last
chime is ragged.
"""

import pytest

from tests.vector.harness import build_vlittle, vec_builder


def _register(eng, vl, ew, kind="unit"):
    """Build one vector memory instruction and register it with the VMU."""
    tb, vb = vec_builder(eng.vlen_bits(ew))
    granted = vb.vsetvl(vl, ew=ew)
    assert granted == vl, "case must fit vlmax so the remainder is exact"
    if kind == "unit":
        vb.vle(0x100000, ew=ew)
    elif kind == "strided":
        vb.vlse(0x100000, stride=192, ew=ew)
    else:  # indexed: a cache-hostile shuffle of element addresses
        addrs = [0x100000 + ((i * 7919) % vl) * 64 for i in range(vl)]
        vb.vluxei(addrs, ew=ew)
    ins = tb.finish("geom").instrs[-1]
    eng.vmu.register(ins)
    return ins


def _case_grid():
    for n_lanes in (1, 2, 4, 8):
        for chimes in (1, 2):
            for packed in (False, True):
                yield n_lanes, chimes, packed


@pytest.mark.parametrize("n_lanes,chimes,packed", list(_case_grid()))
@pytest.mark.parametrize("kind", ("unit", "strided", "indexed"))
def test_elem_count_sums_to_element_total(n_lanes, chimes, packed, kind):
    for ew in (1, 4, 8):
        ms, big, eng = build_vlittle(n_lanes, chimes=chimes, packed=packed)
        if eng.vlen_bits(ew) % 64 != 0:
            continue  # below the trace layer's minimum VLEN granule
        vlmax = eng.vlmax(ew)
        epc = eng.lanes_count * eng.pack_for(ew)
        # full vector, single element, one ragged remainder below vlmax,
        # and a sub-chime sliver that leaves whole lanes without work
        vls = {vlmax, 1, max(1, vlmax - 1), max(1, vlmax // 2 + 1),
               min(vlmax, max(1, epc - 1))}
        for vl in sorted(vls):
            ins = _register(eng, vl, ew, kind)
            nch = max(1, -(-vl // epc))
            total = 0
            for c in range(nch):
                for lane in range(eng.lanes_count):
                    total += eng.elem_count(ins.seq, c, lane)
            assert total == vl, (
                f"lanes={n_lanes} chimes={chimes} packed={packed} "
                f"ew={ew} vl={vl} kind={kind}: {total} != {vl}")


def test_elem_count_stays_inside_chime_and_lane_bounds():
    ms, big, eng = build_vlittle(4, chimes=2, packed=True)
    ew = 4
    epc = eng.lanes_count * eng.pack_for(ew)
    vl = eng.vlmax(ew) - 3  # ragged last chime
    ins = _register(eng, vl, ew)
    nch = -(-vl // epc)
    expected = eng._elem_expected[ins.seq]
    assert expected, "register must populate the per-(chime, lane) map"
    for (c, lane), n in expected.items():
        assert 0 <= c < nch
        assert 0 <= lane < eng.lanes_count
        assert 0 < n <= eng.pack_for(ew)
    # unknown coordinates and unknown seqs read as zero, never KeyError
    assert eng.elem_count(ins.seq, nch + 5, 0) == 0
    assert eng.elem_count(ins.seq + 999, 0, 0) == 0


def test_unit_stride_packs_lanes_in_order():
    """Unit-stride elements land lane-major: element i of a chime belongs
    to lane (i % epc) // pack — the layout the batched leader/mirror
    arrays assume when they replay one lane's timing for the rest."""
    ms, big, eng = build_vlittle(4, chimes=2, packed=False)
    ew = 4
    vl = eng.vlmax(ew)
    ins = _register(eng, vl, ew)
    for c in range(eng.chimes):
        for lane in range(eng.lanes_count):
            assert eng.elem_count(ins.seq, c, lane) == eng.pack_for(ew)
