"""Big-core vector dispatch semantics (paper §III-A) against a mock engine."""

import pytest

from repro.cores import BigCore
from repro.isa.vector import VOp
from repro.mem import MemorySystem
from repro.trace import TraceBuilder, TraceSource, VectorBuilder

from tests.cores.harness import warm_icache_for


class MockEngine:
    """Records dispatch order and timing; responds after a fixed delay."""

    def __init__(self, accept=True, respond_delay=5):
        self.accept = accept
        self.respond_delay = respond_delay
        self.dispatched = []  # (seq, cycle)
        self._pending = []

    def can_accept(self, now):
        return self.accept

    def dispatch(self, ins, now, respond=None):
        self.dispatched.append((ins.seq, now))
        if respond is not None:
            self._pending.append((now + self.respond_delay, respond))

    def tick(self, now):
        ready = [p for p in self._pending if p[0] <= now]
        self._pending = [p for p in self._pending if p[0] > now]
        for t, r in ready:
            r(t)

    def idle(self):
        return not self._pending


def run_with_mock(trace, engine, max_cycles=50_000):
    ms = MemorySystem(n_big=1, n_little=0)
    warm_icache_for(ms, trace, "big")
    core = BigCore("big0", ms.big_l1i[0], ms.big_l1d[0],
                   vector_mode="decoupled", engine=engine,
                   source=TraceSource(trace))
    for now in range(max_cycles):
        core.set_now_hint(now)
        core.tick(now)
        engine.tick(now)
        ms.tick(now)
        if core.done() and engine.idle():
            return now + 1, core
    raise AssertionError("did not finish")


def vector_trace(n_ops=5):
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=512)
    vb.vsetvl(16, ew=4)
    vs = []
    for i in range(n_ops):
        vs.append(vb.vle(0x1000 + 0x100 * i))
    return tb, vb


def test_dispatch_in_program_order():
    tb, vb = vector_trace(6)
    eng = MockEngine()
    run_with_mock(tb.finish(), eng)
    seqs = [s for s, _ in eng.dispatched]
    assert seqs == sorted(seqs)


def test_engine_backpressure_blocks_dispatch():
    tb, vb = vector_trace(3)
    eng = MockEngine(accept=False)
    ms = MemorySystem(n_big=1, n_little=0)
    trace = tb.finish()
    warm_icache_for(ms, trace, "big")
    core = BigCore("big0", ms.big_l1i[0], ms.big_l1d[0],
                   vector_mode="decoupled", engine=eng, source=TraceSource(trace))
    for now in range(200):
        core.set_now_hint(now)
        core.tick(now)
        ms.tick(now)
    # vsetvl (head) was never dispatched: ROB head is stuck
    assert eng.dispatched == []
    assert not core.done()


def test_scalar_result_blocks_dependent_instruction():
    # vsetvl's rd feeds an addi: the addi cannot commit before the engine
    # responds, so a slower engine lengthens the run
    def build():
        tb = TraceBuilder()
        vb = VectorBuilder(tb, vlen_bits=512)
        vl = vb.vsetvl(16, ew=4)
        # the builder returns the granted vl as an int, but the VSETVL instr
        # carries rd; make a consumer of the vector unit's scalar response
        red_src = vb.vle(0x2000)
        r = vb.vmv_x_s(red_src)
        tb.addi(r)
        for _ in range(3):
            tb.addi(None)
        return tb.finish()

    fast, _ = run_with_mock(build(), MockEngine(respond_delay=2))
    slow, _ = run_with_mock(build(), MockEngine(respond_delay=400))
    assert slow > fast + 300


def test_rd_less_instructions_commit_immediately():
    # with a non-responding engine (responses never needed), rd-less vector
    # instructions must still commit and the core must finish
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=512)
    vb.vsetvl(16, ew=4)
    v = vb.vle(0x3000)
    vb.vse(v, 0x4000)
    eng = MockEngine(respond_delay=1)
    cycles, core = run_with_mock(tb.finish(), eng)
    assert core.instrs == 3
    # loads/stores have rd=None -> dispatched then committed without waiting
    assert len(eng.dispatched) == 3  # vsetvl + vle + vse


def test_vmfence_waits_for_scalar_stores():
    # a store sits in the post-commit buffer; the fence cannot dispatch
    # until it drains
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=512)
    r = tb.li()
    tb.sw(r, 0xA000)  # cold line: slow store
    vb.vsetvl(16, ew=4)
    vb.vmfence()
    eng = MockEngine()
    run_with_mock(tb.finish(), eng)
    fence_dispatch = [t for s, t in eng.dispatched][-1]
    assert fence_dispatch > 80  # waited out the store's DRAM round trip


def test_decoupling_runs_ahead_of_engine():
    # many rd-less vector ops: the core should dispatch them much faster
    # than a 1-per-5-cycles engine would retire them
    tb, vb = vector_trace(12)
    eng = MockEngine()
    run_with_mock(tb.finish(), eng)
    times = [t for _, t in eng.dispatched]
    # dispatches happen back-to-back (1/cycle-ish), not spaced by engine time
    assert times[-1] - times[0] <= len(times) * 3
