"""Shared helpers for core timing tests."""

from repro.cores import BigCore, LittleCore
from repro.mem import MemorySystem
from repro.trace import TraceSource


def make_ms(**kw):
    return MemorySystem(n_big=1, n_little=1, **kw)


def prewarm(cache, addrs, is_write=False):
    """Fill lines into a cache outside of timed execution."""
    for a in addrs:
        cache.access(a, is_write, 0)
    for now in range(4000):
        cache.tick(now)
        if all(cache.probe(cache.line_of(a)) is not None for a in addrs):
            return
    raise AssertionError("prewarm failed")


def warm_icache_for(ms, trace, which="little"):
    cache = ms.little_l1i[0] if which == "little" else ms.big_l1i[0]
    lines = sorted({i.pc & ~63 for i in trace})
    prewarm(cache, lines)
    # reset counters so tests observe only the timed run
    cache.accesses = cache.hits = cache.misses = 0


def run_little(trace, ms=None, warm_i=True, warm_d=(), max_cycles=200_000, **core_kw):
    ms = ms or make_ms()
    if warm_i:
        warm_icache_for(ms, trace, "little")
    if warm_d:
        prewarm(ms.little_l1d[0], warm_d)
    core = LittleCore("lit0", ms.little_l1i[0], ms.little_l1d[0],
                      source=TraceSource(trace), **core_kw)
    for now in range(max_cycles):
        core.tick(now)
        ms.tick(now)
        if core.done():
            return now + 1, core, ms
    raise AssertionError("little core did not finish")


def run_big(trace, ms=None, warm_i=True, warm_d=(), max_cycles=200_000, **core_kw):
    ms = ms or make_ms()
    if warm_i:
        warm_icache_for(ms, trace, "big")
    if warm_d:
        prewarm(ms.big_l1d[0], warm_d)
    core = BigCore("big0", ms.big_l1i[0], ms.big_l1d[0],
                   source=TraceSource(trace), **core_kw)
    for now in range(max_cycles):
        core.set_now_hint(now)
        core.tick(now)
        ms.tick(now)
        if core.done():
            return now + 1, core, ms
    raise AssertionError("big core did not finish")
