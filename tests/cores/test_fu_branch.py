"""Unit tests for FU pools and branch predictors."""

import pytest

from repro.cores import FUPool, LITTLE_FU_COUNTS, BIG_FU_COUNTS
from repro.cores.branch import BimodalPredictor, GsharePredictor
from repro.errors import ConfigError
from repro.isa.scalar import FUClass


def test_pipelined_fu_one_slot_per_cycle():
    fu = FUPool(LITTLE_FU_COUNTS)
    assert fu.try_issue(FUClass.ALU, 0) == 1
    assert fu.try_issue(FUClass.ALU, 0) is None  # single ALU
    assert fu.try_issue(FUClass.ALU, 1) == 1  # next cycle free again


def test_big_core_has_three_alus():
    fu = FUPool(BIG_FU_COUNTS)
    assert all(fu.try_issue(FUClass.ALU, 0) for _ in range(3))
    assert fu.try_issue(FUClass.ALU, 0) is None


def test_unpipelined_div_blocks_until_done():
    fu = FUPool(LITTLE_FU_COUNTS)
    lat = fu.try_issue(FUClass.DIV, 0)
    assert lat == 12
    assert fu.try_issue(FUClass.DIV, 5) is None
    assert fu.try_issue(FUClass.DIV, 12) == 12


def test_pipelined_fpu_back_to_back():
    fu = FUPool(LITTLE_FU_COUNTS)
    assert fu.try_issue(FUClass.FPU, 0) == 4
    assert fu.try_issue(FUClass.FPU, 1) == 4  # pipelined


def test_none_class_always_free():
    fu = FUPool(LITTLE_FU_COUNTS)
    for _ in range(10):
        assert fu.can_issue(FUClass.NONE, 0)


def test_custom_latency_override():
    fu = FUPool(LITTLE_FU_COUNTS, latency={FUClass.FPU: 2})
    assert fu.try_issue(FUClass.FPU, 0) == 2


def test_bad_count_rejected():
    with pytest.raises(ConfigError):
        FUPool({FUClass.ALU: 0})


def test_bimodal_learns_loop_branch():
    p = BimodalPredictor()
    pc = 0x400
    # loop branch: taken many times then one not-taken exit
    results = [p.predict_and_update(pc, True) for _ in range(10)]
    assert all(results[2:])  # warmed up quickly
    assert p.mispredicts <= 1
    p.predict_and_update(pc, False)  # exit mispredicts
    assert p.mispredicts >= 1


def test_gshare_learns_alternating_pattern():
    p = GsharePredictor()
    pc = 0x800
    outcomes = [bool(i % 2) for i in range(200)]
    for t in outcomes[:100]:
        p.predict_and_update(pc, t)
    before = p.mispredicts
    for t in outcomes[100:]:
        p.predict_and_update(pc, t)
    # history-based predictor captures the alternation after warmup
    assert p.mispredicts - before < 20


def test_predictors_count_lookups():
    p = BimodalPredictor()
    for _ in range(5):
        p.predict_and_update(0, True)
    assert p.lookups == 5
