"""Timing tests for the out-of-order big core (and its integrated vector unit)."""

import pytest

from repro.errors import ConfigError
from repro.trace import TraceBuilder, VectorBuilder

from tests.cores.harness import run_big, run_little


def test_superscalar_beats_little_on_independent_work():
    def mk():
        tb = TraceBuilder()
        for _ in range(120):
            tb.addi(None)
        return tb.finish()

    big_cycles, core, _ = run_big(mk())
    little_cycles, _, _ = run_little(mk())
    assert core.instrs == 120
    assert big_cycles < little_cycles / 2  # ~3 ALUs wide vs 1


def test_dependent_chain_limits_ooo_to_one_ipc():
    tb = TraceBuilder()
    r = tb.li()
    for _ in range(100):
        r = tb.addi(r)
    cycles, _, _ = run_big(tb.finish())
    assert cycles >= 100


def test_ooo_hides_load_miss_under_independent_work():
    # dependent version: everything waits on a cold load
    tb = TraceBuilder()
    r = tb.lw(0x900000)
    for _ in range(60):
        r = tb.addi(r)
    dep_cycles, _, _ = run_big(tb.finish())

    # independent version: same instructions, no dependence on the load
    tb2 = TraceBuilder()
    tb2.lw(0x910000)
    for _ in range(60):
        tb2.addi(None)
    ind_cycles, _, _ = run_big(tb2.finish())
    assert ind_cycles < dep_cycles - 40  # the miss is overlapped


def test_rob_bounds_runahead():
    # more independent loads than the ROB can hold: runahead is bounded
    tb = TraceBuilder()
    for i in range(40):
        tb.lw(0xA00000 + 64 * i)
    cycles_small, _, _ = run_big(tb.finish(), rob_size=8)
    tb2 = TraceBuilder()
    for i in range(40):
        tb2.lw(0xA00000 + 64 * i)
    cycles_large, _, _ = run_big(tb2.finish(), rob_size=128)
    assert cycles_large < cycles_small


def test_mispredict_stalls_fetch():
    tb = TraceBuilder()
    # data-dependent unpredictable branch directions
    pattern = [True, False, False, True, True, False, True, False] * 8
    for t in pattern:
        tb.addi(None)
        tb.branch(taken=False if False else t)  # alternating-ish
    chaotic, core, _ = run_big(tb.finish())
    assert core.predictor.mispredicts > 5

    tb2 = TraceBuilder()
    for _ in range(len(pattern)):
        tb2.addi(None)
        tb2.branch(taken=False)
    steady, _, _ = run_big(tb2.finish())
    assert chaotic > steady


def test_stores_drain_after_commit():
    tb = TraceBuilder()
    v = tb.li()
    for i in range(6):
        tb.sw(v, 0xB00000 + 4 * i)
    cycles, core, ms = run_big(tb.finish())
    assert not core._sb
    assert ms.big_l1d[0].probe(0xB00000) is not None


def test_vector_without_unit_raises():
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=128)
    vb.vsetvl(4)
    vb.vle(0x1000)
    with pytest.raises(ConfigError):
        run_big(tb.finish(), vector_mode="none")


# ---------------------------------------------------------- integrated unit


def ivu_trace(n=64, op="vfadd"):
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=128)
    for base, vl in vb.strip_mine(0xC00000, n=n, ew=4):
        va = vb.vle(base, vl=vl)
        vb_ = vb.vle(base + 0x10000, vl=vl)
        vc = getattr(vb, op)(va, vb_)
        vb.vse(vc, base + 0x20000, vl=vl)
    return tb.finish()


def test_ivu_executes_vector_code():
    cycles, core, _ = run_big(ivu_trace(), vector_mode="integrated")
    assert core.vector_instrs > 0
    assert cycles < 100_000


def test_ivu_beats_scalar_big_core_on_streaming_fp():
    n = 256
    vcycles, _, _ = run_big(ivu_trace(n), vector_mode="integrated")

    tb = TraceBuilder()
    with tb.loop(n, overhead=False) as loop:
        for i in loop:
            a = tb.flw(0xC00000 + 4 * i)
            b = tb.flw(0xC10000 + 4 * i)
            c = tb.fadd(a, b)
            tb.fsw(c, 0xC20000 + 4 * i)
    scycles, _, _ = run_big(tb.finish())
    assert vcycles < scycles  # 4 elements per instruction amortizes everything


def test_ivu_fewer_ifetches_than_scalar():
    n = 256
    _, _, vms = run_big(ivu_trace(n), vector_mode="integrated")
    tb = TraceBuilder()
    with tb.loop(n, overhead=False) as loop:
        for i in loop:
            a = tb.flw(0xC00000 + 4 * i)
            tb.fsw(a, 0xC20000 + 4 * i)
    _, _, sms = run_big(tb.finish())
    assert vms.fetch_requests() < sms.fetch_requests()


def test_ivu_reduction_and_scalar_result():
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=128)
    vb.vsetvl(4)
    v = vb.vle(0xD00000)
    red = vb.vfredsum(v)
    rd = vb.vmv_x_s(red)
    tb.addi(rd)  # scalar consumer of the vector result
    cycles, core, _ = run_big(tb.finish(), vector_mode="integrated")
    assert core.instrs == len(tb._instrs) if hasattr(tb, "_instrs") else True
    assert cycles < 5000


def test_ivu_indexed_load_touches_all_elements():
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=128)
    vb.vsetvl(4)
    addrs = [0xE00000 + 256 * i for i in range(4)]
    vb.vluxei(addrs)
    _, _, ms = run_big(tb.finish(), vector_mode="integrated")
    l1d = ms.big_l1d[0]
    assert l1d.accesses >= 4  # one port access per element
