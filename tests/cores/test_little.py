"""Timing tests for the in-order little core."""

from repro.stats import Stall
from repro.trace import TraceBuilder

from tests.cores.harness import run_little


def lines(addr, n):
    return [addr + i * 64 for i in range(n)]


def test_independent_alu_ops_run_at_one_ipc():
    tb = TraceBuilder()
    for _ in range(50):
        tb.addi(None)
    base_cycles, core, _ = run_little(tb.finish())
    assert core.instrs == 50
    # 1 IPC once warm: cycles ~= instrs + small pipe overhead
    assert base_cycles <= 60


def test_dependent_chain_still_one_ipc_for_alu():
    # single-cycle ALU results forward to the next instruction
    tb = TraceBuilder()
    r = tb.li()
    for _ in range(40):
        r = tb.addi(r)
    cycles, core, _ = run_little(tb.finish())
    assert cycles <= 55


def test_fpu_dependent_chain_pays_latency():
    tb = TraceBuilder()
    r = tb.li()
    n = 20
    for _ in range(n):
        r = tb.fadd(r, r)
    cycles, core, _ = run_little(tb.finish())
    # each dependent FP add waits ~4 cycles
    assert cycles >= (n - 1) * 4
    assert core.breakdown.counts[Stall.RAW_LLFU] >= n * 2


def test_independent_fpu_ops_pipeline():
    tb = TraceBuilder()
    a, b = tb.li(), tb.li()
    for _ in range(20):
        tb.fadd(a, b)
    cycles, _, _ = run_little(tb.finish())
    assert cycles <= 35  # pipelined: ~1 IPC


def test_div_unpipelined_serializes():
    tb = TraceBuilder()
    a, b = tb.li(), tb.li()
    for _ in range(5):
        tb.div(a, b)
    cycles, core, _ = run_little(tb.finish())
    assert cycles >= 4 * 12
    assert core.breakdown.counts[Stall.STRUCT] >= 4 * 10


def test_load_use_stall_on_hit():
    tb = TraceBuilder()
    r = tb.lw(0x100000)
    tb.addi(r)
    warm = [0x100000]
    cycles_with, _, _ = run_little(tb.finish(), warm_d=warm)

    tb2 = TraceBuilder()
    tb2.lw(0x100000)
    tb2.addi(None)
    cycles_without, _, _ = run_little(tb2.finish(), warm_d=warm)
    assert cycles_with > cycles_without  # dependent use pays load latency


def test_load_miss_stalls_much_longer():
    tb = TraceBuilder()
    r = tb.lw(0x200000)
    tb.addi(r)
    cycles_cold, core, _ = run_little(tb.finish())
    assert cycles_cold > 80  # DRAM round trip
    assert core.breakdown.counts[Stall.RAW_MEM] > 50


def test_store_buffer_hides_store_latency():
    tb = TraceBuilder()
    v = tb.li()
    for i in range(4):
        tb.sw(v, 0x300000 + 4 * i)
    for _ in range(20):
        tb.addi(None)
    cycles, core, _ = run_little(tb.finish(), warm_d=[0x300000])
    # stores retire into the buffer; ALU work continues at ~1 IPC
    assert cycles <= 45


def test_store_buffer_full_causes_struct_stall():
    tb = TraceBuilder()
    v = tb.li()
    # many stores to distinct cold lines: buffer (depth 4) must back up
    for i in range(12):
        tb.sw(v, 0x400000 + 64 * i)
    cycles, core, _ = run_little(tb.finish(), store_buffer_depth=2)
    assert core.breakdown.counts[Stall.STRUCT] > 0


def test_taken_branch_bubble():
    tb = TraceBuilder()
    with tb.loop(30, overhead=False) as loop:
        for _ in loop:
            tb.addi(None)
    cycles_loop, core, _ = run_little(tb.finish())
    tb2 = TraceBuilder()
    for _ in range(30):
        tb2.addi(None)
        tb2.branch(taken=False)
    cycles_straight, _, _ = run_little(tb2.finish())
    # same instruction count; taken back-edges cost refetch bubbles
    assert cycles_loop > cycles_straight


def test_breakdown_accounts_every_cycle():
    tb = TraceBuilder()
    r = tb.lw(0x500000)
    for _ in range(10):
        r = tb.fadd(r, r)
    cycles, core, _ = run_little(tb.finish())
    assert core.breakdown.total() == cycles


def test_done_waits_for_store_drain():
    tb = TraceBuilder()
    v = tb.li()
    tb.sw(v, 0x600000)
    cycles, core, ms = run_little(tb.finish())
    assert not core._sb
    # the dirty line actually landed in the cache
    assert ms.little_l1d[0].probe(0x600000 & ~63) is not None


def test_fetch_counts_lines_not_instrs():
    tb = TraceBuilder()
    for _ in range(64):  # 64 instrs = 4 lines of 16
        tb.addi(None)
    _, core, ms = run_little(tb.finish())
    assert ms.little_l1i[0].accesses <= 6


def test_loop_refetches_head_line_each_iteration():
    tb = TraceBuilder()
    with tb.loop(10, overhead=False) as loop:
        for _ in loop:
            tb.addi(None)
    _, _, ms = run_little(tb.finish())
    # each taken back-edge forces an i-fetch: >= ~1 per iteration
    assert ms.little_l1i[0].accesses >= 9
