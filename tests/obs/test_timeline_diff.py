"""Timeline diffing and per-stat-family tolerance schemas.

Contract: two dumps of the same run compare identical; an injected
mid-run perturbation is localized to its exact cycle and column; rows
align on cycle values rather than array position; each column gates at
its own family's tolerance (the checked-in policy in
``benchmarks/diff_tolerances.json`` parses and covers the key families).
"""

import copy
import json
import os

import pytest

from repro.experiments.runner import _program_for
from repro.obs import IntervalSampler, Observation
from repro.obs.diff import (
    TOLERANCES_SCHEMA,
    ToleranceSchema,
    diff_stats,
    diff_timeline_files,
    diff_timelines,
)
from repro.soc import System, preset
from repro.workloads import get_workload

POLICY = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                      "benchmarks", "diff_tolerances.json")


@pytest.fixture(scope="module")
def timeline_doc():
    cfg = preset("1b-4VL")
    program = _program_for(cfg, get_workload("switch_thrash", "tiny"))
    obs = Observation(sampler=IntervalSampler(interval=100,
                                              energy=("b1", "l1")))
    System(cfg).run(program, obs=obs)
    return obs.sampler.as_dict()


# -------------------------------------------------------- tolerance schemas


def test_schema_first_match_wins_and_fallback():
    tol = ToleranceSchema(
        families=[
            {"name": "stalls", "rel_tol": 0.01, "prefixes": ["d_stall_"]},
            {"name": "broad", "rel_tol": 0.5, "contains": ["stall"]},
        ],
        default_rel_tol=0.0)
    assert tol.family_for("d_stall_misc") == ("stalls", 0.01)
    assert tol.family_for("big0.stall.simd") == ("broad", 0.5)
    assert tol.family_for("time_ps") == (None, 0.0)


def test_schema_roundtrip_and_validation():
    tol = ToleranceSchema(families=[{"name": "x", "rel_tol": 0.1,
                                     "keys": ["time_ps"]}], name="p")
    doc = tol.as_dict()
    assert doc["schema"] == TOLERANCES_SCHEMA
    again = ToleranceSchema.from_dict(json.loads(json.dumps(doc)))
    assert again.family_for("time_ps") == ("x", 0.1)
    with pytest.raises(ValueError):
        ToleranceSchema.from_dict({"schema": "bogus-v9"})
    with pytest.raises(ValueError):
        ToleranceSchema(families=[{"name": "bad", "rel_tol": -1}])


def test_checked_in_policy_parses_and_covers_families():
    tol = ToleranceSchema.load(POLICY)
    assert tol.name == "ci-default"
    # counts and wall time stay exact; stall attribution gets slack
    assert tol.family_for("d_instrs_big") == ("counts", 0.0)
    assert tol.family_for("time_ps") == ("wall-time", 0.0)
    assert tol.family_for("cum_energy_j")[0] == "energy"
    fam, rel = tol.family_for("d_stall_misc")
    assert fam == "stall-attribution" and rel > 0
    assert tol.family_for("obs.cycles.big0.misc")[1] == rel


def test_stats_gate_respects_families():
    a = {"time_ps": 100_000, "big0.stall.simd": 1000, "big0.instrs": 50}
    b = {"time_ps": 100_000, "big0.stall.simd": 1002, "big0.instrs": 50}
    tol = ToleranceSchema(families=[{"name": "stalls", "rel_tol": 0.01,
                                     "contains": [".stall."]}])
    report = diff_stats(a, b)
    assert not report.ok()                      # flat zero tolerance
    assert report.ok(tolerances=tol)            # family absorbs the drift
    # exact-class keys never loosen, whatever the schema says
    b2 = dict(b, **{"big0.instrs": 51})
    loose = ToleranceSchema(default_rel_tol=1.0)
    assert not diff_stats(a, b2).ok(tolerances=loose)


# ---------------------------------------------------------- timeline diffs


def test_identical_timelines_ok(timeline_doc):
    report = diff_timelines(timeline_doc, copy.deepcopy(timeline_doc))
    assert report.ok()
    assert report.first_divergence() is None
    assert report.n_aligned == timeline_doc["samples"]
    assert "within tolerance" in report.format_table()


def test_injected_divergence_is_localized(timeline_doc):
    b = copy.deepcopy(timeline_doc)
    k = len(b["series"]["cycle"]) // 2
    cyc = b["series"]["cycle"][k]
    b["series"]["ipc_big"][k] = b["series"]["ipc_big"][k] + 1.0
    report = diff_timelines(timeline_doc, b,
                            tolerances=ToleranceSchema.load(POLICY))
    assert not report.ok()
    assert report.first_divergence() == (cyc, "ipc_big")
    (col,) = report.diverged()
    assert (col.column, col.n_diverged, col.first_cycle) == ("ipc_big", 1, cyc)
    table = report.format_table()
    assert f"FIRST DIVERGENCE at cycle {cyc}" in table


def test_rows_align_on_cycle_not_position(timeline_doc):
    # drop b's first row: the remaining rows still align by cycle value
    b = copy.deepcopy(timeline_doc)
    for c in b["columns"]:
        b["series"][c] = b["series"][c][1:]
    b["samples"] -= 1
    report = diff_timelines(timeline_doc, b)
    assert report.n_aligned == timeline_doc["samples"] - 1
    assert report.n_only_a == 1 and report.n_only_b == 0
    assert report.ok()  # every aligned sample still matches exactly


def test_interval_mismatch_rejected(timeline_doc):
    b = copy.deepcopy(timeline_doc)
    b["interval_cycles"] = timeline_doc["interval_cycles"] * 2
    with pytest.raises(ValueError):
        diff_timelines(timeline_doc, b)


def test_one_sided_columns_reported_not_gated(timeline_doc):
    # an energy-on dump vs an energy-off dump: extra columns are noted
    # but only the shared columns gate
    b = copy.deepcopy(timeline_doc)
    for c in ("big_w", "engine_w", "power_w", "energy_j", "cum_energy_j"):
        b["columns"].remove(c)
        del b["series"][c]
    report = diff_timelines(timeline_doc, b)
    assert report.ok()
    assert set(report.cols_only_a) == {"big_w", "engine_w", "power_w",
                                       "energy_j", "cum_energy_j"}
    assert "cum_energy_j" not in report.columns


def test_diff_timeline_files(timeline_doc, tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(timeline_doc))
    doc_b = copy.deepcopy(timeline_doc)
    doc_b["series"]["d_uops"][-1] += 7
    b.write_text(json.dumps(doc_b))
    report = diff_timeline_files(str(a), str(b))
    assert not report.ok()
    assert report.first_divergence()[1] == "d_uops"
    doc = report.as_dict()
    assert doc["first_divergence"]["column"] == "d_uops"
    assert doc["columns"]["d_uops"]["n_diverged"] == 1
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "not-a-timeline"}))
    with pytest.raises(ValueError):
        diff_timeline_files(str(a), str(bogus))
