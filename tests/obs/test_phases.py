"""Phase detection: labeling, hysteresis, smoothing, and tiling.

The acceptance contract (docs/observability.md):

* a switch-thrashing run on a VLITTLE system segments into at least one
  scalar, one mode-switch, and one vector-burst phase;
* every sampled interval lands in exactly one phase, so per-phase stall
  mixes, instruction counts, and energies tile the whole-run totals;
* the vector-burst hysteresis pair keeps a mid-burst lull from splitting
  a burst, and ``min_intervals`` smoothing absorbs one-sample blips;
* a system without an engine never reports vector or mode-switch phases.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import _program_for
from repro.obs import IntervalSampler, Observation
from repro.obs.phases import (
    DRAIN,
    PHASES_SCHEMA,
    SCALAR,
    SWITCH,
    VECTOR,
    PhaseThresholds,
    detect_phases,
)
from repro.soc import System, preset
from repro.stats import STALL_NAMES
from repro.workloads import get_workload


def _run(system_name, workload, obs=None, **kw):
    cfg = preset(system_name)
    program = _program_for(cfg, get_workload(workload, "tiny", **kw))
    return System(cfg).run(program, obs=obs)


# ------------------------------------------------------- synthetic timelines


def _row(cycle, d_cycles=100, instrs=0, uops=0, uopq=0, dataq=0, ldq=0,
         switches=0, switching=0, dram=0):
    row = {
        "cycle": cycle, "d_cycles": d_cycles,
        "d_instrs_big": instrs, "d_instrs_little": 0, "d_uops": uops,
        "rob0": 0, "uopq": uopq, "dataq": dataq, "ldq": ldq,
        "d_l2_hits": 0, "d_l2_misses": 0,
        "d_dram_reads": dram, "d_dram_writes": 0,
        "d_switches": switches, "switching": switching,
        "ipc_big": round(instrs / d_cycles, 6), "ipc_little": 0.0,
        "l2_mpki": 0.0, "dram_gbps": 0.0,
    }
    for name in STALL_NAMES:
        row[f"d_stall_{name}"] = 0
    return row


def _doc(rows, interval=100):
    cols = list(rows[0])
    return {
        "schema": "bigvlittle-timeline-v1",
        "interval_cycles": interval,
        "samples": len(rows),
        "columns": cols,
        "series": {c: [r[c] for r in rows] for c in cols},
    }


def test_known_sequence_segments():
    rows = (
        [_row((i + 1) * 100, instrs=80) for i in range(4)]          # scalar
        + [_row(500, switches=1, switching=1), _row(600, switching=1)]
        + [_row((7 + i) * 100, uops=50, instrs=5) for i in range(4)]  # burst
        + [_row((11 + i) * 100, ldq=2, dram=4) for i in range(2)]     # drain
    )
    report = detect_phases(_doc(rows))
    assert [s.phase for s in report.segments] == [SCALAR, SWITCH, VECTOR,
                                                  DRAIN]
    assert [s.intervals for s in report.segments] == [4, 2, 4, 2]
    assert report.segments[0].instrs == 320
    assert report.segments[2].uops == 200


def test_hysteresis_keeps_burst_together():
    # a lull whose µop rate sits between vector_exit and vector_enter must
    # not end the burst it sits inside
    th = PhaseThresholds(vector_enter=0.10, vector_exit=0.02,
                         min_intervals=1)
    rows = ([_row(100, instrs=80), _row(200, instrs=80)]
            + [_row(300, uops=50), _row(400, uops=5),   # 0.05: mid-band
               _row(500, uops=50)])
    report = detect_phases(_doc(rows), th)
    assert [s.phase for s in report.segments] == [SCALAR, VECTOR]
    # but the same mid-band rate never *starts* a burst
    rows2 = [_row(100, instrs=80), _row(200, uops=5, instrs=80)]
    report2 = detect_phases(_doc(rows2), th)
    assert [s.phase for s in report2.segments] == [SCALAR]


def test_min_intervals_smooths_blips():
    rows = ([_row((i + 1) * 100, instrs=80) for i in range(4)]
            + [_row(500, uops=50)]                       # one-sample blip
            + [_row((6 + i) * 100, instrs=80) for i in range(4)])
    th = PhaseThresholds(min_intervals=2)
    report = detect_phases(_doc(rows), th)
    assert [s.phase for s in report.segments] == [SCALAR]
    assert report.segments[0].intervals == 9
    # with smoothing off the blip survives
    report2 = detect_phases(_doc(rows), PhaseThresholds(min_intervals=1))
    assert [s.phase for s in report2.segments] == [SCALAR, VECTOR, SCALAR]


def test_threshold_validation():
    with pytest.raises(ConfigError):
        PhaseThresholds(vector_enter=0.01, vector_exit=0.05)
    with pytest.raises(ConfigError):
        PhaseThresholds(min_intervals=0)
    with pytest.raises(ConfigError):
        detect_phases({"schema": "bogus-v0"})


# ------------------------------------------------------------- real runs


@pytest.fixture(scope="module")
def thrash_report():
    obs = Observation(sampler=IntervalSampler(interval=100))
    result = _run("1b-4VL", "switch_thrash", obs=obs)
    return detect_phases(obs.sampler), result


def test_switch_thrash_hits_all_three_phases(thrash_report):
    report, _ = thrash_report
    counts = report.counts()
    assert counts[SCALAR] >= 3
    assert counts[SWITCH] >= 3
    assert counts[VECTOR] >= 3


def test_phases_tile_run_totals(thrash_report):
    report, result = thrash_report
    # per-phase stall mixes sum back to the whole-run Fig.-7 breakdown
    total = report.total_stalls()
    by_cat = {name: 0 for name in STALL_NAMES}
    for k, v in result.stats.items():
        if k.startswith("obs.cycles."):
            by_cat[k.rsplit(".", 1)[1]] += v
    assert total == by_cat
    # and instruction counts tile the run
    instrs = sum(seg.instrs for seg in report.segments)
    assert instrs == result["big0.instrs"] + sum(
        v for k, v in result.stats.items()
        if k.startswith("little") and k.endswith(".instrs"))


def test_no_engine_means_no_vector_phases():
    obs = Observation(sampler=IntervalSampler(interval=100))
    _run("1b", "switch_thrash", obs=obs)
    report = detect_phases(obs.sampler)
    counts = report.counts()
    assert counts[VECTOR] == 0 and counts[SWITCH] == 0
    assert counts[SCALAR] >= 1


def test_phase_energy_tiles_series_total():
    obs = Observation(sampler=IntervalSampler(interval=100,
                                              energy=("b1", "l1")))
    _run("1b-4VL", "switch_thrash", obs=obs)
    report = detect_phases(obs.sampler)
    assert all(seg.energy_j is not None for seg in report.segments)
    total = report.total_energy_j()
    series_total = sum(obs.sampler.series("energy_j"))
    assert total == pytest.approx(series_total, rel=1e-12)


def test_report_dict_and_json(thrash_report, tmp_path):
    report, _ = thrash_report
    doc = report.as_dict()
    assert doc["schema"] == PHASES_SCHEMA
    assert doc["n_phases"] == len(report.segments) == len(doc["phases"])
    assert doc["counts"] == report.counts()
    assert doc["thresholds"]["vector_enter"] == 0.10
    path = tmp_path / "phases.json"
    assert report.to_json(str(path)) == len(report.segments)
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(doc))  # JSON-safe


def test_detect_from_dict_matches_live_sampler(thrash_report):
    obs = Observation(sampler=IntervalSampler(interval=100))
    _run("1b-4VL", "switch_thrash", obs=obs)
    live = detect_phases(obs.sampler)
    from_doc = detect_phases(obs.sampler.as_dict())
    assert live.as_dict() == from_doc.as_dict()


def test_format_table(thrash_report):
    report, _ = thrash_report
    table = report.format_table()
    assert "phases:" in table.splitlines()[-1]
    for name in (SCALAR, SWITCH, VECTOR):
        assert name in table
