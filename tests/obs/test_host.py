"""HostScope tests: attribution coverage, determinism, sampling, cleanup.

Contract: a hostscoped run attributes at least 95% of its measured wall
time to unit groups (the acceptance bar — by construction the residual
``scheduler`` group makes coverage exact at stride 1), never perturbs
simulated ``stats``, restores every class-level seam it patched, and
refuses the loops that have no per-unit dispatch seam.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import _program_for
from repro.obs import HostScope
from repro.obs.host import GROUPS, SCHEMA, unit_group
from repro.soc import System, preset
from repro.workloads import get_workload


def _run(system="1b-4VL", workload="saxpy", scale="tiny", **kw):
    cfg = preset(system)
    program = _program_for(cfg, get_workload(workload, scale))
    return System(cfg).run(program, **kw)


def test_attribution_covers_95_percent_of_wall():
    hs = HostScope()
    _run(hostscope=hs)
    rep = hs.report()
    assert rep["schema"] == SCHEMA
    assert rep["coverage"] >= 0.95
    # the group walls tile the run: their sum IS the attributed time
    # (each reported value is rounded to 6 decimals — allow half an ULP
    # of drift per group)
    assert sum(g["wall_s"] for g in rep["groups"]) == pytest.approx(
        rep["attributed_s"], abs=1e-6 * (len(rep["groups"]) + 1))
    assert rep["attributed_s"] >= 0.95 * rep["wall_s"]


def test_groups_are_known_and_scheduler_present():
    hs = HostScope()
    _run(hostscope=hs)
    names = [g["group"] for g in hs.report()["groups"]]
    assert set(names) <= set(GROUPS)
    assert "scheduler" in names
    assert "big" in names and "vcu" in names  # 1b-4VL exercises both


def test_stats_identical_with_and_without_hostscope():
    """Determinism guard: host profiling must be invisible to the sim."""
    base = _run()
    probed = _run(hostscope=HostScope())
    assert probed.stats == base.stats
    assert probed.cycles == base.cycles


def test_stride_counts_stay_exact_and_sampling_is_partial():
    hs1 = HostScope(stride=1)
    _run(hostscope=hs1)
    hs4 = HostScope(stride=4)
    _run(hostscope=hs4)
    by1 = {g["group"]: g for g in hs1.report()["groups"]}
    by4 = {g["group"]: g for g in hs4.report()["groups"]}
    for group, row in by4.items():
        if group == "scheduler":
            continue
        # event counts are exact under sampling (same sim, same dispatches)
        assert row["events"] == by1[group]["events"]
        assert row["sampled"] <= row["events"]
    big = by4["big"]
    assert big["sampled"] < big["events"]  # actually sampled partially
    assert hs4.report()["coverage"] >= 0.95


def test_patched_seams_are_restored():
    from repro.mem.dram import DRAM
    from repro.mem.l2 import L2Cache
    from repro.vector.vmu import VectorMemoryUnit

    originals = (L2Cache.request, L2Cache.writeback, DRAM.request,
                 VectorMemoryUnit.tick)
    _run(hostscope=HostScope())
    assert (L2Cache.request, L2Cache.writeback, DRAM.request,
            VectorMemoryUnit.tick) == originals


def test_hostscope_requires_event_loop():
    with pytest.raises(ConfigError, match="event loop"):
        _run(hostscope=HostScope(), skip=False)
    with pytest.raises(ConfigError, match="event loop"):
        _run(hostscope=HostScope(), loop="legacy")


def test_bad_stride_rejected():
    with pytest.raises(ConfigError):
        HostScope(stride=0)
    with pytest.raises(ConfigError):
        HostScope(stride=1.5)


def test_report_json_roundtrip(tmp_path):
    hs = HostScope()
    _run(hostscope=hs)
    out = tmp_path / "hostprof.json"
    doc = hs.write_json(out, meta={"workload": "saxpy"})
    loaded = json.loads(out.read_text())
    assert loaded == json.loads(json.dumps(doc))  # JSON-safe
    assert loaded["meta"]["workload"] == "saxpy"
    assert loaded["schema"] == SCHEMA


def test_format_table_lists_groups():
    hs = HostScope()
    _run(hostscope=hs)
    table = hs.format_table()
    assert "scheduler" in table and "total" in table
    top1 = hs.format_table(top=1)
    assert len(top1.splitlines()) == 4  # header, rule, one row, total


def test_lane_executor_split_under_vcu():
    """The lanes sub-rows separate the chime-batched step from the
    scalar fallback path: a clean batched run charges lane time to
    ``vcu.lanes.batch``; the same run with batching forced off charges
    it to ``vcu.lanes.scalar`` instead."""
    hs = HostScope()
    _run(hostscope=hs)
    names = {g["group"] for g in hs.report()["groups"]}
    assert "vcu.lanes.batch" in names

    cfg = preset("1b-4VL")
    program = _program_for(cfg, get_workload("saxpy", "tiny"))
    sys_ = System(cfg)
    sys_.engine.batched = False
    hs2 = HostScope()
    sys_.run(program, hostscope=hs2)
    names2 = {g["group"] for g in hs2.report()["groups"]}
    assert "vcu.lanes.scalar" in names2
    assert "vcu.lanes.batch" not in names2


def test_unit_group_mapping():
    assert unit_group("vcu", 2) == "vcu"
    assert unit_group("dve", 2) == "dve"
    assert unit_group("mem", 2) == "mem"
    assert unit_group("big0", 0) == "big"
    assert unit_group("lit3", 1) == "little"


def test_scalar_system_profiles_too():
    """No engine, no vector seams — still full attribution."""
    hs = HostScope()
    _run(system="1b", workload="vvadd", hostscope=hs)
    rep = hs.report()
    assert rep["coverage"] >= 0.95
    groups = {g["group"] for g in rep["groups"]}
    assert "vmu" not in groups and "vcu" not in groups
