"""Forensics tests: snapshot purity, graph semantics, rendering.

Contract: :func:`repro.obs.forensics.snapshot` is read-only — taking
one (or ten) never changes a run's stats — and the wait-for graph's
cycles / blocking frontier name the units actually holding a run up.
"""

import json

import pytest

from repro.errors import DeadlockError
from repro.experiments.runner import _program_for
from repro.obs.forensics import SCHEMA, _find_cycles, format_report, snapshot
from repro.obs.forensics import write_json as write_forensics
from repro.soc import System, preset
from repro.workloads import get_workload


def _system(name="1b-4VL", workload="saxpy", scale="tiny"):
    cfg = preset(name)
    sys_ = System(cfg)
    sys_.load(_program_for(cfg, get_workload(workload, scale)))
    return sys_


def test_snapshot_of_completed_run_is_quiescent():
    sys_ = _system()
    result = sys_.run()
    rep = snapshot(sys_, result.stats["time_ps"], reason="completed")
    assert rep["schema"] == SCHEMA
    assert rep["blocking_frontier"] == [] and rep["cycles"] == []
    assert all(u["done"] for u in rep["units"]
               if u["state"] != "lane")
    assert {u["unit"] for u in rep["units"]} == {
        "big0", "lit0", "lit1", "lit2", "lit3", "vcu", "mem"}


def test_snapshot_is_pure():
    """Two snapshots mid-horizon agree, and neither perturbs the rerun."""
    base = _system().run()

    sys_ = _system()
    with pytest.raises(DeadlockError) as ei:
        sys_.run(max_ns=2)
    first = snapshot(sys_, 2000)
    second = snapshot(sys_, 2000)
    assert first == second
    # probing a wedged-mid-run system left no trace: a fresh identical
    # run (snapshot-free) and the original agree bit-for-bit
    assert ei.value.forensics is not None
    rerun = _system().run()
    assert rerun.stats == base.stats


def test_lane_littles_are_reported_as_lanes():
    sys_ = _system()
    sys_.run()
    rep = snapshot(sys_, 0)
    lanes = [u for u in rep["units"] if u["unit"].startswith("lit")]
    assert lanes and all(u["state"] == "lane" for u in lanes)


def test_wait_edges_resolve_engine_alias():
    sys_ = _system()
    with pytest.raises(DeadlockError):
        sys_.run(max_ns=1)
    rep = snapshot(sys_, 1000)
    targets = {e["on"] for e in rep["wait_for"]}
    assert "engine" not in targets  # resolved to vcu/dve or concrete units


def test_find_cycles_detects_and_canonicalizes():
    adj = {"a": {"b"}, "b": {"c"}, "c": {"a"}, "d": {"d"}}
    cycles = _find_cycles(adj)
    assert ["a", "b", "c", "a"] in cycles
    assert ["d", "d"] in cycles
    assert len(cycles) == 2
    # rotation-invariant: starting elsewhere reports the same loop once
    assert _find_cycles({"b": {"c"}, "c": {"a"}, "a": {"b"}}) == [
        ["a", "b", "c", "a"]]


def test_find_cycles_empty_on_dag():
    assert _find_cycles({"a": {"b"}, "b": {"c"}, "c": set()}) == []


def test_format_report_and_json_roundtrip(tmp_path):
    sys_ = _system()
    result = sys_.run()
    rep = snapshot(sys_, result.stats["time_ps"], reason="completed")
    text = format_report(rep)
    assert "blocking frontier: none" in text and "cycles: none" in text
    assert "big0" in text and "vcu" in text
    out = tmp_path / "forensics.json"
    write_forensics(rep, out)
    assert json.loads(out.read_text()) == json.loads(json.dumps(rep))


def test_progress_signature_recorded():
    sys_ = _system()
    result = sys_.run()
    rep = snapshot(sys_, result.stats["time_ps"])
    assert rep["progress_signature"] == sys_._progress_signature()
    assert rep["progress_signature"] > 0
